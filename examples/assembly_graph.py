#!/usr/bin/env python3
"""Downstream use: build and analyse the read overlap graph.

Long-read overlap detection is the front end of de novo assembly (§1, §11);
the overlap graph — reads as vertices, overlaps as edges — is what assemblers
like Miniasm consume.  This example:

1. runs the pipeline on a synthetic data set,
2. builds the overlap graph (edges weighted by alignment score),
3. reports the graph statistics an assembler cares about (connectivity,
   degree distribution), and
4. demonstrates a toy layout step: a greedy path through the largest
   component ordered by the reads' alignment coordinates — the first step of
   an assembly.

Run with::

    python examples/assembly_graph.py
"""

from __future__ import annotations

import networkx as nx

from repro.core import PipelineConfig, run_dibella
from repro.data import generate_dataset, tiny_dataset
from repro.overlap.graph import build_overlap_graph, overlap_graph_summary


def main() -> None:
    dataset = generate_dataset(tiny_dataset())
    reads = dataset.reads
    config = PipelineConfig(
        coverage_hint=dataset.spec.reads.coverage,
        error_rate_hint=dataset.spec.reads.error_rate,
        min_alignment_score=100,  # drop weak/spurious alignments from the graph
    )
    result = run_dibella(reads, config=config, n_nodes=1, ranks_per_node=2)

    # Edges: best alignment per overlapping pair, filtered by score.
    best = {}
    table = result.alignment_table()
    for ra, rb, score, sa, sb in zip(table["rid_a"], table["rid_b"], table["score"],
                                     table["span_a"], table["span_b"]):
        key = (int(ra), int(rb))
        if key not in best or score > best[key].score:
            from repro.align.results import AlignmentResult
            best[key] = AlignmentResult(score=int(score), start_a=0, end_a=int(sa),
                                        start_b=0, end_b=int(sb), cells=0, kernel="xdrop")

    graph = build_overlap_graph(result.overlaps(), alignments=best, min_score=100)
    summary = overlap_graph_summary(graph)

    print("overlap graph:")
    for key, value in summary.items():
        print(f"  {key}: {value:.3f}" if isinstance(value, float) else f"  {key}: {value}")

    # The reads of a single (small, circular) genome at adequate coverage
    # should form one dominant connected component.
    components = sorted(nx.connected_components(graph), key=len, reverse=True)
    if not components:
        print("no overlaps above the score threshold")
        return
    giant = graph.subgraph(components[0])
    print(f"\nlargest component: {giant.number_of_nodes()} reads, "
          f"{giant.number_of_edges()} overlaps")

    # Toy layout: order the reads of the giant component by their true genome
    # position (available from the simulator) and report how contiguous the
    # overlap chain is — a proxy for "could an assembler walk this graph".
    ordered = sorted(giant.nodes, key=lambda rid: reads[rid].true_start or 0)
    chained = sum(1 for a, b in zip(ordered, ordered[1:]) if giant.has_edge(a, b))
    print(f"adjacent-in-genome read pairs connected by an overlap edge: "
          f"{chained}/{len(ordered) - 1}")

    # Degree distribution summary (proportional to coverage depth).
    degrees = [d for _, d in giant.degree()]
    degrees.sort()
    print(f"degree: min={degrees[0]}, median={degrees[len(degrees) // 2]}, "
          f"max={degrees[-1]}")


if __name__ == "__main__":
    main()
