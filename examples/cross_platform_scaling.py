#!/usr/bin/env python3
"""Cross-platform strong-scaling study (the paper's Figures 3-13 in miniature).

Runs the full pipeline on a scaled-down E. coli 30x-like workload at several
simulated node counts, records the machine-independent work and traffic
counters, and projects them onto the four platforms of Table 1 (Cori,
Edison, Titan, AWS).  Prints:

* per-stage throughput by platform and node count (Figures 3, 5, 6, 7),
* the runtime breakdown by stage on Cori (Figure 9),
* overall and exchange efficiency per platform (Figure 12),
* end-to-end throughput per platform (Figure 13).

Run with::

    python examples/cross_platform_scaling.py [max_nodes]
"""

from __future__ import annotations

import sys

from repro.bench.harness import ExperimentHarness
from repro.bench.experiments import (
    figure3_bloom_scaling,
    figure9_breakdown_30x,
    figure12_exchange_efficiency,
    figure13_pipeline_performance,
)
from repro.bench.reporting import format_series, format_table


def main() -> None:
    max_nodes = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    nodes = tuple(n for n in (1, 2, 4, 8, 16, 32) if n <= max_nodes)
    harness = ExperimentHarness()

    print(f"running the pipeline at node counts {nodes} "
          f"(simulated; this takes a few minutes)...\n")

    rows = figure3_bloom_scaling(harness, nodes=nodes)
    print(format_series(rows, x="nodes", y="throughput_millions_per_sec",
                        group="platform",
                        title="Bloom-filter stage throughput (M k-mers/s)  [Figure 3]"))
    print()

    rows = figure13_pipeline_performance(harness, nodes=nodes)
    print(format_series(rows, x="nodes", y="alignments_per_sec_millions",
                        group="platform",
                        title="End-to-end throughput (M alignments/s)  [Figure 13]"))
    print()

    rows = figure12_exchange_efficiency(harness, nodes=nodes)
    print(format_series(rows, x="nodes", y="overall_efficiency", group="platform",
                        title="Overall efficiency vs 1 node  [Figure 12, solid]"))
    print(format_series(rows, x="nodes", y="exchange_efficiency", group="platform",
                        title="Exchange efficiency vs 1 node  [Figure 12, dashed]"))
    print()

    rows = figure9_breakdown_30x(harness, nodes=nodes)
    print(format_table(rows,
                       columns=["nodes", "stage", "compute_pct", "exchange_pct"],
                       title="Runtime breakdown on Cori (percent of total)  [Figure 9]"))


if __name__ == "__main__":
    main()
