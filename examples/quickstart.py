#!/usr/bin/env python3
"""Quickstart: overlap and align a small synthetic long-read data set.

This is the smallest end-to-end use of the public API:

1. simulate a tiny PacBio-like data set (a few hundred kbp of reads),
2. run the diBELLA pipeline on a simulated 2-rank "cluster",
3. print the run summary and check the detected overlaps against the
   simulator's ground truth.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import PipelineConfig, run_dibella
from repro.data import generate_dataset, tiny_dataset
from repro.seq.kmer import KmerSpec
from repro.stats import overlap_recall_precision


def main() -> None:
    # 1. A small synthetic workload: an 8 kbp genome at 15x coverage with a
    #    10% PacBio-like error rate.  Every simulated read remembers where it
    #    came from, which is what makes the recall check below possible.
    dataset = generate_dataset(tiny_dataset())
    reads = dataset.reads
    print(f"simulated {len(reads)} reads, {reads.total_bases} bases "
          f"(mean length {reads.mean_read_length:.0f})")

    # 2. Run the pipeline.  17-mers and one alignment seed per overlapping
    #    pair are the paper's defaults for long-read data.
    config = PipelineConfig(
        kmer=KmerSpec(k=17),
        coverage_hint=dataset.spec.reads.coverage,
        error_rate_hint=dataset.spec.reads.error_rate,
    )
    result = run_dibella(reads, config=config, n_nodes=1, ranks_per_node=2)

    print("\npipeline summary:")
    for key, value in result.summary().items():
        print(f"  {key}: {value}")

    # 3. Compare the detected overlap pairs against the ground truth.
    truth = dataset.true_overlaps(min_overlap=500)
    quality = overlap_recall_precision(result.overlap_pairs(), truth)
    print(f"\noverlap detection vs ground truth (>= 500 bp overlaps):")
    print(f"  true pairs:     {quality.n_true}")
    print(f"  detected pairs: {quality.n_detected}")
    print(f"  recall:         {quality.recall:.3f}")

    # A couple of example alignments.
    table = result.alignment_table()
    print("\nfirst five alignments (rid_a, rid_b, score, span_a):")
    for i in range(min(5, table["rid_a"].size)):
        print(f"  {table['rid_a'][i]:>5} {table['rid_b'][i]:>5} "
              f"{table['score'][i]:>6} {table['span_a'][i]:>6}")


if __name__ == "__main__":
    main()
