#!/usr/bin/env python3
"""E. coli-like overlap study: data characteristics, filtering, and quality.

Reproduces, on a scaled-down synthetic E. coli 30x-like workload, the data
analysis the paper builds its design on:

* the k-mer frequency spectrum and the dominance of erroneous singletons
  (§6: "up to 98% of k-mers from long reads are singletons"),
* the BELLA reliable-k-mer parameter choices (optimal k, the high-frequency
  cutoff m),
* the effect of the k-mer filters on hash-table size (ι, the retained
  fraction of §8),
* overlap-detection recall against ground truth for the three seed settings
  used in the evaluation (§5).

Run with::

    python examples/ecoli_overlap_study.py [genome_scale]

where ``genome_scale`` (default 0.002) scales the 4.6 Mbp E. coli genome.
"""

from __future__ import annotations

import sys

from repro.core import PipelineConfig, run_dibella
from repro.data import ecoli30x_like, generate_dataset
from repro.kmers.reliable import (
    expected_singleton_fraction,
    high_frequency_threshold,
    optimal_k,
)
from repro.overlap.seeds import SeedStrategy
from repro.stats import kmer_spectrum, overlap_recall_precision


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.002
    spec = ecoli30x_like(scale=scale)
    dataset = generate_dataset(spec)
    reads = dataset.reads
    coverage = spec.reads.coverage
    error_rate = spec.reads.error_rate

    print(f"workload: {spec.name}")
    print(f"  genome: {spec.genome.length} bp, coverage {coverage}x, "
          f"error rate {error_rate:.0%}")
    print(f"  reads:  {len(reads)} (mean length {reads.mean_read_length:.0f} bp, "
          f"{reads.total_bases} bases total)")

    # --- BELLA's data-driven parameter choices --------------------------------
    k = optimal_k(error_rate, min_overlap=1000)
    m = high_frequency_threshold(coverage, error_rate, k)
    print("\nreliable-k-mer model:")
    print(f"  chosen k:                  {k}")
    print(f"  high-frequency cutoff m:   {m}")
    print(f"  expected singleton frac:   "
          f"{expected_singleton_fraction(coverage, error_rate, k):.3f}")

    # --- Observed k-mer spectrum ------------------------------------------------
    spectrum = kmer_spectrum(reads, k=k)
    print("\nobserved k-mer spectrum:")
    print(f"  total k-mer instances:     {spectrum['total_kmers']}")
    print(f"  distinct k-mers:           {spectrum['distinct_kmers']}")
    print(f"  observed singleton frac:   {spectrum['singleton_fraction']:.3f}")

    # --- Run the pipeline under the three seed settings of the paper -----------
    truth = dataset.true_overlaps(min_overlap=500)
    print(f"\nground-truth overlapping pairs (>=500 bp): {len(truth)}")
    for label, strategy in (
        ("one-seed", SeedStrategy.one_seed()),
        ("d=1000", SeedStrategy.separated_by(1000)),
        ("d=k", SeedStrategy.separated_by(k)),
    ):
        config = PipelineConfig(
            coverage_hint=coverage,
            error_rate_hint=error_rate,
            seed_strategy=strategy,
        )
        result = run_dibella(reads, config=config, n_nodes=1, ranks_per_node=4)
        quality = overlap_recall_precision(result.overlap_pairs(), truth)
        retained = result.n_retained_kmers
        iota = retained / max(1, result.counters["input_kmers"])
        print(f"\n  [{label}]")
        print(f"    retained k-mers:   {retained} "
              f"(iota_input = {iota:.4f})")
        print(f"    overlap pairs:     {result.n_overlap_pairs}")
        print(f"    alignments:        {result.n_alignments}")
        print(f"    recall:            {quality.recall:.3f}")
        print(f"    wall seconds:      {result.wall_seconds:.1f}")


if __name__ == "__main__":
    main()
