"""Figure 10: runtime breakdown by stage on Cori, E. coli 100x, seeds >= 1 kbp apart."""

from conftest import REDUCED_NODES, record_rows

from repro.bench.experiments import figure10_breakdown_100x
from repro.bench.reporting import format_table


def test_fig10_breakdown_100x(benchmark, harness):
    rows = benchmark.pedantic(figure10_breakdown_100x, args=(harness, REDUCED_NODES),
                              rounds=1, iterations=1)
    record_rows("fig10_breakdown_100x", format_table(
        rows, columns=["nodes", "stage", "compute_pct", "exchange_pct"],
        title="Figure 10: runtime breakdown on Cori, E. coli 100x all seeds d>=1000 (percent)"))
    # Expected shape: at this higher computational intensity the alignment
    # stage dominates the runtime at every node count (the paper's Figure 10).
    for n in {r["nodes"] for r in rows}:
        align = next(r for r in rows if r["nodes"] == n and r["stage"] == "alignment")
        others = [r for r in rows if r["nodes"] == n and r["stage"] != "alignment"]
        assert align["compute_pct"] + align["exchange_pct"] > max(
            o["compute_pct"] + o["exchange_pct"] for o in others)
