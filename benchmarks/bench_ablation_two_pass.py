"""Ablation: the two-pass (Bloom filter + hash table) memory design.

diBELLA makes two passes over the reads so that singleton k-mers never enter
the hash table.  This ablation quantifies the saving on the benchmark
workload: the memory the hash table would need if every k-mer instance were
stored directly (one pass) versus what the two-pass design stores.
"""

from conftest import record_rows

from repro.bench.reporting import format_table


def test_ablation_two_pass(benchmark, harness):
    def run():
        result = harness.run("ecoli30x", "one-seed", n_nodes=1)
        counters = result.counters
        bytes_per_occurrence = 16  # packed (code, rid/strand/position) wire words
        one_pass_bytes = counters["kmers_parsed"] * bytes_per_occurrence
        two_pass_bytes = (counters["occurrences_stored"] * bytes_per_occurrence
                          + counters["bloom_nbytes"])
        return [{
            "design": "one-pass (store every k-mer instance)",
            "stored_occurrences": counters["kmers_parsed"],
            "approx_bytes": one_pass_bytes,
        }, {
            "design": "two-pass (Bloom filter + non-singletons only)",
            "stored_occurrences": counters["occurrences_stored"],
            "approx_bytes": two_pass_bytes,
        }]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows("ablation_two_pass", format_table(
        rows, title="Ablation: one-pass vs two-pass k-mer storage (E. coli 30x)"))
    one_pass, two_pass = rows
    # The Bloom-filter pre-pass must cut stored occurrences substantially:
    # long-read k-mer sets are singleton-dominated.
    assert two_pass["stored_occurrences"] < 0.7 * one_pass["stored_occurrences"]
    assert two_pass["approx_bytes"] < one_pass["approx_bytes"]
