"""Figure 13: end-to-end pipeline performance (M alignments/s) across platforms."""

from conftest import SCALING_NODES, record_rows

from repro.bench.experiments import figure13_pipeline_performance
from repro.bench.reporting import format_series


def test_fig13_pipeline_performance(benchmark, harness):
    rows = benchmark.pedantic(figure13_pipeline_performance, args=(harness, SCALING_NODES),
                              rounds=1, iterations=1)
    record_rows("fig13_pipeline_performance", format_series(
        rows, x="nodes", y="alignments_per_sec_millions", group="platform",
        title="Figure 13: diBELLA end-to-end throughput (M alignments/s)"))
    largest = max(r["nodes"] for r in rows)
    last = {r["platform"]: r["alignments_per_sec_millions"]
            for r in rows if r["nodes"] == largest}
    # Expected shape: every platform gains from multi-node parallelism and the
    # HPC systems beat the commodity cloud, with Cori fastest overall.
    first = {r["platform"]: r["alignments_per_sec_millions"]
             for r in rows if r["nodes"] == 1}
    for platform in last:
        assert last[platform] > first[platform]
    assert last["cori"] == max(last.values())
    assert last["aws"] == min(last.values())
