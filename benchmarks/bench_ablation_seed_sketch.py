"""Ablation: minimizer sketch window vs exchange volume, table size, recall.

The minimizer seed mode (``PipelineConfig.seed_mode = "minimizer"``) keeps
only the minimum-hash k-mer per window of w, so stages 1-3 exchange and
table an expected ``2/(w+1)`` of the k-mer stream.  This bench quantifies
the trade on one synthetic 30x data set: for the reliable baseline and each
w in the sweep it runs the full pipeline and reports

* **exchanged k-mer bytes** — the stage 1-3 wire volume
  (``bloom_payload_bytes + hashtable_payload_bytes + overlap_payload_bytes``),
* **retained-table peak bytes** — the largest grouped shard any rank held,
* **sketch density** (ppm of extracted k-mers surviving the sketch),
* **wall seconds**, and
* **overlap recall** — the fraction of the baseline's *true* overlap pairs
  (detected pairs that are genuine per the simulator's ground-truth layout)
  the sketched run still detects.

The CI gate (the acceptance bar of the minimizer mode): at w=11 the sketch
must cut the exchanged stage 1-3 k-mer bytes >= 3x and the retained-table
peak >= 2x while recovering >= 95% of the baseline's true overlaps.  Like
the backend-scaling gates it is enforced only on hosts with at least
``RANKS`` cores (the numbers are still reported elsewhere).

Runs under pytest (``python -m pytest benchmarks/bench_ablation_seed_sketch.py``)
or standalone (``python benchmarks/bench_ablation_seed_sketch.py``); rows
land in ``benchmarks/results/ablation_seed_sketch.txt``.  Environment knobs:
``REPRO_BENCH_SKETCH_GENOME`` (default 6000 bp),
``REPRO_BENCH_SKETCH_WINDOWS`` (comma list, default ``1,5,11,19``).
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import PipelineConfig
from repro.core.driver import run_dibella
from repro.data.datasets import DatasetSpec, generate_dataset, true_overlaps
from repro.data.genome import GenomeSpec
from repro.data.reads import ReadSimSpec
from repro.seq.kmer import KmerSpec

GENOME_LENGTH = int(os.environ.get("REPRO_BENCH_SKETCH_GENOME", "6000"))
WINDOWS = tuple(
    int(w) for w in os.environ.get("REPRO_BENCH_SKETCH_WINDOWS",
                                   "1,5,11,19").split(","))
RANKS = 4
GATE_WINDOW = 11
GATE_VOLUME_RATIO = 3.0
GATE_TABLE_RATIO = 2.0
GATE_RECALL = 0.95
MIN_OVERLAP = 500


def _workload():
    spec = DatasetSpec(
        name="seed-sketch-ablation",
        genome=GenomeSpec(length=GENOME_LENGTH, repeat_fraction=0.02,
                          repeat_length=300, seed=977),
        reads=ReadSimSpec(coverage=30.0, mean_read_length=1000,
                          min_read_length=400, error_rate=0.05, seed=978),
    )
    return generate_dataset(spec)


def _config(seed_mode: str, window: int) -> PipelineConfig:
    config = PipelineConfig(coverage_hint=30.0, error_rate_hint=0.05,
                            kmer=KmerSpec(k=17))
    return config.with_seed_mode(seed_mode, window)


def _exchanged_kmer_bytes(counters: dict[str, int]) -> int:
    """The stage 1-3 wire volume the sketch attacks."""
    return (counters["bloom_payload_bytes"]
            + counters["hashtable_payload_bytes"]
            + counters["overlap_payload_bytes"])


def measure_seed_sketch() -> list[dict[str, float]]:
    dataset = _workload()
    truth = set(true_overlaps(list(dataset.reads), GENOME_LENGTH,
                              min_overlap=MIN_OVERLAP))

    rows: list[dict[str, float]] = []
    base_true: set | None = None
    baseline: dict[str, float] | None = None
    for mode, window in [("reliable", 1)] + [("minimizer", w) for w in WINDOWS]:
        start = time.perf_counter()
        result = run_dibella(dataset.reads, config=_config(mode, window),
                             n_nodes=1, ranks_per_node=RANKS)
        wall = time.perf_counter() - start
        counters = result.counters
        detected = result.overlap_pairs()
        if base_true is None:
            # Recall reference: the baseline's detected pairs that are
            # genuine overlaps per the simulator's ground-truth layout.
            base_true = detected & truth
        true_found = len(detected & base_true)
        row = {
            "mode": mode,
            "window": float(window),
            "density_ppm": float(counters["sketch_density_ppm"]),
            "exchanged_kmer_bytes": float(_exchanged_kmer_bytes(counters)),
            "retained_table_peak_bytes": float(
                counters["retained_table_peak_bytes"]),
            "overlap_pairs": float(len(detected)),
            "recall": true_found / len(base_true) if base_true else 1.0,
            "wall_seconds": wall,
        }
        if baseline is None:
            baseline = row
        row["volume_ratio"] = (baseline["exchanged_kmer_bytes"]
                               / max(1.0, row["exchanged_kmer_bytes"]))
        row["table_ratio"] = (baseline["retained_table_peak_bytes"]
                              / max(1.0, row["retained_table_peak_bytes"]))
        rows.append(row)
    return rows


def format_report(rows: list[dict[str, float]]) -> str:
    gate_active = (os.cpu_count() or 1) >= RANKS
    lines = [
        "seed-sketch ablation: minimizer window vs stage 1-3 volume, "
        f"table peak, recall ({GENOME_LENGTH} bp genome, 30x, error 0.05, "
        f"k=17, {RANKS} ranks)",
        f"  gate at w={GATE_WINDOW}: volume >= {GATE_VOLUME_RATIO:.0f}x, "
        f"table >= {GATE_TABLE_RATIO:.0f}x, recall >= {GATE_RECALL:.0%} "
        + ("(enforced)" if gate_active else
           f"(not enforced: fewer than {RANKS} cores)"),
        f"  {'mode':>9} {'w':>3} {'density':>8} {'kmer wire':>10} "
        f"{'volume':>7} {'table peak':>10} {'table':>6} {'pairs':>6} "
        f"{'recall':>7} {'wall':>7}",
    ]
    for row in rows:
        lines.append(
            f"  {row['mode']:>9} {row['window']:>3.0f} "
            f"{row['density_ppm'] / 1e4:>7.1f}% "
            f"{row['exchanged_kmer_bytes'] / 1e6:>8.2f}MB "
            f"{row['volume_ratio']:>6.2f}x "
            f"{row['retained_table_peak_bytes'] / 1e3:>8.1f}kB "
            f"{row['table_ratio']:>5.2f}x {row['overlap_pairs']:>6.0f} "
            f"{row['recall']:>6.1%} {row['wall_seconds']:>6.2f}s"
        )
    return "\n".join(lines)


def check_gates(rows: list[dict[str, float]]) -> None:
    """The w=11 volume/table/recall gate (enforced on >= RANKS-core hosts)."""
    assert rows and rows[0]["mode"] == "reliable"
    for row in rows:
        assert row["recall"] <= 1.0 + 1e-9
        assert row["exchanged_kmer_bytes"] > 0
    w1 = next((r for r in rows if r["mode"] == "minimizer" and r["window"] == 1),
              None)
    if w1 is not None:
        # w=1 selects everything: identical volume and overlap count to the
        # reliable baseline, on any host.
        assert w1["exchanged_kmer_bytes"] == rows[0]["exchanged_kmer_bytes"]
        assert w1["overlap_pairs"] == rows[0]["overlap_pairs"]
        assert w1["recall"] == 1.0
    if (os.cpu_count() or 1) < RANKS:
        return
    gate = next(r for r in rows
                if r["mode"] == "minimizer" and r["window"] == GATE_WINDOW)
    assert gate["volume_ratio"] >= GATE_VOLUME_RATIO, (
        f"w={GATE_WINDOW} cut the stage 1-3 k-mer bytes only "
        f"{gate['volume_ratio']:.2f}x (< {GATE_VOLUME_RATIO}x)")
    assert gate["table_ratio"] >= GATE_TABLE_RATIO, (
        f"w={GATE_WINDOW} shrank the retained-table peak only "
        f"{gate['table_ratio']:.2f}x (< {GATE_TABLE_RATIO}x)")
    assert gate["recall"] >= GATE_RECALL, (
        f"w={GATE_WINDOW} recovered only {gate['recall']:.1%} of the "
        f"baseline's true overlaps (< {GATE_RECALL:.0%})")


def test_seed_sketch_ablation():
    from conftest import record_rows

    rows = measure_seed_sketch()
    record_rows("ablation_seed_sketch", format_report(rows))
    check_gates(rows)


if __name__ == "__main__":
    measured = measure_seed_sketch()
    report = format_report(measured)
    print(report)
    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "ablation_seed_sketch.txt").write_text(report + "\n",
                                                          encoding="ascii")
    check_gates(measured)
    print("seed-sketch gates passed")
