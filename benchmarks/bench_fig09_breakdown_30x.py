"""Figure 9: runtime breakdown by stage on Cori, E. coli 30x one-seed."""

from conftest import SCALING_NODES, record_rows

from repro.bench.experiments import figure9_breakdown_30x
from repro.bench.reporting import format_table


def test_fig09_breakdown_30x(benchmark, harness):
    rows = benchmark.pedantic(figure9_breakdown_30x, args=(harness, SCALING_NODES),
                              rounds=1, iterations=1)
    record_rows("fig09_breakdown_30x", format_table(
        rows, columns=["nodes", "stage", "compute_pct", "exchange_pct"],
        title="Figure 9: runtime breakdown on Cori, E. coli 30x one-seed (percent)"))
    first = min(r["nodes"] for r in rows)
    last = max(r["nodes"] for r in rows)
    exchange_share = {n: sum(r["exchange_pct"] for r in rows if r["nodes"] == n)
                      for n in (first, last)}
    # Expected shape: the exchange share of the runtime grows with node count.
    assert exchange_share[last] > exchange_share[first]
