"""Ablation: Algorithm 1's odd/even owner heuristic vs alternatives.

Compares how evenly the alignment tasks land on ranks under the odd/even rule
(the paper's Algorithm 1), an always-min-RID rule, and a random-hash rule.
"""

from conftest import record_rows

from repro.bench.reporting import format_table
from repro.core.config import PipelineConfig
from repro.core.pipeline import DibellaPipeline
from repro.mpisim.topology import Topology


def _run(harness, heuristic):
    dataset = harness.dataset("ecoli30x")
    spec = dataset.spec
    config = PipelineConfig(coverage_hint=spec.reads.coverage,
                            error_rate_hint=spec.reads.error_rate,
                            owner_heuristic=heuristic)
    pipeline = DibellaPipeline(config=config, topology=Topology(n_nodes=8, ranks_per_node=1))
    result = pipeline.run(dataset.reads)
    tasks = [r.counters.get("alignments", 0) for r in result.rank_reports]
    mean = sum(tasks) / len(tasks)
    return {
        "heuristic": heuristic,
        "total_tasks": sum(tasks),
        "task_imbalance": max(tasks) / mean if mean else 1.0,
        "time_imbalance": result.load_imbalance("alignment"),
    }


def test_ablation_owner_heuristic(benchmark, harness):
    rows = benchmark.pedantic(
        lambda: [_run(harness, h) for h in ("oddeven", "min", "random")],
        rounds=1, iterations=1)
    record_rows("ablation_owner_heuristic", format_table(
        rows, title="Ablation: task-owner heuristic (8 nodes, E. coli 30x one-seed)"))
    by = {r["heuristic"]: r for r in rows}
    # Every heuristic routes every task exactly once, and the paper's odd/even
    # rule keeps the per-rank task counts close to balanced.
    assert len({r["total_tasks"] for r in rows}) == 1
    assert by["oddeven"]["task_imbalance"] < 1.5
