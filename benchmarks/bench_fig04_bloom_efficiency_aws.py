"""Figure 4: Bloom-filter stage efficiency breakdown on AWS."""

from conftest import SCALING_NODES, record_rows

from repro.bench.experiments import figure4_bloom_efficiency_aws
from repro.bench.reporting import format_table


def test_fig04_bloom_efficiency_aws(benchmark, harness):
    rows = benchmark.pedantic(figure4_bloom_efficiency_aws, args=(harness, SCALING_NODES),
                              rounds=1, iterations=1)
    record_rows("fig04_bloom_efficiency_aws", format_table(
        rows, columns=["nodes", "local_processing_efficiency", "packing_efficiency",
                       "exchange_efficiency", "overall_efficiency"],
        title="Figure 4: Bloom-filter efficiency on AWS (relative to 1 node)"))
    last = max(rows, key=lambda r: r["nodes"])
    # Expected shape: exchange efficiency collapses and drags the overall
    # efficiency below the local-processing efficiency (the paper's Figure 4).
    assert last["exchange_efficiency"] < 0.5
    assert last["exchange_efficiency"] < last["local_processing_efficiency"]
    assert last["overall_efficiency"] <= last["local_processing_efficiency"]
