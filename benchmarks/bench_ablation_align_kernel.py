"""Ablation: alignment kernel choice (x-drop vs banded vs full Smith-Waterman).

Runs the same alignment tasks through the three kernels and compares the DP
cells they evaluate (the cost side of the kernel choice discussed in the
paper's alignment stage).
"""

from conftest import record_rows

from repro.align.batch import AlignmentTask, BatchAligner
from repro.bench.reporting import format_table


def test_ablation_align_kernel(benchmark, harness):
    result = harness.run("ecoli30x", "one-seed", n_nodes=1)
    dataset = harness.dataset("ecoli30x")
    sequences = {rid: dataset.reads[rid].sequence for rid in range(len(dataset.reads))}
    # A sample of real alignment tasks from the pipeline run.
    records = []
    for report in result.rank_reports:
        records.extend(report.overlaps)
        if len(records) >= 150:
            break
    tasks = [AlignmentTask(rid_a=o.rid_a, rid_b=o.rid_b,
                           seed_pos_a=int(o.seed_pos_a[0]), seed_pos_b=int(o.seed_pos_b[0]),
                           same_strand=bool(o.seed_same_strand[0]))
             for o in records[:150]]

    def run():
        rows = []
        for kernel in ("xdrop", "banded", "full"):
            aligner = BatchAligner(sequences=sequences, kernel=kernel, k=17)
            aligner.align_all(tasks)
            rows.append({
                "kernel": kernel,
                "alignments": aligner.stats.alignments,
                "dp_cells": aligner.stats.cells,
                "mean_score": aligner.stats.total_score / max(1, aligner.stats.alignments),
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows("ablation_align_kernel", format_table(
        rows, title="Ablation: alignment kernel on 150 real tasks (E. coli 30x)"))
    by = {r["kernel"]: r for r in rows}
    # Expected shape: the seeded kernels evaluate far fewer cells than full
    # Smith-Waterman; x-drop is the cheapest.
    assert by["xdrop"]["dp_cells"] < by["banded"]["dp_cells"] < by["full"]["dp_cells"]
