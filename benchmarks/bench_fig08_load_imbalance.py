"""Figure 8: alignment-stage load imbalance across platforms and node counts."""

from conftest import SCALING_NODES, record_rows

from repro.bench.experiments import figure8_load_imbalance
from repro.bench.reporting import format_series


def test_fig08_load_imbalance(benchmark, harness):
    rows = benchmark.pedantic(figure8_load_imbalance, args=(harness, SCALING_NODES),
                              rounds=1, iterations=1)
    record_rows("fig08_load_imbalance", format_series(
        rows, x="nodes", y="load_imbalance", group="platform",
        title="Figure 8: alignment-stage load imbalance (1.0 = perfect)"))
    cori = sorted((r for r in rows if r["platform"] == "cori"), key=lambda r: r["nodes"])
    # Expected shape: imbalance is modest at small scale and grows with node
    # count, while task-count imbalance stays tiny (the paper's observation).
    assert all(1.0 <= r["load_imbalance"] < 2.5 for r in rows)
    assert cori[-1]["load_imbalance"] >= cori[0]["load_imbalance"]
    assert all(r["task_count_imbalance"] < 1.7 for r in rows)
