"""Microbenchmark: pair-generation throughput of the vectorised overlap stage.

Times :func:`repro.overlap.pairs.generate_pairs` (flat-array expansion) and
:meth:`repro.overlap.pairs.OverlapTable.from_pairs` (lexsort consolidation)
against the original per-k-mer loop implementation on a synthetic 30x
workload, and asserts the vectorised path is at least 5x faster — the
regression gate for the overlap stage's hot path.

Runs standalone (``python benchmarks/bench_overlap_microbench.py``) or under
pytest (``python -m pytest benchmarks/bench_overlap_microbench.py``); the CI
script runs the standalone form.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.data.datasets import DatasetSpec, generate_dataset
from repro.data.genome import GenomeSpec
from repro.data.reads import ReadSimSpec
from repro.kmers.hashtable import KmerHashTablePartition, RetainedKmers
from repro.kmers.reliable import high_frequency_threshold
from repro.overlap.pairs import OverlapTable, PairBatch, generate_pairs
from repro.seq.kmer import KmerSpec, extract_kmers_batch

#: Required speedup of the vectorised pair generation over the loop oracle.
MIN_SPEEDUP = 5.0


def synthetic_30x_retained(k: int = 17) -> RetainedKmers:
    """The retained k-mers of one partition of a synthetic 30x workload."""
    spec = DatasetSpec(
        name="microbench30x",
        genome=GenomeSpec(length=8000, repeat_fraction=0.02, repeat_length=300, seed=42),
        reads=ReadSimSpec(coverage=30.0, mean_read_length=1000, min_read_length=400,
                          error_rate=0.10, seed=43),
    )
    dataset = generate_dataset(spec)
    kspec = KmerSpec(k=k)
    codes, read_index, positions, strands = extract_kmers_batch(
        [read.sequence for read in dataset.reads], kspec, with_strand=True
    )
    part = KmerHashTablePartition()
    part.add_candidate_keys(codes)
    part.finalize_keys()
    part.add_occurrences(codes, read_index.astype(np.int64), positions, strands)
    return part.finalize(min_count=2,
                         max_count=high_frequency_threshold(30.0, 0.10, k))


def _reference_generate_pairs(retained: RetainedKmers) -> PairBatch:
    """The original per-k-mer loop (the seed implementation), kept as oracle."""
    if retained.n_kmers == 0:
        return PairBatch.empty()
    chunks: list[list[np.ndarray]] = [[], [], [], [], []]
    counts = retained.counts()
    for index in range(retained.n_kmers):
        c = int(counts[index])
        if c < 2:
            continue
        _, rids, positions, strands = retained.group(index)
        ii, jj = np.triu_indices(c, k=1)
        ra, rb = rids[ii], rids[jj]
        pa, pb = positions[ii], positions[jj]
        same = strands[ii] == strands[jj]
        distinct = ra != rb
        if not distinct.any():
            continue
        ra, rb, pa, pb, same = (ra[distinct], rb[distinct], pa[distinct],
                                pb[distinct], same[distinct])
        swap = ra > rb
        chunks[0].append(np.where(swap, rb, ra))
        chunks[1].append(np.where(swap, ra, rb))
        chunks[2].append(np.where(swap, pb, pa))
        chunks[3].append(np.where(swap, pa, pb))
        chunks[4].append(same)
    if not chunks[0]:
        return PairBatch.empty()
    return PairBatch(*[np.concatenate(c).astype(np.int64) for c in chunks])


def _best_of(fn, repeats: int = 3) -> tuple[float, object]:
    """Minimum wall time of *repeats* runs (and the last result)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def run_microbench() -> dict[str, float]:
    """Time vectorised vs reference pair generation; return the metrics."""
    retained = synthetic_30x_retained()
    t_vec, pairs = _best_of(lambda: generate_pairs(retained))
    t_ref, ref_pairs = _best_of(lambda: _reference_generate_pairs(retained))
    assert len(pairs) == len(ref_pairs), "vectorised and reference disagree on pair count"
    t_consolidate, table = _best_of(lambda: OverlapTable.from_pairs(pairs))
    return {
        "retained_kmers": float(retained.n_kmers),
        "retained_occurrences": float(retained.n_occurrences),
        "pairs": float(len(pairs)),
        "overlap_pairs": float(len(table)),
        "vectorized_seconds": t_vec,
        "reference_seconds": t_ref,
        "consolidate_seconds": t_consolidate,
        "speedup": t_ref / max(t_vec, 1e-12),
        "pairs_per_second": len(pairs) / max(t_vec, 1e-12),
        "retained_kmers_per_second": retained.n_kmers / max(t_vec, 1e-12),
    }


def format_report(metrics: dict[str, float]) -> str:
    lines = ["overlap microbenchmark (synthetic 30x, k=17)"]
    lines.append(f"  retained k-mers        : {metrics['retained_kmers']:.0f}")
    lines.append(f"  pairs generated        : {metrics['pairs']:.0f}")
    lines.append(f"  consolidated pairs     : {metrics['overlap_pairs']:.0f}")
    lines.append(f"  vectorized generate    : {metrics['vectorized_seconds'] * 1e3:.2f} ms")
    lines.append(f"  reference loop         : {metrics['reference_seconds'] * 1e3:.2f} ms")
    lines.append(f"  consolidation (lexsort): {metrics['consolidate_seconds'] * 1e3:.2f} ms")
    lines.append(f"  speedup                : {metrics['speedup']:.1f}x (gate: >= {MIN_SPEEDUP:.0f}x)")
    lines.append(f"  throughput             : {metrics['pairs_per_second'] / 1e6:.2f} M pairs/s, "
                 f"{metrics['retained_kmers_per_second'] / 1e6:.2f} M retained k-mers/s")
    return "\n".join(lines)


def test_overlap_microbench():
    """Pytest entry point: the vectorised path must beat the loop by >= 5x."""
    metrics = run_microbench()
    print("\n" + format_report(metrics))
    assert metrics["pairs"] > 0
    assert metrics["speedup"] >= MIN_SPEEDUP


if __name__ == "__main__":
    report_metrics = run_microbench()
    print(format_report(report_metrics))
    if report_metrics["speedup"] < MIN_SPEEDUP:
        sys.exit(f"FAIL: speedup {report_metrics['speedup']:.1f}x below {MIN_SPEEDUP:.0f}x gate")
    print("PASS")
