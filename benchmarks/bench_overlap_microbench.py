"""Microbenchmark: the three vectorised hot paths of the overlap stage.

Times, against per-k-mer / per-pair loop oracles on a synthetic 30x
workload:

* :func:`repro.overlap.pairs.generate_pairs` — flat-array pair expansion,
* :meth:`repro.overlap.pairs.OverlapTable.from_pairs` — lexsort
  consolidation into the struct-of-arrays overlap table,
* :func:`repro.overlap.seeds.select_seeds_batched` — cross-pair batched
  seed selection (the min-separation greedy scan),

and asserts each vectorised path beats its loop oracle by the corresponding
``MIN_*_SPEEDUP`` gate — the regression gates for the overlap stage's hot
paths, run by ``scripts/ci.sh``.

Runs standalone (``python benchmarks/bench_overlap_microbench.py``) or under
pytest (``python -m pytest benchmarks/bench_overlap_microbench.py``); the CI
script runs the standalone form.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.data.datasets import DatasetSpec, generate_dataset
from repro.data.genome import GenomeSpec
from repro.data.reads import ReadSimSpec
from repro.kmers.hashtable import KmerHashTablePartition, RetainedKmers
from repro.kmers.reliable import high_frequency_threshold
from repro.overlap.pairs import OverlapTable, PairBatch, generate_pairs
from repro.overlap.seeds import SeedStrategy, select_seeds, select_seeds_batched
from repro.seq.kmer import KmerSpec, extract_kmers_batch

#: Required speedup of the vectorised pair generation over the loop oracle.
MIN_SPEEDUP = 5.0
#: Required speedup of the lexsort consolidation over the dict-grouping oracle.
MIN_CONSOLIDATE_SPEEDUP = 5.0
#: Required speedup of batched seed selection over the per-pair scan oracle.
MIN_SEED_SPEEDUP = 5.0


def synthetic_30x_retained(k: int = 17) -> RetainedKmers:
    """The retained k-mers of one partition of a synthetic 30x workload."""
    spec = DatasetSpec(
        name="microbench30x",
        genome=GenomeSpec(length=8000, repeat_fraction=0.02, repeat_length=300, seed=42),
        reads=ReadSimSpec(coverage=30.0, mean_read_length=1000, min_read_length=400,
                          error_rate=0.10, seed=43),
    )
    dataset = generate_dataset(spec)
    kspec = KmerSpec(k=k)
    codes, read_index, positions, strands = extract_kmers_batch(
        [read.sequence for read in dataset.reads], kspec, with_strand=True
    )
    part = KmerHashTablePartition()
    part.add_candidate_keys(codes)
    part.finalize_keys()
    part.add_occurrences(codes, read_index.astype(np.int64), positions, strands)
    return part.finalize(min_count=2,
                         max_count=high_frequency_threshold(30.0, 0.10, k))


def _reference_generate_pairs(retained: RetainedKmers) -> PairBatch:
    """The original per-k-mer loop (the seed implementation), kept as oracle."""
    if retained.n_kmers == 0:
        return PairBatch.empty()
    chunks: list[list[np.ndarray]] = [[], [], [], [], []]
    counts = retained.counts()
    for index in range(retained.n_kmers):
        c = int(counts[index])
        if c < 2:
            continue
        _, rids, positions, strands = retained.group(index)
        ii, jj = np.triu_indices(c, k=1)
        ra, rb = rids[ii], rids[jj]
        pa, pb = positions[ii], positions[jj]
        same = strands[ii] == strands[jj]
        distinct = ra != rb
        if not distinct.any():
            continue
        ra, rb, pa, pb, same = (ra[distinct], rb[distinct], pa[distinct],
                                pb[distinct], same[distinct])
        swap = ra > rb
        chunks[0].append(np.where(swap, rb, ra))
        chunks[1].append(np.where(swap, ra, rb))
        chunks[2].append(np.where(swap, pb, pa))
        chunks[3].append(np.where(swap, pa, pb))
        chunks[4].append(same)
    if not chunks[0]:
        return PairBatch.empty()
    return PairBatch(*[np.concatenate(c).astype(np.int64) for c in chunks])


def _reference_consolidate(batch: PairBatch) -> int:
    """Per-pair dict grouping (the seed implementation), kept as oracle.

    Reproduces what :meth:`OverlapTable.from_pairs` computes — pairs sorted
    by (rid_a, rid_b), each with its deduplicated seeds sorted by position,
    materialised as per-pair arrays — the way the original loop consolidation
    built its ``OverlapRecord`` objects.  Returns the number of distinct
    pairs for the cross-check.
    """
    groups: dict[tuple[int, int], set[tuple[int, int, int]]] = {}
    for ra, rb, pa, pb, ss in zip(batch.rid_a.tolist(), batch.rid_b.tolist(),
                                  batch.pos_a.tolist(), batch.pos_b.tolist(),
                                  batch.same_strand.tolist()):
        groups.setdefault((ra, rb), set()).add((pa, pb, ss))
    records = []
    for (ra, rb), seeds in sorted(groups.items()):
        ordered = sorted(seeds)
        records.append((
            ra, rb,
            np.array([s[0] for s in ordered], dtype=np.int64),
            np.array([s[1] for s in ordered], dtype=np.int64),
            np.array([bool(s[2]) for s in ordered], dtype=bool),
        ))
    return len(records)


def _reference_select_seeds(table: OverlapTable, strategy: SeedStrategy) -> np.ndarray:
    """Per-pair seed selection loop (scalar :func:`select_seeds` per pair)."""
    selected: list[np.ndarray] = []
    offsets = table.seed_offsets
    for index in range(len(table)):
        lo, hi = int(offsets[index]), int(offsets[index + 1])
        chosen = select_seeds(table.seed_pos_a[lo:hi], table.seed_pos_b[lo:hi],
                              strategy)
        selected.append(chosen + lo)
    if not selected:
        return np.empty(0, dtype=np.int64)
    return np.sort(np.concatenate(selected))


def _best_of(fn, repeats: int = 3) -> tuple[float, object]:
    """Minimum wall time of *repeats* runs (and the last result)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def run_microbench() -> dict[str, float]:
    """Time the vectorised overlap hot paths vs their loop oracles."""
    retained = synthetic_30x_retained()
    t_vec, pairs = _best_of(lambda: generate_pairs(retained))
    t_ref, ref_pairs = _best_of(lambda: _reference_generate_pairs(retained))
    assert len(pairs) == len(ref_pairs), "vectorised and reference disagree on pair count"

    t_consolidate, table = _best_of(lambda: OverlapTable.from_pairs(pairs))
    t_consolidate_ref, ref_n_pairs = _best_of(lambda: _reference_consolidate(pairs))
    assert len(table) == ref_n_pairs, "consolidation oracles disagree on pair count"

    strategy = SeedStrategy.separated_by(1000)
    t_seeds, selected = _best_of(lambda: select_seeds_batched(table, strategy))
    t_seeds_ref, ref_selected = _best_of(lambda: _reference_select_seeds(table, strategy))
    np.testing.assert_array_equal(selected, ref_selected)

    return {
        "retained_kmers": float(retained.n_kmers),
        "retained_occurrences": float(retained.n_occurrences),
        "pairs": float(len(pairs)),
        "overlap_pairs": float(len(table)),
        "selected_seeds": float(selected.size),
        "vectorized_seconds": t_vec,
        "reference_seconds": t_ref,
        "consolidate_seconds": t_consolidate,
        "consolidate_reference_seconds": t_consolidate_ref,
        "seed_select_seconds": t_seeds,
        "seed_select_reference_seconds": t_seeds_ref,
        "speedup": t_ref / max(t_vec, 1e-12),
        "consolidate_speedup": t_consolidate_ref / max(t_consolidate, 1e-12),
        "seed_select_speedup": t_seeds_ref / max(t_seeds, 1e-12),
        "pairs_per_second": len(pairs) / max(t_vec, 1e-12),
        "retained_kmers_per_second": retained.n_kmers / max(t_vec, 1e-12),
    }


#: (metric key, gate constant, label) for every perf gate this bench enforces.
GATES: tuple[tuple[str, float, str], ...] = (
    ("speedup", MIN_SPEEDUP, "pair generation"),
    ("consolidate_speedup", MIN_CONSOLIDATE_SPEEDUP, "consolidation"),
    ("seed_select_speedup", MIN_SEED_SPEEDUP, "seed selection"),
)


def format_report(metrics: dict[str, float]) -> str:
    lines = ["overlap microbenchmark (synthetic 30x, k=17)"]
    lines.append(f"  retained k-mers        : {metrics['retained_kmers']:.0f}")
    lines.append(f"  pairs generated        : {metrics['pairs']:.0f}")
    lines.append(f"  consolidated pairs     : {metrics['overlap_pairs']:.0f}")
    lines.append(f"  selected seeds (d=1000): {metrics['selected_seeds']:.0f}")
    lines.append(f"  vectorized generate    : {metrics['vectorized_seconds'] * 1e3:.2f} ms")
    lines.append(f"  reference loop         : {metrics['reference_seconds'] * 1e3:.2f} ms")
    lines.append(f"  consolidation (lexsort): {metrics['consolidate_seconds'] * 1e3:.2f} ms "
                 f"(loop oracle {metrics['consolidate_reference_seconds'] * 1e3:.2f} ms)")
    lines.append(f"  seed selection (batch) : {metrics['seed_select_seconds'] * 1e3:.2f} ms "
                 f"(loop oracle {metrics['seed_select_reference_seconds'] * 1e3:.2f} ms)")
    for key, gate, label in GATES:
        lines.append(f"  {label:<22} : {metrics[key]:.1f}x (gate: >= {gate:.0f}x)")
    lines.append(f"  throughput             : {metrics['pairs_per_second'] / 1e6:.2f} M pairs/s, "
                 f"{metrics['retained_kmers_per_second'] / 1e6:.2f} M retained k-mers/s")
    return "\n".join(lines)


def test_overlap_microbench():
    """Pytest entry point: every vectorised path must beat its loop oracle."""
    metrics = run_microbench()
    print("\n" + format_report(metrics))
    assert metrics["pairs"] > 0
    for key, gate, label in GATES:
        assert metrics[key] >= gate, f"{label} speedup {metrics[key]:.1f}x below {gate:.0f}x"


if __name__ == "__main__":
    report_metrics = run_microbench()
    print(format_report(report_metrics))
    failed = [
        f"{label} speedup {report_metrics[key]:.1f}x below {gate:.0f}x gate"
        for key, gate, label in GATES
        if report_metrics[key] < gate
    ]
    if failed:
        sys.exit("FAIL: " + "; ".join(failed))
    print("PASS")
