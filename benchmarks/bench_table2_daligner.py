"""Table 2: single-node runtime comparison against the DALIGNER-like baseline."""

from conftest import record_rows

from repro.bench.experiments import table2_single_node
from repro.bench.reporting import format_table


def test_table2_single_node(benchmark, harness):
    rows = benchmark.pedantic(table2_single_node, args=(harness,), kwargs={"ranks": 4},
                              rounds=1, iterations=1)
    record_rows("table2_daligner", format_table(
        rows, columns=["workload", "reads", "dibella_seconds", "daligner_like_seconds",
                       "ratio", "dibella_pairs", "daligner_like_pairs"],
        title="Table 2: single-node runtime (s), diBELLA vs DALIGNER-like baseline"))
    # Expected shape: both runtimes grow with the input, and diBELLA stays
    # within a small factor of the baseline (the paper reports 1.2-1.7x).
    by_workload = {r["workload"]: r for r in rows}
    assert by_workload["ecoli30x"]["dibella_seconds"] > by_workload["ecoli30x_sample"]["dibella_seconds"]
    for row in rows:
        assert row["ratio"] < 6.0
