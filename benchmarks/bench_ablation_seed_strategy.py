"""Ablation: seed-selection strategy (one-seed vs d=1000 vs d=k).

Quantifies the alignment-work versus overlap-coverage trade-off of the
"exploration" parameters described in the paper's overlap stage on the
benchmark 30x workload.
"""

from conftest import record_rows

from repro.bench.reporting import format_table


def test_ablation_seed_strategy(benchmark, harness):
    def run():
        rows = []
        for strategy in ("one-seed", "d=1000", "d=k"):
            result = harness.run("ecoli30x", strategy, n_nodes=1)
            rows.append({
                "strategy": strategy,
                "overlap_pairs": result.n_overlap_pairs,
                "alignments": result.n_alignments,
                "dp_cells": result.counters["dp_cells"],
                "alignments_per_pair": result.n_alignments / max(1, result.n_overlap_pairs),
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows("ablation_seed_strategy", format_table(
        rows, title="Ablation: seed-selection strategy (E. coli 30x, 1 node)"))
    by = {r["strategy"]: r for r in rows}
    # The pair set is strategy-independent; the alignment work is not.
    assert by["one-seed"]["overlap_pairs"] == by["d=k"]["overlap_pairs"]
    assert by["one-seed"]["alignments"] <= by["d=1000"]["alignments"] <= by["d=k"]["alignments"]
    assert by["d=k"]["dp_cells"] > by["one-seed"]["dp_cells"]
