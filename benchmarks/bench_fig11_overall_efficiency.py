"""Figure 11: overall efficiency on Cori across workloads and seed settings."""

from conftest import REDUCED_NODES, record_rows

from repro.bench.experiments import figure11_overall_efficiency
from repro.bench.reporting import format_table


def test_fig11_overall_efficiency(benchmark, harness):
    rows = benchmark.pedantic(figure11_overall_efficiency, args=(harness, REDUCED_NODES),
                              rounds=1, iterations=1)
    record_rows("fig11_overall_efficiency", format_table(
        rows, columns=["workload", "strategy", "nodes", "overall_efficiency"],
        title="Figure 11: overall efficiency on Cori (2 data sets x 3 seed settings)"))
    largest = max(r["nodes"] for r in rows)
    eff = {(r["workload"], r["strategy"]): r["overall_efficiency"]
           for r in rows if r["nodes"] == largest}
    # Expected shape: higher computational intensity (100x, more seeds) holds
    # efficiency better than the minimal-intensity 30x one-seed workload.
    assert eff[("ecoli100x", "d=k")] > eff[("ecoli30x", "one-seed")]
