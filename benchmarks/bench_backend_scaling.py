"""Benchmark: thread vs process runtime backend at multi-rank scale.

The thread backend runs P ranks under one GIL, so rank *compute* largely
serialises; the process backend gives every rank its own interpreter and
exchanges typed buffers through shared memory, so P ranks really occupy P
cores.  Two measurements:

* **Overlap-stage gate** — an SPMD program running exactly the overlap
  stage's hot path (chunked pair generation → bucketing → ``alltoallv``
  supersteps → lexsort consolidation → batched seed selection) on per-rank
  synthetic retained-k-mer partitions.  On a host with at least ``RANKS``
  cores the process backend must beat threads by ``MIN_OVERLAP_SPEEDUP`` —
  the regression gate for "P ranks buy real parallelism".  On smaller hosts
  (e.g. single-core CI containers) no parallel speedup is physically
  possible, so the gate is reported but not enforced.

* **End-to-end pipeline** — the full four-stage pipeline on a small 30x
  workload under both backends, reported per stage, with the scientific
  output asserted identical (the runtime backend must never change the
  answer).

* **Double-buffer gate** — the pipeline with a small overlap-exchange chunk
  budget (many supersteps), double-buffered vs bulk-synchronous, under the
  process backend.  Double buffering publishes chunk i+1 while the peers
  still read chunk i, so the *exposed* overlap-exchange time (blocking
  collective calls on the slowest rank) must drop on hosts with enough
  cores; output is asserted bit-identical either way.

* **K-mer-stage gate** — the pipeline with small read batches (many
  stage-1/2 supersteps), double-buffered vs bulk-synchronous.  Under the
  unified superstep scheduler the k-mer stages hide batch i+1's
  extraction/bucketing behind batch i's exchange, so stages 1 and 2 must
  show nonzero overlapped time (always asserted) and their exposed exchange
  time must not exceed the bulk-synchronous baseline (enforced on hosts
  with enough cores); output is asserted bit-identical either way.

* **Wire-packing gate** — the pipeline with the alignment-stage read blocks
  shipped 2-bit packed vs ASCII.  Pure byte accounting (deterministic on any
  host, always enforced): the packed read payload must be ≤ 0.3x the raw
  bytes, with bit-identical scientific output.

* **Serve-latency gate** — warm query batches drained against a resident
  index (build/serve split, pooled process backend) vs a cold one-shot
  pipeline over the same union read set.  Every batch must reuse the
  resident index (zero rebuild counters, always asserted); on hosts with
  enough cores the batch p99 wall must be well under the cold run.

* **Hier-collective gate** — the pipeline under the flat single-level
  ``alltoallv`` engine vs the hierarchical two-level engine
  (``--collective hier``, two rank groups, process backend).  The traced
  message matrices must show the cross-group segment count dropping from one
  per rank pair to one per *leader* pair on every logical exchange call,
  with bit-identical scientific output and byte-identical cross-group wire
  volume — pure segment accounting, deterministic on any host, always
  enforced.  On hosts with enough cores the measured trace projected onto a
  Cori deployment (one node per rank group) must show the grouped segment
  schedule's exposed exchange time at or below the flat one.

* **Pool-amortisation gate** — two consecutive pooled pipeline runs: the
  first pays pool creation (fork + queue setup) and cold read caches, the
  second must be faster (and fetch zero remote reads — its rank processes
  kept their caches).  Output asserted identical across both runs and the
  unpooled baseline.

Runs standalone: ``python benchmarks/bench_backend_scaling.py``.
Environment knobs: ``REPRO_BENCH_RANKS`` (default 4),
``REPRO_BENCH_GENOME`` (default 12000 bp, pipeline part),
``REPRO_BENCH_OVERLAP_REPEATS`` (default 3, gate part),
``REPRO_BENCH_DB_REPEATS`` (default 3, double-buffer gate).
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.config import PipelineConfig
from repro.core.driver import run_dibella
from repro.data.datasets import DatasetSpec, generate_dataset
from repro.data.genome import GenomeSpec
from repro.data.reads import ReadSimSpec
from repro.kmers.hashtable import KmerHashTablePartition
from repro.kmers.reliable import high_frequency_threshold
from repro.mpisim.collectives import bucket_by_destination
from repro.mpisim.runtime import spmd_run
from repro.overlap.pairs import (
    OverlapTable,
    PairBatch,
    choose_owner,
    generate_pairs,
    pair_chunk_ranges,
)
from repro.overlap.seeds import SeedStrategy, select_seeds_batched
from repro.seq.kmer import KmerSpec, extract_kmers_batch

#: Ranks per run (and the core count needed before the gate is enforced).
RANKS = int(os.environ.get("REPRO_BENCH_RANKS", "4"))
#: Required overlap-stage speedup of the process backend over threads.
MIN_OVERLAP_SPEEDUP = 1.5
#: Wire budget per overlap-exchange superstep in the gate program.
CHUNK_BYTES = 8 << 20


# ---------------------------------------------------------------------------
# Part 1: the overlap-stage gate
# ---------------------------------------------------------------------------

def _rank_partition(rank: int, k: int = 17):
    """A synthetic 30x retained-k-mer partition, distinct per rank."""
    spec = DatasetSpec(
        name=f"backend-overlap-{rank}",
        genome=GenomeSpec(length=10000, repeat_fraction=0.02, repeat_length=300,
                          seed=500 + rank),
        reads=ReadSimSpec(coverage=30.0, mean_read_length=1000,
                          min_read_length=400, error_rate=0.10, seed=600 + rank),
    )
    dataset = generate_dataset(spec)
    codes, read_index, positions, strands = extract_kmers_batch(
        [read.sequence for read in dataset.reads], KmerSpec(k=k), with_strand=True
    )
    part = KmerHashTablePartition()
    part.add_candidate_keys(codes)
    part.finalize_keys()
    part.add_occurrences(codes, read_index.astype(np.int64), positions, strands)
    retained = part.finalize(min_count=2,
                             max_count=high_frequency_threshold(30.0, 0.10, k))
    n_reads = len(dataset.reads)
    return retained, n_reads


def _overlap_stage_program(comm, partitions, n_reads_max, repeats):
    """The overlap stage's exact hot path, measured per rank."""
    retained = partitions[comm.rank]
    read_owner = np.arange(n_reads_max, dtype=np.int64) % comm.size
    # d=k ("all seeds"): the maximum-computation seed-selection setting.
    strategy = SeedStrategy.separated_by(17)
    start = time.perf_counter()
    for _ in range(repeats):
        chunks = pair_chunk_ranges(retained, CHUNK_BYTES)
        n_supersteps = int(comm.allreduce(len(chunks), op="max"))
        received_batches: list[PairBatch] = []
        for step in range(n_supersteps):
            if step < len(chunks):
                pairs = generate_pairs(retained, kmer_range=chunks[step])
            else:
                pairs = PairBatch.empty()
            if len(pairs):
                destinations = choose_owner(pairs.rid_a, pairs.rid_b, read_owner,
                                            swapped=pairs.swapped)
                send = bucket_by_destination(pairs.to_matrix(), destinations,
                                             comm.size)
            else:
                send = [np.empty((0, 5), dtype=np.int64) for _ in range(comm.size)]
            received = comm.alltoallv(send)
            received_batches.extend(
                PairBatch.from_matrix(np.asarray(c)) for c in received
            )
        table = OverlapTable.from_pairs(PairBatch.concatenate(received_batches))
        select_seeds_batched(table, strategy)
    return time.perf_counter() - start


def run_overlap_gate() -> dict[str, float]:
    repeats = int(os.environ.get("REPRO_BENCH_OVERLAP_REPEATS", "3"))
    built = [_rank_partition(rank) for rank in range(RANKS)]
    partitions = [retained for retained, _ in built]
    n_reads_max = max(n for _, n in built)
    metrics: dict[str, float] = {
        "overlap_retained_kmers": float(sum(p.n_kmers for p in partitions)),
        "overlap_repeats": float(repeats),
    }
    for backend in ("thread", "process"):
        wall = time.perf_counter()
        rank_seconds = spmd_run(RANKS, _overlap_stage_program, partitions,
                                n_reads_max, repeats, backend=backend)
        metrics[f"{backend}_overlap_gate_wall"] = time.perf_counter() - wall
        metrics[f"{backend}_overlap_gate_max_rank"] = max(rank_seconds)
    metrics["overlap_speedup"] = (
        metrics["thread_overlap_gate_wall"]
        / max(metrics["process_overlap_gate_wall"], 1e-12)
    )
    return metrics


# ---------------------------------------------------------------------------
# Part 2: the end-to-end pipeline comparison
# ---------------------------------------------------------------------------

def _pipeline_workload():
    genome_length = int(os.environ.get("REPRO_BENCH_GENOME", "12000"))
    spec = DatasetSpec(
        name="backend-scaling",
        genome=GenomeSpec(length=genome_length, repeat_fraction=0.02,
                          repeat_length=300, seed=99),
        reads=ReadSimSpec(coverage=30.0, mean_read_length=1000,
                          min_read_length=400, error_rate=0.10, seed=100),
    )
    return generate_dataset(spec).reads


def _stage_walls(result) -> dict[str, float]:
    """Per-stage wall span: max over ranks of compute + exchange seconds."""
    walls = {}
    for record in result.stages:
        walls[record.name] = float(
            (record.wall_compute_seconds + record.wall_exchange_seconds).max(initial=0.0)
        )
    return walls


def run_pipeline_comparison() -> dict[str, float]:
    reads = _pipeline_workload()
    config = PipelineConfig(coverage_hint=30.0, error_rate_hint=0.10,
                            kmer=KmerSpec(k=17))
    metrics: dict[str, float] = {
        "reads": float(len(reads)),
        "bases": float(reads.total_bases),
    }
    results = {}
    for backend in ("thread", "process"):
        result = run_dibella(reads, config=config.with_backend(backend),
                             n_nodes=1, ranks_per_node=RANKS)
        results[backend] = result
        metrics[f"{backend}_wall_seconds"] = result.wall_seconds
        for stage, wall in _stage_walls(result).items():
            metrics[f"{backend}_{stage}_seconds"] = wall
    thread, process = results["thread"], results["process"]
    assert thread.overlap_pairs() == process.overlap_pairs(), \
        "backends disagree on the scientific output"
    metrics["overlap_pairs"] = float(thread.n_overlap_pairs)
    metrics["pipeline_speedup"] = (
        metrics["thread_wall_seconds"] / max(metrics["process_wall_seconds"], 1e-12)
    )
    return metrics


# ---------------------------------------------------------------------------
# Part 3: the double-buffer gate (exposed overlap-exchange time)
# ---------------------------------------------------------------------------

def _alignment_tables_equal(a, b) -> bool:
    ta, tb = a.alignment_table(), b.alignment_table()
    return all(np.array_equal(ta[col], tb[col]) for col in ta)


def run_double_buffer_gate() -> dict[str, float]:
    """Exposed overlap-exchange time: double-buffered vs bulk-synchronous."""
    repeats = int(os.environ.get("REPRO_BENCH_DB_REPEATS", "3"))
    reads = _pipeline_workload()
    # A small chunk budget forces many supersteps per rank, which is where
    # double buffering earns its keep (one chunk per rank has nothing to
    # overlap).
    base = PipelineConfig(coverage_hint=30.0, error_rate_hint=0.10,
                          kmer=KmerSpec(k=17), backend="process",
                          exchange_chunk_mb=0.125)
    metrics: dict[str, float] = {}
    results = {}
    for label, double_buffer in (("sync", False), ("db", True)):
        config = base.with_double_buffer(double_buffer)
        exposed, walls = [], []
        for _ in range(repeats):
            result = run_dibella(reads, config=config, n_nodes=1,
                                 ranks_per_node=RANKS)
            results[label] = result
            exposed.append(float(result.stage("overlap")
                                 .wall_exchange_seconds.max(initial=0.0)))
            walls.append(result.wall_seconds)
        metrics[f"{label}_overlap_exposed_seconds"] = min(exposed)
        metrics[f"{label}_pipeline_wall_seconds"] = min(walls)
    assert _alignment_tables_equal(results["sync"], results["db"]), \
        "double buffering changed the scientific output"
    assert results["db"].counters["overlap_chunks_overlapped"] > 0, \
        "double-buffer gate workload produced a single chunk - nothing overlapped"
    metrics["overlap_exchange_chunks"] = float(
        results["db"].counters["overlap_exchange_chunks"])
    metrics["db_exposed_ratio"] = (
        metrics["db_overlap_exposed_seconds"]
        / max(metrics["sync_overlap_exposed_seconds"], 1e-12)
    )
    return metrics


# ---------------------------------------------------------------------------
# Part 3b: the k-mer-stage gate (exposed bloom/hash-table exchange time)
# ---------------------------------------------------------------------------

def run_kmer_stage_gate() -> dict[str, float]:
    """Exposed k-mer-stage exchange time: double-buffered vs bulk-synchronous.

    Small read batches force many stage-1/2 supersteps; with double
    buffering the next batch's extraction/bucketing runs while the peers
    still read the previous batch's k-mers, so the *exposed* (blocking)
    exchange time of the two k-mer stages must not exceed the
    bulk-synchronous baseline.  Nonzero overlapped time for stages 1 and 2
    is asserted unconditionally — the unified scheduler must actually
    overlap — while the exposed-time gate is enforced only on hosts with
    enough cores (timing on an oversubscribed host says nothing).
    """
    repeats = int(os.environ.get("REPRO_BENCH_DB_REPEATS", "3"))
    reads = _pipeline_workload()
    base = PipelineConfig(coverage_hint=30.0, error_rate_hint=0.10,
                          kmer=KmerSpec(k=17), backend="process",
                          batch_reads=64)
    metrics: dict[str, float] = {}
    results = {}
    for label, double_buffer in (("ksync", False), ("kdb", True)):
        config = base.with_double_buffer(double_buffer)
        exposed = []
        for _ in range(repeats):
            result = run_dibella(reads, config=config, n_nodes=1,
                                 ranks_per_node=RANKS)
            results[label] = result
            exposed.append(sum(
                float(result.stage(stage).wall_exchange_seconds.max(initial=0.0))
                for stage in ("bloom", "hashtable")))
        metrics[f"{label}_kmer_exposed_seconds"] = min(exposed)
    assert _alignment_tables_equal(results["ksync"], results["kdb"]), \
        "k-mer stage double buffering changed the scientific output"
    for stage in ("bloom", "hashtable"):
        assert results["kdb"].counters[f"{stage}_steps_overlapped"] > 0, \
            f"{stage} stage overlapped no supersteps under double buffering"
        assert results["kdb"].stage(stage).wall_overlapped_seconds.sum() > 0.0, \
            f"{stage} stage recorded no overlapped exchange time"
        assert results["ksync"].stage(stage).wall_overlapped_seconds.sum() == 0.0, \
            f"bulk-synchronous {stage} stage recorded overlapped time"
    metrics["kmer_steps_overlapped"] = float(
        results["kdb"].counters["bloom_steps_overlapped"]
        + results["kdb"].counters["hashtable_steps_overlapped"])
    metrics["kmer_exposed_ratio"] = (
        metrics["kdb_kmer_exposed_seconds"]
        / max(metrics["ksync_kmer_exposed_seconds"], 1e-12)
    )
    return metrics


# ---------------------------------------------------------------------------
# Part 4: the wire-packing gate (alignment-exchange read-payload bytes)
# ---------------------------------------------------------------------------

#: Required ratio of packed to raw alignment-stage read-payload bytes.  The
#: 2-bit codec stores 4 bases/byte with per-read byte-boundary padding, so
#: realistic read lengths land at ~0.25x; 0.3x leaves headroom for the
#: padding while still catching any regression to a byte-per-base format.
MAX_PACKED_PAYLOAD_RATIO = 0.3


def run_wire_packing_gate() -> dict[str, float]:
    """Packed vs ASCII read exchange: identical science, >= ~3.3x fewer bytes.

    Unlike the timing gates this one is pure byte accounting — deterministic
    on any host — so it is always enforced.
    """
    reads = _pipeline_workload()
    base = PipelineConfig(coverage_hint=30.0, error_rate_hint=0.10,
                          kmer=KmerSpec(k=17))
    packed = run_dibella(reads, config=base.with_wire_packing(True),
                         n_nodes=1, ranks_per_node=RANKS)
    ascii_ = run_dibella(reads, config=base.with_wire_packing(False),
                         n_nodes=1, ranks_per_node=RANKS)
    assert _alignment_tables_equal(packed, ascii_), \
        "wire packing changed the scientific output"
    raw_bytes = packed.counters["read_payload_raw_bytes"]
    assert raw_bytes == ascii_.counters["read_payload_raw_bytes"], \
        "packed and ASCII runs served different read payloads"
    assert raw_bytes > 0, "wire-packing gate workload exchanged no reads"
    return {
        "packing_raw_payload_bytes": float(raw_bytes),
        "packing_packed_payload_bytes": float(
            packed.counters["read_payload_wire_bytes"]),
        "packing_payload_ratio": (
            packed.counters["read_payload_wire_bytes"] / raw_bytes),
        "packing_exchange_bytes": float(
            packed.trace.phase_traffic("alignment_exchange").total_bytes),
        "ascii_exchange_bytes": float(
            ascii_.trace.phase_traffic("alignment_exchange").total_bytes),
    }


# ---------------------------------------------------------------------------
# Part 5: the pool-amortisation gate
# ---------------------------------------------------------------------------

def run_pool_gate() -> dict[str, float]:
    """Two consecutive pooled runs: the second must beat the first cold one.

    Uses a deliberately small workload (``REPRO_BENCH_POOL_GENOME``, default
    5000 bp): pool amortisation targets exactly the regime where per-run
    fixed costs — forking ranks, importing, re-fetching and re-encoding
    reads — are a visible fraction of the run.
    """
    from repro.core.stages import reset_persistent_read_caches
    from repro.mpisim.backend import shutdown_rank_pools

    genome_length = int(os.environ.get("REPRO_BENCH_POOL_GENOME", "5000"))
    spec = DatasetSpec(
        name="pool-amortisation",
        genome=GenomeSpec(length=genome_length, repeat_fraction=0.02,
                          repeat_length=300, seed=199),
        reads=ReadSimSpec(coverage=30.0, mean_read_length=1000,
                          min_read_length=400, error_rate=0.10, seed=200),
    )
    reads = generate_dataset(spec).reads
    config = PipelineConfig(coverage_hint=30.0, error_rate_hint=0.10,
                            kmer=KmerSpec(k=17), backend="process", pool=True)
    shutdown_rank_pools()
    reset_persistent_read_caches()
    try:
        start = time.perf_counter()
        cold = run_dibella(reads, config=config, n_nodes=1, ranks_per_node=RANKS)
        cold_wall = time.perf_counter() - start
        start = time.perf_counter()
        warm = run_dibella(reads, config=config, n_nodes=1, ranks_per_node=RANKS)
        warm_wall = time.perf_counter() - start
    finally:
        shutdown_rank_pools()
        reset_persistent_read_caches()
    assert _alignment_tables_equal(cold, warm), \
        "pooled rank reuse changed the scientific output"
    assert warm.counters["read_cache_fetch_hits"] > 0, \
        "second pooled run fetched no reads from the persistent cache"
    assert warm.counters["remote_reads_fetched"] == 0, \
        "second pooled run still fetched remote reads"
    return {
        "pool_cold_seconds": cold_wall,
        "pool_warm_seconds": warm_wall,
        "pool_amortization": cold_wall / max(warm_wall, 1e-12),
        "pool_warm_fetch_hits": float(warm.counters["read_cache_fetch_hits"]),
    }


# ---------------------------------------------------------------------------
# Part 6: the serve-latency gate
# ---------------------------------------------------------------------------

#: Required ratio of warm query-batch p99 latency to the cold one-shot wall.
#: A served batch routes only the query reads' k-mers against the resident
#: index (no bloom pass, no table rebuild, warm read caches), so it must be
#: well under a cold full-pipeline run over the same union read set.
MAX_SERVE_P99_RATIO = 0.5


def run_serve_gate() -> dict[str, float]:
    """Warm query batches against a resident index vs a cold one-shot run.

    Builds the index once on a pooled process-backend service, drains three
    query batches, and compares the batch p99 wall to a cold one-shot
    pipeline over (index + query).  Every batch must reuse the resident
    index (zero rebuild counters) — asserted unconditionally; the latency
    gate is enforced only on hosts with enough cores.
    """
    from repro.core import AlignmentService
    from repro.core.stages import reset_persistent_read_caches, reset_resident_indexes
    from repro.mpisim.backend import shutdown_rank_pools
    from repro.seq.records import ReadSet

    genome_length = int(os.environ.get("REPRO_BENCH_POOL_GENOME", "5000"))
    spec = DatasetSpec(
        name="serve-latency",
        genome=GenomeSpec(length=genome_length, repeat_fraction=0.02,
                          repeat_length=300, seed=299),
        reads=ReadSimSpec(coverage=30.0, mean_read_length=1000,
                          min_read_length=400, error_rate=0.10, seed=300),
    )
    reads = list(generate_dataset(spec).reads)
    n_index = (3 * len(reads)) // 4
    index_reads, queries = ReadSet(reads[:n_index]), reads[n_index:]
    config = PipelineConfig(coverage_hint=30.0, error_rate_hint=0.10,
                            kmer=KmerSpec(k=17), backend="process", pool=True)
    shutdown_rank_pools()
    reset_persistent_read_caches()
    reset_resident_indexes()
    try:
        start = time.perf_counter()
        run_dibella(ReadSet(reads), config=config.with_pool(False),
                    n_nodes=1, ranks_per_node=RANKS)
        cold_wall = time.perf_counter() - start

        n_batches = 3
        per_batch = max(1, (len(queries) + n_batches - 1) // n_batches)
        service = AlignmentService(
            index_reads, config=config.with_serve_batch_reads(per_batch))
        service.build()
        for lo in range(0, len(queries), per_batch):
            service.submit(queries[lo:lo + per_batch])
        records = service.drain()
        assert len(records) >= 2, "serve gate produced fewer than 2 query batches"
        for record in records:
            counters = record.result.counters
            assert counters["index_reuse_hits"] == RANKS, \
                "a serve-gate query batch missed the resident index"
            assert counters.get("index_build_runs", 0) == 0, \
                "a serve-gate query batch rebuilt the index"
        stats = service.latency_stats()
    finally:
        shutdown_rank_pools()
        reset_persistent_read_caches()
        reset_resident_indexes()
    return {
        "serve_cold_oneshot_seconds": cold_wall,
        "serve_batches": stats["batches"],
        "serve_batch_p50_seconds": stats["p50_seconds"],
        "serve_batch_p99_seconds": stats["p99_seconds"],
        "serve_reads_per_second": stats["reads_per_second"],
        "serve_p99_ratio": stats["p99_seconds"] / max(cold_wall, 1e-12),
    }


# ---------------------------------------------------------------------------
# Part 7: the hier-collective gate (two-level alltoallv)
# ---------------------------------------------------------------------------

#: Rank groups for the hierarchical gate: two groups of RANKS/2 ranks, each
#: mapped onto one node of the projection deployment.
HIER_GROUPS = 2


def run_hier_gate() -> dict[str, float]:
    """Flat vs hierarchical collectives: fewer cross-group segments, same answer.

    Runs the pipeline workload under the process backend with the flat
    single-level ``alltoallv`` engine and again with ``--collective hier``
    (``HIER_GROUPS`` rank groups).  Three checks:

    * **Bit identity** (always enforced): the hierarchical run must produce
      the flat run's alignment table and science counters exactly.
    * **Segment accounting** (always enforced — deterministic counting, like
      the wire-packing gate): per logical exchange call the flat engine
      posts one segment per rank pair — ``R(R-1)`` off-diagonal, all
      group-crossing pairs among them — while the hierarchical engine posts
      ``R-G`` gather + ``G(G-1)`` leader-to-leader + ``R-G`` scatter
      segments, only the ``G(G-1)`` leader hops crossing a group boundary.
      The difference of the traced message matrices must show exactly that
      drop (broadcast/reduction rounds record identically on both sides and
      cancel; the within-group off-diagonal segment count must not change).
    * **Exposed exchange time** (enforced on hosts with >= ``RANKS`` cores):
      the measured trace is projected onto a Cori deployment where each rank
      group occupies one node — the placement ``--rank-groups`` models —
      under the flat and under the grouped per-call segment schedule, at
      identical wire volumes (asserted byte-identical across group
      boundaries above); the grouped projection must not exceed the flat
      one.  The hier run's own trace, which additionally records the
      gather/scatter staging copies as intra-node volume (an upper bound —
      real leader aggregation is a node-local memcpy, not a network send),
      is projected and reported alongside, as are the in-simulator walls;
      neither carries a gate (three collectives per logical exchange cost
      interpreter time in a simulator — see docs/topology.md).
    """
    from repro.core.counters import SCHEDULE_FLAG_COUNTERS
    from repro.mpisim.topology import Topology
    from repro.netmodel.costmodel import CostModel
    from repro.netmodel.platform import get_platform
    from repro.netmodel.projection import project_pipeline

    reads = _pipeline_workload()
    base = PipelineConfig(coverage_hint=30.0, error_rate_hint=0.10,
                          kmer=KmerSpec(k=17), backend="process")
    start = time.perf_counter()
    flat = run_dibella(reads, config=base, n_nodes=1, ranks_per_node=RANKS)
    flat_wall = time.perf_counter() - start
    start = time.perf_counter()
    hier = run_dibella(
        reads,
        config=base.with_collective("hier").with_rank_groups(HIER_GROUPS),
        n_nodes=1, ranks_per_node=RANKS,
    )
    hier_wall = time.perf_counter() - start

    assert _alignment_tables_equal(flat, hier), \
        "hierarchical collectives changed the scientific output"
    flat_science = {k: v for k, v in flat.counters.items()
                    if k not in SCHEDULE_FLAG_COUNTERS}
    hier_science = {k: v for k, v in hier.counters.items()
                    if k not in SCHEDULE_FLAG_COUNTERS}
    assert flat_science == hier_science, \
        "hierarchical collectives changed the science counters"
    n_groups = int(hier.topology.n_groups)
    assert n_groups == HIER_GROUPS
    assert hier.counters["collective_groups"] == HIER_GROUPS, \
        "hier run did not record its group count"

    # Segment accounting: the message-matrix difference isolates the
    # alltoallv segments (identical broadcast/reduction rounds cancel).
    groups = np.asarray(hier.topology.groups)
    cross = groups[:, None] != groups[None, :]
    offdiag = ~np.eye(RANKS, dtype=bool)
    cross_pairs = int(cross.sum())
    hier_cross_per_call = n_groups * (n_groups - 1)
    flat_offdiag_per_call = RANKS * (RANKS - 1)
    hier_offdiag_per_call = 2 * (RANKS - n_groups) + hier_cross_per_call
    assert set(flat.trace.phases()) == set(hier.trace.phases())
    calls_total = 0
    cross_flat_total = cross_hier_total = 0
    for phase in flat.trace.phases():
        tf = flat.trace.phase_traffic(phase)
        th = hier.trace.phase_traffic(phase)
        assert tf.collective_calls == th.collective_calls, \
            f"{phase}: flat and hier disagree on the logical exchange count"
        calls = int(tf.collective_calls)
        calls_total += calls
        cross_delta = int(tf.messages[cross].sum() - th.messages[cross].sum())
        offdiag_delta = int(tf.messages[offdiag].sum() - th.messages[offdiag].sum())
        assert cross_delta == calls * (cross_pairs - hier_cross_per_call), (
            f"{phase}: cross-group segments did not drop "
            f"{cross_pairs} -> {hier_cross_per_call} per call "
            f"(delta {cross_delta}, {calls} calls)")
        assert offdiag_delta == calls * (flat_offdiag_per_call
                                         - hier_offdiag_per_call), (
            f"{phase}: off-diagonal segment delta {offdiag_delta} does not "
            f"match the leader protocol over {calls} calls")
        cross_flat_total += int(tf.messages[cross].sum())
        cross_hier_total += int(th.messages[cross].sum())
        # The leader hop concatenates, it does not inflate: the bytes that
        # cross a group boundary are bit-for-bit the flat run's.
        assert int(tf.volume[cross].sum()) == int(th.volume[cross].sum()), \
            f"{phase}: hier moved different byte volume across group boundaries"
    assert calls_total > 0, "hier gate workload performed no exchanges"
    assert cross_hier_total < cross_flat_total

    # Projected exposed exchange time on a deployment shaped like the group
    # map: one node per group (Cori, Table 1 calibration).
    spec = get_platform("cori")
    model = CostModel()
    if RANKS % HIER_GROUPS == 0:
        deploy = Topology(n_nodes=HIER_GROUPS, ranks_per_node=RANKS // HIER_GROUPS)
    else:
        deploy = Topology(n_nodes=1, ranks_per_node=RANKS)
    proj_flat = project_pipeline(flat.stages, flat.trace, spec, deploy,
                                 model=model, platform_key="cori")
    # The gated comparison holds the wire volumes fixed (they are asserted
    # byte-identical across group boundaries above) and charges the grouped
    # topology's per-call segment schedule — the fig12 what-if.
    proj_hier = project_pipeline(flat.stages, flat.trace, spec,
                                 deploy.with_groups(n_groups),
                                 model=model, platform_key="cori")
    # Reported only: the hier run's own trace also records the gather/scatter
    # staging copies as intra-node volume, an upper bound on staging cost
    # (real leader aggregation is a node-local memcpy, not a network send).
    proj_staged = project_pipeline(hier.stages, hier.trace, spec,
                                   deploy.with_groups(n_groups),
                                   model=model, platform_key="cori")
    return {
        "hier_groups": float(n_groups),
        "hier_exchange_calls": float(calls_total),
        "hier_cross_segments_flat": float(cross_flat_total),
        "hier_cross_segments": float(cross_hier_total),
        "hier_intragroup_bytes": float(hier.counters["intragroup_bytes"]),
        "hier_intergroup_bytes": float(hier.counters["intergroup_bytes"]),
        "flat_projected_exchange_seconds": proj_flat.total_exchange_seconds,
        "hier_projected_exchange_seconds": proj_hier.total_exchange_seconds,
        "hier_projected_exchange_ratio": (
            proj_hier.total_exchange_seconds
            / max(proj_flat.total_exchange_seconds, 1e-12)),
        "hier_staged_projected_exchange_seconds": proj_staged.total_exchange_seconds,
        "flat_collective_wall_seconds": flat_wall,
        "hier_collective_wall_seconds": hier_wall,
    }


def run_bench() -> dict[str, float]:
    metrics = {
        "ranks": float(RANKS),
        "cores": float(os.cpu_count() or 1),
    }
    metrics.update(run_overlap_gate())
    metrics.update(run_pipeline_comparison())
    metrics.update(run_double_buffer_gate())
    metrics.update(run_kmer_stage_gate())
    metrics.update(run_wire_packing_gate())
    metrics.update(run_hier_gate())
    metrics.update(run_pool_gate())
    metrics.update(run_serve_gate())
    return metrics


def format_report(metrics: dict[str, float]) -> str:
    gate_active = metrics["cores"] >= metrics["ranks"]
    lines = [
        f"backend scaling bench ({metrics['ranks']:.0f} ranks, "
        f"{metrics['cores']:.0f} cores)",
        f"overlap-stage gate ({metrics['overlap_retained_kmers']:.0f} retained "
        f"k-mers, x{metrics['overlap_repeats']:.0f} repeats):",
        f"  thread  : {metrics['thread_overlap_gate_wall']:.3f}s wall "
        f"(slowest rank {metrics['thread_overlap_gate_max_rank']:.3f}s)",
        f"  process : {metrics['process_overlap_gate_wall']:.3f}s wall "
        f"(slowest rank {metrics['process_overlap_gate_max_rank']:.3f}s)",
        f"  speedup : {metrics['overlap_speedup']:.2f}x — gate >= "
        f"{MIN_OVERLAP_SPEEDUP:.1f}x "
        + ("(enforced)" if gate_active else
           f"(not enforced: only {metrics['cores']:.0f} cores for "
           f"{metrics['ranks']:.0f} ranks — no parallel speedup possible)"),
        f"end-to-end pipeline ({metrics['reads']:.0f} reads, "
        f"{metrics['bases'] / 1e6:.2f} Mbp, {metrics['overlap_pairs']:.0f} "
        f"overlap pairs):",
        f"  {'stage':<12} {'thread':>10} {'process':>10} {'speedup':>9}",
    ]
    for stage in ("bloom", "hashtable", "overlap", "alignment"):
        t = metrics[f"thread_{stage}_seconds"]
        p = metrics[f"process_{stage}_seconds"]
        lines.append(f"  {stage:<12} {t:>9.3f}s {p:>9.3f}s {t / max(p, 1e-12):>8.2f}x")
    lines.append(
        f"  {'pipeline':<12} {metrics['thread_wall_seconds']:>9.3f}s "
        f"{metrics['process_wall_seconds']:>9.3f}s {metrics['pipeline_speedup']:>8.2f}x"
    )
    lines.extend([
        f"double-buffer gate ({metrics['overlap_exchange_chunks']:.0f} overlap "
        f"chunks, process backend):",
        f"  exposed overlap exchange: sync "
        f"{metrics['sync_overlap_exposed_seconds'] * 1e3:.2f}ms, double-buffered "
        f"{metrics['db_overlap_exposed_seconds'] * 1e3:.2f}ms "
        f"(ratio {metrics['db_exposed_ratio']:.2f}, gate < 1.0 "
        + ("enforced)" if gate_active else "not enforced on this host)"),
        f"k-mer-stage gate ({metrics['kmer_steps_overlapped']:.0f} overlapped "
        f"stage-1/2 supersteps, process backend):",
        f"  exposed bloom+hashtable exchange: sync "
        f"{metrics['ksync_kmer_exposed_seconds'] * 1e3:.2f}ms, double-buffered "
        f"{metrics['kdb_kmer_exposed_seconds'] * 1e3:.2f}ms "
        f"(ratio {metrics['kmer_exposed_ratio']:.2f}, gate <= 1.0 "
        + ("enforced)" if gate_active else "not enforced on this host)"),
        "wire-packing gate (alignment-stage read payload):",
        f"  raw {metrics['packing_raw_payload_bytes'] / 1e3:.1f} kB -> packed "
        f"{metrics['packing_packed_payload_bytes'] / 1e3:.1f} kB "
        f"(ratio {metrics['packing_payload_ratio']:.3f}, gate <= "
        f"{MAX_PACKED_PAYLOAD_RATIO:.2f} always enforced); "
        f"alignment-exchange trace {metrics['ascii_exchange_bytes'] / 1e3:.1f} kB -> "
        f"{metrics['packing_exchange_bytes'] / 1e3:.1f} kB",
        f"hier-collective gate ({metrics['hier_groups']:.0f} rank groups, "
        f"{metrics['hier_exchange_calls']:.0f} logical exchange calls, "
        f"process backend):",
        f"  cross-group segments {metrics['hier_cross_segments_flat']:.0f} -> "
        f"{metrics['hier_cross_segments']:.0f} (per-call drop asserted exactly, "
        f"always enforced); intra/inter-group bytes "
        f"{metrics['hier_intragroup_bytes'] / 1e3:.1f}/"
        f"{metrics['hier_intergroup_bytes'] / 1e3:.1f} kB",
        f"  projected exchange on cori, one node per group: flat "
        f"{metrics['flat_projected_exchange_seconds'] * 1e3:.2f}ms, hier "
        f"{metrics['hier_projected_exchange_seconds'] * 1e3:.2f}ms "
        f"(ratio {metrics['hier_projected_exchange_ratio']:.2f}, gate <= 1.0 "
        + ("enforced)" if gate_active else "not enforced on this host)"),
        f"  reported only: hier trace incl. staging copies "
        f"{metrics['hier_staged_projected_exchange_seconds'] * 1e3:.2f}ms; "
        f"in-simulator walls flat {metrics['flat_collective_wall_seconds']:.3f}s / "
        f"hier {metrics['hier_collective_wall_seconds']:.3f}s "
        f"(see docs/topology.md)",
        f"pool-amortisation gate (process backend, {metrics['ranks']:.0f} ranks):",
        f"  cold {metrics['pool_cold_seconds']:.3f}s -> warm "
        f"{metrics['pool_warm_seconds']:.3f}s "
        f"({metrics['pool_amortization']:.2f}x, {metrics['pool_warm_fetch_hits']:.0f} "
        f"cross-run read-cache fetch hits; gate > 1.0 "
        + ("enforced)" if gate_active else "not enforced on this host)"),
        f"serve-latency gate ({metrics['serve_batches']:.0f} query batches "
        f"against the resident index, process backend + pool):",
        f"  cold one-shot {metrics['serve_cold_oneshot_seconds']:.3f}s; warm "
        f"batch p50 {metrics['serve_batch_p50_seconds'] * 1e3:.1f}ms, p99 "
        f"{metrics['serve_batch_p99_seconds'] * 1e3:.1f}ms "
        f"({metrics['serve_reads_per_second']:.0f} reads/s; p99 ratio "
        f"{metrics['serve_p99_ratio']:.3f}, gate <= {MAX_SERVE_P99_RATIO:.2f} "
        + ("enforced)" if gate_active else "not enforced on this host)"),
    ])
    return "\n".join(lines)


if __name__ == "__main__":
    bench_metrics = run_bench()
    bench_report = format_report(bench_metrics)
    print(bench_report)
    results_dir = Path(__file__).resolve().parent / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "backend_scaling.txt").write_text(bench_report + "\n",
                                                    encoding="utf-8")
    gate_enforced = bench_metrics["cores"] >= bench_metrics["ranks"]
    if gate_enforced and bench_metrics["overlap_speedup"] < MIN_OVERLAP_SPEEDUP:
        sys.exit(
            f"FAIL: overlap-stage speedup {bench_metrics['overlap_speedup']:.2f}x "
            f"below the {MIN_OVERLAP_SPEEDUP:.1f}x gate on a "
            f"{bench_metrics['cores']:.0f}-core host"
        )
    if gate_enforced and bench_metrics["db_exposed_ratio"] >= 1.0:
        sys.exit(
            f"FAIL: double buffering did not lower the exposed overlap-exchange "
            f"time (ratio {bench_metrics['db_exposed_ratio']:.2f} >= 1.0) on a "
            f"{bench_metrics['cores']:.0f}-core host"
        )
    if gate_enforced and bench_metrics["kmer_exposed_ratio"] > 1.0:
        sys.exit(
            f"FAIL: double buffering raised the exposed k-mer-stage exchange "
            f"time (ratio {bench_metrics['kmer_exposed_ratio']:.2f} > 1.0) on a "
            f"{bench_metrics['cores']:.0f}-core host"
        )
    if bench_metrics["packing_payload_ratio"] > MAX_PACKED_PAYLOAD_RATIO:
        sys.exit(
            f"FAIL: packed alignment read payload is "
            f"{bench_metrics['packing_payload_ratio']:.3f}x the raw bytes "
            f"(gate <= {MAX_PACKED_PAYLOAD_RATIO:.2f})"
        )
    if gate_enforced and bench_metrics["hier_projected_exchange_ratio"] > 1.0:
        sys.exit(
            f"FAIL: hierarchical collectives raised the projected exposed "
            f"exchange time (ratio "
            f"{bench_metrics['hier_projected_exchange_ratio']:.2f} > 1.0) on a "
            f"{bench_metrics['cores']:.0f}-core host"
        )
    if gate_enforced and bench_metrics["pool_amortization"] <= 1.0:
        sys.exit(
            f"FAIL: second pooled run ({bench_metrics['pool_warm_seconds']:.3f}s) "
            f"was not faster than the cold run "
            f"({bench_metrics['pool_cold_seconds']:.3f}s)"
        )
    if gate_enforced and bench_metrics["serve_p99_ratio"] > MAX_SERVE_P99_RATIO:
        sys.exit(
            f"FAIL: warm query-batch p99 "
            f"({bench_metrics['serve_batch_p99_seconds']:.3f}s) is "
            f"{bench_metrics['serve_p99_ratio']:.3f}x the cold one-shot wall "
            f"(gate <= {MAX_SERVE_P99_RATIO:.2f})"
        )
    print("PASS")
