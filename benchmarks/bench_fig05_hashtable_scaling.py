"""Figure 5: hashtable stage strong scaling (M k-mers/s) across platforms."""

from conftest import SCALING_NODES, record_rows

from repro.bench.experiments import figure5_hashtable_scaling
from repro.bench.reporting import format_series


def test_fig05_hashtable_scaling(benchmark, harness):
    rows = benchmark.pedantic(figure5_hashtable_scaling, args=(harness, SCALING_NODES),
                              rounds=1, iterations=1)
    record_rows("fig05_hashtable_scaling", format_series(
        rows, x="nodes", y="throughput_millions_per_sec", group="platform",
        title="Figure 5: hashtable stage throughput (M k-mers/s)"))
    cori = sorted((r for r in rows if r["platform"] == "cori"), key=lambda r: r["nodes"])
    titan = sorted((r for r in rows if r["platform"] == "titan"), key=lambda r: r["nodes"])
    # Expected shape: throughput grows with node count and Cori leads Titan.
    assert cori[-1]["throughput_millions_per_sec"] > cori[0]["throughput_millions_per_sec"]
    assert cori[0]["throughput_millions_per_sec"] > titan[0]["throughput_millions_per_sec"]
