"""Table 1: the evaluated platforms and their balance points."""

from conftest import record_rows

from repro.bench.experiments import table1_platforms
from repro.bench.reporting import format_table


def test_table1_platforms(benchmark):
    rows = benchmark.pedantic(table1_platforms, rounds=1, iterations=1)
    record_rows("table1_platforms",
                format_table(rows, title="Table 1: evaluated platforms"))
    assert [r["platform"] for r in rows] == ["cori", "edison", "titan", "aws"]
