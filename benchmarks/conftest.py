"""Shared benchmark fixtures.

Every benchmark module draws its pipeline runs from the process-wide
:func:`repro.bench.harness.default_harness`, so runs are executed once and
reused across all the figures that view them (exactly how the paper's figures
are different views of the same executions).

Each benchmark prints the regenerated figure/table rows, and also appends
them to ``benchmarks/results/`` so the numbers recorded in EXPERIMENTS.md can
be regenerated.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench.harness import default_harness

RESULTS_DIR = Path(__file__).parent / "results"

#: Node counts used by the scaling benchmarks.  The full paper series is
#: 1-32; set REPRO_BENCH_FULL=0 to drop to a reduced set for quick runs.
FULL_SERIES = os.environ.get("REPRO_BENCH_FULL", "1") != "0"
SCALING_NODES = (1, 2, 4, 8, 16, 32) if FULL_SERIES else (1, 4, 16)
REDUCED_NODES = (1, 8, 32) if FULL_SERIES else (1, 8)


@pytest.fixture(scope="session")
def harness():
    """The shared experiment harness (cached pipeline runs)."""
    return default_harness()


def record_rows(name: str, text: str) -> None:
    """Print and persist one experiment's formatted output."""
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="ascii")
