"""Shared benchmark fixtures.

Every benchmark module draws its pipeline runs from the process-wide
:func:`repro.bench.harness.default_harness`, so runs are executed once and
reused across all the figures that view them (exactly how the paper's figures
are different views of the same executions).

Each benchmark prints the regenerated figure/table rows, and also appends
them to ``benchmarks/results/`` so the numbers recorded in EXPERIMENTS.md can
be regenerated.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench.harness import default_harness

RESULTS_DIR = Path(__file__).parent / "results"

#: Node counts used by the scaling benchmarks.  The full paper series is
#: 1-32; set REPRO_BENCH_FULL=0 to drop to a reduced set for quick runs.
FULL_SERIES = os.environ.get("REPRO_BENCH_FULL", "1") != "0"
SCALING_NODES = (1, 2, 4, 8, 16, 32) if FULL_SERIES else (1, 4, 16)
REDUCED_NODES = (1, 8, 32) if FULL_SERIES else (1, 8)


@pytest.fixture(scope="session")
def harness():
    """The shared experiment harness (cached pipeline runs)."""
    return default_harness()


def record_rows(name: str, text: str) -> None:
    """Print and persist one experiment's formatted output."""
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="ascii")


def pytest_sessionfinish(session, exitstatus) -> None:
    """Record how much worker startup the rank pool amortised this session.

    The figure sweeps share one harness; process-backend runs go through the
    persistent rank pool, so per-node-count runs reuse parked worker sets
    instead of re-forking.  The report is written before the pools shut down
    (their run counters are the amortisation evidence).
    """
    from repro.bench.harness import default_harness_pool_report

    report = default_harness_pool_report()
    if report is None:
        return
    lines = ["rank-pool amortisation (bench sweep)"]
    lines.extend(f"  {key}: {value:.3f}" if key == "total_run_seconds"
                 else f"  {key}: {value:.0f}"
                 for key, value in report.items())
    record_rows("pool_amortisation", "\n".join(lines))
