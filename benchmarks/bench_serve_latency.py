"""Serve-phase latency: query-batch p50/p99 and throughput vs rank count.

The build/serve split exists so one resident index can answer many query
batches without rebuilding; this bench measures what that buys.  For each
rank count it builds an :class:`~repro.core.service.AlignmentService` over
75% of a synthetic 30x data set (pooled process backend), drains the
remaining reads as several query batches, and records:

* per-batch wall latency p50 / p99 (the numbers a long-lived alignment
  service would put an SLO on),
* served reads per second,
* the cold one-shot pipeline wall over the same union read set, as the
  "rebuild every time" reference point.

Every drained batch is asserted to have reused the resident index (zero
rebuild counters) — on any host; the timing itself is reporting only, the
enforced latency gate lives in ``bench_backend_scaling.py``.

Runs under pytest (``python -m pytest benchmarks/bench_serve_latency.py``)
or standalone (``python benchmarks/bench_serve_latency.py``); rows land in
``benchmarks/results/serve_latency.txt``.  Environment knobs:
``REPRO_BENCH_SERVE_RANKS`` (comma list, default ``2,4``),
``REPRO_BENCH_SERVE_GENOME`` (default 8000 bp),
``REPRO_BENCH_SERVE_BATCHES`` (default 4).  The seed mode column reflects
``DIBELLA_SEED_MODE`` / ``DIBELLA_MINIMIZER_WINDOW`` (the config defaults
read them), so ``DIBELLA_SEED_MODE=minimizer python benchmarks/
bench_serve_latency.py`` measures the sketched serve path.
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import AlignmentService, PipelineConfig
from repro.core.driver import run_dibella
from repro.core.stages import reset_persistent_read_caches, reset_resident_indexes
from repro.data.datasets import DatasetSpec, generate_dataset
from repro.data.genome import GenomeSpec
from repro.data.reads import ReadSimSpec
from repro.mpisim.backend import shutdown_rank_pools
from repro.mpisim.topology import Topology
from repro.seq.kmer import KmerSpec
from repro.seq.records import ReadSet

RANK_COUNTS = tuple(
    int(r) for r in os.environ.get("REPRO_BENCH_SERVE_RANKS", "2,4").split(","))
GENOME_LENGTH = int(os.environ.get("REPRO_BENCH_SERVE_GENOME", "8000"))
N_BATCHES = int(os.environ.get("REPRO_BENCH_SERVE_BATCHES", "4"))


def _workload():
    spec = DatasetSpec(
        name="serve-latency-bench",
        genome=GenomeSpec(length=GENOME_LENGTH, repeat_fraction=0.02,
                          repeat_length=300, seed=399),
        reads=ReadSimSpec(coverage=30.0, mean_read_length=1000,
                          min_read_length=400, error_rate=0.10, seed=400),
    )
    reads = list(generate_dataset(spec).reads)
    n_index = (3 * len(reads)) // 4
    return ReadSet(reads[:n_index]), reads[n_index:], ReadSet(reads)


def measure_serve_latency() -> list[dict[str, float]]:
    index_reads, queries, union = _workload()
    per_batch = max(1, (len(queries) + N_BATCHES - 1) // N_BATCHES)
    rows: list[dict[str, float]] = []
    for ranks in RANK_COUNTS:
        config = PipelineConfig(coverage_hint=30.0, error_rate_hint=0.10,
                                kmer=KmerSpec(k=17), backend="process",
                                pool=True, serve_batch_reads=per_batch)
        shutdown_rank_pools()
        reset_persistent_read_caches()
        reset_resident_indexes()
        try:
            start = time.perf_counter()
            run_dibella(union, config=config.with_pool(False), n_nodes=1,
                        ranks_per_node=ranks)
            cold_wall = time.perf_counter() - start

            service = AlignmentService(index_reads, config=config,
                                       topology=Topology.single_node(ranks))
            start = time.perf_counter()
            service.build()
            build_wall = time.perf_counter() - start
            for lo in range(0, len(queries), per_batch):
                service.submit(queries[lo:lo + per_batch])
            records = service.drain()
            for record in records:
                counters = record.result.counters
                assert counters["index_reuse_hits"] == ranks, \
                    "a query batch missed the resident index"
                assert counters.get("index_build_runs", 0) == 0, \
                    "a query batch rebuilt the index"
            stats = service.latency_stats()
        finally:
            shutdown_rank_pools()
            reset_persistent_read_caches()
            reset_resident_indexes()
        rows.append({
            "seed_mode": (f"minw{config.minimizer_window}"
                          if config.seed_mode == "minimizer" else "reliable"),
            "ranks": float(ranks),
            "batches": stats["batches"],
            "query_reads": stats["reads"],
            "p50_ms": stats["p50_seconds"] * 1e3,
            "p99_ms": stats["p99_seconds"] * 1e3,
            "reads_per_second": stats["reads_per_second"],
            "build_seconds": build_wall,
            "cold_oneshot_seconds": cold_wall,
        })
    return rows


def format_report(rows: list[dict[str, float]]) -> str:
    lines = [
        "serve latency: warm query batches against a resident index "
        f"({GENOME_LENGTH} bp genome, 30x, process backend + pool)",
        f"  {'seed mode':>9} {'ranks':>5} {'batches':>7} {'reads':>6} "
        f"{'p50':>9} {'p99':>9} "
        f"{'reads/s':>8} {'build':>8} {'cold 1-shot':>11}",
    ]
    for row in rows:
        lines.append(
            f"  {row['seed_mode']:>9} {row['ranks']:>5.0f} {row['batches']:>7.0f} "
            f"{row['query_reads']:>6.0f} {row['p50_ms']:>7.1f}ms "
            f"{row['p99_ms']:>7.1f}ms {row['reads_per_second']:>8.0f} "
            f"{row['build_seconds']:>7.3f}s {row['cold_oneshot_seconds']:>10.3f}s"
        )
    return "\n".join(lines)


def test_serve_latency():
    from conftest import record_rows

    rows = measure_serve_latency()
    record_rows("serve_latency", format_report(rows))
    assert rows, "no rank counts measured"
    for row in rows:
        assert row["batches"] >= 2
        assert row["p99_ms"] >= row["p50_ms"] > 0.0


if __name__ == "__main__":
    report = format_report(measure_serve_latency())
    print(report)
    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "serve_latency.txt").write_text(report + "\n",
                                                   encoding="ascii")
