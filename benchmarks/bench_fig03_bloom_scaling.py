"""Figure 3: Bloom-filter stage strong scaling (M k-mers/s) across platforms."""

from conftest import SCALING_NODES, record_rows

from repro.bench.experiments import figure3_bloom_scaling
from repro.bench.reporting import format_series


def test_fig03_bloom_scaling(benchmark, harness):
    rows = benchmark.pedantic(figure3_bloom_scaling, args=(harness, SCALING_NODES),
                              rounds=1, iterations=1)
    record_rows("fig03_bloom_scaling", format_series(
        rows, x="nodes", y="throughput_millions_per_sec", group="platform",
        title="Figure 3: Bloom-filter stage throughput (M k-mers/s)"))
    by_platform = {p: [r for r in rows if r["platform"] == p] for p in ("cori", "aws")}
    # Expected shape: Cori above AWS everywhere, throughput rising with nodes.
    for c, a in zip(by_platform["cori"], by_platform["aws"]):
        assert c["throughput_millions_per_sec"] > a["throughput_millions_per_sec"]
    cori = sorted(by_platform["cori"], key=lambda r: r["nodes"])
    assert cori[-1]["throughput_millions_per_sec"] > cori[0]["throughput_millions_per_sec"]
