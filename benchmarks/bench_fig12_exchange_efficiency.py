"""Figure 12: overall vs exchange efficiency across architectures."""

from conftest import SCALING_NODES, record_rows

from repro.bench.experiments import figure12_exchange_efficiency
from repro.bench.reporting import format_series


def test_fig12_exchange_efficiency(benchmark, harness):
    rows = benchmark.pedantic(figure12_exchange_efficiency, args=(harness, SCALING_NODES),
                              rounds=1, iterations=1)
    text = (format_series(rows, x="nodes", y="overall_efficiency", group="platform",
                          title="Figure 12 (solid): overall efficiency")
            + "\n"
            + format_series(rows, x="nodes", y="exchange_efficiency", group="platform",
                            title="Figure 12 (dashed): exchange efficiency")
            + "\n"
            + format_series(rows, x="nodes", y="hier_exchange_speedup",
                            group="platform",
                            title="Figure 12 (what-if): flat/hier exchange-time "
                                  "ratio at 2 rank groups"))
    record_rows("fig12_exchange_efficiency", text)
    largest = max(r["nodes"] for r in rows)
    last = {r["platform"]: r for r in rows if r["nodes"] == largest}
    # Expected shape: exchange efficiency degrades far faster than overall
    # efficiency, and the commodity AWS network fares worst.
    for platform, row in last.items():
        assert row["exchange_efficiency"] < row["overall_efficiency"]
        # The two-level what-if trades O(R) per-call segments for O(G + R/G)
        # at unchanged volume, so at scale it must project a net win.
        assert row["hier_exchange_speedup"] > 1.0
    assert last["aws"]["exchange_efficiency"] == min(
        r["exchange_efficiency"] for r in last.values())
