"""Overlap detection: read-pair generation, seed selection, and the overlap graph.

Stage 3 of diBELLA turns the distributed k-mer → occurrence hash table into
alignment tasks: "for each k-mer in the hash table, take the associated list
of read IDs (and positions) and form all pairs of reads, assigning each pair
to one processor" (§4).  This subpackage implements

* :mod:`repro.overlap.pairs` — Algorithm 1: all-pairs generation per retained
  k-mer with the odd/even owner heuristic (plus the alternative heuristics
  used in the owner ablation), and consolidation of per-pair seed lists,
* :mod:`repro.overlap.seeds` — the runtime seed-selection constraints
  (one-seed, all seeds separated by ≥ d bases, d = k),
* :mod:`repro.overlap.graph` — the read overlap graph as a networkx object,
  the "graph with reads as vertices and reliable k-mers as edges" of §4.
"""

from repro.overlap.pairs import (
    PairBatch,
    generate_pairs,
    pair_chunk_ranges,
    owner_heuristic_oddeven,
    choose_owner,
    consolidate_pairs,
    OverlapRecord,
    OverlapTable,
)
from repro.overlap.seeds import select_seeds, select_seeds_batched, SeedStrategy
from repro.overlap.graph import build_overlap_graph, overlap_graph_summary

__all__ = [
    "PairBatch",
    "generate_pairs",
    "pair_chunk_ranges",
    "owner_heuristic_oddeven",
    "choose_owner",
    "consolidate_pairs",
    "OverlapRecord",
    "OverlapTable",
    "select_seeds",
    "select_seeds_batched",
    "SeedStrategy",
    "build_overlap_graph",
    "overlap_graph_summary",
]
