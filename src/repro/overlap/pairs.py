"""Read-pair generation (Algorithm 1) and pair consolidation.

For every retained k-mer, every pair of its occurrences is a candidate
overlap; each pair becomes an alignment task routed to the rank that owns one
of the two reads, chosen by the odd/even heuristic of Algorithm 1 so that
task counts balance without any global coordination.  After the exchange,
tasks for the same read pair (one per shared k-mer) are consolidated into a
single overlap entry carrying the pair's full seed list.

Everything in this module is *fully vectorised*: pair generation expands the
``c(c-1)/2`` pairs of all retained k-mers in one shot from the
:class:`~repro.kmers.hashtable.RetainedKmers` offset/count arrays, and
consolidation is a single lexsort plus boundary detection that produces a
struct-of-arrays :class:`OverlapTable`.  There is no per-k-mer or per-pair
Python loop anywhere on the hot path — the layout minimap2 and the
BELLA-lineage overlappers use for exactly this stage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.kmers.hashing import mix64
from repro.kmers.hashtable import RetainedKmers


@dataclass(frozen=True)
class PairBatch:
    """A flat batch of (read pair, seed) tuples, structure-of-arrays style.

    ``rid_a``/``rid_b`` are the pair's read identifiers, ``pos_a``/``pos_b``
    the shared k-mer's position in each read.  The convention ``rid_a <
    rid_b`` is enforced at construction so the same pair never appears under
    two keys (and so owner heuristics that depend on the ordering, like
    ``"min"``, are well defined).

    ``swapped`` optionally records, per pair, whether the normalisation
    flipped the occurrence order (the pair was produced as ``(rid_b, rid_a)``
    and swapped to satisfy ``rid_a < rid_b``).  Algorithm 1's odd/even owner
    rule is defined on the *occurrence* order, so :func:`choose_owner` needs
    this bit; it is a producer-side annotation only and never crosses the
    wire (``to_matrix``/``from_matrix`` drop it — owner choice happens before
    the exchange).
    """

    rid_a: np.ndarray
    rid_b: np.ndarray
    pos_a: np.ndarray
    pos_b: np.ndarray
    same_strand: np.ndarray
    swapped: np.ndarray | None = None

    def __post_init__(self) -> None:
        sizes = {self.rid_a.size, self.rid_b.size, self.pos_a.size, self.pos_b.size,
                 self.same_strand.size}
        if self.swapped is not None:
            sizes.add(self.swapped.size)
        if len(sizes) != 1:
            raise ValueError("all PairBatch arrays must have the same length")
        if self.rid_a.size and not np.all(self.rid_a < self.rid_b):
            raise ValueError("PairBatch requires rid_a < rid_b for every pair")

    def __len__(self) -> int:
        return int(self.rid_a.size)

    @classmethod
    def empty(cls) -> "PairBatch":
        """A batch with no pairs."""
        z = np.empty(0, dtype=np.int64)
        return cls(rid_a=z, rid_b=z.copy(), pos_a=z.copy(), pos_b=z.copy(),
                   same_strand=np.empty(0, dtype=np.int64))

    def to_matrix(self) -> np.ndarray:
        """Pack the batch as an (n, 5) int64 matrix (the wire format)."""
        return np.stack([self.rid_a, self.rid_b, self.pos_a, self.pos_b,
                         self.same_strand.astype(np.int64)], axis=1)

    @classmethod
    def from_matrix(cls, matrix: np.ndarray) -> "PairBatch":
        """Rebuild a batch from the (n, 5) wire format."""
        matrix = np.asarray(matrix, dtype=np.int64)
        if matrix.size == 0:
            return cls.empty()
        if matrix.ndim != 2 or matrix.shape[1] != 5:
            raise ValueError(f"expected an (n, 5) matrix, got shape {matrix.shape}")
        return cls(rid_a=matrix[:, 0].copy(), rid_b=matrix[:, 1].copy(),
                   pos_a=matrix[:, 2].copy(), pos_b=matrix[:, 3].copy(),
                   same_strand=matrix[:, 4].copy())

    @classmethod
    def concatenate(cls, batches: list["PairBatch"]) -> "PairBatch":
        """Concatenate several batches (empty batches are skipped).

        The ``swapped`` annotation survives only when every non-empty batch
        carries it; otherwise it is dropped (mixed provenance).
        """
        non_empty = [b for b in batches if len(b)]
        if not non_empty:
            return cls.empty()
        swapped = None
        if all(b.swapped is not None for b in non_empty):
            swapped = np.concatenate([b.swapped for b in non_empty])
        return cls(
            rid_a=np.concatenate([b.rid_a for b in non_empty]),
            rid_b=np.concatenate([b.rid_b for b in non_empty]),
            pos_a=np.concatenate([b.pos_a for b in non_empty]),
            pos_b=np.concatenate([b.pos_b for b in non_empty]),
            same_strand=np.concatenate([b.same_strand for b in non_empty]),
            swapped=swapped,
        )


@dataclass(frozen=True)
class OverlapRecord:
    """A consolidated overlap: one read pair and all its shared seeds.

    ``seed_same_strand[i]`` is True when seed *i* occurs in the same
    orientation in both reads (align the reads as-is) and False when one of
    them carries the reverse complement (align read A against the reverse
    complement of read B).
    """

    rid_a: int
    rid_b: int
    seed_pos_a: np.ndarray
    seed_pos_b: np.ndarray
    seed_same_strand: np.ndarray

    @property
    def n_seeds(self) -> int:
        """Number of shared retained k-mers found for this pair."""
        return int(self.seed_pos_a.size)


@dataclass(frozen=True)
class OverlapTable:
    """Consolidated overlaps, structure-of-arrays style.

    One entry per distinct read pair; the pair's seeds live in the flat
    ``seed_*`` arrays delimited by ``seed_offsets`` (the same offsets/values
    layout as :class:`~repro.kmers.hashtable.RetainedKmers`).  Seeds within a
    pair are unique and sorted by ``(pos_a, pos_b)``; pairs are sorted by
    ``(rid_a, rid_b)``.

    The table iterates as :class:`OverlapRecord` objects, so existing callers
    (graph construction, benches) keep working, but the flat arrays are the
    primary representation: seed selection and task construction operate on
    them directly, without materialising per-pair objects.
    """

    rid_a: np.ndarray             # (n_pairs,) int64
    rid_b: np.ndarray             # (n_pairs,) int64
    seed_offsets: np.ndarray      # (n_pairs + 1,) int64
    seed_pos_a: np.ndarray        # (n_seeds,) int64
    seed_pos_b: np.ndarray        # (n_seeds,) int64
    seed_same_strand: np.ndarray  # (n_seeds,) bool

    def __post_init__(self) -> None:
        if self.rid_a.size != self.rid_b.size:
            raise ValueError("rid_a and rid_b must have the same length")
        if self.seed_offsets.size != self.rid_a.size + 1:
            raise ValueError("seed_offsets must have n_pairs + 1 entries")
        sizes = {self.seed_pos_a.size, self.seed_pos_b.size, self.seed_same_strand.size}
        if len(sizes) != 1:
            raise ValueError("all seed arrays must have the same length")

    @property
    def n_pairs(self) -> int:
        """Number of distinct read pairs in the table."""
        return int(self.rid_a.size)

    @property
    def n_seeds(self) -> int:
        """Total seeds across all pairs."""
        return int(self.seed_pos_a.size)

    def __len__(self) -> int:
        return self.n_pairs

    def seed_counts(self) -> np.ndarray:
        """Number of seeds of each pair."""
        return np.diff(self.seed_offsets)

    def record(self, index: int) -> OverlapRecord:
        """Materialise the *index*-th pair as an :class:`OverlapRecord`."""
        lo, hi = int(self.seed_offsets[index]), int(self.seed_offsets[index + 1])
        return OverlapRecord(
            rid_a=int(self.rid_a[index]),
            rid_b=int(self.rid_b[index]),
            seed_pos_a=self.seed_pos_a[lo:hi].copy(),
            seed_pos_b=self.seed_pos_b[lo:hi].copy(),
            seed_same_strand=self.seed_same_strand[lo:hi].copy(),
        )

    def __iter__(self) -> Iterator[OverlapRecord]:
        for index in range(self.n_pairs):
            yield self.record(index)

    @classmethod
    def empty(cls) -> "OverlapTable":
        """A table with no pairs."""
        z = np.empty(0, dtype=np.int64)
        return cls(rid_a=z, rid_b=z.copy(), seed_offsets=np.zeros(1, dtype=np.int64),
                   seed_pos_a=z.copy(), seed_pos_b=z.copy(),
                   seed_same_strand=np.empty(0, dtype=bool))

    @staticmethod
    def _consolidation_order(ra: np.ndarray, rb: np.ndarray, pa: np.ndarray,
                             pb: np.ndarray, ss: np.ndarray) -> np.ndarray:
        """Stable sort order by (rid_a, rid_b, pos_a, pos_b, strand).

        A 5-key :func:`numpy.lexsort` costs five stable sort passes; RIDs and
        positions are small non-negative integers, so whenever the combined
        key widths fit the keys are bit-packed into one (or two) uint64
        words, cutting the passes to one (or two).  The packing is order
        isomorphic — each field gets exactly the bits its maximum needs — so
        the resulting order is identical to the full lexsort.
        """
        if ra.size == 0:
            return np.empty(0, dtype=np.int64)
        maxima = [int(arr.max()) for arr in (ra, rb, pa, pb)]
        if min(int(arr.min()) for arr in (ra, rb, pa, pb)) >= 0:
            b_ra, b_rb, b_pa, b_pb = (max(1, m.bit_length()) for m in maxima)
            u = [arr.astype(np.uint64) for arr in (ra, rb, pa, pb, ss)]
            if b_ra + b_rb + b_pa + b_pb + 1 <= 64:
                key = u[0]
                for value, width in zip(u[1:], (b_rb, b_pa, b_pb, 1)):
                    key = (key << np.uint64(width)) | value
                return np.argsort(key, kind="stable")
            if b_ra + b_rb <= 64 and b_pa + b_pb + 1 <= 64:
                major = (u[0] << np.uint64(b_rb)) | u[1]
                minor = (u[2] << np.uint64(b_pb + 1)) | (u[3] << np.uint64(1)) | u[4]
                return np.lexsort((minor, major))
        return np.lexsort((ss, pb, pa, rb, ra))

    @classmethod
    def from_pairs(cls, batch: PairBatch) -> "OverlapTable":
        """Consolidate a task batch into a table: one sort, no Python loops.

        Duplicate seeds (same pair, same positions and orientation — possible
        when a k-mer repeats inside a read) are removed; seeds end up sorted
        by ``(pos_a, pos_b)`` within each pair, pairs by ``(rid_a, rid_b)``.
        """
        if len(batch) == 0:
            return cls.empty()
        same = batch.same_strand.astype(np.int64)
        order = cls._consolidation_order(batch.rid_a, batch.rid_b, batch.pos_a,
                                         batch.pos_b, same)
        ra = batch.rid_a[order]
        rb = batch.rid_b[order]
        pa = batch.pos_a[order]
        pb = batch.pos_b[order]
        ss = same[order]

        # Drop duplicate (pair, seed) rows — adjacent after the lexsort.
        keep = np.ones(ra.size, dtype=bool)
        keep[1:] = ((ra[1:] != ra[:-1]) | (rb[1:] != rb[:-1]) | (pa[1:] != pa[:-1])
                    | (pb[1:] != pb[:-1]) | (ss[1:] != ss[:-1]))
        ra, rb, pa, pb, ss = ra[keep], rb[keep], pa[keep], pb[keep], ss[keep]

        # Pair boundaries: positions where (rid_a, rid_b) changes.
        boundary = np.ones(ra.size, dtype=bool)
        boundary[1:] = (ra[1:] != ra[:-1]) | (rb[1:] != rb[:-1])
        starts = np.flatnonzero(boundary)
        seed_offsets = np.append(starts, ra.size).astype(np.int64)

        return cls(
            rid_a=ra[starts].astype(np.int64),
            rid_b=rb[starts].astype(np.int64),
            seed_offsets=seed_offsets,
            seed_pos_a=pa.astype(np.int64),
            seed_pos_b=pb.astype(np.int64),
            seed_same_strand=ss.astype(bool),
        )


# ---------------------------------------------------------------------------
# Owner heuristics
# ---------------------------------------------------------------------------

def owner_heuristic_oddeven(rid_first: np.ndarray, rid_second: np.ndarray) -> np.ndarray:
    """Algorithm 1's odd/even owner choice, vectorised.

    ``rid_first``/``rid_second`` are the pair's read identifiers in
    *occurrence order* — the order in which the two occurrences of the shared
    k-mer were visited, **before** the ``rid_a < rid_b`` normalisation.
    Returns a boolean array: True where the task goes to the owner of
    ``rid_first``, False where it goes to the owner of ``rid_second``.  The
    rule is exactly the paper's:

    * ``rid_first`` even and ``rid_first > rid_second + 1`` → owner of ``rid_first``
    * ``rid_first`` odd  and ``rid_first < rid_second + 1`` → owner of ``rid_first``
    * otherwise → owner of ``rid_second``

    Evaluated on occurrence order both branches fire (an even first RID keeps
    the task when it is the larger of the two, an odd first RID when it is
    the smaller), so for uniformly distributed read identifiers the tasks
    split roughly evenly between the two reads' owners — which, combined
    with the uniform read partition, balances the alignment tasks per rank.
    Evaluating it on the *normalised* order instead (``rid_first <
    rid_second`` always) makes the even branch unsatisfiable and collapses
    the rule to "parity of the smaller RID" — the degenerate behaviour this
    signature change fixes.
    """
    rid_first = np.asarray(rid_first, dtype=np.int64)
    rid_second = np.asarray(rid_second, dtype=np.int64)
    even = (rid_first % 2) == 0
    return (even & (rid_first > rid_second + 1)) | (~even & (rid_first < rid_second + 1))


def choose_owner(
    rid_a: np.ndarray,
    rid_b: np.ndarray,
    read_owner: np.ndarray,
    heuristic: str = "oddeven",
    swapped: np.ndarray | None = None,
) -> np.ndarray:
    """Destination rank of each task under the named owner heuristic.

    ``read_owner`` maps RID → owning rank (from the input read partition).
    Heuristics: ``"oddeven"`` (Algorithm 1, default), ``"min"`` (always the
    owner of the smaller RID) and ``"random"`` (hash of the pair) — the last
    two exist for the owner-heuristic ablation bench.

    ``swapped`` is the :attr:`PairBatch.swapped` annotation: True where the
    ``rid_a < rid_b`` normalisation flipped the pair's occurrence order.
    Algorithm 1 is defined on occurrence order, so the odd/even heuristic
    un-swaps before applying the rule; ``None`` means the inputs already are
    in occurrence order (nothing was normalised).
    """
    rid_a = np.asarray(rid_a, dtype=np.int64)
    rid_b = np.asarray(rid_b, dtype=np.int64)
    read_owner = np.asarray(read_owner, dtype=np.int64)
    if heuristic == "oddeven":
        if swapped is None:
            first, second = rid_a, rid_b
        else:
            swapped = np.asarray(swapped, dtype=bool)
            first = np.where(swapped, rid_b, rid_a)
            second = np.where(swapped, rid_a, rid_b)
        use_first = owner_heuristic_oddeven(first, second)
        chosen_rid = np.where(use_first, first, second)
        return read_owner[chosen_rid]
    if heuristic == "min":
        use_a = np.ones(rid_a.size, dtype=bool)
    elif heuristic == "random":
        pair_hash = mix64(rid_a.astype(np.uint64) * np.uint64(2654435761) ^ rid_b.astype(np.uint64))
        use_a = (np.atleast_1d(pair_hash) & np.uint64(1)) == 0
    else:
        raise ValueError(f"unknown owner heuristic {heuristic!r}")
    chosen_rid = np.where(use_a, rid_a, rid_b)
    return read_owner[chosen_rid]


# ---------------------------------------------------------------------------
# Pair generation from a hash-table partition
# ---------------------------------------------------------------------------

#: Wire bytes of one pair row in the exchange matrix (5 int64 columns).
PAIR_WIRE_BYTES = 40


def pair_chunk_ranges(retained: RetainedKmers, max_chunk_bytes: int | None) -> list[tuple[int, int]]:
    """Split a partition's retained k-mers into bounded pair-generation chunks.

    Returns half-open k-mer index ranges ``(k0, k1)`` such that the pairs
    generated from each range fit in roughly ``max_chunk_bytes`` of wire
    payload (``PAIR_WIRE_BYTES`` per pair, before the ``rid_a != rid_b``
    filter — a conservative upper bound on the packed matrix).  A k-mer's
    pairs are never split across chunks, so a single k-mer whose c(c-1)/2
    expansion exceeds the budget gets a chunk of its own; the streaming
    overlap stage therefore bounds its in-flight exchange memory at
    ``max(max_chunk_bytes, largest single-k-mer expansion)`` per rank.

    ``max_chunk_bytes=None`` disables chunking (one range with everything),
    reproducing the monolithic single-Alltoallv exchange.
    """
    n = retained.n_kmers
    if n == 0:
        return []
    if max_chunk_bytes is None:
        return [(0, n)]
    counts = retained.counts().astype(np.int64)
    pair_counts = counts * (counts - 1) // 2
    cum = np.concatenate(([0], np.cumsum(pair_counts)))
    max_pairs = max(1, int(max_chunk_bytes) // PAIR_WIRE_BYTES)
    ranges: list[tuple[int, int]] = []
    start = 0
    while start < n:
        end = int(np.searchsorted(cum, cum[start] + max_pairs, side="right")) - 1
        end = min(max(end, start + 1), n)
        ranges.append((start, end))
        start = end
    return ranges


def generate_pairs(
    retained: RetainedKmers, kmer_range: tuple[int, int] | None = None
) -> PairBatch:
    """All read pairs sharing each retained k-mer of one partition.

    For a k-mer with occurrence list ``[(r_0, p_0), ..., (r_{c-1}, p_{c-1})]``
    every unordered pair ``{i, j}`` with ``r_i != r_j`` produces one task;
    a k-mer of multiplicity c contributes up to c(c-1)/2 tasks (the
    ``[2, m(m-1)/2]`` bound of §8).  Pairs are normalised so that
    ``rid_a < rid_b``.

    ``kmer_range`` restricts the expansion to the retained k-mers with index
    in ``[k0, k1)`` — the unit of the streaming overlap exchange (ranges come
    from :func:`pair_chunk_ranges`).  Concatenating the batches of a full
    cover of ranges yields exactly the pairs of a whole-partition call.

    The expansion is computed in one shot for *all* selected k-mers from the
    flat offsets/counts arrays: every occurrence at within-group index ``w``
    is paired with its ``w`` predecessors, so the pair list is built with a
    handful of ``repeat``/``cumsum`` operations instead of a per-k-mer loop.
    """
    if retained.n_kmers == 0 or retained.n_occurrences == 0:
        return PairBatch.empty()

    if kmer_range is None:
        k0, k1 = 0, retained.n_kmers
    else:
        k0, k1 = kmer_range
        if not (0 <= k0 <= k1 <= retained.n_kmers):
            raise ValueError(
                f"kmer_range {kmer_range} out of bounds for {retained.n_kmers} k-mers"
            )
    if k0 == k1:
        return PairBatch.empty()

    counts = retained.counts()[k0:k1]
    group_starts = retained.offsets[k0:k1]
    occ_lo, occ_hi = int(retained.offsets[k0]), int(retained.offsets[k1])
    n_occ = occ_hi - occ_lo
    if n_occ == 0:
        return PairBatch.empty()

    # Within-group index of every occurrence in the range: w[s + t] = t for
    # the group starting at s.  Occurrence j pairs with its w[j] predecessors.
    within = np.arange(occ_lo, occ_hi, dtype=np.int64) - np.repeat(group_starts, counts)
    reps = within  # occurrence j appears as the "right" element w[j] times
    total = int(reps.sum())
    if total == 0:
        return PairBatch.empty()

    # Right element of each pair: occurrence j repeated w[j] times.
    j_glob = np.repeat(np.arange(occ_lo, occ_hi, dtype=np.int64), reps)
    # Left element: for the block of pairs owned by occurrence j, the
    # predecessors group_start[g] .. j-1 in order.
    block_starts = np.concatenate(([0], np.cumsum(reps)))[:-1]
    offset_in_block = np.arange(total, dtype=np.int64) - np.repeat(block_starts, reps)
    i_glob = np.repeat(np.repeat(group_starts, counts), reps) + offset_in_block

    ra = retained.rids[i_glob]
    rb = retained.rids[j_glob]
    distinct = ra != rb
    if not distinct.any():
        return PairBatch.empty()
    ra, rb = ra[distinct], rb[distinct]
    pa = retained.positions[i_glob[distinct]]
    pb = retained.positions[j_glob[distinct]]
    same = retained.strands[i_glob[distinct]] == retained.strands[j_glob[distinct]]

    # Normalise so rid_a < rid_b (swap positions along with the rids); the
    # pre-normalisation occurrence order survives as the ``swapped`` bit so
    # Algorithm 1's owner rule can be applied to the order it is defined on.
    swap = ra > rb
    ra_norm = np.where(swap, rb, ra)
    rb_norm = np.where(swap, ra, rb)
    pa_norm = np.where(swap, pb, pa)
    pb_norm = np.where(swap, pa, pb)

    return PairBatch(
        rid_a=ra_norm.astype(np.int64),
        rid_b=rb_norm.astype(np.int64),
        pos_a=pa_norm.astype(np.int64),
        pos_b=pb_norm.astype(np.int64),
        same_strand=same.astype(np.int64),
        swapped=swap.astype(bool),
    )


def consolidate_pairs(batch: PairBatch) -> list[OverlapRecord]:
    """Group a task batch by read pair into :class:`OverlapRecord` objects.

    Compatibility wrapper over :meth:`OverlapTable.from_pairs` for callers
    that want per-pair record objects; the pipeline itself keeps the table.
    """
    return list(OverlapTable.from_pairs(batch))
