"""Read-pair generation (Algorithm 1) and pair consolidation.

For every retained k-mer, every pair of its occurrences is a candidate
overlap; each pair becomes an alignment task routed to the rank that owns one
of the two reads, chosen by the odd/even heuristic of Algorithm 1 so that
task counts balance without any global coordination.  After the exchange,
tasks for the same read pair (one per shared k-mer) are consolidated into a
single overlap record carrying the pair's full seed list.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kmers.hashing import mix64
from repro.kmers.hashtable import RetainedKmers


@dataclass(frozen=True)
class PairBatch:
    """A flat batch of (read pair, seed) tuples, structure-of-arrays style.

    ``rid_a``/``rid_b`` are the pair's read identifiers, ``pos_a``/``pos_b``
    the shared k-mer's position in each read.  The convention ``rid_a <
    rid_b`` is enforced at construction so the same pair never appears under
    two keys.
    """

    rid_a: np.ndarray
    rid_b: np.ndarray
    pos_a: np.ndarray
    pos_b: np.ndarray
    same_strand: np.ndarray

    def __post_init__(self) -> None:
        sizes = {self.rid_a.size, self.rid_b.size, self.pos_a.size, self.pos_b.size,
                 self.same_strand.size}
        if len(sizes) != 1:
            raise ValueError("all PairBatch arrays must have the same length")

    def __len__(self) -> int:
        return int(self.rid_a.size)

    @classmethod
    def empty(cls) -> "PairBatch":
        """A batch with no pairs."""
        z = np.empty(0, dtype=np.int64)
        return cls(rid_a=z, rid_b=z.copy(), pos_a=z.copy(), pos_b=z.copy(),
                   same_strand=np.empty(0, dtype=np.int64))

    def to_matrix(self) -> np.ndarray:
        """Pack the batch as an (n, 5) int64 matrix (the wire format)."""
        return np.stack([self.rid_a, self.rid_b, self.pos_a, self.pos_b,
                         self.same_strand.astype(np.int64)], axis=1)

    @classmethod
    def from_matrix(cls, matrix: np.ndarray) -> "PairBatch":
        """Rebuild a batch from the (n, 5) wire format."""
        matrix = np.asarray(matrix, dtype=np.int64)
        if matrix.size == 0:
            return cls.empty()
        if matrix.ndim != 2 or matrix.shape[1] != 5:
            raise ValueError(f"expected an (n, 5) matrix, got shape {matrix.shape}")
        return cls(rid_a=matrix[:, 0].copy(), rid_b=matrix[:, 1].copy(),
                   pos_a=matrix[:, 2].copy(), pos_b=matrix[:, 3].copy(),
                   same_strand=matrix[:, 4].copy())

    @classmethod
    def concatenate(cls, batches: list["PairBatch"]) -> "PairBatch":
        """Concatenate several batches (empty batches are skipped)."""
        non_empty = [b for b in batches if len(b)]
        if not non_empty:
            return cls.empty()
        return cls(
            rid_a=np.concatenate([b.rid_a for b in non_empty]),
            rid_b=np.concatenate([b.rid_b for b in non_empty]),
            pos_a=np.concatenate([b.pos_a for b in non_empty]),
            pos_b=np.concatenate([b.pos_b for b in non_empty]),
            same_strand=np.concatenate([b.same_strand for b in non_empty]),
        )


@dataclass(frozen=True)
class OverlapRecord:
    """A consolidated overlap: one read pair and all its shared seeds.

    ``seed_same_strand[i]`` is True when seed *i* occurs in the same
    orientation in both reads (align the reads as-is) and False when one of
    them carries the reverse complement (align read A against the reverse
    complement of read B).
    """

    rid_a: int
    rid_b: int
    seed_pos_a: np.ndarray
    seed_pos_b: np.ndarray
    seed_same_strand: np.ndarray

    @property
    def n_seeds(self) -> int:
        """Number of shared retained k-mers found for this pair."""
        return int(self.seed_pos_a.size)


# ---------------------------------------------------------------------------
# Owner heuristics
# ---------------------------------------------------------------------------

def owner_heuristic_oddeven(rid_a: np.ndarray, rid_b: np.ndarray) -> np.ndarray:
    """Algorithm 1's odd/even owner choice, vectorised.

    Returns a boolean array: True where the task goes to the owner of
    ``rid_a``, False where it goes to the owner of ``rid_b``.  The rule is
    exactly the paper's:

    * ``rid_a`` even and ``rid_a > rid_b + 1`` → owner of ``rid_a``
    * ``rid_a`` odd  and ``rid_a < rid_b + 1`` → owner of ``rid_a``
    * otherwise → owner of ``rid_b``

    For uniformly distributed read identifiers this splits the tasks roughly
    evenly between the two reads' owners, which — combined with the uniform
    read partition — balances the number of alignment tasks per rank.
    """
    rid_a = np.asarray(rid_a, dtype=np.int64)
    rid_b = np.asarray(rid_b, dtype=np.int64)
    even = (rid_a % 2) == 0
    return (even & (rid_a > rid_b + 1)) | (~even & (rid_a < rid_b + 1))


def choose_owner(
    rid_a: np.ndarray,
    rid_b: np.ndarray,
    read_owner: np.ndarray,
    heuristic: str = "oddeven",
) -> np.ndarray:
    """Destination rank of each task under the named owner heuristic.

    ``read_owner`` maps RID → owning rank (from the input read partition).
    Heuristics: ``"oddeven"`` (Algorithm 1, default), ``"min"`` (always the
    owner of the smaller RID) and ``"random"`` (hash of the pair) — the last
    two exist for the owner-heuristic ablation bench.
    """
    rid_a = np.asarray(rid_a, dtype=np.int64)
    rid_b = np.asarray(rid_b, dtype=np.int64)
    read_owner = np.asarray(read_owner, dtype=np.int64)
    if heuristic == "oddeven":
        use_a = owner_heuristic_oddeven(rid_a, rid_b)
    elif heuristic == "min":
        use_a = np.ones(rid_a.size, dtype=bool)
    elif heuristic == "random":
        pair_hash = mix64(rid_a.astype(np.uint64) * np.uint64(2654435761) ^ rid_b.astype(np.uint64))
        use_a = (np.atleast_1d(pair_hash) & np.uint64(1)) == 0
    else:
        raise ValueError(f"unknown owner heuristic {heuristic!r}")
    chosen_rid = np.where(use_a, rid_a, rid_b)
    return read_owner[chosen_rid]


# ---------------------------------------------------------------------------
# Pair generation from a hash-table partition
# ---------------------------------------------------------------------------

def generate_pairs(retained: RetainedKmers) -> PairBatch:
    """All read pairs sharing each retained k-mer of one partition.

    For a k-mer with occurrence list ``[(r_0, p_0), ..., (r_{c-1}, p_{c-1})]``
    every unordered pair ``{i, j}`` with ``r_i != r_j`` produces one task;
    a k-mer of multiplicity c contributes up to c(c-1)/2 tasks (the
    ``[2, m(m-1)/2]`` bound of §8).  Pairs are normalised so that
    ``rid_a < rid_b``.
    """
    if retained.n_kmers == 0:
        return PairBatch.empty()

    rid_chunks: list[np.ndarray] = []
    ridb_chunks: list[np.ndarray] = []
    posa_chunks: list[np.ndarray] = []
    posb_chunks: list[np.ndarray] = []
    strand_chunks: list[np.ndarray] = []

    counts = retained.counts()
    for index in range(retained.n_kmers):
        c = int(counts[index])
        if c < 2:
            continue
        _, rids, positions, strands = retained.group(index)
        ii, jj = np.triu_indices(c, k=1)
        ra, rb = rids[ii], rids[jj]
        pa, pb = positions[ii], positions[jj]
        same = strands[ii] == strands[jj]
        distinct = ra != rb
        if not distinct.any():
            continue
        ra, rb, pa, pb, same = (ra[distinct], rb[distinct], pa[distinct],
                                pb[distinct], same[distinct])
        # Normalise so rid_a < rid_b (swap positions along with the rids).
        swap = ra > rb
        ra_norm = np.where(swap, rb, ra)
        rb_norm = np.where(swap, ra, rb)
        pa_norm = np.where(swap, pb, pa)
        pb_norm = np.where(swap, pa, pb)
        rid_chunks.append(ra_norm)
        ridb_chunks.append(rb_norm)
        posa_chunks.append(pa_norm)
        posb_chunks.append(pb_norm)
        strand_chunks.append(same)

    if not rid_chunks:
        return PairBatch.empty()
    return PairBatch(
        rid_a=np.concatenate(rid_chunks).astype(np.int64),
        rid_b=np.concatenate(ridb_chunks).astype(np.int64),
        pos_a=np.concatenate(posa_chunks).astype(np.int64),
        pos_b=np.concatenate(posb_chunks).astype(np.int64),
        same_strand=np.concatenate(strand_chunks).astype(np.int64),
    )


def consolidate_pairs(batch: PairBatch) -> list[OverlapRecord]:
    """Group a task batch by read pair into :class:`OverlapRecord` objects.

    Duplicate seeds (same pair, same positions — possible when a k-mer
    repeats inside a read) are removed; seed lists are sorted by position on
    read A.
    """
    if len(batch) == 0:
        return []
    # Sort by (rid_a, rid_b) to find group boundaries with one pass.
    order = np.lexsort((batch.rid_b, batch.rid_a))
    ra = batch.rid_a[order]
    rb = batch.rid_b[order]
    pa = batch.pos_a[order]
    pb = batch.pos_b[order]
    same = batch.same_strand[order]

    boundary = np.ones(ra.size, dtype=bool)
    boundary[1:] = (ra[1:] != ra[:-1]) | (rb[1:] != rb[:-1])
    starts = np.nonzero(boundary)[0]
    ends = np.append(starts[1:], ra.size)

    records: list[OverlapRecord] = []
    for s, e in zip(starts, ends):
        seeds = np.stack([pa[s:e], pb[s:e], same[s:e]], axis=1)
        seeds = np.unique(seeds, axis=0)  # drop duplicate seeds, sort by pos_a
        records.append(
            OverlapRecord(
                rid_a=int(ra[s]),
                rid_b=int(rb[s]),
                seed_pos_a=seeds[:, 0].copy(),
                seed_pos_b=seeds[:, 1].copy(),
                seed_same_strand=seeds[:, 2].astype(bool).copy(),
            )
        )
    return records
