"""Seed-selection strategies for overlapping read pairs.

An overlapping pair of reads usually shares several retained k-mers.  How
many of them to use as alignment seeds is a runtime "exploration" parameter
(§8): more seeds means more alignment work but better coverage of pairs whose
first seed lands badly.  The paper's experiments use three settings (§5):

* ``one`` — exactly one seed per pair (the minimum-computation extreme),
* ``min_separation`` with d = 1000 bp — all seeds at least 1 kbp apart,
* ``min_separation`` with d = k — all seeds at least a k-mer length apart
  (the maximum-computation extreme, labelled "all seeds" in the figures).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (pairs imports nothing here)
    from repro.overlap.pairs import OverlapTable


@dataclass(frozen=True)
class SeedStrategy:
    """A named seed-selection policy.

    Attributes
    ----------
    mode:
        ``"one"`` or ``"min_separation"``.
    min_separation:
        Minimum distance (in bases, measured on the first read of the pair)
        between two selected seeds; ignored for ``"one"``.
    max_seeds:
        Optional cap on the number of seeds explored per pair (the paper's
        "maximum number of seeds to explore per overlap" runtime parameter).
    """

    mode: str = "one"
    min_separation: int = 1000
    max_seeds: int | None = None

    def __post_init__(self) -> None:
        if self.mode not in ("one", "min_separation"):
            raise ValueError(f"unknown seed strategy mode {self.mode!r}")
        if self.min_separation < 1:
            raise ValueError("min_separation must be >= 1")
        if self.max_seeds is not None and self.max_seeds < 1:
            raise ValueError("max_seeds must be >= 1 when given")

    # Convenience constructors matching the paper's three experimental settings.

    @classmethod
    def one_seed(cls) -> "SeedStrategy":
        """Exactly one seed per overlapping pair (lowest computational intensity)."""
        return cls(mode="one")

    @classmethod
    def separated_by(cls, distance: int, max_seeds: int | None = None) -> "SeedStrategy":
        """All seeds separated by at least *distance* bases."""
        return cls(mode="min_separation", min_separation=distance, max_seeds=max_seeds)


def select_seeds(
    pos_a: np.ndarray,
    pos_b: np.ndarray,
    strategy: SeedStrategy,
) -> np.ndarray:
    """Select which shared k-mer seeds of one read pair to align.

    Parameters
    ----------
    pos_a, pos_b:
        Positions of every shared retained k-mer in read A and read B
        (parallel arrays, unordered).
    strategy:
        The selection policy.

    Returns
    -------
    numpy.ndarray
        Indices (into ``pos_a``/``pos_b``) of the selected seeds, ordered by
        position on read A.
    """
    pos_a = np.asarray(pos_a, dtype=np.int64)
    pos_b = np.asarray(pos_b, dtype=np.int64)
    if pos_a.shape != pos_b.shape:
        raise ValueError("pos_a and pos_b must have the same shape")
    n = pos_a.size
    if n == 0:
        return np.empty(0, dtype=np.int64)

    order = np.argsort(pos_a, kind="stable")

    if strategy.mode == "one":
        # Use the first seed by position on read A — deterministic and what
        # the "exactly one seed per pair" configuration computes.
        return order[:1]

    # min_separation: greedy left-to-right scan keeping any seed at least
    # min_separation bases after the previously kept one.
    selected: list[int] = []
    last_pos = -np.iinfo(np.int64).max
    for idx in order:
        p = int(pos_a[idx])
        if p - last_pos >= strategy.min_separation:
            selected.append(int(idx))
            last_pos = p
            if strategy.max_seeds is not None and len(selected) >= strategy.max_seeds:
                break
    return np.array(selected, dtype=np.int64)


def select_seeds_batched(table: "OverlapTable", strategy: SeedStrategy) -> np.ndarray:
    """Select alignment seeds for *every* pair of an overlap table at once.

    Operates directly on the table's flat seed arrays (seeds are sorted by
    position on read A within each pair, which is exactly the order the
    greedy scan of :func:`select_seeds` visits them in) and returns the
    selected indices into those flat arrays, sorted ascending — i.e. grouped
    by pair, by position within each pair.

    The greedy ``min_separation`` scan is vectorised *across pairs*: each
    round selects the current candidate seed of every still-active pair, then
    advances every pair's candidate pointer past the separation window with
    one global :func:`numpy.searchsorted` over an offset-augmented position
    array (positions made globally increasing by adding ``pair_id * span``).
    The Python-level loop count is the maximum number of seeds selected for
    any single pair, not the number of pairs or seeds.
    """
    n_pairs = len(table)
    if n_pairs == 0:
        return np.empty(0, dtype=np.int64)
    offsets = table.seed_offsets.astype(np.int64)

    if strategy.mode == "one":
        # First seed of each pair — the minimum position on read A.
        return offsets[:-1].copy()

    pos = table.seed_pos_a.astype(np.int64)
    pair_of_seed = np.repeat(np.arange(n_pairs, dtype=np.int64), np.diff(offsets))
    # Make positions globally non-decreasing across pairs; span is wide
    # enough that a separation window never crosses a pair boundary.
    span = int(pos.max(initial=0)) + strategy.min_separation + 1
    augmented = pos + pair_of_seed * span

    cursor = offsets[:-1].copy()
    ends = offsets[1:]
    taken = np.zeros(n_pairs, dtype=np.int64)
    active = cursor < ends
    chunks: list[np.ndarray] = []
    while active.any():
        chosen = cursor[active]
        chunks.append(chosen)
        taken[active] += 1
        # Advance each active pair to its first seed at least min_separation
        # past the one just selected (clipped to the pair's end).
        targets = augmented[chosen] + strategy.min_separation
        nxt = np.searchsorted(augmented, targets, side="left")
        cursor[active] = np.minimum(nxt, ends[active])
        active = cursor < ends
        if strategy.max_seeds is not None:
            active &= taken < strategy.max_seeds
    return np.sort(np.concatenate(chunks))
