"""The read overlap graph.

diBELLA's hash table "represents a read graph with read vertices connected to
each other by shared k-mers" (§11) — the overlap graph that downstream
assemblers (Miniasm, HINGE, FALCON) consume.  This module materialises that
graph as a ``networkx.Graph`` from the pipeline's overlap/alignment output so
examples and downstream users can run standard graph analyses on it.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import networkx as nx
import numpy as np

from repro.align.results import AlignmentResult
from repro.overlap.pairs import OverlapRecord


def build_overlap_graph(
    overlaps: Iterable[OverlapRecord],
    alignments: Mapping[tuple[int, int], AlignmentResult] | None = None,
    min_score: int | None = None,
) -> nx.Graph:
    """Build the read overlap graph.

    Parameters
    ----------
    overlaps:
        Consolidated overlap records (one per read pair).
    alignments:
        Optional mapping from ``(rid_a, rid_b)`` to the pair's best
        :class:`AlignmentResult`; when provided, edges carry ``score`` and
        ``span`` attributes and pairs scoring below ``min_score`` are
        omitted.
    min_score:
        Minimum alignment score for an edge (requires *alignments*).

    Returns
    -------
    networkx.Graph
        Nodes are RIDs; each edge carries ``n_seeds`` and, when alignment
        results are available, ``score`` and ``span``.
    """
    graph = nx.Graph()
    for record in overlaps:
        attrs: dict[str, float | int] = {"n_seeds": record.n_seeds}
        if alignments is not None:
            result = alignments.get((record.rid_a, record.rid_b))
            if result is None:
                continue
            if min_score is not None and result.score < min_score:
                continue
            attrs["score"] = result.score
            attrs["span"] = max(result.span_a, result.span_b)
        graph.add_edge(record.rid_a, record.rid_b, **attrs)
    return graph


def overlap_graph_summary(graph: nx.Graph) -> dict[str, float]:
    """Summary statistics of an overlap graph.

    Reports the numbers an assembler cares about: component structure (a
    good overlap graph of a single bacterial genome is dominated by one giant
    component) and degree statistics (related to coverage depth).
    """
    n_nodes = graph.number_of_nodes()
    n_edges = graph.number_of_edges()
    if n_nodes == 0:
        return {
            "n_nodes": 0.0,
            "n_edges": 0.0,
            "n_components": 0.0,
            "largest_component_fraction": 0.0,
            "mean_degree": 0.0,
            "max_degree": 0.0,
        }
    components = list(nx.connected_components(graph))
    largest = max((len(c) for c in components), default=0)
    degrees = np.array([d for _, d in graph.degree()], dtype=np.float64)
    return {
        "n_nodes": float(n_nodes),
        "n_edges": float(n_edges),
        "n_components": float(len(components)),
        "largest_component_fraction": largest / n_nodes,
        "mean_degree": float(degrees.mean()),
        "max_degree": float(degrees.max()),
    }
