"""Overlap-detection quality against the simulator's ground truth.

The simulated reads carry their true genome coordinates, so recall and
precision of the detected overlap set can be computed exactly — the
"comparisons where the ground truth is known" that BELLA's quality analysis
(and therefore diBELLA's claim of inheriting it) is based on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Collection, Mapping


@dataclass(frozen=True)
class OverlapQuality:
    """Recall/precision of a detected overlap set against ground truth."""

    n_true: int
    n_detected: int
    true_positives: int

    @property
    def recall(self) -> float:
        """Fraction of true overlapping pairs that were detected."""
        if self.n_true == 0:
            return 1.0
        return self.true_positives / self.n_true

    @property
    def precision(self) -> float:
        """Fraction of detected pairs that are true overlaps.

        Note that "false positives" here include pairs whose genomic overlap
        is shorter than the ground-truth minimum-overlap cutoff, so precision
        against a strict cutoff understates the detector's real precision —
        the same caveat BELLA's evaluation makes.
        """
        if self.n_detected == 0:
            return 1.0
        return self.true_positives / self.n_detected

    @property
    def f1(self) -> float:
        """Harmonic mean of recall and precision."""
        r, p = self.recall, self.precision
        if r + p == 0:
            return 0.0
        return 2 * r * p / (r + p)


def overlap_recall_precision(
    detected: Collection[tuple[int, int]],
    truth: Mapping[tuple[int, int], int] | Collection[tuple[int, int]],
) -> OverlapQuality:
    """Compare a detected overlap-pair set against the ground-truth pairs.

    Both inputs use ``(rid_a, rid_b)`` keys with ``rid_a < rid_b``; *truth*
    may be the dict produced by :func:`repro.data.datasets.true_overlaps`
    (its values, the overlap lengths, are ignored here).
    """
    detected_set = {(min(a, b), max(a, b)) for a, b in detected}
    truth_set = {(min(a, b), max(a, b)) for a, b in truth}
    tp = len(detected_set & truth_set)
    return OverlapQuality(
        n_true=len(truth_set),
        n_detected=len(detected_set),
        true_positives=tp,
    )
