"""Load-imbalance metrics.

The paper's Figure 8 metric is "maximum per rank alignment stage times over
average times across ranks (1.0 is perfect)" — implemented here over any
per-rank quantity (wall time, work units, bytes).
"""

from __future__ import annotations

import numpy as np


def load_imbalance(per_rank: np.ndarray) -> float:
    """Max-over-mean imbalance of a per-rank quantity (1.0 = perfectly balanced).

    Empty or all-zero inputs return 1.0 (there is nothing to imbalance).
    """
    values = np.asarray(per_rank, dtype=np.float64)
    if values.size == 0:
        return 1.0
    mean = values.mean()
    if mean <= 0:
        return 1.0
    return float(values.max() / mean)


def per_node_imbalance(per_rank: np.ndarray, ranks_per_node: int) -> float:
    """Imbalance after aggregating ranks onto their nodes.

    Cross-platform projections care about node-level balance (a node is the
    unit that owns a network injection port and a memory system), so the
    per-rank values are summed per node before the max/mean ratio.
    """
    values = np.asarray(per_rank, dtype=np.float64)
    if ranks_per_node <= 0:
        raise ValueError("ranks_per_node must be positive")
    if values.size == 0:
        return 1.0
    if values.size % ranks_per_node != 0:
        raise ValueError(
            f"{values.size} ranks do not divide evenly into nodes of {ranks_per_node}"
        )
    per_node = values.reshape(-1, ranks_per_node).sum(axis=1)
    return load_imbalance(per_node)
