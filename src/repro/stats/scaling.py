"""Strong-scaling efficiency and speedup.

The paper's efficiency figures (4, 11, 12) are all computed "over 1 node":
efficiency at N nodes is ``T(1) / (N * T(N))`` and speedup is
``T(1) / T(N)``.  Superlinear values (> 1.0 efficiency) are legitimate and
expected for the compute phases once the working set fits in cache (§6).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np


def strong_scaling_efficiency(time_1node: float, time_n: float, n_nodes: int) -> float:
    """Efficiency of an N-node run relative to the 1-node run."""
    if n_nodes <= 0:
        raise ValueError("n_nodes must be positive")
    if time_1node < 0 or time_n < 0:
        raise ValueError("times must be non-negative")
    if time_n == 0:
        return 0.0 if time_1node == 0 else float("inf")
    return time_1node / (n_nodes * time_n)


def speedup_series(times: Mapping[int, float]) -> dict[int, float]:
    """Speedup over the smallest node count for a {nodes: time} series."""
    if not times:
        return {}
    base_nodes = min(times)
    base_time = times[base_nodes]
    out: dict[int, float] = {}
    for nodes, t in sorted(times.items()):
        out[nodes] = base_time / t if t > 0 else float("inf")
    return out


def efficiency_series(times: Mapping[int, float]) -> dict[int, float]:
    """Efficiency over the smallest node count for a {nodes: time} series.

    Efficiency at N nodes = speedup(N) / (N / base_nodes), so the base point
    is exactly 1.0 and perfect strong scaling stays at 1.0.
    """
    if not times:
        return {}
    base_nodes = min(times)
    speedups = speedup_series(times)
    return {nodes: speedups[nodes] * base_nodes / nodes for nodes in speedups}


def throughput_series(items: float, times: Mapping[int, float]) -> dict[int, float]:
    """Throughput (items/second) for a {nodes: time} series of a fixed workload."""
    if items < 0:
        raise ValueError("items must be non-negative")
    return {nodes: (items / t if t > 0 else 0.0) for nodes, t in sorted(times.items())}


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (0.0 for an empty sequence)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return 0.0
    if np.any(arr <= 0):
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.log(arr).mean()))
