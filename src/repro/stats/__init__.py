"""Statistics helpers: load balance, scaling efficiency, spectra, and quality.

These are the metrics the paper's evaluation section reports:

* load imbalance (max over mean of per-rank times/work), Figure 8,
* strong-scaling efficiency and speedup relative to one node, Figures 4,
  11 and 12,
* k-mer frequency spectra and overlap statistics used to validate the
  synthetic data sets against the paper's stated data characteristics,
* overlap recall/precision against the simulator's ground truth (the
  "ground truth is known" quality comparisons BELLA emphasises).
"""

from repro.stats.load_balance import load_imbalance, per_node_imbalance
from repro.stats.scaling import (
    efficiency_series,
    speedup_series,
    strong_scaling_efficiency,
)
from repro.stats.histograms import (
    kmer_spectrum,
    overlap_count_histogram,
    read_length_histogram,
)
from repro.stats.quality import overlap_recall_precision, OverlapQuality

__all__ = [
    "load_imbalance",
    "per_node_imbalance",
    "efficiency_series",
    "speedup_series",
    "strong_scaling_efficiency",
    "kmer_spectrum",
    "overlap_count_histogram",
    "read_length_histogram",
    "overlap_recall_precision",
    "OverlapQuality",
]
