"""Distribution summaries: k-mer spectra, overlap counts, read lengths.

Used to validate that the synthetic data sets have the characteristics the
paper's analysis relies on (singleton-dominated k-mer spectra, §6; read
length distributions, §5) and to report workload shape in the experiment
harness.
"""

from __future__ import annotations

import numpy as np

from repro.kmers.counter import KmerCounter
from repro.seq.kmer import KmerSpec
from repro.seq.records import ReadSet


def kmer_spectrum(reads: ReadSet, k: int = 17, max_multiplicity: int = 64) -> dict[str, object]:
    """k-mer frequency spectrum of a read set.

    Returns the multiplicity histogram plus the headline numbers the paper
    quotes: total k-mer instances, distinct k-mers, and the singleton
    fraction of the distinct set.
    """
    counter = KmerCounter(KmerSpec(k=k))
    counter.add_reads(reads)
    codes, counts = counter.counts()
    clamped = np.minimum(counts, max_multiplicity) if counts.size else counts
    hist = np.bincount(clamped, minlength=max_multiplicity + 1) if counts.size else np.zeros(
        max_multiplicity + 1, dtype=np.int64
    )
    return {
        "total_kmers": counter.total_kmers,
        "distinct_kmers": counter.distinct_kmers,
        "singleton_fraction": counter.singleton_fraction(),
        "histogram": hist,
        "max_multiplicity": int(counts.max(initial=0)),
    }


def overlap_count_histogram(pairs_per_read: np.ndarray, max_bin: int = 128) -> np.ndarray:
    """Histogram of overlaps-per-read (the degree distribution of the overlap graph)."""
    values = np.asarray(pairs_per_read, dtype=np.int64)
    if max_bin <= 0:
        raise ValueError("max_bin must be positive")
    if values.size == 0:
        return np.zeros(max_bin + 1, dtype=np.int64)
    return np.bincount(np.minimum(values, max_bin), minlength=max_bin + 1)


def read_length_histogram(reads: ReadSet, bin_width: int = 1000) -> dict[str, object]:
    """Read-length distribution summary (mean, N50, histogram by bin_width)."""
    if bin_width <= 0:
        raise ValueError("bin_width must be positive")
    lengths = reads.read_lengths()
    if lengths.size == 0:
        return {"mean": 0.0, "n50": 0, "histogram": np.zeros(1, dtype=np.int64)}
    sorted_desc = np.sort(lengths)[::-1]
    cumulative = np.cumsum(sorted_desc)
    half = cumulative[-1] / 2
    n50 = int(sorted_desc[np.searchsorted(cumulative, half)])
    bins = (lengths // bin_width).astype(np.int64)
    hist = np.bincount(bins)
    return {"mean": float(lengths.mean()), "n50": n50, "histogram": hist}
