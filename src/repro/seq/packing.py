"""2-bit packed wire codec for read-sequence blocks.

The alignment stage ships every fetched read across the network; with the
ASCII representation each base costs one byte.  The paper's cost model makes
that phase's exchange volume a first-order term at scale, and §3 notes that
"each k-mer character from the four letter alphabet {A,C,T,G} can be
represented with 2 bits" — the same observation minimap2 exploits for its
hot paths.  This module packs base codes four-to-a-byte so a read block
crosses the wire (and the shared-memory segments of the process backend) at
~1/4 of its ASCII size.

Two layers are provided:

* :func:`pack_codes` / :func:`unpack_codes` — the primitive codec turning a
  ``uint8`` 2-bit code array (``A=0, C=1, G=2, T=3``, see
  :mod:`repro.seq.alphabet`) into a packed ``uint8`` buffer and back.  Base
  ``j`` of the input occupies bits ``2*(j % 4) .. 2*(j % 4) + 1`` of output
  byte ``j // 4`` (little-endian within the byte); the final byte's unused
  high bits are zero.
* :class:`PackedReadBlock` / :func:`pack_read_block` — the alignment-stage
  *wire format*: many reads packed into one contiguous buffer, each read
  starting on a byte boundary, with RIDs and per-read base lengths carried
  in typed side arrays (the headers of the framing described in
  ``docs/wire-format.md``).

Ambiguous bases (``N``) never reach this codec: readers sanitise on ingest
(:func:`repro.seq.alphabet.sanitize`), and any code outside ``[0, 3]``
raises ``ValueError`` here rather than silently corrupting a neighbour's
bits.

This codec is deliberately distinct from
:func:`repro.seq.encoding.pack_2bit` / :func:`~repro.seq.encoding.unpack_2bit`:
those pack into ``uint64`` *words* (32 bases/word, most-significant lanes
first — the k-mer-code convention, used for hashing and memory accounting),
whereas the wire format needs **byte-granular** payloads so each read of a
block can start on a byte boundary and be sliced without realigning bits.
The two layouts are not interchangeable — always unpack with the function
matching the packer.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

__all__ = [
    "pack_codes",
    "unpack_codes",
    "packed_length",
    "PackedReadBlock",
    "pack_read_block",
]

#: Bases per packed byte.
BASES_PER_BYTE: int = 4

#: Bit shift of base ``j % 4`` within its byte.
_SHIFTS = np.arange(BASES_PER_BYTE, dtype=np.uint8) * np.uint8(2)


def packed_length(n_bases: int) -> int:
    """Bytes needed to store *n_bases* bases at four bases per byte.

    Parameters
    ----------
    n_bases:
        Number of bases (``>= 0``).

    Returns
    -------
    int
        ``ceil(n_bases / 4)``.
    """
    if n_bases < 0:
        raise ValueError(f"n_bases must be >= 0, got {n_bases}")
    return (n_bases + BASES_PER_BYTE - 1) // BASES_PER_BYTE


def pack_codes(codes: np.ndarray) -> np.ndarray:
    """Pack a ``uint8`` array of 2-bit base codes four-to-a-byte.

    Parameters
    ----------
    codes:
        1-D array of base codes in ``[0, 3]`` (any integer dtype).

    Returns
    -------
    numpy.ndarray
        ``uint8`` array of :func:`packed_length` bytes; base ``j`` sits in
        bits ``2*(j % 4)`` of byte ``j // 4``, trailing pad bits are zero.

    Raises
    ------
    ValueError
        If any code is outside ``[0, 3]`` (an unsanitised base would
        otherwise bleed into its neighbours' bits).
    """
    codes = np.ascontiguousarray(codes)
    if codes.ndim != 1:
        raise ValueError(f"codes must be 1-D, got shape {codes.shape}")
    if codes.size and (codes.min() < 0 or codes.max() > 3):
        raise ValueError("base codes must be in [0, 3]; sanitise reads on ingest")
    n = int(codes.size)
    if n == 0:
        return np.empty(0, dtype=np.uint8)
    padded = np.zeros(packed_length(n) * BASES_PER_BYTE, dtype=np.uint8)
    padded[:n] = codes
    lanes = padded.reshape(-1, BASES_PER_BYTE) << _SHIFTS
    return np.bitwise_or.reduce(lanes, axis=1).astype(np.uint8)


def unpack_codes(packed: np.ndarray, n_bases: int) -> np.ndarray:
    """Undo :func:`pack_codes`.

    Parameters
    ----------
    packed:
        ``uint8`` buffer produced by :func:`pack_codes` (or a slice of a
        :class:`PackedReadBlock` payload).
    n_bases:
        Original base count; trailing pad bits of the final byte are
        discarded.

    Returns
    -------
    numpy.ndarray
        ``uint8`` array of *n_bases* codes in ``[0, 3]``.
    """
    packed = np.ascontiguousarray(packed, dtype=np.uint8)
    if n_bases < 0:
        raise ValueError(f"n_bases must be >= 0, got {n_bases}")
    if packed.size < packed_length(n_bases):
        raise ValueError(
            f"packed buffer of {packed.size} bytes is too short for "
            f"{n_bases} bases ({packed_length(n_bases)} bytes needed)"
        )
    if n_bases == 0:
        return np.empty(0, dtype=np.uint8)
    expanded = (packed[: packed_length(n_bases), None] >> _SHIFTS) & np.uint8(3)
    return expanded.reshape(-1)[:n_bases]


@dataclass(frozen=True)
class PackedReadBlock:
    """A block of reads in the 2-bit packed wire format.

    This is the payload type the alignment stage's read exchange ships when
    ``PipelineConfig.wire_packing`` is on.  It crosses the typed collectives
    protocol natively (tag ``R``, see :mod:`repro.mpisim.serialization` and
    ``docs/wire-format.md``); the thread backend passes the (immutable)
    object by reference.

    Attributes
    ----------
    rids:
        ``(n_reads,) int64`` — read identifier of each read in the block.
    lengths:
        ``(n_reads,) int64`` — base count of each read; together with the
        byte-boundary rule this fully determines each read's slice of
        ``packed``.
    packed:
        ``(total_bytes,) uint8`` — the concatenated per-read 2-bit payloads.
        Read ``i`` occupies ``packed[byte_offsets[i] : byte_offsets[i+1]]``
        and every read starts on a byte boundary (``ceil(length / 4)`` bytes
        per read).
    """

    rids: np.ndarray
    lengths: np.ndarray
    packed: np.ndarray

    def __post_init__(self) -> None:
        if self.rids.size != self.lengths.size:
            raise ValueError("rids and lengths must have the same length")
        expected = int(np.sum((self.lengths + 3) // 4)) if self.lengths.size else 0
        if int(self.packed.size) != expected:
            raise ValueError(
                f"packed buffer has {self.packed.size} bytes, lengths imply {expected}"
            )

    @property
    def n_reads(self) -> int:
        """Number of reads in the block."""
        return int(self.rids.size)

    @cached_property
    def byte_offsets(self) -> np.ndarray:
        """``(n_reads + 1,) int64`` byte offset of each read within ``packed``."""
        per_read = (np.asarray(self.lengths, dtype=np.int64) + 3) // 4
        return np.concatenate(([0], np.cumsum(per_read))).astype(np.int64)

    @property
    def raw_nbytes(self) -> int:
        """ASCII-equivalent payload size: one byte per base."""
        return int(self.lengths.sum()) if self.lengths.size else 0

    @property
    def wire_nbytes(self) -> int:
        """Wire footprint of the block (headers + packed payload)."""
        return int(self.rids.nbytes + self.lengths.nbytes + self.packed.nbytes + 16)

    def codes(self, index: int) -> np.ndarray:
        """Unpack read *index* into a ``uint8`` 2-bit code array."""
        lo, hi = int(self.byte_offsets[index]), int(self.byte_offsets[index + 1])
        return unpack_codes(self.packed[lo:hi], int(self.lengths[index]))

    def packed_slice(self, index: int) -> np.ndarray:
        """Read *index*'s packed bytes (a view; no unpacking performed)."""
        lo, hi = int(self.byte_offsets[index]), int(self.byte_offsets[index + 1])
        return self.packed[lo:hi]

    @classmethod
    def empty(cls) -> "PackedReadBlock":
        """A block with no reads (the padding payload of an exchange)."""
        z = np.empty(0, dtype=np.int64)
        return cls(rids=z, lengths=z.copy(), packed=np.empty(0, dtype=np.uint8))


def pack_read_block(rids: np.ndarray, code_arrays: list[np.ndarray]) -> PackedReadBlock:
    """Pack per-read 2-bit code arrays into one :class:`PackedReadBlock`.

    Parameters
    ----------
    rids:
        Read identifier of each entry of *code_arrays* (same order).
    code_arrays:
        One ``uint8`` code array per read (e.g. the memoised encodings held
        by :class:`repro.align.read_cache.ReadCache`); every array is packed
        independently so each read starts on a byte boundary.

    Returns
    -------
    PackedReadBlock
        The block ready to cross the wire.
    """
    rids = np.asarray(rids, dtype=np.int64)
    if rids.size != len(code_arrays):
        raise ValueError(
            f"{rids.size} rids for {len(code_arrays)} code arrays"
        )
    if rids.size == 0:
        return PackedReadBlock.empty()
    lengths = np.fromiter((arr.size for arr in code_arrays), dtype=np.int64,
                          count=len(code_arrays))
    codes_all = (np.concatenate(code_arrays) if int(lengths.sum())
                 else np.empty(0, dtype=np.uint8))
    if codes_all.size and (codes_all.min() < 0 or codes_all.max() > 3):
        raise ValueError("base codes must be in [0, 3]; sanitise reads on ingest")
    # Scatter every read's codes into one zero-padded lane buffer where each
    # read starts on a 4-base (1-byte) boundary, then fold the four lanes of
    # each byte in one shot — the whole block packs without a per-read loop.
    per_read_bytes = (lengths + 3) // 4
    padded = np.zeros(int(per_read_bytes.sum()) * BASES_PER_BYTE, dtype=np.uint8)
    base_starts = np.concatenate(([0], np.cumsum(lengths)))[:-1]
    padded_starts = np.concatenate(([0], np.cumsum(per_read_bytes * BASES_PER_BYTE)))[:-1]
    within = np.arange(int(lengths.sum()), dtype=np.int64) - np.repeat(base_starts, lengths)
    padded[np.repeat(padded_starts, lengths) + within] = codes_all
    lanes = padded.reshape(-1, BASES_PER_BYTE) << _SHIFTS
    packed = np.bitwise_or.reduce(lanes, axis=1).astype(np.uint8)
    return PackedReadBlock(rids=rids, lengths=lengths, packed=packed)
