"""k-mer extraction, canonicalisation and hashing.

A k-mer of length ``k <= 31`` is represented as a single ``uint64`` *code*:
the concatenation of the 2-bit codes of its bases, most significant base
first.  This mirrors diBELLA's compact k-mer representation (§3) and lets the
whole pipeline move k-mers around as flat numpy integer arrays — the
communication-friendly layout the distributed stages rely on.

Reads come from either strand of the genome, so two overlapping reads may
share a k-mer only up to reverse complement.  As in BELLA/diBELLA, k-mers are
*canonicalised*: a k-mer and its reverse complement are mapped to the same
representative (the numerically smaller code), so strand does not affect
matching.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.seq.alphabet import DNA_ALPHABET
from repro.seq.encoding import encode_sequence

#: Largest k representable in a single uint64 code.
MAX_K: int = 31

#: Default k-mer length for long-read data (the paper's typical value, §2).
DEFAULT_K: int = 17


@dataclass(frozen=True)
class KmerSpec:
    """Parameters of the k-mer analysis.

    Attributes
    ----------
    k:
        k-mer length.  Must be in ``[1, MAX_K]``.  17 is typical for long
        reads (§2 of the paper).
    canonical:
        Whether to canonicalise k-mers across strands.  diBELLA always does;
        the flag exists so tests can exercise the raw forward extraction.
    """

    k: int = DEFAULT_K
    canonical: bool = True

    def __post_init__(self) -> None:
        if not (1 <= self.k <= MAX_K):
            raise ValueError(f"k must be in [1, {MAX_K}], got {self.k}")

    @property
    def code_mask(self) -> int:
        """Bit mask covering the 2*k low bits of a k-mer code."""
        return (1 << (2 * self.k)) - 1

    def kmers_in(self, read_length: int) -> int:
        """Number of k-mers in a read of the given length (L - k + 1, >= 0)."""
        return max(0, read_length - self.k + 1)


def kmer_string_to_code(kmer: str) -> int:
    """Convert a k-mer string (length <= 31) to its integer code."""
    if not (1 <= len(kmer) <= MAX_K):
        raise ValueError(f"k-mer length must be in [1, {MAX_K}], got {len(kmer)}")
    codes = encode_sequence(kmer)
    value = 0
    for c in codes:
        value = (value << 2) | int(c)
    return value


def kmer_code_to_string(code: int, k: int) -> str:
    """Convert an integer k-mer code back to its string form."""
    if not (1 <= k <= MAX_K):
        raise ValueError(f"k must be in [1, {MAX_K}], got {k}")
    chars = []
    for shift in range(2 * (k - 1), -2, -2):
        chars.append(DNA_ALPHABET[(code >> shift) & 3])
    return "".join(chars)


def reverse_complement_code(codes: np.ndarray | int, k: int) -> np.ndarray | int:
    """Reverse-complement k-mer code(s) arithmetically.

    With the ``A=0, C=1, G=2, T=3`` encoding the complement of a base code is
    ``3 - code``, so complementing a whole k-mer is a subtraction from the
    all-ones pattern; the reversal is done by reassembling the 2-bit fields in
    opposite order.
    """
    scalar = np.isscalar(codes)
    arr = np.atleast_1d(np.asarray(codes, dtype=np.uint64))
    mask = np.uint64((1 << (2 * k)) - 1)
    comp = (~arr) & mask  # complement every base (3 - code per 2-bit field)
    out = np.zeros_like(arr)
    for i in range(k):
        base = (comp >> np.uint64(2 * i)) & np.uint64(3)
        out |= base << np.uint64(2 * (k - 1 - i))
    if scalar:
        return int(out[0])
    return out


def canonical_code(code: int, k: int) -> int:
    """Return the canonical representative of a single k-mer code."""
    rc = reverse_complement_code(code, k)
    return code if code <= rc else int(rc)


def canonicalize_codes(codes: np.ndarray, k: int) -> np.ndarray:
    """Vectorised canonicalisation: elementwise min(code, revcomp(code))."""
    codes = np.asarray(codes, dtype=np.uint64)
    rc = reverse_complement_code(codes, k)
    return np.minimum(codes, rc)


def extract_kmer_codes(seq: str, spec: KmerSpec) -> np.ndarray:
    """Extract all k-mer codes of a read as a ``uint64`` array.

    The extraction is the vectorised rolling construction: the code of the
    k-mer starting at position ``i+1`` is the code at ``i`` shifted left by
    two bits, masked, plus the next base.  Implemented with a cumulative
    polynomial evaluation so there is no Python-level loop over positions.
    """
    codes2bit = encode_sequence(seq).astype(np.uint64)
    n = codes2bit.size
    k = spec.k
    if n < k:
        return np.empty(0, dtype=np.uint64)
    # Sliding windows over the 2-bit codes: shape (n-k+1, k) view, then a
    # dot product with the per-position place values collapses each window
    # into a single integer.  uint64 arithmetic wraps safely because
    # 2*k <= 62 bits.
    windows = np.lib.stride_tricks.sliding_window_view(codes2bit, k)
    weights = (np.uint64(1) << (np.uint64(2) * np.arange(k - 1, -1, -1, dtype=np.uint64)))
    kmers = (windows * weights).sum(axis=1, dtype=np.uint64)
    if spec.canonical:
        kmers = canonicalize_codes(kmers, k)
    return kmers


def extract_kmers_with_positions(seq: str, spec: KmerSpec) -> tuple[np.ndarray, np.ndarray]:
    """Extract (codes, positions) for every k-mer of a read.

    Positions are the 0-based offsets of the k-mer's first base in the read —
    the "location metadata" that stage 2 of the pipeline ships along with each
    k-mer instance (§7).
    """
    codes = extract_kmer_codes(seq, spec)
    positions = np.arange(codes.size, dtype=np.int64)
    return codes, positions


def extract_kmers_with_strand(seq: str, spec: KmerSpec
                              ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Extract (canonical codes, positions, is_forward) for every k-mer.

    ``is_forward[i]`` is True when the canonical representative equals the
    k-mer as it literally appears in the read, False when the canonical form
    is its reverse complement.  The pipeline ships this orientation bit with
    every occurrence so the alignment stage can put cross-strand read pairs
    into a consistent orientation before extending the seed (reads are
    sequenced from either strand of the genome).
    """
    raw = extract_kmer_codes(seq, KmerSpec(k=spec.k, canonical=False))
    positions = np.arange(raw.size, dtype=np.int64)
    if raw.size == 0:
        return raw, positions, np.empty(0, dtype=bool)
    rc = reverse_complement_code(raw, spec.k)
    canonical = np.minimum(raw, rc)
    is_forward = canonical == raw
    return canonical, positions, is_forward


def extract_kmers_batch(
    seqs: Sequence[str], spec: KmerSpec, with_strand: bool = False
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Extract the k-mers of a whole batch of reads from one concatenated encoding.

    Returns ``(codes, read_index, positions, is_forward)`` where
    ``read_index[i]`` is the index into *seqs* of the read containing k-mer
    ``i`` and ``positions[i]`` its 0-based offset in that read.  With
    ``with_strand=True`` the codes are canonicalised and ``is_forward``
    reports, per k-mer, whether the canonical representative is the literal
    forward orientation (matching :func:`extract_kmers_with_strand`);
    otherwise canonicalisation follows ``spec.canonical`` and ``is_forward``
    is empty.

    The whole batch is encoded once and the rolling k-mer construction runs
    over the single concatenated code array (k shifted-OR passes, no
    per-read Python loop); windows spanning a read boundary are masked out
    afterwards.  This is the batch counterpart of :func:`extract_kmer_codes`
    and what the pipeline's streaming supersteps call.
    """
    k = spec.k
    empty_u64 = np.empty(0, dtype=np.uint64)
    empty_i64 = np.empty(0, dtype=np.int64)
    empty_bool = np.empty(0, dtype=bool)
    if not seqs:
        return empty_u64, empty_i64, empty_i64, empty_bool

    lengths = np.array([len(s) for s in seqs], dtype=np.int64)
    concat = encode_sequence("".join(seqs)).astype(np.uint64)
    n = concat.size
    if n < k:
        return empty_u64, empty_i64, empty_i64, empty_bool

    # Rolling construction over the concatenation: k shifted-OR passes build
    # every window's code without materialising an (n, k) window matrix.
    n_windows = n - k + 1
    raw = np.zeros(n_windows, dtype=np.uint64)
    for i in range(k):
        raw = (raw << np.uint64(2)) | concat[i : n_windows + i]

    # A window starting at base t belongs to the read containing base t and
    # is valid only if it does not cross that read's end.
    starts = np.concatenate(([0], np.cumsum(lengths)))[:-1]
    read_of_base = np.repeat(np.arange(lengths.size, dtype=np.int64), lengths)
    read_index = read_of_base[:n_windows]
    positions = np.arange(n_windows, dtype=np.int64) - starts[read_index]
    valid = positions <= lengths[read_index] - k

    raw = raw[valid]
    read_index = read_index[valid]
    positions = positions[valid]

    if with_strand:
        rc = reverse_complement_code(raw, k)
        codes = np.minimum(raw, rc)
        is_forward = codes == raw
        return codes, read_index, positions, is_forward
    if spec.canonical:
        raw = canonicalize_codes(raw, k)
    return raw, read_index, positions, empty_bool


def iter_kmers(seq: str, k: int, canonical: bool = False) -> Iterator[str]:
    """Yield k-mer strings of *seq* in order (reference implementation).

    Used by tests as a slow oracle against the vectorised extraction.
    """
    spec = KmerSpec(k=k, canonical=False)
    codes = extract_kmer_codes(seq, spec)
    for code in codes:
        s = kmer_code_to_string(int(code), k)
        if canonical:
            c = canonical_code(int(code), k)
            s = kmer_code_to_string(c, k)
        yield s
