"""Sequence substrate: DNA alphabet, 2-bit encoding, k-mers, and read containers.

This subpackage provides the low-level building blocks that the rest of the
diBELLA pipeline is built on:

* :mod:`repro.seq.alphabet` — the DNA alphabet, validation, complement and
  reverse-complement operations.
* :mod:`repro.seq.encoding` — vectorised 2-bit packing of DNA into numpy
  integer arrays (the representation used for k-mer codes, see §3 of the
  paper: "Each k-mer character from the four letter alphabet {A,C,T,G} can be
  represented with 2 bits").
* :mod:`repro.seq.packing` — the 2-bit packed wire codec (4 bases/byte) and
  the :class:`PackedReadBlock` format the alignment-stage read exchange
  ships (see ``docs/wire-format.md``).
* :mod:`repro.seq.kmer` — k-mer extraction, canonicalisation and 64-bit k-mer
  codes, including the vectorised rolling extraction used by the pipeline.
* :mod:`repro.seq.records` — :class:`Read` and :class:`ReadSet` containers.
"""

from repro.seq.alphabet import (
    DNA_ALPHABET,
    BASE_TO_CODE,
    CODE_TO_BASE,
    complement,
    reverse_complement,
    is_valid_dna,
    sanitize,
)
from repro.seq.encoding import (
    encode_sequence,
    decode_sequence,
    pack_2bit,
    unpack_2bit,
)
from repro.seq.packing import (
    PackedReadBlock,
    pack_codes,
    pack_read_block,
    packed_length,
    unpack_codes,
)
from repro.seq.kmer import (
    KmerSpec,
    extract_kmer_codes,
    extract_kmers_with_positions,
    extract_kmers_with_strand,
    canonical_code,
    canonicalize_codes,
    kmer_code_to_string,
    kmer_string_to_code,
    reverse_complement_code,
    iter_kmers,
)
from repro.seq.records import Read, ReadSet

__all__ = [
    "DNA_ALPHABET",
    "BASE_TO_CODE",
    "CODE_TO_BASE",
    "complement",
    "reverse_complement",
    "is_valid_dna",
    "sanitize",
    "encode_sequence",
    "decode_sequence",
    "pack_2bit",
    "unpack_2bit",
    "PackedReadBlock",
    "pack_codes",
    "unpack_codes",
    "packed_length",
    "pack_read_block",
    "KmerSpec",
    "extract_kmer_codes",
    "extract_kmers_with_positions",
    "extract_kmers_with_strand",
    "canonical_code",
    "canonicalize_codes",
    "kmer_code_to_string",
    "kmer_string_to_code",
    "reverse_complement_code",
    "iter_kmers",
    "Read",
    "ReadSet",
]
