"""Vectorised 2-bit encoding of DNA sequences.

The paper (§3) notes that each base of the {A,C,G,T} alphabet is representable
in 2 bits and that diBELLA chooses a compile-time k-mer width rounded up to a
power of two (typically 32 or 64 bits).  Here sequences are encoded to
``uint8`` code arrays (one code per base) for general manipulation, and packed
into ``uint64`` words (32 bases per word) when a compact representation is
needed (e.g. for hashing whole reads or for memory accounting).

:func:`pack_2bit` / :func:`unpack_2bit` use the word-oriented layout
(most-significant lanes first within each ``uint64``); the *wire* codec in
:mod:`repro.seq.packing` packs byte-oriented instead (4 bases/byte,
least-significant lanes first) so read payloads can be sliced at byte
granularity.  The two layouts are not interchangeable — always unpack with
the function matching the packer.
"""

from __future__ import annotations

import numpy as np

from repro.seq.alphabet import CODE_TO_BASE, ascii_to_code_table

#: Number of bases packed into one 64-bit word.
BASES_PER_WORD: int = 32


def encode_sequence(seq: str) -> np.ndarray:
    """Encode a DNA string into a ``uint8`` array of 2-bit codes.

    Raises :class:`ValueError` if the sequence contains characters outside
    ``ACGTacgt`` — callers are expected to have sanitised reads on ingest
    (see :func:`repro.seq.alphabet.sanitize`).
    """
    if not seq:
        return np.empty(0, dtype=np.uint8)
    raw = np.frombuffer(seq.encode("ascii"), dtype=np.uint8)
    codes = ascii_to_code_table()[raw]
    if np.any(codes == 255):
        bad = seq[int(np.argmax(codes == 255))]
        raise ValueError(f"invalid DNA character {bad!r} in sequence")
    return codes


def decode_sequence(codes: np.ndarray) -> str:
    """Decode a ``uint8`` array of 2-bit codes back into a DNA string."""
    codes = np.asarray(codes, dtype=np.uint8)
    if codes.size == 0:
        return ""
    if codes.max(initial=0) > 3:
        raise ValueError("codes must be in [0, 3]")
    lut = np.frombuffer("".join(CODE_TO_BASE[i] for i in range(4)).encode("ascii"), dtype=np.uint8)
    return lut[codes].tobytes().decode("ascii")


def pack_2bit(codes: np.ndarray) -> tuple[np.ndarray, int]:
    """Pack an array of 2-bit base codes into ``uint64`` words.

    Returns ``(words, n_bases)`` where ``words`` is a ``uint64`` array with
    :data:`BASES_PER_WORD` bases per word (most significant bits first within
    a word) and ``n_bases`` is the original length, needed to undo the
    padding on unpack.
    """
    codes = np.asarray(codes, dtype=np.uint64)
    n = int(codes.size)
    n_words = (n + BASES_PER_WORD - 1) // BASES_PER_WORD
    padded = np.zeros(n_words * BASES_PER_WORD, dtype=np.uint64)
    padded[:n] = codes
    padded = padded.reshape(n_words, BASES_PER_WORD)
    shifts = np.arange(BASES_PER_WORD - 1, -1, -1, dtype=np.uint64) * np.uint64(2)
    words = np.bitwise_or.reduce(padded << shifts, axis=1)
    return words, n


def unpack_2bit(words: np.ndarray, n_bases: int) -> np.ndarray:
    """Unpack ``uint64`` words produced by :func:`pack_2bit` back into codes."""
    words = np.asarray(words, dtype=np.uint64)
    shifts = np.arange(BASES_PER_WORD - 1, -1, -1, dtype=np.uint64) * np.uint64(2)
    expanded = (words[:, None] >> shifts) & np.uint64(3)
    codes = expanded.reshape(-1)[:n_bases]
    return codes.astype(np.uint8)


def packed_nbytes(n_bases: int) -> int:
    """Number of bytes needed to store *n_bases* bases in 2-bit packing."""
    n_words = (n_bases + BASES_PER_WORD - 1) // BASES_PER_WORD
    return n_words * 8
