"""Read and read-set containers.

A :class:`Read` is a named long-read sequence (optionally with per-base
quality and with ground-truth provenance when it came from the synthetic
read simulator).  A :class:`ReadSet` is an ordered collection of reads with
stable integer read identifiers (RIDs) — the identifiers that flow through
the distributed hash table and the overlap stage in place of the sequences
themselves (§4 of the paper: "reads (represented by identifiers) as
vertices").
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np


@dataclass
class Read:
    """A single (long) read.

    Attributes
    ----------
    name:
        Read name, unique within a data set (FASTQ header without ``@``).
    sequence:
        The base string (upper-case ACGT after sanitising).
    quality:
        Optional FASTQ quality string, same length as ``sequence``.
    true_start / true_end / true_strand:
        Ground-truth mapping of the read onto the reference genome it was
        simulated from (half-open interval); ``None`` for real data.  These
        fields power the overlap oracle used by correctness tests and the
        recall statistics in the experiment harness.
    """

    name: str
    sequence: str
    quality: str | None = None
    true_start: int | None = None
    true_end: int | None = None
    true_strand: int = 1

    def __post_init__(self) -> None:
        if self.quality is not None and len(self.quality) != len(self.sequence):
            raise ValueError(
                f"quality length {len(self.quality)} != sequence length {len(self.sequence)}"
            )

    def __len__(self) -> int:
        return len(self.sequence)

    @property
    def nbytes(self) -> int:
        """In-memory size of the sequence payload (1 byte per base)."""
        return len(self.sequence)

    def has_truth(self) -> bool:
        """True if the read carries ground-truth genome coordinates."""
        return self.true_start is not None and self.true_end is not None


class ReadSet:
    """An ordered collection of reads addressed by integer read id (RID).

    RIDs are assigned in insertion order starting at 0 and are stable for the
    lifetime of the set.  The set also exposes the aggregate statistics the
    pipeline and the cost model need (total bases, average read length).
    """

    def __init__(self, reads: Iterable[Read] = ()) -> None:
        self._reads: list[Read] = list(reads)
        names = [r.name for r in self._reads]
        if len(set(names)) != len(names):
            raise ValueError("read names must be unique within a ReadSet")

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._reads)

    def __iter__(self) -> Iterator[Read]:
        return iter(self._reads)

    def __getitem__(self, rid: int) -> Read:
        return self._reads[rid]

    def add(self, read: Read) -> int:
        """Append a read and return its RID."""
        self._reads.append(read)
        return len(self._reads) - 1

    # -- aggregate statistics ------------------------------------------------

    @property
    def total_bases(self) -> int:
        """Total number of bases across all reads (N = G * d in the paper)."""
        return sum(len(r) for r in self._reads)

    @property
    def mean_read_length(self) -> float:
        """Average read length L; 0.0 for an empty set."""
        if not self._reads:
            return 0.0
        return self.total_bases / len(self._reads)

    def read_lengths(self) -> np.ndarray:
        """Array of read lengths in RID order."""
        return np.array([len(r) for r in self._reads], dtype=np.int64)

    def total_kmers(self, k: int) -> int:
        """Total number of k-mers parsed from the set (sum of L_i - k + 1)."""
        lengths = self.read_lengths()
        return int(np.maximum(lengths - k + 1, 0).sum())

    def subset(self, rids: Sequence[int]) -> "ReadSet":
        """Return a new ReadSet containing the given RIDs (re-numbered)."""
        return ReadSet(self._reads[r] for r in rids)

    def names(self) -> list[str]:
        """Read names in RID order."""
        return [r.name for r in self._reads]

    def fingerprint(self) -> str:
        """Content digest of the set: names and sequences in RID order.

        Used as the *generation tag* of the persistent rank pool's cross-run
        read caches: two runs share cached reads only when their read sets
        hash identically, so a pooled rank reused for a different data set
        can never serve a stale sequence.  blake2b streams at memory
        bandwidth, so this costs far less than one pipeline stage.
        """
        digest = hashlib.blake2b(digest_size=16)
        digest.update(str(len(self._reads)).encode("ascii"))
        for read in self._reads:
            digest.update(read.name.encode("utf-8", "surrogateescape"))
            digest.update(b"\x00")
            digest.update(read.sequence.encode("ascii"))
            digest.update(b"\x01")
        return digest.hexdigest()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReadSet(n_reads={len(self)}, total_bases={self.total_bases}, "
            f"mean_length={self.mean_read_length:.1f})"
        )
