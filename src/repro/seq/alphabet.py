"""DNA alphabet, validation and complement operations.

The four-letter alphabet {A, C, G, T} is mapped to the 2-bit codes
``A=0, C=1, G=2, T=3``.  This ordering has the convenient property that the
complement of a base code is ``3 - code``, which lets the reverse complement
of a packed k-mer be computed arithmetically (see
:func:`repro.seq.kmer.reverse_complement_code`).
"""

from __future__ import annotations

import numpy as np

#: The DNA alphabet in code order (index == 2-bit code).
DNA_ALPHABET: str = "ACGT"

#: Mapping from base character to its 2-bit code.
BASE_TO_CODE: dict[str, int] = {b: i for i, b in enumerate(DNA_ALPHABET)}

#: Mapping from 2-bit code to base character.
CODE_TO_BASE: dict[int, str] = {i: b for i, b in enumerate(DNA_ALPHABET)}

#: Complement pairs.
_COMPLEMENT: dict[str, str] = {"A": "T", "C": "G", "G": "C", "T": "A", "N": "N"}

# Lookup table (uint8 indexed by ASCII byte) from base to code; invalid = 255.
_ASCII_TO_CODE = np.full(256, 255, dtype=np.uint8)
for _b, _c in BASE_TO_CODE.items():
    _ASCII_TO_CODE[ord(_b)] = _c
    _ASCII_TO_CODE[ord(_b.lower())] = _c

# Lookup table from ASCII byte to complement ASCII byte; identity elsewhere.
_ASCII_COMPLEMENT = np.arange(256, dtype=np.uint8)
for _b, _c in _COMPLEMENT.items():
    _ASCII_COMPLEMENT[ord(_b)] = ord(_c)
    _ASCII_COMPLEMENT[ord(_b.lower())] = ord(_c.lower())


def ascii_to_code_table() -> np.ndarray:
    """Return the (read-only) 256-entry ASCII→2-bit-code lookup table.

    Entries for characters outside ``ACGTacgt`` are 255, which callers treat
    as "ambiguous base".
    """
    return _ASCII_TO_CODE


def is_valid_dna(seq: str) -> bool:
    """Return True if *seq* consists only of upper- or lower-case ACGT."""
    if not seq:
        return True
    arr = np.frombuffer(seq.encode("ascii"), dtype=np.uint8)
    return bool(np.all(_ASCII_TO_CODE[arr] != 255))


def sanitize(seq: str, replacement: str = "A") -> str:
    """Replace any non-ACGT character in *seq* with *replacement*.

    Long-read data contains occasional ambiguous bases (``N``); diBELLA's
    k-mer machinery operates on the 4-letter alphabet only, so readers
    sanitise on ingest.  ``replacement`` must be a single valid base.
    """
    if replacement not in BASE_TO_CODE:
        raise ValueError(f"replacement must be one of {DNA_ALPHABET!r}, got {replacement!r}")
    if is_valid_dna(seq):
        return seq.upper()
    arr = np.frombuffer(seq.upper().encode("ascii"), dtype=np.uint8).copy()
    bad = _ASCII_TO_CODE[arr] == 255
    arr[bad] = ord(replacement)
    return arr.tobytes().decode("ascii")


def complement(base: str) -> str:
    """Return the complement of a single base (``A<->T``, ``C<->G``)."""
    try:
        return _COMPLEMENT[base.upper()]
    except KeyError:
        raise ValueError(f"not a DNA base: {base!r}") from None


def reverse_complement(seq: str) -> str:
    """Return the reverse complement of *seq*.

    Vectorised via a byte-level lookup table; ``N`` maps to ``N``.
    """
    if not seq:
        return ""
    arr = np.frombuffer(seq.encode("ascii"), dtype=np.uint8)
    return _ASCII_COMPLEMENT[arr][::-1].tobytes().decode("ascii")
