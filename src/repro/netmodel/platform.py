"""Platform registry reproducing Table 1 of the paper.

Values marked "Table 1" are copied from the paper.  Values marked
"calibrated" are not in Table 1 and were chosen to reproduce the paper's
reported relative behaviour (e.g. "the AWS node has similar performance to a
Titan CPU node", §5; AWS "expected 10 Gigabit injection bandwidth", §5; the
commodity network scaling poorly, §10).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PlatformSpec:
    """Hardware balance point of one evaluated platform.

    Attributes
    ----------
    name / processor / network:
        Descriptive fields (Table 1).
    freq_ghz:
        Core clock frequency in GHz (Table 1).
    cores_per_node:
        Cores (and MPI ranks) per node (Table 1).
    intranode_latency_us:
        128-byte Get message latency in microseconds (Table 1).
    bw_node_mbps:
        Measured per-node bandwidth in MB/s with 8 KiB messages over ~2K
        cores (Table 1).  Reported for completeness (it is what Table 1
        prints); the exchange model uses ``effective_alltoall_bw_mbps``
        because the pipeline's aggregated Alltoallv messages are far larger
        than 8 KiB.
    effective_alltoall_bw_mbps:
        Calibrated effective per-node injection bandwidth for the large
        aggregated exchanges the pipeline performs (calibrated so the
        per-stage exchange shares and the cross-platform ordering match the
        paper's figures).
    memory_gb:
        Node memory in GB (Table 1).
    core_speed:
        Relative per-core, per-GHz computational throughput (calibrated;
        Cori's Haswell = 1.0).
    intranode_bw_mbps:
        Effective bandwidth for rank-to-rank traffic that stays on the node
        (calibrated: shared-memory transports run at a few GB/s).
    cache_mb_per_node:
        Last-level cache capacity per node, used by the superlinear-speedup
        model (calibrated from the processor generation).
    """

    name: str
    processor: str
    network: str
    freq_ghz: float
    cores_per_node: int
    intranode_latency_us: float
    bw_node_mbps: float
    effective_alltoall_bw_mbps: float
    memory_gb: int
    core_speed: float
    intranode_bw_mbps: float
    cache_mb_per_node: float

    @property
    def node_compute_power(self) -> float:
        """Aggregate per-node compute capability (cores × GHz × core_speed)."""
        return self.cores_per_node * self.freq_ghz * self.core_speed

    @property
    def memory_bytes(self) -> int:
        """Node memory in bytes."""
        return self.memory_gb * 1024**3


#: The four evaluated platforms (Table 1 + calibrated fields).
PLATFORMS: dict[str, PlatformSpec] = {
    "cori": PlatformSpec(
        name="Cori I (Cray XC40)",
        processor="Intel Xeon (Haswell)",
        network="Aries Dragonfly",
        freq_ghz=2.3,
        cores_per_node=32,
        intranode_latency_us=2.7,
        bw_node_mbps=113.0,
        effective_alltoall_bw_mbps=750.0,
        memory_gb=128,
        core_speed=1.0,
        intranode_bw_mbps=6000.0,
        cache_mb_per_node=40.0,
    ),
    "edison": PlatformSpec(
        name="Edison (Cray XC30)",
        processor="Intel Xeon (Ivy Bridge)",
        network="Aries Dragonfly",
        freq_ghz=2.4,
        cores_per_node=24,
        intranode_latency_us=0.8,
        bw_node_mbps=436.2,
        effective_alltoall_bw_mbps=700.0,
        memory_gb=64,
        core_speed=0.82,
        intranode_bw_mbps=5000.0,
        cache_mb_per_node=30.0,
    ),
    "titan": PlatformSpec(
        name="Titan (Cray XK7, CPU only)",
        processor="AMD Opteron 16-Core",
        network="Gemini 3D Torus",
        freq_ghz=2.2,
        cores_per_node=16,
        intranode_latency_us=1.1,
        bw_node_mbps=99.2,
        effective_alltoall_bw_mbps=300.0,
        memory_gb=32,
        core_speed=0.52,
        intranode_bw_mbps=3500.0,
        cache_mb_per_node=16.0,
    ),
    "aws": PlatformSpec(
        name="AWS c3.8xlarge cluster",
        processor="Intel Xeon (Ivy Bridge, virtualised)",
        network="10 GbE (placement group)",
        freq_ghz=2.8,
        cores_per_node=16,
        intranode_latency_us=3.0,
        bw_node_mbps=45.0,
        effective_alltoall_bw_mbps=70.0,
        memory_gb=60,
        core_speed=0.42,
        intranode_bw_mbps=3500.0,
        cache_mb_per_node=25.0,
    ),
}


def get_platform(name: str) -> PlatformSpec:
    """Look up a platform by its short name (``cori``, ``edison``, ``titan``, ``aws``)."""
    key = name.lower()
    if key not in PLATFORMS:
        raise KeyError(f"unknown platform {name!r}; known: {sorted(PLATFORMS)}")
    return PLATFORMS[key]


def list_platforms() -> list[str]:
    """Short names of all registered platforms, in the paper's Table 1 order."""
    return list(PLATFORMS.keys())


def table1_rows() -> list[dict[str, object]]:
    """Rows reproducing Table 1 (plus AWS, described in prose in §5)."""
    rows = []
    for key, spec in PLATFORMS.items():
        rows.append(
            {
                "platform": key,
                "name": spec.name,
                "processor": spec.processor,
                "freq_ghz": spec.freq_ghz,
                "cores_per_node": spec.cores_per_node,
                "intranode_latency_us": spec.intranode_latency_us,
                "bw_node_mbps": spec.bw_node_mbps,
                "memory_gb": spec.memory_gb,
                "network": spec.network,
            }
        )
    return rows
