"""Compute- and exchange-time models.

The models convert machine-independent measurements of a pipeline run —
work counters per rank and per-phase traffic matrices — into projected stage
times on a target platform.  They deliberately stay first-order:

* **Compute**: ``time = work / (rate × node_power × nodes × cache_factor) ×
  imbalance`` where the per-stage ``rate`` constants are calibrated against
  the paper's single-node throughputs, ``node_power`` comes from Table 1
  (cores × GHz × relative core speed) and ``cache_factor`` grows as the
  per-node working set shrinks below the last-level cache — reproducing the
  superlinear strong-scaling the paper observes (§6, §7).
* **Exchange**: a latency term per collective call plus a volume term charged
  at the platform's calibrated effective all-to-all bandwidth for traffic
  that leaves the node and at a (much higher) shared-memory rate for traffic
  that stays on the node.  The first global Alltoallv call carries an extra setup
  penalty, as observed in §10 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.mpisim.topology import Topology
from repro.mpisim.tracing import PhaseTraffic
from repro.netmodel.platform import PlatformSpec

#: Calibrated per-stage rates, in work units per second per (GHz × core ×
#: core_speed).  "Work units" are k-mer instances for the Bloom-filter and
#: hash-table stages, retained k-mer occurrences for the overlap stage, and
#: DP cells for the alignment stage.  Chosen so that single-node Cori rates
#: land near the paper's Figures 3, 5, 6 and 7.
DEFAULT_STAGE_RATES: dict[str, float] = {
    "kmers_bloom": 0.65e6,
    "kmers_hashtable": 1.55e6,
    "retained_kmers": 2.60e6,
    "dp_cells": 1.2e8,
    "generic": 1.0e6,
}


@dataclass(frozen=True)
class ComputeCostModel:
    """Projects per-rank work counters onto platform compute time.

    Attributes
    ----------
    stage_rates:
        Mapping from work-unit name to processing rate (see
        :data:`DEFAULT_STAGE_RATES`).
    cache_boost:
        Maximum superlinear speedup factor minus one: when the per-node
        working set is far below the last-level cache the effective rate is
        multiplied by ``1 + cache_boost``.
    """

    stage_rates: dict[str, float] = field(default_factory=lambda: dict(DEFAULT_STAGE_RATES))
    cache_boost: float = 0.7

    def rate_for(self, work_unit: str) -> float:
        """Rate for a work unit, falling back to the generic rate."""
        return self.stage_rates.get(work_unit, self.stage_rates["generic"])

    def cache_factor(self, bytes_per_node: float, platform: PlatformSpec) -> float:
        """Superlinear-speedup multiplier for a given per-node working set.

        1.0 when the working set is at least 8× the last-level cache,
        ramping linearly up to ``1 + cache_boost`` as it shrinks to fit.
        """
        cache_bytes = platform.cache_mb_per_node * 1e6
        if bytes_per_node <= 0:
            return 1.0 + self.cache_boost
        ratio = bytes_per_node / (8.0 * cache_bytes)
        fraction_cached = float(np.clip(1.0 - ratio, 0.0, 1.0))
        return 1.0 + self.cache_boost * fraction_cached

    def node_work(self, work_per_rank: np.ndarray, topology: Topology) -> np.ndarray:
        """Aggregate per-(simulated)-rank work onto nodes."""
        work_per_rank = np.asarray(work_per_rank, dtype=np.float64)
        if work_per_rank.shape[0] != topology.n_ranks:
            raise ValueError(
                f"work_per_rank has {work_per_rank.shape[0]} entries, "
                f"topology has {topology.n_ranks} ranks"
            )
        nodes = np.arange(topology.n_ranks) // topology.ranks_per_node
        return np.bincount(nodes, weights=work_per_rank, minlength=topology.n_nodes)

    def compute_time(
        self,
        work_per_rank: np.ndarray,
        work_unit: str,
        platform: PlatformSpec,
        topology: Topology,
        local_bytes_per_rank: np.ndarray | None = None,
        work_scale: float = 1.0,
    ) -> float:
        """Projected compute time of one stage on *platform*.

        The simulated topology's node count is taken as the platform node
        count; the platform's own cores-per-node (not the simulated
        ranks-per-node) determine per-node throughput, so a run simulated
        with few ranks per node still projects onto full nodes.
        ``work_scale`` linearly extrapolates the measured work to a larger
        input (the per-rank distribution, and hence the imbalance, is kept);
        the cache-effect factor stays based on the measured working set, which
        preserves the relative superlinear-speedup shape of the figures.
        """
        per_node = self.node_work(work_per_rank, topology)
        total = float(per_node.sum())
        if total == 0.0:
            return 0.0
        mean = total / topology.n_nodes
        imbalance = float(per_node.max() / mean) if mean > 0 else 1.0

        if local_bytes_per_rank is not None:
            bytes_per_node = float(np.asarray(local_bytes_per_rank, dtype=np.float64).sum()
                                   / topology.n_nodes)
        else:
            bytes_per_node = float("inf")
        factor = self.cache_factor(bytes_per_node, platform)

        rate = self.rate_for(work_unit)
        node_rate = rate * platform.node_compute_power * factor
        base = (total * work_scale) / (node_rate * topology.n_nodes)
        return base * imbalance


@dataclass(frozen=True)
class ExchangeCostModel:
    """Projects per-phase traffic matrices onto platform exchange time.

    Attributes
    ----------
    first_alltoallv_penalty:
        Fractional extra cost charged to the phase containing the first
        global Alltoallv (the paper observed the first call costing ~2× the
        second, §10): the phase's per-call cost is charged once more,
        scaled by this factor.
    per_rank_setup_us:
        Per-destination-rank software overhead of an irregular collective,
        charged per call (buffer bookkeeping, counts exchange).
    """

    first_alltoallv_penalty: float = 0.9
    per_rank_setup_us: float = 0.15
    #: Extra synchronisation rounds a hierarchical exchange pays beyond the
    #: flat engine's single round: the leader-to-leader and scatter hops each
    #: barrier once more, charged like one extra segment each.
    hier_extra_rounds: float = 2.0

    def segments_per_call(self, actual_ranks: int, topology: Topology) -> float:
        """Per-destination segments the busiest rank posts per collective call.

        The latency term charges the per-segment software overhead (buffer
        bookkeeping, counts exchange) at the busiest rank.  Flat ``alltoallv``
        posts one segment per destination rank: ``actual_ranks``.  With a
        grouped topology (``--collective hier``) the busiest rank is a group
        leader, which posts ``G−1`` cross-group segments plus one scatter
        segment per group member — ``ceil(actual_ranks / G)`` — plus the
        extra hop-synchronisation rounds; the non-leader ranks post a single
        gather segment.  This is where the hierarchy wins: the O(R) per-call
        segment count drops to O(G + R/G), while the volume terms below stay
        driven by the recorded traffic matrix (a hierarchical run records its
        hop volumes; a flat run projected onto a grouped topology keeps its
        flat volumes — a what-if on latency only).
        """
        if topology.groups is None:
            return float(actual_ranks)
        n_groups = topology.n_groups
        group_span = int(np.ceil(actual_ranks / n_groups))
        return float((n_groups - 1) + group_span + self.hier_extra_rounds)

    def _node_traffic(
        self, traffic: PhaseTraffic, topology: Topology
    ) -> tuple[np.ndarray, np.ndarray]:
        """Split traffic into per-node (off-node bytes sent, intra-node bytes)."""
        volume = traffic.volume
        n_ranks = topology.n_ranks
        if volume.shape != (n_ranks, n_ranks):
            raise ValueError(
                f"traffic matrix shape {volume.shape} does not match topology "
                f"({n_ranks} ranks)"
            )
        nodes = np.arange(n_ranks) // topology.ranks_per_node
        n_nodes = topology.n_nodes
        # Aggregate the rank-level matrix to node level.
        node_matrix = np.zeros((n_nodes, n_nodes), dtype=np.float64)
        np.add.at(node_matrix, (nodes[:, None], nodes[None, :]), volume)
        intra = np.diag(node_matrix).copy()
        off = node_matrix.sum(axis=1) - intra
        return off, intra

    def exchange_time(
        self,
        traffic: PhaseTraffic,
        platform: PlatformSpec,
        topology: Topology,
        includes_first_alltoallv: bool = False,
        volume_scale: float = 1.0,
    ) -> float:
        """Projected exchange time for one phase on *platform*.

        ``volume_scale`` linearly extrapolates the measured byte volumes to a
        larger input; per-call latency costs are not scaled (the number of
        bulk-synchronous phases does not grow with the input under the
        memory-bounded streaming design).
        """
        off, intra = self._node_traffic(traffic, topology)
        if off.sum() == 0 and intra.sum() == 0 and traffic.collective_calls == 0:
            return 0.0

        off_time = float(off.max(initial=0.0)) * volume_scale / (
            platform.effective_alltoall_bw_mbps * 1e6)
        intra_time = float(intra.max(initial=0.0)) * volume_scale / (
            platform.intranode_bw_mbps * 1e6)

        actual_ranks = topology.n_nodes * platform.cores_per_node
        calls = max(1, traffic.collective_calls)
        latency_time = (
            calls
            * self.segments_per_call(actual_ranks, topology)
            * (platform.intranode_latency_us + self.per_rank_setup_us)
            * 1e-6
        )

        total = off_time + intra_time + latency_time
        if includes_first_alltoallv:
            total += self.first_alltoallv_penalty * (total / calls + 5e-6 * actual_ranks)
        return total


@dataclass(frozen=True)
class CostModel:
    """Bundle of the compute and exchange models with shared defaults."""

    compute: ComputeCostModel = field(default_factory=ComputeCostModel)
    exchange: ExchangeCostModel = field(default_factory=ExchangeCostModel)
