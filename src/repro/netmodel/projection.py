"""Projection of a recorded pipeline run onto a target platform.

The pipeline (``repro.core``) produces, for each stage, a record with
per-rank work counters, per-rank working-set sizes and the names of the
communication phases the stage used.  :func:`project_pipeline` combines those
records with the run's :class:`~repro.mpisim.tracing.CommTrace` and a
:class:`~repro.netmodel.platform.PlatformSpec` to produce per-stage compute
and exchange times — the quantities plotted in Figures 3–13 of the paper.

The topology handed in flows straight to the exchange model, so a topology
carrying a rank→group map (a ``--collective hier`` run, or a grouped what-if
via :meth:`~repro.mpisim.topology.Topology.with_groups`) is projected with
the hierarchical per-call latency term — see
:meth:`~repro.netmodel.costmodel.ExchangeCostModel.segments_per_call` and
``docs/topology.md``.

The stage records are duck-typed (any object with the attributes named in
:class:`StageRecordLike`) so this module stays below ``repro.core`` in the
layering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Protocol, runtime_checkable

import numpy as np

from repro.mpisim.topology import Topology
from repro.mpisim.tracing import CommTrace
from repro.netmodel.costmodel import CostModel
from repro.netmodel.platform import PlatformSpec


@runtime_checkable
class StageRecordLike(Protocol):
    """The stage-record attributes the projection consumes."""

    name: str
    items: int
    work_unit: str

    @property
    def work_per_rank(self) -> np.ndarray: ...

    @property
    def local_bytes_per_rank(self) -> np.ndarray: ...

    @property
    def exchange_phases(self) -> list[str]: ...

    @property
    def includes_first_alltoallv(self) -> bool: ...


@dataclass(frozen=True)
class StageProjection:
    """Projected times for one pipeline stage on one platform."""

    stage: str
    platform: str
    n_nodes: int
    compute_seconds: float
    exchange_seconds: float
    items: int

    @property
    def total_seconds(self) -> float:
        """Compute plus exchange time."""
        return self.compute_seconds + self.exchange_seconds

    @property
    def items_per_second(self) -> float:
        """Throughput in stage items per second (0 for an instantaneous stage)."""
        if self.total_seconds <= 0:
            return 0.0
        return self.items / self.total_seconds


@dataclass(frozen=True)
class PipelineProjection:
    """Projected per-stage and total times for a full pipeline run."""

    platform: str
    n_nodes: int
    stages: tuple[StageProjection, ...]

    @property
    def total_seconds(self) -> float:
        """End-to-end projected time."""
        return sum(s.total_seconds for s in self.stages)

    @property
    def total_compute_seconds(self) -> float:
        """Sum of projected compute time over stages."""
        return sum(s.compute_seconds for s in self.stages)

    @property
    def total_exchange_seconds(self) -> float:
        """Sum of projected exchange time over stages."""
        return sum(s.exchange_seconds for s in self.stages)

    def stage(self, name: str) -> StageProjection:
        """Look up a stage projection by stage name."""
        for s in self.stages:
            if s.stage == name:
                return s
        raise KeyError(f"no stage named {name!r}; have {[s.stage for s in self.stages]}")

    def breakdown(self) -> dict[str, dict[str, float]]:
        """Per-stage {compute, exchange} seconds plus their percentage shares."""
        total = self.total_seconds
        out: dict[str, dict[str, float]] = {}
        for s in self.stages:
            out[s.stage] = {
                "compute_seconds": s.compute_seconds,
                "exchange_seconds": s.exchange_seconds,
                "compute_pct": 100.0 * s.compute_seconds / total if total > 0 else 0.0,
                "exchange_pct": 100.0 * s.exchange_seconds / total if total > 0 else 0.0,
            }
        return out


def project_stage(
    record: StageRecordLike,
    trace: CommTrace,
    platform: PlatformSpec,
    topology: Topology,
    model: CostModel | None = None,
    platform_key: str = "",
    scale: float = 1.0,
) -> StageProjection:
    """Project one stage record onto *platform*.

    ``scale`` linearly extrapolates the measured work and traffic to a larger
    input of the same shape (used by the experiment harness to project the
    scaled-down benchmark workloads onto the paper's full-size data sets —
    see EXPERIMENTS.md).  The reported ``items`` count is scaled accordingly
    so that throughput figures remain comparable with the paper's.
    """
    model = model or CostModel()
    compute = model.compute.compute_time(
        np.asarray(record.work_per_rank, dtype=np.float64),
        record.work_unit,
        platform,
        topology,
        local_bytes_per_rank=np.asarray(record.local_bytes_per_rank, dtype=np.float64),
        work_scale=scale,
    )
    exchange = 0.0
    for i, phase in enumerate(record.exchange_phases):
        traffic = trace.phase_traffic(phase)
        first = record.includes_first_alltoallv and i == 0
        exchange += model.exchange.exchange_time(
            traffic, platform, topology, includes_first_alltoallv=first,
            volume_scale=scale,
        )
    return StageProjection(
        stage=record.name,
        platform=platform_key or platform.name,
        n_nodes=topology.n_nodes,
        compute_seconds=compute,
        exchange_seconds=exchange,
        items=int(record.items * scale),
    )


def project_pipeline(
    records: Iterable[StageRecordLike],
    trace: CommTrace,
    platform: PlatformSpec,
    topology: Topology,
    model: CostModel | None = None,
    platform_key: str = "",
    scale: float = 1.0,
) -> PipelineProjection:
    """Project every stage of a pipeline run onto *platform*."""
    model = model or CostModel()
    stages = tuple(
        project_stage(rec, trace, platform, topology, model=model,
                      platform_key=platform_key, scale=scale)
        for rec in records
    )
    return PipelineProjection(
        platform=platform_key or platform.name,
        n_nodes=topology.n_nodes,
        stages=stages,
    )
