"""Platform specifications and the performance-projection model.

The paper evaluates diBELLA on four machines (Table 1): Cori (Cray XC40),
Edison (Cray XC30), Titan (Cray XK7, CPU partition) and an AWS c3.8xlarge
cluster.  The figures compare stage throughput, efficiency and runtime
breakdowns *across those machines*.  Because this reproduction runs on a
single host, per-platform times are not measured directly: the pipeline
records machine-independent counters (k-mers hashed, alignments computed, DP
cells filled, bytes exchanged per phase) and this subpackage projects them
onto each platform using

* the Table 1 hardware balance points (cores/node, clock, measured 8 KiB
  all-to-all bandwidth per node, intra-node latency), and
* calibration constants chosen so single-node absolute rates land in the
  same ballpark as the paper's single-node measurements.

The projection reproduces the paper's qualitative effects explicitly:
superlinear local-compute speedup once the per-rank working set fits in
cache (§6, Fig. 4), poor all-to-all scaling at high node counts (§10), the
first-Alltoallv setup penalty (§10), and the per-platform performance
ordering (Cori > Edison > Titan ≈ AWS for compute; AWS worst for exchange).
"""

from repro.netmodel.platform import PlatformSpec, PLATFORMS, get_platform, list_platforms
from repro.netmodel.costmodel import ComputeCostModel, ExchangeCostModel, CostModel
from repro.netmodel.projection import (
    StageProjection,
    PipelineProjection,
    project_stage,
    project_pipeline,
)

__all__ = [
    "PlatformSpec",
    "PLATFORMS",
    "get_platform",
    "list_platforms",
    "ComputeCostModel",
    "ExchangeCostModel",
    "CostModel",
    "StageProjection",
    "PipelineProjection",
    "project_stage",
    "project_pipeline",
]
