"""PacBio-like long-read simulator.

Long-read instruments (PacBio RS II in the paper's data sets) produce reads
whose lengths follow a heavy-tailed distribution around ~7-10 kbp and whose
errors are dominated by insertions and deletions at a total rate of 10-15%.
The simulator reproduces those characteristics at configurable scale:

* read start positions are uniform over the genome (circular or linear),
* read lengths are log-normal, clipped to a minimum,
* each read is taken from a uniformly random strand,
* errors are introduced per-base with configurable substitution / insertion /
  deletion mix.

Every simulated read carries its ground-truth genome interval and strand, so
tests and the experiment harness can compute exact overlap recall — the
"ground truth is known" comparisons BELLA's quality analysis relies on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.seq.alphabet import DNA_ALPHABET, reverse_complement
from repro.seq.records import Read, ReadSet


@dataclass(frozen=True)
class ReadSimSpec:
    """Parameters of the long-read simulator.

    Attributes
    ----------
    coverage:
        Target depth d: expected number of reads covering each genome base.
    mean_read_length:
        Mean read length L (bases).
    read_length_sigma:
        Sigma of the underlying normal for the log-normal length draw
        (0 produces constant-length reads).
    min_read_length:
        Reads shorter than this are clipped up to it.
    error_rate:
        Total per-base error probability (substitution + insertion +
        deletion).  PacBio-like data is ~0.10-0.15.
    sub_fraction / ins_fraction / del_fraction:
        Mix of error types; must sum to 1.
    circular:
        Treat the genome as circular (bacterial genomes are); reads may wrap.
    seed:
        RNG seed.
    """

    coverage: float = 30.0
    mean_read_length: int = 10_000
    read_length_sigma: float = 0.35
    min_read_length: int = 500
    error_rate: float = 0.12
    sub_fraction: float = 0.25
    ins_fraction: float = 0.45
    del_fraction: float = 0.30
    circular: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.coverage <= 0:
            raise ValueError("coverage must be positive")
        if self.mean_read_length <= 0:
            raise ValueError("mean_read_length must be positive")
        if self.min_read_length <= 0:
            raise ValueError("min_read_length must be positive")
        if not (0.0 <= self.error_rate < 1.0):
            raise ValueError("error_rate must be in [0, 1)")
        total = self.sub_fraction + self.ins_fraction + self.del_fraction
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"error type fractions must sum to 1, got {total}")


class ReadSimulator:
    """Simulates long reads from a genome according to a :class:`ReadSimSpec`."""

    def __init__(self, genome: str, spec: ReadSimSpec):
        if not genome:
            raise ValueError("genome must be non-empty")
        self.genome = genome
        self.spec = spec
        self._rng = np.random.default_rng(spec.seed)

    # -- internal helpers ----------------------------------------------------

    def _draw_length(self) -> int:
        spec = self.spec
        if spec.read_length_sigma <= 0:
            return max(spec.min_read_length, spec.mean_read_length)
        # Log-normal parameterised so that its mean equals mean_read_length.
        sigma = spec.read_length_sigma
        mu = np.log(spec.mean_read_length) - sigma * sigma / 2.0
        length = int(self._rng.lognormal(mean=mu, sigma=sigma))
        return max(spec.min_read_length, min(length, 4 * spec.mean_read_length))

    def _extract_fragment(self, start: int, length: int) -> str:
        g = self.genome
        n = len(g)
        if self.spec.circular:
            if start + length <= n:
                return g[start : start + length]
            # wrap around the origin
            return g[start:] + g[: (start + length) % n]
        return g[start : min(start + length, n)]

    def _apply_errors(self, fragment: str) -> str:
        spec = self.spec
        if spec.error_rate == 0 or not fragment:
            return fragment
        rng = self._rng
        n = len(fragment)
        # Per-base draw of (no error / substitution / insertion / deletion).
        p_err = spec.error_rate
        probs = np.array(
            [
                1.0 - p_err,
                p_err * spec.sub_fraction,
                p_err * spec.ins_fraction,
                p_err * spec.del_fraction,
            ]
        )
        events = rng.choice(4, size=n, p=probs)
        out: list[str] = []
        bases = DNA_ALPHABET
        for i, base in enumerate(fragment):
            ev = events[i]
            if ev == 0:  # match
                out.append(base)
            elif ev == 1:  # substitution: pick a different base
                choices = [b for b in bases if b != base]
                out.append(choices[rng.integers(0, 3)])
            elif ev == 2:  # insertion: keep the base and insert a random one
                out.append(base)
                out.append(bases[rng.integers(0, 4)])
            # ev == 3: deletion — emit nothing
        return "".join(out)

    # -- public API -----------------------------------------------------------

    def n_reads_for_coverage(self) -> int:
        """Number of reads needed to hit the target coverage (N = G*d / L)."""
        spec = self.spec
        return max(1, int(round(len(self.genome) * spec.coverage / spec.mean_read_length)))

    def simulate_read(self, index: int) -> Read:
        """Simulate a single read; *index* only affects the read name."""
        rng = self._rng
        n = len(self.genome)
        length = self._draw_length()
        if not self.spec.circular:
            length = min(length, n)
        start = int(rng.integers(0, n))
        if not self.spec.circular:
            start = int(rng.integers(0, max(1, n - length + 1)))
        fragment = self._extract_fragment(start, length)
        strand = 1 if rng.random() < 0.5 else -1
        if strand == -1:
            fragment = reverse_complement(fragment)
        sequence = self._apply_errors(fragment)
        return Read(
            name=f"sim_{index:07d}",
            sequence=sequence,
            quality=None,
            true_start=start,
            true_end=start + length,
            true_strand=strand,
        )

    def simulate(self, n_reads: int | None = None) -> ReadSet:
        """Simulate a full read set (default: enough reads for the coverage)."""
        if n_reads is None:
            n_reads = self.n_reads_for_coverage()
        if n_reads <= 0:
            raise ValueError("n_reads must be positive")
        return ReadSet(self.simulate_read(i) for i in range(n_reads))
