"""Synthetic genome generation with controllable repeat structure.

k-mer filtering in diBELLA exists because real genomes contain repeats: a
k-mer from a repeated region occurs in many reads and would otherwise
generate spurious overlap candidates (§2).  To exercise that code path the
synthetic genome is not uniform random DNA — a configurable fraction of it is
built by re-inserting copies of previously generated segments, which produces
high-frequency k-mers with the same qualitative effect as genomic repeats.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.seq.alphabet import DNA_ALPHABET
from repro.seq.encoding import decode_sequence


@dataclass(frozen=True)
class GenomeSpec:
    """Parameters of a synthetic genome.

    Attributes
    ----------
    length:
        Genome length G in bases.
    repeat_fraction:
        Fraction of the genome covered by repeated segments (0 disables
        repeats).  Real bacterial genomes are a few percent repetitive.
    repeat_length:
        Length of each repeated segment.
    gc_content:
        Probability of G or C at a random position (0.5 = uniform).
    seed:
        RNG seed; generation is fully deterministic given the spec.
    """

    length: int = 100_000
    repeat_fraction: float = 0.05
    repeat_length: int = 500
    gc_content: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError("genome length must be positive")
        if not (0.0 <= self.repeat_fraction < 1.0):
            raise ValueError("repeat_fraction must be in [0, 1)")
        if self.repeat_length <= 0:
            raise ValueError("repeat_length must be positive")
        if not (0.0 < self.gc_content < 1.0):
            raise ValueError("gc_content must be in (0, 1)")


def generate_genome(spec: GenomeSpec) -> str:
    """Generate a synthetic genome string according to *spec*.

    The genome is generated as a random base sequence; afterwards,
    ``repeat_fraction`` of its positions are overwritten with copies of a
    small library of repeat segments drawn from the genome itself, placed at
    random non-overlapping-ish offsets.  The result has exact length
    ``spec.length``.
    """
    rng = np.random.default_rng(spec.seed)
    gc = spec.gc_content
    # Base probabilities honouring GC content: A, C, G, T
    probs = np.array([(1 - gc) / 2, gc / 2, gc / 2, (1 - gc) / 2])
    codes = rng.choice(4, size=spec.length, p=probs).astype(np.uint8)

    if spec.repeat_fraction > 0 and spec.length > 2 * spec.repeat_length:
        target_repeat_bases = int(spec.length * spec.repeat_fraction)
        n_copies = max(2, target_repeat_bases // spec.repeat_length)
        # A small library of distinct repeat units keeps some k-mers at
        # moderate multiplicity rather than one unit at huge multiplicity.
        n_units = max(1, n_copies // 4)
        unit_starts = rng.integers(0, spec.length - spec.repeat_length, size=n_units)
        units = [codes[s : s + spec.repeat_length].copy() for s in unit_starts]
        for _ in range(n_copies):
            unit = units[rng.integers(0, n_units)]
            pos = int(rng.integers(0, spec.length - spec.repeat_length))
            codes[pos : pos + spec.repeat_length] = unit

    return decode_sequence(codes)


def genome_summary(genome: str) -> dict[str, float]:
    """Simple composition summary of a genome (length and base fractions)."""
    n = len(genome)
    if n == 0:
        return {"length": 0, **{b: 0.0 for b in DNA_ALPHABET}}
    counts = {b: genome.count(b) / n for b in DNA_ALPHABET}
    return {"length": float(n), **counts}
