"""Workload presets mirroring the paper's data sets, plus the overlap oracle.

The paper's two inputs are PacBio E. coli MG1655 data sets:

* **E. coli 30x** — 16,890 reads, mean length 9,958 bp, 266 MB FASTQ,
  2.27 M overlapping read pairs detected.
* **E. coli 100x** — 91,394 reads, mean length 6,934 bp, 929 MB FASTQ,
  24.87 M overlapping read pairs detected.

The presets below reproduce the *ratios* that drive pipeline behaviour
(coverage depth, error rate, read length relative to genome size) on a
scaled-down synthetic genome so the pure-Python pipeline stays tractable.
The ``scale`` parameter controls the genome size; coverage and error rate are
kept at the paper's values.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.genome import GenomeSpec, generate_genome
from repro.data.reads import ReadSimSpec, ReadSimulator
from repro.seq.records import ReadSet


@dataclass(frozen=True)
class DatasetSpec:
    """A named synthetic workload: genome spec + read-simulation spec."""

    name: str
    genome: GenomeSpec
    reads: ReadSimSpec

    @property
    def expected_total_bases(self) -> int:
        """Expected input size N = G * d (equation 1 of the paper)."""
        return int(self.genome.length * self.reads.coverage)


@dataclass
class Dataset:
    """A generated workload: the genome string, the reads, and the spec."""

    spec: DatasetSpec
    genome: str
    reads: ReadSet
    _true_overlaps: dict[tuple[int, int], int] | None = field(default=None, repr=False)

    @property
    def name(self) -> str:
        return self.spec.name

    def true_overlaps(self, min_overlap: int = 500) -> dict[tuple[int, int], int]:
        """Ground-truth overlapping read pairs (see :func:`true_overlaps`)."""
        if self._true_overlaps is None or min_overlap != 500:
            result = true_overlaps(self.reads, len(self.genome),
                                   circular=self.spec.reads.circular,
                                   min_overlap=min_overlap)
            if min_overlap == 500:
                self._true_overlaps = result
            return result
        return self._true_overlaps


def generate_dataset(spec: DatasetSpec) -> Dataset:
    """Generate the genome and reads for a :class:`DatasetSpec`."""
    genome = generate_genome(spec.genome)
    simulator = ReadSimulator(genome, spec.reads)
    reads = simulator.simulate()
    return Dataset(spec=spec, genome=genome, reads=reads)


# ---------------------------------------------------------------------------
# Presets
# ---------------------------------------------------------------------------

def ecoli30x_like(scale: float = 0.01, seed: int = 0) -> DatasetSpec:
    """E. coli 30x-like workload.

    ``scale=1.0`` would correspond to the full 4.6 Mbp genome; the default
    scale of 0.01 yields a ~46 kbp genome with the same 30x coverage, ~12%
    error and the paper's read length scaled by the same factor so that reads
    still span many k-mers while the total work stays laptop-sized.
    """
    genome_length = max(5_000, int(4_600_000 * scale))
    mean_read = max(1_000, int(10_000 * min(1.0, scale * 20)))
    return DatasetSpec(
        name=f"ecoli30x_like(scale={scale})",
        genome=GenomeSpec(length=genome_length, repeat_fraction=0.05,
                          repeat_length=max(200, mean_read // 10), seed=seed),
        reads=ReadSimSpec(coverage=30.0, mean_read_length=mean_read,
                          error_rate=0.12, seed=seed + 1),
    )


def ecoli100x_like(scale: float = 0.01, seed: int = 10) -> DatasetSpec:
    """E. coli 100x-like workload (higher depth, shorter reads, same genome).

    The paper's 100x data set has shorter reads (6,934 vs 9,958 bp mean) and
    a slightly higher error rate (P4-C2 chemistry); both are reflected here.
    """
    genome_length = max(5_000, int(4_600_000 * scale))
    mean_read = max(700, int(7_000 * min(1.0, scale * 20)))
    return DatasetSpec(
        name=f"ecoli100x_like(scale={scale})",
        genome=GenomeSpec(length=genome_length, repeat_fraction=0.05,
                          repeat_length=max(200, mean_read // 10), seed=seed),
        reads=ReadSimSpec(coverage=100.0, mean_read_length=mean_read,
                          error_rate=0.15, seed=seed + 1),
    )


def ecoli30x_sample_like(scale: float = 0.01, seed: int = 20) -> DatasetSpec:
    """The "E. coli 30x (sample)" input of Table 2: a ~20% subsample.

    Implemented as the 30x workload on a genome 20% the size, which produces
    roughly the same reduction in total work as subsampling reads does.
    """
    base = ecoli30x_like(scale=scale * 0.2, seed=seed)
    return DatasetSpec(name=f"ecoli30x_sample_like(scale={scale})",
                       genome=base.genome, reads=base.reads)


def tiny_dataset(seed: int = 42) -> DatasetSpec:
    """A very small workload for unit tests and the quickstart example."""
    return DatasetSpec(
        name="tiny",
        genome=GenomeSpec(length=8_000, repeat_fraction=0.03, repeat_length=200, seed=seed),
        reads=ReadSimSpec(coverage=15.0, mean_read_length=1_200, min_read_length=400,
                          error_rate=0.10, seed=seed + 1),
    )


# ---------------------------------------------------------------------------
# Ground-truth overlap oracle
# ---------------------------------------------------------------------------

def _interval_overlap_circular(a0: int, a1: int, b0: int, b1: int, n: int) -> int:
    """Overlap length of two arcs [a0,a1), [b0,b1) on a circle of size n.

    Intervals are given in unwrapped coordinates (end may exceed n).  The
    overlap is computed by checking the base interval plus both +-n shifts of
    one of them, which covers every wrap case for arcs shorter than n.
    """
    best = 0
    for shift in (-n, 0, n):
        lo = max(a0, b0 + shift)
        hi = min(a1, b1 + shift)
        best = max(best, hi - lo)
    return max(0, best)


def true_overlaps(reads: ReadSet, genome_length: int, *, circular: bool = True,
                  min_overlap: int = 500) -> dict[tuple[int, int], int]:
    """Ground-truth overlapping read pairs from simulated read coordinates.

    Returns a dict mapping RID pairs ``(i, j)`` with ``i < j`` to the length
    of their genomic overlap, for every pair whose source intervals overlap by
    at least *min_overlap* bases.  Reads without ground truth are skipped.

    The scan sorts reads by start coordinate and only compares each read with
    the reads whose intervals could still overlap it, so the cost is
    O(R log R + output) rather than O(R^2) — important for the 100x-like
    presets where R is in the thousands.
    """
    intervals: list[tuple[int, int, int]] = []  # (start, end, rid)
    for rid, read in enumerate(reads):
        if not read.has_truth():
            continue
        intervals.append((read.true_start, read.true_end, rid))
    intervals.sort()
    result: dict[tuple[int, int], int] = {}
    n = genome_length

    for idx, (a0, a1, rid_a) in enumerate(intervals):
        for b0, b1, rid_b in intervals[idx + 1 :]:
            if b0 >= a1:  # no further linear overlaps possible (sorted by start)
                break
            ov = min(a1, b1) - max(a0, b0)
            if ov >= min_overlap:
                key = (min(rid_a, rid_b), max(rid_a, rid_b))
                result[key] = max(result.get(key, 0), ov)

    if circular and n > 0:
        # Wrap-around pairs: reads whose unwrapped end exceeds n overlap reads
        # near the origin.  There are few of them, so a direct scan is fine.
        wrappers = [(a0, a1, rid) for (a0, a1, rid) in intervals if a1 > n]
        heads = [(b0, b1, rid) for (b0, b1, rid) in intervals if b0 < max(
            (a1 - n for (a0, a1, _r) in wrappers), default=0)]
        for a0, a1, rid_a in wrappers:
            for b0, b1, rid_b in heads:
                if rid_a == rid_b:
                    continue
                ov = _interval_overlap_circular(a0, a1, b0, b1, n)
                if ov >= min_overlap:
                    key = (min(rid_a, rid_b), max(rid_a, rid_b))
                    result[key] = max(result.get(key, 0), ov)
    return result
