"""Synthetic genomes and PacBio-like long reads.

The paper evaluates on two real PacBio E. coli data sets (30x and 100x
coverage).  Those FASTQ files are not redistributable and are too large for a
pure-Python environment anyway, so this subpackage provides the substitute
described in DESIGN.md: a genome generator with controllable repeat content
and a long-read simulator with a PacBio-like error model (indel-dominated,
10-15% error) and log-normal read-length distribution.  Presets scale the
E. coli workloads down while preserving coverage depth, error rate and the
read-length-to-genome-size ratio.
"""

from repro.data.genome import GenomeSpec, generate_genome
from repro.data.reads import ReadSimulator, ReadSimSpec
from repro.data.datasets import (
    DatasetSpec,
    generate_dataset,
    ecoli30x_like,
    ecoli100x_like,
    ecoli30x_sample_like,
    tiny_dataset,
    true_overlaps,
)

__all__ = [
    "GenomeSpec",
    "generate_genome",
    "ReadSimulator",
    "ReadSimSpec",
    "DatasetSpec",
    "generate_dataset",
    "ecoli30x_like",
    "ecoli100x_like",
    "ecoli30x_sample_like",
    "tiny_dataset",
    "true_overlaps",
]
