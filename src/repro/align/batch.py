"""Batch execution of alignment tasks.

The alignment stage of the pipeline receives, on every rank, a list of
alignment *tasks* — (read pair, seed) tuples — and runs the chosen kernel on
each locally ("once the reads are communicated, the alignment computation can
proceed independently in parallel", §9).  The :class:`BatchAligner` is that
local executor: it resolves read sequences, dispatches to the kernel, applies
the alignment-quality cutoff, and accumulates the work counters (alignments
performed, DP cells filled) that drive the performance projection and the
load-imbalance analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

import numpy as np

from repro.align.banded import banded_smith_waterman
from repro.align.batched_xdrop import (
    DEFAULT_XDROP_BAND,
    BatchedExtensionConfig,
    batched_extend,
)
from repro.align.read_cache import ReadCache
from repro.align.results import AlignmentResult
from repro.align.scoring import ScoringScheme
from repro.align.smith_waterman import smith_waterman
from repro.align.xdrop import xdrop_seed_extend
from repro.seq.alphabet import reverse_complement


@dataclass(frozen=True)
class AlignmentTask:
    """One pairwise alignment to perform.

    Attributes
    ----------
    rid_a / rid_b:
        Read identifiers of the pair (``rid_a < rid_b`` by convention).
    seed_pos_a / seed_pos_b:
        Position of the shared seed k-mer in each read (forward-strand
        coordinates of that read).
    same_strand:
        True when the seed occurs in the same orientation in both reads;
        False when read B must be reverse-complemented before extending
        (in which case ``seed_pos_b`` is remapped to reverse-complement
        coordinates by the kernel).
    """

    rid_a: int
    rid_b: int
    seed_pos_a: int
    seed_pos_b: int
    same_strand: bool = True


@dataclass(frozen=True)
class TaskBatch:
    """A flat batch of alignment tasks, structure-of-arrays style.

    The overlap stage emits one of these per rank instead of a Python list of
    :class:`AlignmentTask` objects, so task construction and the
    alignment-stage bookkeeping (which reads are needed, which results were
    accepted) stay vectorised.  The batch iterates as ``AlignmentTask``
    objects for the kernels and any caller that wants per-task views.
    """

    rid_a: np.ndarray        # (n,) int64
    rid_b: np.ndarray        # (n,) int64
    seed_pos_a: np.ndarray   # (n,) int64
    seed_pos_b: np.ndarray   # (n,) int64
    same_strand: np.ndarray  # (n,) bool

    def __post_init__(self) -> None:
        sizes = {self.rid_a.size, self.rid_b.size, self.seed_pos_a.size,
                 self.seed_pos_b.size, self.same_strand.size}
        if len(sizes) != 1:
            raise ValueError("all TaskBatch arrays must have the same length")

    def __len__(self) -> int:
        return int(self.rid_a.size)

    def task(self, index: int) -> AlignmentTask:
        """Materialise the *index*-th task."""
        return AlignmentTask(
            rid_a=int(self.rid_a[index]),
            rid_b=int(self.rid_b[index]),
            seed_pos_a=int(self.seed_pos_a[index]),
            seed_pos_b=int(self.seed_pos_b[index]),
            same_strand=bool(self.same_strand[index]),
        )

    def __iter__(self):
        for index in range(len(self)):
            yield self.task(index)

    def rids(self) -> np.ndarray:
        """Sorted unique RIDs referenced by any task in the batch."""
        if len(self) == 0:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate([self.rid_a, self.rid_b]))

    @classmethod
    def empty(cls) -> "TaskBatch":
        z = np.empty(0, dtype=np.int64)
        return cls(rid_a=z, rid_b=z.copy(), seed_pos_a=z.copy(), seed_pos_b=z.copy(),
                   same_strand=np.empty(0, dtype=bool))

    @classmethod
    def from_tasks(cls, tasks: Iterable[AlignmentTask]) -> "TaskBatch":
        """Build a batch from task objects (tests / compatibility helper)."""
        task_list = list(tasks)
        if not task_list:
            return cls.empty()
        return cls(
            rid_a=np.array([t.rid_a for t in task_list], dtype=np.int64),
            rid_b=np.array([t.rid_b for t in task_list], dtype=np.int64),
            seed_pos_a=np.array([t.seed_pos_a for t in task_list], dtype=np.int64),
            seed_pos_b=np.array([t.seed_pos_b for t in task_list], dtype=np.int64),
            same_strand=np.array([t.same_strand for t in task_list], dtype=bool),
        )


@dataclass
class BatchStats:
    """Work counters accumulated by a :class:`BatchAligner`."""

    alignments: int = 0
    cells: int = 0
    accepted: int = 0
    total_score: int = 0

    def record(self, result: AlignmentResult, accepted: bool) -> None:
        """Fold one alignment result into the counters."""
        self.alignments += 1
        self.cells += result.cells
        self.total_score += result.score
        if accepted:
            self.accepted += 1


@dataclass
class BatchAligner:
    """Runs alignment tasks against a read-sequence lookup.

    Parameters
    ----------
    sequences:
        Mapping from RID to read sequence.  In the distributed pipeline this
        holds the rank's local reads plus the remote reads fetched during the
        alignment-stage exchange.
    kernel:
        ``"xdrop"`` (default, the production kernel), ``"banded"`` or
        ``"full"``.
    k:
        Seed length (needed by the seeded kernels).
    xdrop:
        x-drop threshold for the x-drop kernel.
    band:
        Band half-width for the banded kernel.
    min_score:
        Alignments scoring below this are counted but not *accepted* —
        diBELLA's output filter for low-quality alignments.
    cache:
        Optional :class:`~repro.align.read_cache.ReadCache` memoising the
        encoded read buffers across tasks (and, in the pipeline, holding the
        sequences fetched from remote ranks).  A private cache is created
        when none is given, so encoded-buffer reuse and its hit/miss
        accounting are always on.
    """

    sequences: Mapping[int, str]
    kernel: str = "xdrop"
    k: int = 17
    scoring: ScoringScheme = field(default_factory=ScoringScheme)
    xdrop: int = 25
    band: int = DEFAULT_XDROP_BAND
    min_score: int = 0
    stats: BatchStats = field(default_factory=BatchStats)
    cache: ReadCache = field(default_factory=ReadCache)

    def __post_init__(self) -> None:
        if self.kernel not in ("xdrop", "banded", "full"):
            raise ValueError(f"unknown kernel {self.kernel!r}")

    def align(self, task: AlignmentTask) -> AlignmentResult:
        """Run one task and update the counters.

        Equivalent to ``align_all([task])[0]`` — in particular the x-drop
        kernel goes through the same banded batched code path regardless of
        batch size, so a task's score never depends on how it was batched.
        """
        if self.kernel == "xdrop":
            return self.align_all([task])[0]
        result = align_task(
            task,
            self.sequences,
            kernel=self.kernel,
            k=self.k,
            scoring=self.scoring,
            xdrop=self.xdrop,
            band=self.band,
        )
        self.stats.record(result, accepted=result.score >= self.min_score)
        return result

    def align_all(self, tasks: Iterable[AlignmentTask]) -> list[AlignmentResult]:
        """Run every task, returning results in task order.

        For the x-drop kernel *all* tasks — including singleton batches — are
        executed with the task-batched banded kernel
        (:mod:`repro.align.batched_xdrop`), which amortises the interpreter
        overhead over the whole batch and keeps scores independent of batch
        size; the other kernels run task-by-task.
        """
        task_list = list(tasks)
        if self.kernel != "xdrop" or not task_list:
            return [self.align(task) for task in task_list]
        results = batched_xdrop_align(
            task_list,
            self.sequences,
            k=self.k,
            scoring=self.scoring,
            xdrop=self.xdrop,
            band=self.band,
            cache=self.cache,
        )
        for result in results:
            self.stats.record(result, accepted=result.score >= self.min_score)
        return results


def align_task(
    task: AlignmentTask,
    sequences: Mapping[int, str],
    kernel: str = "xdrop",
    k: int = 17,
    scoring: ScoringScheme | None = None,
    xdrop: int = 25,
    band: int = DEFAULT_XDROP_BAND,
) -> AlignmentResult:
    """Align one task with the requested kernel (stateless helper).

    The ``"xdrop"`` kernel here is the *unbounded* scalar reference
    extension (:func:`repro.align.xdrop.xdrop_seed_extend`); the production
    path used by :class:`BatchAligner` is the banded batched kernel.
    """
    scoring = scoring or ScoringScheme()
    try:
        seq_a = sequences[task.rid_a]
        seq_b = sequences[task.rid_b]
    except KeyError as missing:
        raise KeyError(
            f"read {missing.args[0]} needed by task ({task.rid_a}, {task.rid_b}) "
            "is not available locally"
        ) from None

    seed_pos_b = task.seed_pos_b
    if not task.same_strand:
        # Cross-strand pair: orient read B onto read A's strand and remap the
        # seed position into reverse-complement coordinates.
        seq_b = reverse_complement(seq_b)
        seed_pos_b = len(seq_b) - k - task.seed_pos_b

    if kernel == "xdrop":
        # Clamp the seed so that degenerate positions near the read ends
        # (possible when the k-mer sits at the very end) still form a task.
        seed_a = min(max(0, task.seed_pos_a), max(0, len(seq_a) - k))
        seed_b = min(max(0, seed_pos_b), max(0, len(seq_b) - k))
        return xdrop_seed_extend(seq_a, seq_b, seed_a, seed_b, k,
                                 scoring=scoring, xdrop=xdrop)
    if kernel == "banded":
        diagonal = seed_pos_b - task.seed_pos_a
        return banded_smith_waterman(seq_a, seq_b, band=band, diagonal=diagonal,
                                     scoring=scoring)
    return smith_waterman(seq_a, seq_b, scoring=scoring)


def batched_xdrop_align(
    tasks: list[AlignmentTask],
    sequences: Mapping[int, str],
    k: int = 17,
    scoring: ScoringScheme | None = None,
    xdrop: int = 25,
    band: int = DEFAULT_XDROP_BAND,
    cache: ReadCache | None = None,
) -> list[AlignmentResult]:
    """Run a list of tasks through the task-batched banded x-drop kernel.

    Each task is split into a forward extension (from the end of its seed)
    and a backward extension (from the start of its seed, on reversed
    prefixes); the two extension batches run vectorised across all tasks and
    are recombined into per-task :class:`AlignmentResult` objects — the same
    decomposition the scalar :func:`repro.align.xdrop.xdrop_seed_extend`
    kernel uses.

    Every distinct read is encoded at most once through *cache* (tasks share
    reads heavily); reads appearing in cross-strand tasks get their reverse
    complement derived once as well.  Passing a persistent cache carries the
    buffers — and the hit/miss accounting — across calls.
    """
    scoring = scoring or ScoringScheme()
    if not tasks:
        return []

    cache = cache if cache is not None else ReadCache()
    if getattr(sequences, "cache", None) is not cache:
        for rid in sorted({task.rid_a for task in tasks}
                          | {task.rid_b for task in tasks}):
            # put() refreshes (and drops stale encodings) if the mapping changed.
            cache.put(rid, sequences[rid])
    # else: *sequences* is this cache's own lazy view — the entries are
    # already present, and re-putting would force the ASCII decode of every
    # read that arrived 2-bit packed.

    fwd_a: list[np.ndarray] = []
    fwd_b: list[np.ndarray] = []
    back_a: list[np.ndarray] = []
    back_b: list[np.ndarray] = []
    seeds: list[tuple[int, int]] = []
    for task in tasks:
        codes_a = cache.encoded(task.rid_a)
        if task.same_strand:
            codes_b = cache.encoded(task.rid_b)
            seed_pos_b = task.seed_pos_b
        else:
            codes_b = cache.encoded_rc(task.rid_b)
            seed_pos_b = codes_b.size - k - task.seed_pos_b
        seed_a = min(max(0, task.seed_pos_a), max(0, codes_a.size - k))
        seed_b = min(max(0, seed_pos_b), max(0, codes_b.size - k))
        seeds.append((seed_a, seed_b))
        fwd_a.append(codes_a[seed_a + k :])
        fwd_b.append(codes_b[seed_b + k :])
        back_a.append(codes_a[:seed_a][::-1])
        back_b.append(codes_b[:seed_b][::-1])

    config = BatchedExtensionConfig(xdrop=xdrop, band=band)
    fwd = batched_extend(fwd_a, fwd_b, scoring, config)
    back = batched_extend(back_a, back_b, scoring, config)

    results: list[AlignmentResult] = []
    for task, (seed_a, seed_b), f, b in zip(tasks, seeds, fwd, back):
        results.append(
            AlignmentResult(
                score=scoring.match * k + f.score + b.score,
                start_a=seed_a - b.length_a,
                end_a=seed_a + k + f.length_a,
                start_b=seed_b - b.length_b,
                end_b=seed_b + k + f.length_b,
                cells=f.cells + b.cells,
                kernel="xdrop",
            )
        )
    return results


KernelFunction = Callable[[AlignmentTask, Mapping[int, str]], AlignmentResult]
