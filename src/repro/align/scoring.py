"""Alignment scoring schemes.

A linear-gap scheme (match reward, mismatch and gap penalties) is what both
BELLA's x-drop kernel and the classic Smith–Waterman formulation use.  The
defaults are +1 match, -2 mismatch, -2 gap: with a 4-letter alphabet the
milder (+1, -1, -1) scheme has *positive* expected score on unrelated
sequences (the linear phase of local alignment statistics), which would stop
the x-drop rule from ever firing; the -2 penalties keep unrelated sequences
on a negative drift — preserving the paper's "x-drop returns much faster when
the two sequences are divergent" behaviour (§9) — while genuine long-read
overlaps (10-25% divergence) still extend with a strongly positive drift.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ScoringScheme:
    """Linear-gap alignment scoring.

    Attributes
    ----------
    match:
        Score added for a matching pair of bases (must be positive).
    mismatch:
        Score added for a mismatching pair (must be non-positive).
    gap:
        Score added per inserted/deleted base (must be non-positive).
    """

    match: int = 1
    mismatch: int = -2
    gap: int = -2

    def __post_init__(self) -> None:
        if self.match <= 0:
            raise ValueError("match score must be positive")
        if self.mismatch > 0:
            raise ValueError("mismatch score must be non-positive")
        if self.gap > 0:
            raise ValueError("gap score must be non-positive")

    def max_score(self, length: int) -> int:
        """Best possible score of an alignment spanning *length* bases."""
        return self.match * length
