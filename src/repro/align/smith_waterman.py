"""Full Smith–Waterman local alignment (reference kernel).

This is the O(|s|·|t|) dynamic program of §2 — too expensive for production
use on long reads, but exact, which makes it the oracle the banded and
x-drop kernels are validated against and the upper bound used in the
kernel-choice ablation.

The matrix is filled row by row with vectorised numpy operations across the
columns; an optional traceback materialises the gapped alignment strings so
tests can check the formal alignment properties listed in §2.
"""

from __future__ import annotations

import numpy as np

from repro.align.results import AlignmentResult
from repro.align.scoring import ScoringScheme
from repro.seq.encoding import encode_sequence


def smith_waterman(
    a: str,
    b: str,
    scoring: ScoringScheme | None = None,
    traceback: bool = False,
) -> AlignmentResult:
    """Optimal local alignment of *a* against *b*.

    Parameters
    ----------
    a, b:
        DNA sequences (ACGT).
    scoring:
        Scoring scheme; defaults to +1/-1/-1.
    traceback:
        If True, also reconstruct the gapped alignment strings (costs
        O(|a|·|b|) extra memory for the pointer matrix).
    """
    scoring = scoring or ScoringScheme()
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        return AlignmentResult(score=0, start_a=0, end_a=0, start_b=0, end_b=0,
                               cells=0, kernel="smith_waterman",
                               aligned_a="" if traceback else None,
                               aligned_b="" if traceback else None)

    codes_a = encode_sequence(a).astype(np.int16)
    codes_b = encode_sequence(b).astype(np.int16)

    match, mismatch, gap = scoring.match, scoring.mismatch, scoring.gap

    prev = np.zeros(m + 1, dtype=np.int32)
    score_matrix = np.zeros((n + 1, m + 1), dtype=np.int32) if traceback else None

    best_score = 0
    best_i = 0
    best_j = 0

    # Per-column weights for the prefix-max resolution of the within-row gap
    # dependency: S[i, j] = max_{j' <= j} (base[i, j'] + gap * (j - j')), so
    # subtracting gap*j, taking a running maximum, and adding gap*j back gives
    # the whole row without a Python loop over columns.
    gap_weights = gap * np.arange(1, m + 1, dtype=np.int32)

    for i in range(1, n + 1):
        # Substitution scores of row i against every column.
        sub = np.where(codes_b == codes_a[i - 1], match, mismatch).astype(np.int32)
        diag = prev[:-1] + sub          # match/mismatch from (i-1, j-1)
        up = prev[1:] + gap             # gap in b (deletion) from (i-1, j)
        current = np.zeros(m + 1, dtype=np.int32)
        base = np.maximum(np.maximum(diag, up), 0)
        running = np.maximum.accumulate(base - gap_weights)
        row = np.maximum(base, running + gap_weights)
        current[1:] = row
        if traceback:
            score_matrix[i, :] = current
        row_best = int(row.max(initial=0))
        if row_best > best_score:
            best_score = row_best
            best_i = i
            best_j = int(row.argmax()) + 1
        prev = current

    cells = n * m

    if best_score == 0:
        return AlignmentResult(score=0, start_a=0, end_a=0, start_b=0, end_b=0,
                               cells=cells, kernel="smith_waterman",
                               aligned_a="" if traceback else None,
                               aligned_b="" if traceback else None)

    if not traceback:
        # Without the full matrix we cannot recover the start coordinates
        # exactly; report the end point and a span bounded by the score.
        span = best_score // scoring.match if scoring.match else 0
        return AlignmentResult(
            score=best_score,
            start_a=max(0, best_i - span), end_a=best_i,
            start_b=max(0, best_j - span), end_b=best_j,
            cells=cells, kernel="smith_waterman",
        )

    # Traceback from (best_i, best_j) until a zero cell.
    aligned_a: list[str] = []
    aligned_b: list[str] = []
    i, j = best_i, best_j
    while i > 0 and j > 0 and score_matrix[i, j] > 0:
        score_here = score_matrix[i, j]
        sub = match if a[i - 1] == b[j - 1] else mismatch
        if score_here == score_matrix[i - 1, j - 1] + sub:
            aligned_a.append(a[i - 1])
            aligned_b.append(b[j - 1])
            i -= 1
            j -= 1
        elif score_here == score_matrix[i - 1, j] + gap:
            aligned_a.append(a[i - 1])
            aligned_b.append("-")
            i -= 1
        elif score_here == score_matrix[i, j - 1] + gap:
            aligned_a.append("-")
            aligned_b.append(b[j - 1])
            j -= 1
        else:  # pragma: no cover - defensive; recurrence guarantees one branch
            break

    return AlignmentResult(
        score=best_score,
        start_a=i, end_a=best_i,
        start_b=j, end_b=best_j,
        cells=cells, kernel="smith_waterman",
        aligned_a="".join(reversed(aligned_a)),
        aligned_b="".join(reversed(aligned_b)),
    )
