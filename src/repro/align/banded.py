"""Banded Smith–Waterman restricted to a diagonal band.

The first of the two speed-ups §2 describes: "in place of full dynamic
programming for pairwise alignment, one can search only for solutions with a
limited number of mismatches (banded Smith-Waterman)".  The band is centred
on the diagonal implied by the seed (``start_b - start_a``); cells outside
the band are never evaluated, making the cost O(min(|a|,|b|) · band).
"""

from __future__ import annotations

import numpy as np

from repro.align.results import AlignmentResult
from repro.align.scoring import ScoringScheme
from repro.seq.encoding import encode_sequence

#: Effectively -infinity for int32 scores without risking overflow on adds.
_NEG_INF = np.int32(-(2**30))


def banded_smith_waterman(
    a: str,
    b: str,
    band: int = 64,
    diagonal: int = 0,
    scoring: ScoringScheme | None = None,
) -> AlignmentResult:
    """Local alignment of *a* vs *b* within ``|j - i - diagonal| <= band``.

    Parameters
    ----------
    band:
        Half-width of the band (in diagonals) around the centre diagonal.
    diagonal:
        Centre diagonal (``j - i``); 0 aligns the sequences head-to-head,
        a seed at (pa, pb) implies ``diagonal = pb - pa``.
    """
    if band <= 0:
        raise ValueError("band must be positive")
    scoring = scoring or ScoringScheme()
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        return AlignmentResult(score=0, start_a=0, end_a=0, start_b=0, end_b=0,
                               cells=0, kernel="banded")

    codes_a = encode_sequence(a).astype(np.int16)
    codes_b = encode_sequence(b).astype(np.int16)
    match, mismatch, gap = scoring.match, scoring.mismatch, scoring.gap

    # prev[j] holds row i-1 restricted to the band; cells outside are -inf so
    # they can never seed a positive-score path.
    prev = np.zeros(m + 1, dtype=np.int32)
    best_score = 0
    best_i = 0
    best_j = 0
    cells = 0

    for i in range(1, n + 1):
        lo = max(1, i + diagonal - band)
        hi = min(m, i + diagonal + band)
        if lo > hi:
            continue
        width = hi - lo + 1
        cells += width

        sub = np.where(codes_b[lo - 1 : hi] == codes_a[i - 1], match, mismatch).astype(np.int32)
        diag_scores = prev[lo - 1 : hi] + sub
        up_scores = prev[lo : hi + 1] + gap

        current = np.full(m + 1, _NEG_INF, dtype=np.int32)
        base = np.maximum(np.maximum(diag_scores, up_scores), 0)
        # Left-within-row gap dependency via the prefix-max identity (the band
        # covers consecutive columns, so consecutive slots differ by one gap).
        gap_weights = gap * np.arange(width, dtype=np.int32)
        running = np.maximum.accumulate(base - gap_weights)
        row = np.maximum(base, running + gap_weights)
        current[lo : hi + 1] = row

        row_best = int(row.max(initial=0))
        if row_best > best_score:
            best_score = row_best
            best_i = i
            best_j = lo + int(row.argmax())
        prev = current

    span = best_score // scoring.match if scoring.match else 0
    return AlignmentResult(
        score=best_score,
        start_a=max(0, best_i - span), end_a=best_i,
        start_b=max(0, best_j - span), end_b=best_j,
        cells=cells, kernel="banded",
    )
