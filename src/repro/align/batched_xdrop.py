"""Task-batched banded x-drop extension.

The alignment stage of a rank holds thousands of independent alignment
tasks.  Running the scalar x-drop kernel task-by-task spends almost all of
its time in Python/numpy call overhead, because each anti-diagonal of each
task is a tiny array.  This module vectorises *across tasks*: all tasks
advance one DP row per iteration, so every numpy operation touches an
``(active_tasks, band)`` matrix and the interpreter overhead is amortised
over the whole batch — the "vectorise the outer loop" idiom the HPC guides
recommend.

Algorithmically this is a *banded* x-drop extension: each task's DP is
restricted to a fixed-width band around the seed diagonal (the paper's
"banded Smith-Waterman" speed-up, §2) and terminates early once the best
score of the current row falls more than ``xdrop`` below the task's best
score so far (the x-drop rule, §2).  Divergent pairs therefore stop after a
few rows, exactly the early-exit behaviour responsible for the paper's
alignment-stage load imbalance.

The left-within-row gap dependency is resolved without a per-column loop via
the prefix-maximum identity

    S[i, j] = max_j' <= j ( base[i, j'] + gap * (j - j') )
            = gap * j + running_max_j' <= j ( base[i, j'] - gap * j' )

computed with ``np.maximum.accumulate`` along the band axis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.align.results import ExtensionResult
from repro.align.scoring import ScoringScheme

#: Sentinel code used to pad sequences; never equal to a real base code.
_PAD = 250
_NEG_INF = np.int32(-(2**28))

#: Default band half-width shared by every x-drop entry point.  The scalar
#: and batched paths historically disagreed (33 vs 64), which made the same
#: task score differently depending on batch size; everything now references
#: this single constant (also the :class:`repro.core.config.PipelineConfig`
#: default).
DEFAULT_XDROP_BAND: int = 64


@dataclass(frozen=True)
class BatchedExtensionConfig:
    """Parameters of the batched extension kernel."""

    xdrop: int = 25
    band: int = DEFAULT_XDROP_BAND
    max_rows: int | None = None

    def __post_init__(self) -> None:
        if self.xdrop <= 0:
            raise ValueError("xdrop must be positive")
        if self.band < 3:
            raise ValueError("band must be at least 3")
        if self.max_rows is not None and self.max_rows < 1:
            raise ValueError("max_rows must be positive when given")


def _pad_sequences(seqs: list[np.ndarray]) -> np.ndarray:
    """Stack variable-length code arrays into one padded uint8 matrix.

    One flat ``np.concatenate`` plus a masked scatter instead of a per-row
    Python loop: the boolean mask of valid cells is row-major, so assigning
    the concatenated codes through it fills each row's prefix in order —
    the rows of the loop version, without row-count interpreter overhead.
    """
    n = len(seqs)
    lengths = np.fromiter((s.size for s in seqs), dtype=np.int64, count=n)
    max_len = int(lengths.max(initial=0))
    out = np.full((n, max_len + 1), _PAD, dtype=np.uint8)
    if n and lengths.any():
        flat = np.concatenate(seqs).astype(np.uint8, copy=False)
        mask = np.arange(max_len + 1, dtype=np.int64)[None, :] < lengths[:, None]
        out[mask] = flat
    return out


def batched_extend(
    seqs_a: list[np.ndarray],
    seqs_b: list[np.ndarray],
    scoring: ScoringScheme,
    config: BatchedExtensionConfig,
) -> list[ExtensionResult]:
    """Extend every (a, b) pair from its origin (0, 0), banded with x-drop.

    Parameters
    ----------
    seqs_a, seqs_b:
        Per-task 2-bit code arrays to align from their starts (suffixes for
        forward extensions, reversed prefixes for backward ones).
    scoring:
        Linear-gap scoring.
    config:
        Band width, x-drop threshold and optional row cap.

    Returns
    -------
    list[ExtensionResult]
        One result per task, in input order.
    """
    n_tasks = len(seqs_a)
    if n_tasks != len(seqs_b):
        raise ValueError("seqs_a and seqs_b must have the same length")
    if n_tasks == 0:
        return []

    match, mismatch, gap = scoring.match, scoring.mismatch, scoring.gap
    band = config.band
    half = band // 2

    len_a = np.array([s.size for s in seqs_a], dtype=np.int64)
    len_b = np.array([s.size for s in seqs_b], dtype=np.int64)

    a_pad = _pad_sequences(seqs_a)
    b_pad = _pad_sequences(seqs_b)

    max_rows = int(len_a.max(initial=0))
    if config.max_rows is not None:
        max_rows = min(max_rows, config.max_rows)

    # Results (global, indexed by original task id).
    best_score = np.zeros(n_tasks, dtype=np.int64)
    best_i = np.zeros(n_tasks, dtype=np.int64)
    best_j = np.zeros(n_tasks, dtype=np.int64)
    cells = np.zeros(n_tasks, dtype=np.int64)

    # Active working set (compacted periodically).
    active = np.arange(n_tasks)

    # Row 0 of the band: cell (0, j) has score gap * j for j in [0, half],
    # -inf for j outside b or left of the band.
    w_idx = np.arange(band)
    j0 = w_idx - half  # column of band slot w at row 0
    prev = np.where(
        (j0 >= 0) & (j0[None, :] <= len_b[active, None]),
        (gap * np.maximum(j0, 0))[None, :],
        _NEG_INF,
    ).astype(np.int64)

    gap_j = gap * w_idx  # per-slot gap weight used by the prefix-max trick

    for row in range(1, max_rows + 1):
        if active.size == 0:
            break

        la = len_a[active]
        lb = len_b[active]

        # Column of band slot w at this row: j = row - half + w.
        j = row - half + w_idx[None, :]  # (1, band) broadcast over tasks
        j_valid = (j >= 0) & (j <= lb[:, None])

        # Substitution scores: compare a[row-1] against b[j-1].
        a_col = a_pad[active, min(row - 1, a_pad.shape[1] - 1)]
        b_cols = np.clip(j - 1, 0, b_pad.shape[1] - 1)
        b_vals = b_pad[active[:, None], b_cols]
        sub = np.where(b_vals == a_col[:, None], match, mismatch)
        sub_valid = j_valid & (j >= 1) & (row <= la)[:, None]

        # Diagonal predecessor S[row-1, j-1] sits at the same band slot.
        diag = np.where(sub_valid, prev + sub, _NEG_INF)
        # Up predecessor S[row-1, j] sits one slot to the right.
        up = np.full_like(prev, _NEG_INF)
        up[:, :-1] = prev[:, 1:]
        up = np.where(j_valid & (row <= la)[:, None], up + gap, _NEG_INF)

        base = np.maximum(diag, up)
        # Left-within-row dependency via the prefix-max identity.
        shifted = base - gap_j[None, :]
        running = np.maximum.accumulate(shifted, axis=1)
        current = np.maximum(base, running + gap_j[None, :])
        current = np.where(j_valid & (row <= la)[:, None], current, _NEG_INF)

        cells[active] += band

        # Track the best cell of every active task.
        row_best_slot = np.argmax(current, axis=1)
        row_best = current[np.arange(active.size), row_best_slot]
        improved = row_best > best_score[active]
        if improved.any():
            improved_tasks = active[improved]
            best_score[improved_tasks] = row_best[improved]
            best_i[improved_tasks] = row
            best_j[improved_tasks] = (row - half + row_best_slot)[improved]

        # x-drop termination plus end-of-sequence termination.
        alive = (row_best >= best_score[active] - config.xdrop) & (row < la)
        if not alive.all():
            active = active[alive]
            prev = current[alive]
        else:
            prev = current

    return [
        ExtensionResult(
            score=int(best_score[t]),
            length_a=int(best_i[t]),
            length_b=int(best_j[t]),
            cells=int(cells[t]),
        )
        for t in range(n_tasks)
    ]
