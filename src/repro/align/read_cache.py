"""Per-rank cache of read sequences and their 2-bit encodings.

The alignment stage fetches every non-local read its tasks touch and then
encodes each read before extension.  Tasks share reads heavily (a read that
overlaps many others appears in many tasks), so both the fetched sequence
and its encoded buffer are worth caching per rank:

* ``put``/``get_sequence`` hold fetched (or local) sequences keyed by RID, so
  a RID already cached is never re-requested from its owner rank;
* ``put_packed`` inserts a read straight off the 2-bit packed wire format
  (see :mod:`repro.seq.packing`) **without** materialising its ASCII string —
  the packed buffer is unpacked into a code array on first use and the
  string is only ever decoded if a consumer explicitly asks for it;
* ``encoded``/``encoded_rc`` memoise the uint8 code arrays (forward and
  reverse-complement), so repeated tasks against the same read reuse one
  buffer instead of re-encoding per task.

Hit/miss counters cover the encoded-buffer lookups (the per-task hot path);
``fetch_hits`` counts remote fetches avoided because the sequence was already
present.  The pipeline surfaces all three in the run's counters.

The cache can be byte-bounded (``capacity_bytes``; 0 = unbounded): entries
are kept in least-recently-used order (dict insertion order, refreshed on
access) and :meth:`trim` evicts from the LRU end until the cache fits.  The
pipeline calls ``trim`` only at alignment-stage *exit* — never mid-stage —
because :meth:`missing` has already promised the aligner that the filtered
RIDs are resident; evicting one mid-run would turn that promise into a
``KeyError``.  Capacity is charged as one byte per base (the decoded
sequence string dominates a fully-materialised entry; memoised code buffers
are counted implicitly by the same measure).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

import numpy as np

from repro.seq.encoding import decode_sequence, encode_sequence
from repro.seq.packing import unpack_codes

__all__ = ["ReadCache"]


@dataclass
class _Entry:
    """One cached read: at least one of ``sequence``/``codes``/``packed`` set.

    ``sequence`` may be ``None`` for reads that arrived 2-bit packed and were
    never needed as text; ``packed`` holds the undecoded wire bytes until the
    first encoded-buffer access unpacks (and then drops) them.
    """

    sequence: str | None = None
    codes: np.ndarray | None = None
    codes_rc: np.ndarray | None = None
    packed: np.ndarray | None = None
    length: int = -1

    def n_bases(self) -> int:
        if self.sequence is not None:
            return len(self.sequence)
        if self.codes is not None:
            return int(self.codes.size)
        return self.length


@dataclass
class ReadCache:
    """RID-keyed cache of sequences and encoded buffers with hit accounting.

    Attributes
    ----------
    hits / misses:
        Encoded-buffer lookups served from (respectively computed into) the
        cache — the per-task hot path of the x-drop kernel.
    fetch_hits:
        Remote fetches avoided because :meth:`missing` found the sequence
        already cached (nonzero across pooled runs over the same read set).
    capacity_bytes:
        Byte bound enforced by :meth:`trim` (0 = unbounded, the default).
    evictions / evicted_bytes:
        Entries (and their base counts) evicted by capacity trims.
    """

    _entries: dict[int, _Entry] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0
    fetch_hits: int = 0
    capacity_bytes: int = 0
    evictions: int = 0
    evicted_bytes: int = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, rid: int) -> bool:
        return rid in self._entries

    def _touch(self, rid: int) -> None:
        """Mark *rid* most-recently-used (move to the dict's insertion tail)."""
        entry = self._entries.pop(rid)
        self._entries[rid] = entry

    # -- sequence level ------------------------------------------------------

    def put(self, rid: int, sequence: str) -> None:
        """Insert (or refresh) the sequence of *rid*.

        A changed sequence drops the stale entry (and its encodings); a
        matching one is a no-op, so repeated puts keep the memoised buffers.
        An entry that arrived packed and matches *sequence* simply gains the
        memoised string.
        """
        entry = self._entries.get(rid)
        if entry is None:
            self._entries[int(rid)] = _Entry(sequence=sequence)
            return
        if entry.sequence is None:
            # Packed entry: compare in code space (cheaper than decoding and
            # avoids materialising a throwaway string on mismatch).
            if (entry.n_bases() == len(sequence)
                    and np.array_equal(self._codes_of(entry), encode_sequence(sequence))):
                entry.sequence = sequence
            else:
                self._entries[int(rid)] = _Entry(sequence=sequence)
        elif entry.sequence != sequence:
            self._entries[int(rid)] = _Entry(sequence=sequence)

    def put_packed(self, rid: int, packed: np.ndarray, length: int) -> None:
        """Insert *rid* straight off the 2-bit packed wire format.

        Parameters
        ----------
        packed:
            The read's packed bytes (a :meth:`PackedReadBlock.packed_slice`).
            Kept as-is; unpacked lazily on the first encoded-buffer access.
        length:
            The read's base count (trailing pad bits are not data).

        An already-cached RID is left untouched — read sequences are
        immutable within a data-set generation, so the existing entry (and
        its memoised encodings) wins.
        """
        if rid in self._entries:
            self._touch(int(rid))
            return
        self._entries[int(rid)] = _Entry(packed=np.asarray(packed, dtype=np.uint8),
                                         length=int(length))

    def get_sequence(self, rid: int) -> str:
        """The cached sequence of *rid*, decoding lazily (KeyError if absent)."""
        entry = self._entries[rid]
        self._touch(rid)
        if entry.sequence is None:
            entry.sequence = decode_sequence(self._codes_of(entry))
        return entry.sequence

    def missing(self, rids: np.ndarray) -> np.ndarray:
        """The subset of *rids* not yet cached (the reads still to fetch).

        RIDs filtered out here count as ``fetch_hits`` — remote fetches the
        cache made unnecessary.
        """
        rids = np.asarray(rids, dtype=np.int64)
        if rids.size == 0 or not self._entries:
            return rids
        cached = np.fromiter(self._entries.keys(), dtype=np.int64, count=len(self._entries))
        present = np.isin(rids, cached)
        self.fetch_hits += int(present.sum())
        return rids[~present]

    def sequences(self) -> dict[int, str]:
        """RID → sequence dict over everything cached.

        Forces the lazy decode of every packed entry; the pipeline uses
        :meth:`sequence_view` instead so fetched reads whose ASCII form is
        never needed are never decoded.
        """
        return {rid: self.get_sequence(rid) for rid in self._entries}

    def sequence_view(self) -> "_SequenceView":
        """A read-only RID → sequence mapping that decodes lazily per access."""
        return _SequenceView(self)

    def total_bases(self) -> int:
        """Total bases cached, computed without decoding packed entries."""
        return sum(entry.n_bases() for entry in self._entries.values())

    def bases_cached(self, rids: np.ndarray) -> int:
        """Total bases of the given cached RIDs (absent RIDs contribute 0).

        Computed without decoding packed entries; used by the pipeline's
        memory accounting to measure exactly the reads a task set touches,
        independent of whatever else (served reads, previous pooled runs)
        the cache happens to hold.
        """
        return sum(entry.n_bases()
                   for rid in np.asarray(rids, dtype=np.int64).tolist()
                   if (entry := self._entries.get(rid)) is not None)

    # -- capacity ------------------------------------------------------------

    def trim(self, capacity_bytes: int | None = None) -> int:
        """Evict least-recently-used entries until the cache fits the bound.

        Parameters
        ----------
        capacity_bytes:
            Byte bound to trim to; defaults to the cache's own
            ``capacity_bytes``.  ``0`` (or ``None`` with an unbounded cache)
            is a no-op.

        Returns
        -------
        int
            Number of entries evicted.

        Only ever called at alignment-stage exit — mid-stage eviction could
        remove a read :meth:`missing` already reported as resident.
        """
        bound = self.capacity_bytes if capacity_bytes is None else int(capacity_bytes)
        if bound <= 0 or not self._entries:
            return 0
        total = self.total_bases()
        evicted = 0
        lru = iter(list(self._entries.keys()))
        while total > bound:
            try:
                rid = next(lru)
            except StopIteration:  # pragma: no cover - total hits 0 first
                break
            entry = self._entries.pop(rid)
            total -= entry.n_bases()
            self.evicted_bytes += entry.n_bases()
            evicted += 1
        self.evictions += evicted
        return evicted

    def evict_rids_at_or_above(self, min_rid: int) -> int:
        """Drop every entry with RID ``>= min_rid``; returns the count dropped.

        The serve phase's correctness eviction: query RIDs are reused by
        every batch (``n_index + position``), and :meth:`put_packed` keeps
        existing entries, so yesterday's query read must leave the persistent
        cache before today's batch reuses its RID.  Not counted as a
        capacity eviction.
        """
        stale = [rid for rid in self._entries if rid >= min_rid]
        for rid in stale:
            del self._entries[rid]
        return len(stale)

    # -- encoded level -------------------------------------------------------

    def _codes_of(self, entry: _Entry) -> np.ndarray:
        """The entry's forward code array, unpacking/encoding it on first use."""
        if entry.codes is None:
            if entry.packed is not None:
                entry.codes = unpack_codes(entry.packed, entry.length)
                entry.packed = None  # the codes supersede the wire bytes
            else:
                entry.codes = encode_sequence(entry.sequence)
        return entry.codes

    def encoded(self, rid: int) -> np.ndarray:
        """The 2-bit code array of *rid*, encoded (or unpacked) at most once."""
        entry = self._entries[rid]
        self._touch(rid)
        if entry.codes is None:
            self.misses += 1
            self._codes_of(entry)
        else:
            self.hits += 1
        return entry.codes

    def encoded_rc(self, rid: int) -> np.ndarray:
        """The reverse-complement code array of *rid*, derived at most once.

        Complement of a 2-bit code is ``3 - code``; the reverse complement is
        computed from the cached forward encoding, so a cross-strand task
        costs one extra buffer the first time and nothing after.
        """
        entry = self._entries[rid]
        self._touch(rid)
        if entry.codes_rc is None:
            self.misses += 1
            entry.codes_rc = (3 - self.encoded_peek(rid))[::-1].astype(np.uint8)
        else:
            self.hits += 1
        return entry.codes_rc

    def encoded_peek(self, rid: int) -> np.ndarray:
        """Forward encoding without touching the hit/miss counters."""
        return self._codes_of(self._entries[rid])

    # -- reporting -----------------------------------------------------------

    def counters(self) -> dict[str, int]:
        """Counter snapshot in the pipeline's counter-dict convention."""
        return {
            "read_cache_hits": self.hits,
            "read_cache_misses": self.misses,
            "read_cache_fetch_hits": self.fetch_hits,
            "read_cache_evictions": self.evictions,
            "read_cache_evicted_bytes": self.evicted_bytes,
        }


class _SequenceView(Mapping[int, str]):
    """Lazy RID → sequence mapping over a :class:`ReadCache`.

    Handed to the :class:`~repro.align.batch.BatchAligner` in place of a
    materialised dict: the x-drop hot path consumes the memoised 2-bit
    buffers directly, so a read fetched in packed form is only decoded to
    ASCII if a string-consuming kernel (banded/full) actually subscripts it.
    """

    __slots__ = ("cache",)

    def __init__(self, cache: ReadCache):
        self.cache = cache

    def __getitem__(self, rid: int) -> str:
        try:
            return self.cache.get_sequence(rid)
        except KeyError:
            raise KeyError(rid) from None

    def __len__(self) -> int:
        return len(self.cache)

    def __iter__(self) -> Iterator[int]:
        return iter(self.cache._entries)

    def __contains__(self, rid: object) -> bool:
        return rid in self.cache._entries
