"""Per-rank cache of read sequences and their 2-bit encodings.

The alignment stage fetches every non-local read its tasks touch and then
encodes each read before extension.  Tasks share reads heavily (a read that
overlaps many others appears in many tasks), so both the fetched sequence
and its encoded buffer are worth caching per rank:

* ``put``/``get_sequence`` hold fetched (or local) sequences keyed by RID, so
  a RID already cached is never re-requested from its owner rank;
* ``encoded``/``encoded_rc`` memoise the uint8 code arrays (forward and
  reverse-complement), so repeated tasks against the same read reuse one
  buffer instead of re-encoding per task.

Hit/miss counters cover the encoded-buffer lookups (the per-task hot path);
``fetch_hits`` counts remote fetches avoided because the sequence was already
present.  The pipeline surfaces all three in the run's counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.seq.encoding import encode_sequence

__all__ = ["ReadCache"]


@dataclass
class _Entry:
    sequence: str
    codes: np.ndarray | None = None
    codes_rc: np.ndarray | None = None


@dataclass
class ReadCache:
    """RID-keyed cache of sequences and encoded buffers with hit accounting."""

    _entries: dict[int, _Entry] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0
    fetch_hits: int = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, rid: int) -> bool:
        return rid in self._entries

    # -- sequence level ------------------------------------------------------

    def put(self, rid: int, sequence: str) -> None:
        """Insert (or refresh) the sequence of *rid*."""
        entry = self._entries.get(rid)
        if entry is None or entry.sequence != sequence:
            self._entries[int(rid)] = _Entry(sequence)

    def get_sequence(self, rid: int) -> str:
        """The cached sequence of *rid* (KeyError if absent)."""
        return self._entries[rid].sequence

    def missing(self, rids: np.ndarray) -> np.ndarray:
        """The subset of *rids* not yet cached (the reads still to fetch).

        RIDs filtered out here count as ``fetch_hits`` — remote fetches the
        cache made unnecessary.
        """
        rids = np.asarray(rids, dtype=np.int64)
        if rids.size == 0 or not self._entries:
            return rids
        cached = np.fromiter(self._entries.keys(), dtype=np.int64, count=len(self._entries))
        present = np.isin(rids, cached)
        self.fetch_hits += int(present.sum())
        return rids[~present]

    def sequences(self) -> dict[int, str]:
        """RID → sequence view over everything cached (for the aligner)."""
        return {rid: entry.sequence for rid, entry in self._entries.items()}

    # -- encoded level -------------------------------------------------------

    def encoded(self, rid: int) -> np.ndarray:
        """The 2-bit code array of *rid*, encoded at most once."""
        entry = self._entries[rid]
        if entry.codes is None:
            self.misses += 1
            entry.codes = encode_sequence(entry.sequence)
        else:
            self.hits += 1
        return entry.codes

    def encoded_rc(self, rid: int) -> np.ndarray:
        """The reverse-complement code array of *rid*, derived at most once.

        Complement of a 2-bit code is ``3 - code``; the reverse complement is
        computed from the cached forward encoding, so a cross-strand task
        costs one extra buffer the first time and nothing after.
        """
        entry = self._entries[rid]
        if entry.codes_rc is None:
            self.misses += 1
            entry.codes_rc = (3 - self.encoded_peek(rid))[::-1].astype(np.uint8)
        else:
            self.hits += 1
        return entry.codes_rc

    def encoded_peek(self, rid: int) -> np.ndarray:
        """Forward encoding without touching the hit/miss counters."""
        entry = self._entries[rid]
        if entry.codes is None:
            entry.codes = encode_sequence(entry.sequence)
        return entry.codes

    # -- reporting -----------------------------------------------------------

    def counters(self) -> dict[str, int]:
        """Counter snapshot in the pipeline's counter-dict convention."""
        return {
            "read_cache_hits": self.hits,
            "read_cache_misses": self.misses,
            "read_cache_fetch_hits": self.fetch_hits,
        }
