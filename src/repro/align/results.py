"""Result containers shared by the alignment kernels."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ExtensionResult:
    """Result of extending an alignment in one direction from a fixed point.

    Attributes
    ----------
    score:
        Best alignment score reached during the extension (>= 0).
    length_a / length_b:
        How far the best-scoring extension reached into each sequence,
        measured from the extension origin.
    cells:
        Number of DP cells evaluated — the work counter used by the cost
        model and the load-imbalance analysis.
    """

    score: int
    length_a: int
    length_b: int
    cells: int


@dataclass(frozen=True)
class AlignmentResult:
    """A pairwise alignment of (a segment of) two sequences.

    Coordinates are 0-based half-open intervals on each input sequence; the
    alignment covers ``a[start_a:end_a]`` against ``b[start_b:end_b]``.

    Attributes
    ----------
    score:
        Alignment score under the scoring scheme used by the kernel.
    start_a / end_a / start_b / end_b:
        Aligned interval on each sequence.
    cells:
        DP cells evaluated to produce this alignment (work counter).
    kernel:
        Name of the kernel that produced the result (``"xdrop"``,
        ``"banded"``, ``"smith_waterman"``).
    aligned_a / aligned_b:
        Optional gapped alignment strings (only produced by kernels asked for
        a traceback; ``None`` otherwise).  When present they satisfy the
        pairwise-alignment properties of §2 of the paper: equal length, no
        column with two gaps, and removing gaps recovers the aligned
        substrings.
    """

    score: int
    start_a: int
    end_a: int
    start_b: int
    end_b: int
    cells: int
    kernel: str
    aligned_a: str | None = None
    aligned_b: str | None = None

    @property
    def span_a(self) -> int:
        """Number of bases of sequence *a* covered by the alignment."""
        return self.end_a - self.start_a

    @property
    def span_b(self) -> int:
        """Number of bases of sequence *b* covered by the alignment."""
        return self.end_b - self.start_b

    def identity(self) -> float | None:
        """Fraction of alignment columns that are exact matches.

        Only available when the kernel produced a traceback; ``None``
        otherwise.
        """
        if self.aligned_a is None or self.aligned_b is None:
            return None
        if not self.aligned_a:
            return 0.0
        matches = sum(1 for x, y in zip(self.aligned_a, self.aligned_b) if x == y and x != "-")
        return matches / len(self.aligned_a)
