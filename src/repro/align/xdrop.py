"""x-drop seed-and-extend alignment (the production kernel).

diBELLA aligns each candidate read pair with an x-drop extension from a
shared k-mer seed (§2, using SeqAn's implementation in the original).  The
algorithm extends the exact seed match in both directions with a banded
dynamic program over anti-diagonals, *pruning* any cell whose score has
fallen more than ``xdrop`` below the best score seen so far and terminating
as soon as the active band empties.

Two properties of this kernel matter for the paper's analysis and are
reproduced faithfully here:

* its cost is roughly linear in the true overlap length for genuinely
  overlapping reads (the band stays narrow), and
* it "returns much faster when the two sequences are divergent because it
  does not compute the same number of cell updates" (§9) — the source of
  the alignment-stage load imbalance in Figure 8.

The per-anti-diagonal update is vectorised over the active band, so the
Python-level loop count is the number of anti-diagonals actually explored,
not the number of cells.
"""

from __future__ import annotations

import numpy as np

from repro.align.results import AlignmentResult, ExtensionResult
from repro.align.scoring import ScoringScheme
from repro.seq.encoding import encode_sequence

_NEG_INF = -(2**30)


def xdrop_extend(
    a: np.ndarray,
    b: np.ndarray,
    scoring: ScoringScheme,
    xdrop: int,
) -> ExtensionResult:
    """Extend an alignment from position (0, 0) of two encoded sequences.

    Parameters
    ----------
    a, b:
        2-bit encoded sequences (``uint8`` arrays) to align from their
        starts; callers pass suffixes (forward extension) or reversed
        prefixes (backward extension).
    scoring:
        Linear-gap scoring scheme.
    xdrop:
        Extension stops once every cell of the current anti-diagonal scores
        more than ``xdrop`` below the best score found so far.

    Returns
    -------
    ExtensionResult
        Best score and how far into each sequence the best extension reached.
    """
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        return ExtensionResult(score=0, length_a=0, length_b=0, cells=0)

    match, mismatch, gap = scoring.match, scoring.mismatch, scoring.gap

    # State for anti-diagonal d: scores[i - lo] is the score of cell (i, d - i)
    # for i in [lo, hi].  Anti-diagonal 0 is the single cell (0, 0) with
    # score 0 (the empty extension).
    best_score = 0
    best_i, best_j = 0, 0
    cells = 0

    prev2: np.ndarray | None = None  # d-2
    prev2_lo = 0
    prev1 = np.zeros(1, dtype=np.int64)  # d-1 == d=0 row initially
    prev1_lo = 0

    a = np.asarray(a, dtype=np.int16)
    b = np.asarray(b, dtype=np.int16)

    for d in range(1, n + m + 1):
        lo = max(0, d - m)
        hi = min(d, n)
        if lo > hi:
            break
        idx = np.arange(lo, hi + 1)
        width = idx.size
        scores = np.full(width, _NEG_INF, dtype=np.int64)

        # Gap moves from anti-diagonal d-1: cell (i, j-1) -> (i, j) keeps i,
        # cell (i-1, j) -> (i, j) decrements i.
        prev1_hi = prev1_lo + prev1.size - 1

        # from (i, j-1): same i present in prev1
        mask = (idx >= prev1_lo) & (idx <= prev1_hi)
        if mask.any():
            scores[mask] = np.maximum(scores[mask], prev1[idx[mask] - prev1_lo] + gap)
        # from (i-1, j): i-1 present in prev1
        mask = (idx - 1 >= prev1_lo) & (idx - 1 <= prev1_hi)
        if mask.any():
            scores[mask] = np.maximum(scores[mask], prev1[idx[mask] - 1 - prev1_lo] + gap)

        # Match/mismatch from anti-diagonal d-2: cell (i-1, j-1).
        if d >= 2 and prev2 is not None and prev2.size:
            prev2_hi = prev2_lo + prev2.size - 1
            mask = (idx - 1 >= prev2_lo) & (idx - 1 <= prev2_hi) & (idx >= 1) & (idx <= d - 1)
            if mask.any():
                i_sel = idx[mask]
                j_sel = d - i_sel
                sub = np.where(a[i_sel - 1] == b[j_sel - 1], match, mismatch)
                scores[mask] = np.maximum(
                    scores[mask], prev2[i_sel - 1 - prev2_lo] + sub
                )
        elif d == 1:
            # Anti-diagonal 1 has no d-2 predecessor other than the origin
            # via a gap, which the prev1 moves above already covered.
            pass

        cells += width

        # x-drop pruning: drop cells too far below the best score.
        alive = scores >= best_score - xdrop
        if not alive.any():
            break
        # Trim dead cells at the edges of the band (interior dead cells keep
        # their -inf-ish scores but stay in the array to keep indexing flat).
        alive_idx = np.nonzero(alive)[0]
        first, last = int(alive_idx[0]), int(alive_idx[-1])
        scores = scores[first : last + 1]
        idx = idx[first : last + 1]

        d_best_pos = int(scores.argmax())
        d_best = int(scores[d_best_pos])
        if d_best > best_score:
            best_score = d_best
            best_i = int(idx[d_best_pos])
            best_j = d - best_i

        prev2 = prev1
        prev2_lo = prev1_lo
        prev1 = scores
        prev1_lo = int(idx[0])

    return ExtensionResult(score=best_score, length_a=best_i, length_b=best_j, cells=cells)


def xdrop_seed_extend(
    a: str,
    b: str,
    seed_a: int,
    seed_b: int,
    k: int,
    scoring: ScoringScheme | None = None,
    xdrop: int = 25,
) -> AlignmentResult:
    """Seed-and-extend alignment of *a* and *b* from a shared k-mer seed.

    Parameters
    ----------
    a, b:
        The two read sequences.
    seed_a, seed_b:
        Start position of the shared k-mer in each read.
    k:
        Seed (k-mer) length; the seed region is assumed to match exactly —
        which is how it was found — and scores ``k * match``.
    xdrop:
        x-drop termination threshold passed to both extensions.
    """
    scoring = scoring or ScoringScheme()
    if not (0 <= seed_a <= len(a) - k) or not (0 <= seed_b <= len(b) - k):
        raise ValueError("seed does not fit inside the sequences")

    codes_a = encode_sequence(a)
    codes_b = encode_sequence(b)

    # Forward extension from the end of the seed.
    fwd = xdrop_extend(codes_a[seed_a + k :], codes_b[seed_b + k :], scoring, xdrop)
    # Backward extension from the start of the seed (reversed prefixes).
    back = xdrop_extend(codes_a[:seed_a][::-1], codes_b[:seed_b][::-1], scoring, xdrop)

    score = scoring.match * k + fwd.score + back.score
    start_a = seed_a - back.length_a
    start_b = seed_b - back.length_b
    end_a = seed_a + k + fwd.length_a
    end_b = seed_b + k + fwd.length_b
    return AlignmentResult(
        score=score,
        start_a=start_a, end_a=end_a,
        start_b=start_b, end_b=end_b,
        cells=fwd.cells + back.cells,
        kernel="xdrop",
    )
