"""Pairwise alignment kernels.

diBELLA performs each pairwise alignment on a single node with an x-drop
seed-and-extend kernel (the SeqAn implementation in the original, §2).  This
subpackage provides that kernel plus two reference kernels used for testing
and for the kernel-choice ablation:

* :mod:`repro.align.smith_waterman` — full O(|s|·|t|) local alignment
  (Smith–Waterman), the ground-truth oracle.
* :mod:`repro.align.banded` — banded Smith–Waterman restricted to a diagonal
  band around the seed ("search only for solutions with a limited number of
  mismatches", §2).
* :mod:`repro.align.xdrop` — seed-and-extend with x-drop termination
  ("terminate early when the alignment score drops significantly", §2),
  the production kernel.
* :mod:`repro.align.batch` — a batch executor that runs a list of alignment
  tasks with any kernel and accumulates the DP-cell work counters the cost
  model needs.

All kernels count the DP cells they actually fill; that count is the
alignment stage's work measure (divergent pairs terminate early and fill far
fewer cells — the source of the paper's Figure 8 load imbalance).
"""

from repro.align.scoring import ScoringScheme
from repro.align.results import AlignmentResult, ExtensionResult
from repro.align.smith_waterman import smith_waterman
from repro.align.banded import banded_smith_waterman
from repro.align.xdrop import xdrop_extend, xdrop_seed_extend
from repro.align.batch import AlignmentTask, BatchAligner, align_task
from repro.align.read_cache import ReadCache

__all__ = [
    "ScoringScheme",
    "AlignmentResult",
    "ExtensionResult",
    "smith_waterman",
    "banded_smith_waterman",
    "xdrop_extend",
    "xdrop_seed_extend",
    "AlignmentTask",
    "BatchAligner",
    "align_task",
    "ReadCache",
]
