"""Per-rank partition of the distributed k-mer occurrence hash table.

Stage 2 of diBELLA builds, on every rank, a hash table mapping each owned
k-mer to "the lists of all read ID (RID) and locations at which they
appeared" (§7).  The partition is populated in two passes that mirror the
pipeline exactly:

1. During the Bloom-filter stage, k-mers that the filter reports as already
   seen are registered as *candidate keys* (``add_candidate_keys``).
2. During the hash-table stage, every (k-mer, RID, position) occurrence whose
   k-mer is a registered key is appended (``add_occurrences``); everything
   else — the singletons correctly rejected by the Bloom filter — is dropped
   without being stored.
3. ``finalize`` removes false-positive singletons and k-mers above the
   high-frequency threshold m, leaving the *retained* k-mers and their
   occurrence lists, grouped and ready for the overlap stage.

The implementation is array-based rather than a Python dict: occurrences are
buffered as flat numpy arrays and grouped once at finalisation with a single
sort, which keeps the per-k-mer Python overhead out of the hot path.

Finalisation comes in two flavours: :meth:`KmerHashTablePartition.finalize`
groups the whole partition at once, and
:meth:`KmerHashTablePartition.finalize_shards` streams the partition one
**k-mer code range** at a time (boundaries from
:func:`shard_code_boundaries`), releasing each shard's buffers as it goes —
so peak table memory is bounded by the largest shard rather than the whole
partition, and the overlap stage can generate and exchange a shard's pairs
while later shards are still unbuilt.  Because shards are contiguous,
ascending code ranges and grouping is independent per code, concatenating
the shard results reproduces the monolithic finalise bit for bit.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterator

import numpy as np


def shard_code_boundaries(k: int, n_shards: int) -> np.ndarray:
    """Interior split points dividing the k-mer code space into *n_shards* ranges.

    Parameters
    ----------
    k:
        k-mer length; codes live in ``[0, 4**k)``.
    n_shards:
        Number of contiguous code ranges wanted (``>= 1``).

    Returns
    -------
    numpy.ndarray
        ``(n_shards - 1,)`` ascending ``uint64`` boundaries; shard ``s``
        covers ``[boundary[s-1], boundary[s])`` (with the implicit outer
        bounds 0 and ``4**k``).  Shard membership of a code array is
        ``np.searchsorted(boundaries, codes, side="right")``.

    Notes
    -----
    The boundaries are a pure function of ``(k, n_shards)`` — every rank
    (and every backend) derives identical shards without communicating.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    code_space = 4 ** k
    return np.array([(s * code_space) // n_shards for s in range(1, n_shards)],
                    dtype=np.uint64)


@dataclass(frozen=True)
class RetainedKmers:
    """The finalised contents of one hash-table partition.

    Occurrences are stored structure-of-arrays style, sorted by k-mer code,
    with ``offsets`` delimiting each k-mer's group:
    ``rids[offsets[i]:offsets[i+1]]`` are the reads containing ``codes[i]``.
    """

    codes: np.ndarray      # (n_retained,) uint64, ascending
    offsets: np.ndarray    # (n_retained + 1,) int64
    rids: np.ndarray       # (n_occurrences,) int64
    positions: np.ndarray  # (n_occurrences,) int64
    strands: np.ndarray    # (n_occurrences,) bool — True if the occurrence is
                           # the canonical orientation (forward) in its read

    @property
    def n_kmers(self) -> int:
        """Number of retained k-mers in this partition."""
        return int(self.codes.size)

    @property
    def n_occurrences(self) -> int:
        """Total occurrences across all retained k-mers."""
        return int(self.rids.size)

    @property
    def nbytes(self) -> int:
        """Memory footprint of the partition's arrays in bytes."""
        return int(self.codes.nbytes + self.offsets.nbytes + self.rids.nbytes
                   + self.positions.nbytes + self.strands.nbytes)

    def group(self, index: int) -> tuple[int, np.ndarray, np.ndarray, np.ndarray]:
        """(code, rids, positions, strands) of the *index*-th retained k-mer."""
        lo, hi = int(self.offsets[index]), int(self.offsets[index + 1])
        return (int(self.codes[index]), self.rids[lo:hi], self.positions[lo:hi],
                self.strands[lo:hi])

    def counts(self) -> np.ndarray:
        """Occurrence count of each retained k-mer."""
        return np.diff(self.offsets)

    @classmethod
    def empty(cls) -> "RetainedKmers":
        """An empty partition (rank owns no retained k-mers)."""
        return cls(
            codes=np.empty(0, dtype=np.uint64),
            offsets=np.zeros(1, dtype=np.int64),
            rids=np.empty(0, dtype=np.int64),
            positions=np.empty(0, dtype=np.int64),
            strands=np.empty(0, dtype=bool),
        )


def _validate_count_filters(min_count: int, max_count: int | None) -> None:
    if min_count < 1:
        raise ValueError("min_count must be >= 1")
    if max_count is not None and max_count < min_count:
        raise ValueError("max_count must be >= min_count")


def _finalize_arrays(codes: np.ndarray, rids: np.ndarray, positions: np.ndarray,
                     strands: np.ndarray, min_count: int,
                     max_count: int | None) -> RetainedKmers:
    """Group flat occurrence arrays by k-mer and apply the frequency filters.

    The shared core of :meth:`KmerHashTablePartition.finalize` (whole
    partition) and :meth:`KmerHashTablePartition.finalize_shards` (one code
    range at a time): one stable sort, no per-group Python loop.
    """
    order = np.argsort(codes, kind="stable")
    codes, rids, positions, strands = (
        codes[order], rids[order], positions[order], strands[order]
    )

    unique_codes, group_starts, counts = np.unique(
        codes, return_index=True, return_counts=True
    )
    keep = counts >= min_count
    if max_count is not None:
        keep &= counts <= max_count

    kept_codes = unique_codes[keep]
    kept_starts = group_starts[keep]
    kept_counts = counts[keep]

    # Rebuild a compact occurrence array containing only retained groups:
    # a segment-wise arange built from repeat/cumsum, no per-group loop.
    offsets = np.concatenate(([0], np.cumsum(kept_counts))).astype(np.int64)
    if kept_codes.size:
        take = (np.repeat(kept_starts - offsets[:-1], kept_counts)
                + np.arange(int(offsets[-1]), dtype=np.int64))
    else:
        take = np.empty(0, dtype=np.int64)

    return RetainedKmers(
        codes=kept_codes.astype(np.uint64),
        offsets=offsets,
        rids=rids[take].astype(np.int64),
        positions=positions[take].astype(np.int64),
        strands=strands[take].astype(bool),
    )


class KmerHashTablePartition:
    """One rank's partition of the distributed k-mer occurrence table.

    Attributes
    ----------
    retained_peak_nbytes:
        Size of the largest finalised shard built by the most recent
        :meth:`finalize_shards` sweep (the streamed build's peak
        retained-table memory; 0 before any sweep).
    """

    def __init__(self) -> None:
        self._candidate_batches: list[np.ndarray] = []
        self._keys: np.ndarray | None = None
        self._accept_all: bool = False
        self._occ_codes: list[np.ndarray] = []
        self._occ_rids: list[np.ndarray] = []
        self._occ_positions: list[np.ndarray] = []
        self._occ_strands: list[np.ndarray] = []
        self.retained_peak_nbytes: int = 0

    def accept_all_keys(self) -> None:
        """Treat every k-mer as a registered key (store all occurrences).

        The serve-mode index build uses this instead of the Bloom candidate
        pass: a resident query index must keep singleton occurrences too,
        because an index-side singleton becomes retained the moment a query
        batch contributes the occurrences that lift its union count into the
        reliable range.  The count filters still apply at finalisation /
        query time; only the *storage* gate is lifted.
        """
        self._accept_all = True
        if self._keys is None:
            self._keys = np.empty(0, dtype=np.uint64)

    # -- pass 1: candidate keys from the Bloom filter ---------------------------------

    def add_candidate_keys(self, codes: np.ndarray) -> None:
        """Register k-mers the Bloom filter saw at least twice as table keys."""
        codes = np.asarray(codes, dtype=np.uint64)
        if codes.size:
            self._candidate_batches.append(codes.copy())
            self._keys = None

    def finalize_keys(self) -> int:
        """Deduplicate candidate keys; returns the number of distinct keys."""
        if self._candidate_batches:
            self._keys = np.unique(np.concatenate(self._candidate_batches))
        else:
            self._keys = np.empty(0, dtype=np.uint64)
        self._candidate_batches = []
        return int(self._keys.size)

    @property
    def n_keys(self) -> int:
        """Number of distinct candidate keys (after :meth:`finalize_keys`)."""
        if self._keys is None:
            raise RuntimeError("finalize_keys() has not been called")
        return int(self._keys.size)

    def has_keys(self, codes: np.ndarray) -> np.ndarray:
        """Boolean mask: which of *codes* are registered keys."""
        if self._keys is None:
            raise RuntimeError("finalize_keys() has not been called")
        codes = np.asarray(codes, dtype=np.uint64)
        if self._accept_all:
            return np.ones(codes.size, dtype=bool)
        if codes.size == 0:
            return np.zeros(0, dtype=bool)
        idx = np.searchsorted(self._keys, codes)
        idx = np.minimum(idx, max(0, self._keys.size - 1))
        if self._keys.size == 0:
            return np.zeros(codes.size, dtype=bool)
        return self._keys[idx] == codes

    # -- pass 2: occurrence insertion ---------------------------------------------------

    def add_occurrences(self, codes: np.ndarray, rids: np.ndarray,
                        positions: np.ndarray,
                        strands: np.ndarray | None = None) -> int:
        """Insert occurrences whose k-mer is a registered key.

        ``strands`` records, per occurrence, whether the canonical k-mer is
        the forward orientation in that read (defaults to all-forward for
        callers that do not track strand).  Returns the number of occurrences
        actually stored (non-key k-mers — singletons filtered by the Bloom
        filter — are dropped).
        """
        codes = np.asarray(codes, dtype=np.uint64)
        rids = np.asarray(rids, dtype=np.int64)
        positions = np.asarray(positions, dtype=np.int64)
        if strands is None:
            strands = np.ones(codes.size, dtype=bool)
        strands = np.asarray(strands, dtype=bool)
        if not (codes.size == rids.size == positions.size == strands.size):
            raise ValueError("codes, rids, positions and strands must have equal length")
        if codes.size == 0:
            return 0
        mask = self.has_keys(codes)
        kept = int(np.count_nonzero(mask))
        if kept:
            self._occ_codes.append(codes[mask])
            self._occ_rids.append(rids[mask])
            self._occ_positions.append(positions[mask])
            self._occ_strands.append(strands[mask])
        return kept

    # -- finalisation ---------------------------------------------------------------------

    def finalize(self, min_count: int = 2, max_count: int | None = None) -> RetainedKmers:
        """Group occurrences by k-mer and apply the frequency filters.

        ``min_count`` removes false-positive singletons (k-mers the Bloom
        filter wrongly promoted); ``max_count`` is the high-frequency
        threshold m of §2.  A k-mer's *count* here is its number of stored
        occurrences — identical to the count the original implementation
        accumulates in the table.
        """
        _validate_count_filters(min_count, max_count)
        if not self._occ_codes:
            return RetainedKmers.empty()
        return _finalize_arrays(
            np.concatenate(self._occ_codes),
            np.concatenate(self._occ_rids),
            np.concatenate(self._occ_positions),
            np.concatenate(self._occ_strands),
            min_count, max_count,
        )

    def finalize_shards(self, boundaries: np.ndarray, min_count: int = 2,
                        max_count: int | None = None) -> Iterator[RetainedKmers]:
        """Finalise the partition one k-mer code range at a time.

        Parameters
        ----------
        boundaries:
            Ascending interior split points (from
            :func:`shard_code_boundaries`); ``len(boundaries) + 1`` shards
            are yielded, in ascending code order.
        min_count / max_count:
            The reliable-range filters, exactly as in :meth:`finalize`.

        Yields
        ------
        RetainedKmers
            Shard ``s``'s retained k-mers — empty when the rank owns no
            retained k-mer in that range.  Concatenating every shard equals
            the monolithic :meth:`finalize` result bit for bit.

        Notes
        -----
        This generator **consumes** the partition: the buffered occurrence
        batches are re-bucketed per shard up front (releasing the
        originals), and each shard's raw buffers are dropped as soon as its
        ``RetainedKmers`` is built.  Only one shard's sorted/grouped copy is
        therefore ever live, which is the memory bound the streaming
        hash-table stage relies on; :attr:`retained_peak_nbytes` records the
        largest shard built.
        """
        _validate_count_filters(min_count, max_count)
        boundaries = np.asarray(boundaries, dtype=np.uint64)
        n_shards = int(boundaries.size) + 1
        shard_batches: list[list[tuple[np.ndarray, ...]]] = [[] for _ in range(n_shards)]
        while self._occ_codes:
            codes = self._occ_codes.pop(0)
            rids = self._occ_rids.pop(0)
            positions = self._occ_positions.pop(0)
            strands = self._occ_strands.pop(0)
            shard_of = np.searchsorted(boundaries, codes, side="right")
            for shard in np.unique(shard_of):
                mask = shard_of == shard
                shard_batches[shard].append(
                    (codes[mask], rids[mask], positions[mask], strands[mask])
                )
        self.retained_peak_nbytes = 0
        for shard in range(n_shards):
            batches = shard_batches[shard]
            shard_batches[shard] = []  # release the raw buffers of this shard
            if batches:
                retained = _finalize_arrays(
                    np.concatenate([b[0] for b in batches]),
                    np.concatenate([b[1] for b in batches]),
                    np.concatenate([b[2] for b in batches]),
                    np.concatenate([b[3] for b in batches]),
                    min_count, max_count,
                )
            else:
                retained = RetainedKmers.empty()
            self.retained_peak_nbytes = max(self.retained_peak_nbytes, retained.nbytes)
            yield retained
            # Drop the generator frame's own reference before the next
            # iteration builds shard s+1 — otherwise shard s would stay
            # reachable through this frame even after the caller released
            # it, and the one-live-shard memory bound would silently be two.
            del retained

    def drain_occurrences(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Concatenate and release the buffered occurrences, in insertion order.

        Used by the serve-mode index build to hand the stage-2 exchange's
        output to a :class:`ShardedKmerIndex` without copying it twice: the
        partition's buffers are cleared, so the raw batches are not retained
        alongside the index.
        """
        if not self._occ_codes:
            empty_i = np.empty(0, dtype=np.int64)
            return (np.empty(0, dtype=np.uint64), empty_i, empty_i.copy(),
                    np.empty(0, dtype=bool))
        arrays = (
            np.concatenate(self._occ_codes),
            np.concatenate(self._occ_rids),
            np.concatenate(self._occ_positions),
            np.concatenate(self._occ_strands),
        )
        self._occ_codes = []
        self._occ_rids = []
        self._occ_positions = []
        self._occ_strands = []
        return arrays

    # -- introspection ----------------------------------------------------------------------

    @property
    def n_occurrences_buffered(self) -> int:
        """Occurrences currently buffered (before finalisation)."""
        return int(sum(a.size for a in self._occ_codes))

    def memory_nbytes(self) -> int:
        """Approximate memory footprint of the partition's buffers."""
        total = 0
        if self._keys is not None:
            total += self._keys.nbytes
        for batch in self._candidate_batches:
            total += batch.nbytes
        for arrays in (self._occ_codes, self._occ_rids, self._occ_positions,
                       self._occ_strands):
            total += sum(a.nbytes for a in arrays)
        return total


class ShardedKmerIndex:
    """A resident, incrementally-built sharded k-mer occurrence index.

    This is the *serve-phase* counterpart of :class:`KmerHashTablePartition`:
    where the batch pipeline buffers occurrences for one run and consumes
    them shard by shard, this index keeps one rank's occurrences resident —
    bucketed by the same contiguous code ranges (:func:`shard_code_boundaries`)
    — so repeated query batches can probe it without rebuilding anything.

    Two invariants make it exchangeable with the batch build:

    * **Insertion-order parity** — occurrences are stored in insertion order
      per shard, and every retained view groups them with the same stable
      sort :func:`_finalize_arrays` uses, so ``insert_batch`` over any split
      of the same occurrence stream yields views bit-identical to a one-shot
      :meth:`KmerHashTablePartition.finalize` (pinned by the incremental
      parity tests).
    * **All occurrences kept** — the Bloom candidate gate is not applied
      (see :meth:`KmerHashTablePartition.accept_all_keys`): an index-side
      singleton must stay queryable because a query batch can lift its union
      count into the reliable range.  The ``[min_count, max_count]`` filters
      are applied by the views, never by storage.
    """

    def __init__(self, boundaries: np.ndarray) -> None:
        self.boundaries = np.asarray(boundaries, dtype=np.uint64)
        self.n_shards = int(self.boundaries.size) + 1
        self._batches: list[list[tuple[np.ndarray, ...]]] = [
            [] for _ in range(self.n_shards)
        ]
        self._consolidated: list[tuple[np.ndarray, ...] | None] = [
            None for _ in range(self.n_shards)
        ]
        self.n_occurrences = 0
        self.insert_batches = 0

    @classmethod
    def from_partition(cls, partition: KmerHashTablePartition,
                       boundaries: np.ndarray) -> "ShardedKmerIndex":
        """Build an index by draining a partition's buffered occurrences.

        The partition's raw buffers are consumed (released), so the caller
        holds exactly one copy of the occurrence stream afterwards.
        """
        index = cls(boundaries)
        index.insert_batch(*partition.drain_occurrences())
        return index

    def insert_batch(self, codes: np.ndarray, rids: np.ndarray,
                     positions: np.ndarray, strands: np.ndarray) -> int:
        """Append one batch of occurrences, bucketing them by code-range shard.

        Within each shard the batch's occurrences keep their relative order
        and land after everything previously inserted; the retained views'
        stable sort therefore sees the same total order as a one-shot build
        over the concatenated stream.  Returns the number of occurrences
        inserted.
        """
        codes = np.asarray(codes, dtype=np.uint64)
        rids = np.asarray(rids, dtype=np.int64)
        positions = np.asarray(positions, dtype=np.int64)
        strands = np.asarray(strands, dtype=bool)
        if not (codes.size == rids.size == positions.size == strands.size):
            raise ValueError("codes, rids, positions and strands must have equal length")
        if codes.size == 0:
            self.insert_batches += 1
            return 0
        shard_of = np.searchsorted(self.boundaries, codes, side="right")
        for shard in np.unique(shard_of):
            mask = shard_of == shard
            self._batches[shard].append(
                (codes[mask], rids[mask], positions[mask], strands[mask])
            )
            self._consolidated[shard] = None
        self.n_occurrences += int(codes.size)
        self.insert_batches += 1
        return int(codes.size)

    # -- raw per-shard access ------------------------------------------------

    def shard_occurrences(self, shard: int) -> tuple[np.ndarray, ...]:
        """Shard *shard*'s occurrences ``(codes, rids, positions, strands)``.

        Concatenated in insertion order; consolidated lazily and memoised, so
        repeated query batches against an unchanged index pay the
        concatenation once.
        """
        cached = self._consolidated[shard]
        if cached is not None:
            return cached
        batches = self._batches[shard]
        if not batches:
            empty_i = np.empty(0, dtype=np.int64)
            arrays = (np.empty(0, dtype=np.uint64), empty_i, empty_i.copy(),
                      np.empty(0, dtype=bool))
        elif len(batches) == 1:
            arrays = batches[0]
        else:
            arrays = tuple(
                np.concatenate([batch[column] for batch in batches])
                for column in range(4)
            )
            self._batches[shard] = [arrays]
        self._consolidated[shard] = arrays
        return arrays

    # -- retained views ------------------------------------------------------

    def retained_shard(self, shard: int, min_count: int = 2,
                       max_count: int | None = None) -> RetainedKmers:
        """Shard *shard*'s retained k-mers under the count filters."""
        _validate_count_filters(min_count, max_count)
        codes, rids, positions, strands = self.shard_occurrences(shard)
        if codes.size == 0:
            return RetainedKmers.empty()
        return _finalize_arrays(codes, rids, positions, strands, min_count, max_count)

    def retained(self, min_count: int = 2,
                 max_count: int | None = None) -> RetainedKmers:
        """The whole index's retained k-mers (all shards, ascending codes).

        Shards are contiguous ascending code ranges, so concatenating the
        per-shard views reproduces a monolithic
        :meth:`KmerHashTablePartition.finalize` bit for bit — the oracle the
        incremental parity tests compare against.
        """
        shards = [self.retained_shard(s, min_count, max_count)
                  for s in range(self.n_shards)]
        non_empty = [s for s in shards if s.n_kmers]
        if not non_empty:
            return RetainedKmers.empty()
        if len(non_empty) == 1:
            return non_empty[0]
        offsets = [np.int64(0)]
        base = 0
        chunks = []
        for part in non_empty:
            chunks.append(part.offsets[1:] + base)
            base += int(part.offsets[-1])
        return RetainedKmers(
            codes=np.concatenate([s.codes for s in non_empty]),
            offsets=np.concatenate([np.zeros(1, dtype=np.int64)]
                                   + chunks).astype(np.int64),
            rids=np.concatenate([s.rids for s in non_empty]),
            positions=np.concatenate([s.positions for s in non_empty]),
            strands=np.concatenate([s.strands for s in non_empty]),
        )

    def merged_shard(
        self,
        shard: int,
        q_codes: np.ndarray,
        q_rids: np.ndarray,
        q_positions: np.ndarray,
        q_strands: np.ndarray,
        order_key: np.ndarray,
        n_index_reads: int,
        min_count: int = 2,
        max_count: int | None = None,
    ) -> RetainedKmers:
        """One shard of the (index ∪ query batch) retained table.

        The serve phase's core primitive: merge shard *shard*'s resident
        occurrences with a query batch's occurrences routed to this rank,
        apply the count filters to the **union** counts, and keep only k-mers
        with at least one occurrence on *each* side — the groups whose pair
        expansion can produce a query-vs-index pair (single-sided groups
        would only produce pairs the cross filter drops anyway).

        Within each group the merged occurrences are ordered by
        ``(order_key[rid], position)``, where *order_key* is the per-read
        arrival ordinal of the emulated one-shot run over (index ∪ query)
        reads — this reproduces the hash-table stage's arrival order
        (superstep, source rank, in-batch extraction order), which is what
        makes the downstream pair generation (and its ``swapped`` owner
        annotation) bit-identical to that run.

        Parameters
        ----------
        q_codes / q_rids / q_positions / q_strands:
            The query batch's occurrences owned by this rank, restricted to
            this shard's code range (RIDs are global: ``n_index_reads +
            query position``).
        order_key:
            RID → arrival ordinal of the emulated union run (covers index
            and query RIDs).
        n_index_reads:
            RIDs below this bound are index reads, at or above it query reads.
        """
        _validate_count_filters(min_count, max_count)
        i_codes, i_rids, i_positions, i_strands = self.shard_occurrences(shard)
        codes = np.concatenate([i_codes, np.asarray(q_codes, dtype=np.uint64)])
        if codes.size == 0:
            return RetainedKmers.empty()
        rids = np.concatenate([i_rids, np.asarray(q_rids, dtype=np.int64)])
        positions = np.concatenate(
            [i_positions, np.asarray(q_positions, dtype=np.int64)])
        strands = np.concatenate([i_strands, np.asarray(q_strands, dtype=bool)])

        order = np.lexsort((positions, order_key[rids], codes))
        codes, rids, positions, strands = (
            codes[order], rids[order], positions[order], strands[order]
        )

        unique_codes, group_starts, counts = np.unique(
            codes, return_index=True, return_counts=True
        )
        group_of = np.repeat(np.arange(unique_codes.size, dtype=np.int64), counts)
        index_counts = np.bincount(
            group_of[rids < n_index_reads], minlength=unique_codes.size
        )
        keep = (counts >= min_count) & (index_counts >= 1) & (index_counts < counts)
        if max_count is not None:
            keep &= counts <= max_count

        kept_starts = group_starts[keep]
        kept_counts = counts[keep]
        offsets = np.concatenate(([0], np.cumsum(kept_counts))).astype(np.int64)
        if kept_counts.size:
            take = (np.repeat(kept_starts - offsets[:-1], kept_counts)
                    + np.arange(int(offsets[-1]), dtype=np.int64))
        else:
            take = np.empty(0, dtype=np.int64)
        return RetainedKmers(
            codes=unique_codes[keep].astype(np.uint64),
            offsets=offsets,
            rids=rids[take].astype(np.int64),
            positions=positions[take].astype(np.int64),
            strands=strands[take].astype(bool),
        )

    # -- introspection -------------------------------------------------------

    @property
    def nbytes(self) -> int:
        """Resident memory of the occurrence buffers in bytes."""
        total = 0
        for batches in self._batches:
            for batch in batches:
                total += sum(int(a.nbytes) for a in batch)
        return total

    def digest(self) -> int:
        """A 63-bit content digest of the index, independent of insertion order.

        Each shard's occurrences are canonically sorted before hashing, so
        two indexes holding the same occurrence *set* — however it was
        batched or which backend built it — digest identically.  Surfaced as
        a per-rank counter so the cross-backend index-parity tests can
        compare resident indexes they cannot reach directly (process-backend
        workers own theirs).
        """
        h = hashlib.blake2b(digest_size=8)
        for shard in range(self.n_shards):
            codes, rids, positions, strands = self.shard_occurrences(shard)
            order = np.lexsort((strands, positions, rids, codes))
            h.update(np.ascontiguousarray(codes[order]).tobytes())
            h.update(np.ascontiguousarray(rids[order]).tobytes())
            h.update(np.ascontiguousarray(positions[order]).tobytes())
            h.update(np.ascontiguousarray(strands[order]).tobytes())
        return int.from_bytes(h.digest(), "big") >> 1
