"""Per-rank partition of the distributed k-mer occurrence hash table.

Stage 2 of diBELLA builds, on every rank, a hash table mapping each owned
k-mer to "the lists of all read ID (RID) and locations at which they
appeared" (§7).  The partition is populated in two passes that mirror the
pipeline exactly:

1. During the Bloom-filter stage, k-mers that the filter reports as already
   seen are registered as *candidate keys* (``add_candidate_keys``).
2. During the hash-table stage, every (k-mer, RID, position) occurrence whose
   k-mer is a registered key is appended (``add_occurrences``); everything
   else — the singletons correctly rejected by the Bloom filter — is dropped
   without being stored.
3. ``finalize`` removes false-positive singletons and k-mers above the
   high-frequency threshold m, leaving the *retained* k-mers and their
   occurrence lists, grouped and ready for the overlap stage.

The implementation is array-based rather than a Python dict: occurrences are
buffered as flat numpy arrays and grouped once at finalisation with a single
sort, which keeps the per-k-mer Python overhead out of the hot path.

Finalisation comes in two flavours: :meth:`KmerHashTablePartition.finalize`
groups the whole partition at once, and
:meth:`KmerHashTablePartition.finalize_shards` streams the partition one
**k-mer code range** at a time (boundaries from
:func:`shard_code_boundaries`), releasing each shard's buffers as it goes —
so peak table memory is bounded by the largest shard rather than the whole
partition, and the overlap stage can generate and exchange a shard's pairs
while later shards are still unbuilt.  Because shards are contiguous,
ascending code ranges and grouping is independent per code, concatenating
the shard results reproduces the monolithic finalise bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np


def shard_code_boundaries(k: int, n_shards: int) -> np.ndarray:
    """Interior split points dividing the k-mer code space into *n_shards* ranges.

    Parameters
    ----------
    k:
        k-mer length; codes live in ``[0, 4**k)``.
    n_shards:
        Number of contiguous code ranges wanted (``>= 1``).

    Returns
    -------
    numpy.ndarray
        ``(n_shards - 1,)`` ascending ``uint64`` boundaries; shard ``s``
        covers ``[boundary[s-1], boundary[s])`` (with the implicit outer
        bounds 0 and ``4**k``).  Shard membership of a code array is
        ``np.searchsorted(boundaries, codes, side="right")``.

    Notes
    -----
    The boundaries are a pure function of ``(k, n_shards)`` — every rank
    (and every backend) derives identical shards without communicating.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    code_space = 4 ** k
    return np.array([(s * code_space) // n_shards for s in range(1, n_shards)],
                    dtype=np.uint64)


@dataclass(frozen=True)
class RetainedKmers:
    """The finalised contents of one hash-table partition.

    Occurrences are stored structure-of-arrays style, sorted by k-mer code,
    with ``offsets`` delimiting each k-mer's group:
    ``rids[offsets[i]:offsets[i+1]]`` are the reads containing ``codes[i]``.
    """

    codes: np.ndarray      # (n_retained,) uint64, ascending
    offsets: np.ndarray    # (n_retained + 1,) int64
    rids: np.ndarray       # (n_occurrences,) int64
    positions: np.ndarray  # (n_occurrences,) int64
    strands: np.ndarray    # (n_occurrences,) bool — True if the occurrence is
                           # the canonical orientation (forward) in its read

    @property
    def n_kmers(self) -> int:
        """Number of retained k-mers in this partition."""
        return int(self.codes.size)

    @property
    def n_occurrences(self) -> int:
        """Total occurrences across all retained k-mers."""
        return int(self.rids.size)

    @property
    def nbytes(self) -> int:
        """Memory footprint of the partition's arrays in bytes."""
        return int(self.codes.nbytes + self.offsets.nbytes + self.rids.nbytes
                   + self.positions.nbytes + self.strands.nbytes)

    def group(self, index: int) -> tuple[int, np.ndarray, np.ndarray, np.ndarray]:
        """(code, rids, positions, strands) of the *index*-th retained k-mer."""
        lo, hi = int(self.offsets[index]), int(self.offsets[index + 1])
        return (int(self.codes[index]), self.rids[lo:hi], self.positions[lo:hi],
                self.strands[lo:hi])

    def counts(self) -> np.ndarray:
        """Occurrence count of each retained k-mer."""
        return np.diff(self.offsets)

    @classmethod
    def empty(cls) -> "RetainedKmers":
        """An empty partition (rank owns no retained k-mers)."""
        return cls(
            codes=np.empty(0, dtype=np.uint64),
            offsets=np.zeros(1, dtype=np.int64),
            rids=np.empty(0, dtype=np.int64),
            positions=np.empty(0, dtype=np.int64),
            strands=np.empty(0, dtype=bool),
        )


def _validate_count_filters(min_count: int, max_count: int | None) -> None:
    if min_count < 1:
        raise ValueError("min_count must be >= 1")
    if max_count is not None and max_count < min_count:
        raise ValueError("max_count must be >= min_count")


def _finalize_arrays(codes: np.ndarray, rids: np.ndarray, positions: np.ndarray,
                     strands: np.ndarray, min_count: int,
                     max_count: int | None) -> RetainedKmers:
    """Group flat occurrence arrays by k-mer and apply the frequency filters.

    The shared core of :meth:`KmerHashTablePartition.finalize` (whole
    partition) and :meth:`KmerHashTablePartition.finalize_shards` (one code
    range at a time): one stable sort, no per-group Python loop.
    """
    order = np.argsort(codes, kind="stable")
    codes, rids, positions, strands = (
        codes[order], rids[order], positions[order], strands[order]
    )

    unique_codes, group_starts, counts = np.unique(
        codes, return_index=True, return_counts=True
    )
    keep = counts >= min_count
    if max_count is not None:
        keep &= counts <= max_count

    kept_codes = unique_codes[keep]
    kept_starts = group_starts[keep]
    kept_counts = counts[keep]

    # Rebuild a compact occurrence array containing only retained groups:
    # a segment-wise arange built from repeat/cumsum, no per-group loop.
    offsets = np.concatenate(([0], np.cumsum(kept_counts))).astype(np.int64)
    if kept_codes.size:
        take = (np.repeat(kept_starts - offsets[:-1], kept_counts)
                + np.arange(int(offsets[-1]), dtype=np.int64))
    else:
        take = np.empty(0, dtype=np.int64)

    return RetainedKmers(
        codes=kept_codes.astype(np.uint64),
        offsets=offsets,
        rids=rids[take].astype(np.int64),
        positions=positions[take].astype(np.int64),
        strands=strands[take].astype(bool),
    )


class KmerHashTablePartition:
    """One rank's partition of the distributed k-mer occurrence table.

    Attributes
    ----------
    retained_peak_nbytes:
        Size of the largest finalised shard built by the most recent
        :meth:`finalize_shards` sweep (the streamed build's peak
        retained-table memory; 0 before any sweep).
    """

    def __init__(self) -> None:
        self._candidate_batches: list[np.ndarray] = []
        self._keys: np.ndarray | None = None
        self._occ_codes: list[np.ndarray] = []
        self._occ_rids: list[np.ndarray] = []
        self._occ_positions: list[np.ndarray] = []
        self._occ_strands: list[np.ndarray] = []
        self.retained_peak_nbytes: int = 0

    # -- pass 1: candidate keys from the Bloom filter ---------------------------------

    def add_candidate_keys(self, codes: np.ndarray) -> None:
        """Register k-mers the Bloom filter saw at least twice as table keys."""
        codes = np.asarray(codes, dtype=np.uint64)
        if codes.size:
            self._candidate_batches.append(codes.copy())
            self._keys = None

    def finalize_keys(self) -> int:
        """Deduplicate candidate keys; returns the number of distinct keys."""
        if self._candidate_batches:
            self._keys = np.unique(np.concatenate(self._candidate_batches))
        else:
            self._keys = np.empty(0, dtype=np.uint64)
        self._candidate_batches = []
        return int(self._keys.size)

    @property
    def n_keys(self) -> int:
        """Number of distinct candidate keys (after :meth:`finalize_keys`)."""
        if self._keys is None:
            raise RuntimeError("finalize_keys() has not been called")
        return int(self._keys.size)

    def has_keys(self, codes: np.ndarray) -> np.ndarray:
        """Boolean mask: which of *codes* are registered keys."""
        if self._keys is None:
            raise RuntimeError("finalize_keys() has not been called")
        codes = np.asarray(codes, dtype=np.uint64)
        if codes.size == 0:
            return np.zeros(0, dtype=bool)
        idx = np.searchsorted(self._keys, codes)
        idx = np.minimum(idx, max(0, self._keys.size - 1))
        if self._keys.size == 0:
            return np.zeros(codes.size, dtype=bool)
        return self._keys[idx] == codes

    # -- pass 2: occurrence insertion ---------------------------------------------------

    def add_occurrences(self, codes: np.ndarray, rids: np.ndarray,
                        positions: np.ndarray,
                        strands: np.ndarray | None = None) -> int:
        """Insert occurrences whose k-mer is a registered key.

        ``strands`` records, per occurrence, whether the canonical k-mer is
        the forward orientation in that read (defaults to all-forward for
        callers that do not track strand).  Returns the number of occurrences
        actually stored (non-key k-mers — singletons filtered by the Bloom
        filter — are dropped).
        """
        codes = np.asarray(codes, dtype=np.uint64)
        rids = np.asarray(rids, dtype=np.int64)
        positions = np.asarray(positions, dtype=np.int64)
        if strands is None:
            strands = np.ones(codes.size, dtype=bool)
        strands = np.asarray(strands, dtype=bool)
        if not (codes.size == rids.size == positions.size == strands.size):
            raise ValueError("codes, rids, positions and strands must have equal length")
        if codes.size == 0:
            return 0
        mask = self.has_keys(codes)
        kept = int(np.count_nonzero(mask))
        if kept:
            self._occ_codes.append(codes[mask])
            self._occ_rids.append(rids[mask])
            self._occ_positions.append(positions[mask])
            self._occ_strands.append(strands[mask])
        return kept

    # -- finalisation ---------------------------------------------------------------------

    def finalize(self, min_count: int = 2, max_count: int | None = None) -> RetainedKmers:
        """Group occurrences by k-mer and apply the frequency filters.

        ``min_count`` removes false-positive singletons (k-mers the Bloom
        filter wrongly promoted); ``max_count`` is the high-frequency
        threshold m of §2.  A k-mer's *count* here is its number of stored
        occurrences — identical to the count the original implementation
        accumulates in the table.
        """
        _validate_count_filters(min_count, max_count)
        if not self._occ_codes:
            return RetainedKmers.empty()
        return _finalize_arrays(
            np.concatenate(self._occ_codes),
            np.concatenate(self._occ_rids),
            np.concatenate(self._occ_positions),
            np.concatenate(self._occ_strands),
            min_count, max_count,
        )

    def finalize_shards(self, boundaries: np.ndarray, min_count: int = 2,
                        max_count: int | None = None) -> Iterator[RetainedKmers]:
        """Finalise the partition one k-mer code range at a time.

        Parameters
        ----------
        boundaries:
            Ascending interior split points (from
            :func:`shard_code_boundaries`); ``len(boundaries) + 1`` shards
            are yielded, in ascending code order.
        min_count / max_count:
            The reliable-range filters, exactly as in :meth:`finalize`.

        Yields
        ------
        RetainedKmers
            Shard ``s``'s retained k-mers — empty when the rank owns no
            retained k-mer in that range.  Concatenating every shard equals
            the monolithic :meth:`finalize` result bit for bit.

        Notes
        -----
        This generator **consumes** the partition: the buffered occurrence
        batches are re-bucketed per shard up front (releasing the
        originals), and each shard's raw buffers are dropped as soon as its
        ``RetainedKmers`` is built.  Only one shard's sorted/grouped copy is
        therefore ever live, which is the memory bound the streaming
        hash-table stage relies on; :attr:`retained_peak_nbytes` records the
        largest shard built.
        """
        _validate_count_filters(min_count, max_count)
        boundaries = np.asarray(boundaries, dtype=np.uint64)
        n_shards = int(boundaries.size) + 1
        shard_batches: list[list[tuple[np.ndarray, ...]]] = [[] for _ in range(n_shards)]
        while self._occ_codes:
            codes = self._occ_codes.pop(0)
            rids = self._occ_rids.pop(0)
            positions = self._occ_positions.pop(0)
            strands = self._occ_strands.pop(0)
            shard_of = np.searchsorted(boundaries, codes, side="right")
            for shard in np.unique(shard_of):
                mask = shard_of == shard
                shard_batches[shard].append(
                    (codes[mask], rids[mask], positions[mask], strands[mask])
                )
        self.retained_peak_nbytes = 0
        for shard in range(n_shards):
            batches = shard_batches[shard]
            shard_batches[shard] = []  # release the raw buffers of this shard
            if batches:
                retained = _finalize_arrays(
                    np.concatenate([b[0] for b in batches]),
                    np.concatenate([b[1] for b in batches]),
                    np.concatenate([b[2] for b in batches]),
                    np.concatenate([b[3] for b in batches]),
                    min_count, max_count,
                )
            else:
                retained = RetainedKmers.empty()
            self.retained_peak_nbytes = max(self.retained_peak_nbytes, retained.nbytes)
            yield retained
            # Drop the generator frame's own reference before the next
            # iteration builds shard s+1 — otherwise shard s would stay
            # reachable through this frame even after the caller released
            # it, and the one-live-shard memory bound would silently be two.
            del retained

    # -- introspection ----------------------------------------------------------------------

    @property
    def n_occurrences_buffered(self) -> int:
        """Occurrences currently buffered (before finalisation)."""
        return int(sum(a.size for a in self._occ_codes))

    def memory_nbytes(self) -> int:
        """Approximate memory footprint of the partition's buffers."""
        total = 0
        if self._keys is not None:
            total += self._keys.nbytes
        for batch in self._candidate_batches:
            total += batch.nbytes
        for arrays in (self._occ_codes, self._occ_rids, self._occ_positions,
                       self._occ_strands):
            total += sum(a.nbytes for a in arrays)
        return total
