"""Plain k-mer counting: histograms and a streaming counter.

These utilities sit outside the distributed pipeline: they provide the exact
counts used by tests (as an oracle for the Bloom-filter + hash-table
composition), by the frequency-spectrum statistics in ``repro.stats``, and by
the DALIGNER-style baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.seq.kmer import KmerSpec, extract_kmer_codes
from repro.seq.records import ReadSet


def count_kmers(codes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Exact counts of a batch of k-mer codes.

    Returns ``(unique_codes, counts)`` with codes sorted ascending.
    """
    codes = np.asarray(codes, dtype=np.uint64)
    if codes.size == 0:
        return np.empty(0, dtype=np.uint64), np.empty(0, dtype=np.int64)
    unique, counts = np.unique(codes, return_counts=True)
    return unique, counts.astype(np.int64)


@dataclass
class KmerCounter:
    """Streaming exact k-mer counter over multiple batches.

    Batches are buffered as arrays and merged on demand, so adding is O(1)
    per batch and memory stays proportional to the total number of k-mer
    instances seen (the same trade-off diBELLA's streaming passes make, §4).
    """

    spec: KmerSpec

    def __post_init__(self) -> None:
        self._batches: list[np.ndarray] = []
        self._merged: tuple[np.ndarray, np.ndarray] | None = None

    def add_codes(self, codes: np.ndarray) -> None:
        """Add a batch of pre-extracted k-mer codes."""
        codes = np.asarray(codes, dtype=np.uint64)
        if codes.size:
            self._batches.append(codes.copy())
            self._merged = None

    def add_read(self, sequence: str) -> None:
        """Extract and add all k-mers of one read."""
        self.add_codes(extract_kmer_codes(sequence, self.spec))

    def add_reads(self, reads: ReadSet) -> None:
        """Extract and add all k-mers of every read in the set."""
        for read in reads:
            self.add_read(read.sequence)

    def _merge(self) -> tuple[np.ndarray, np.ndarray]:
        if self._merged is None:
            if not self._batches:
                self._merged = (np.empty(0, dtype=np.uint64), np.empty(0, dtype=np.int64))
            else:
                self._merged = count_kmers(np.concatenate(self._batches))
        return self._merged

    @property
    def total_kmers(self) -> int:
        """Total k-mer instances added (the k-mer "bag" size)."""
        return int(sum(b.size for b in self._batches))

    @property
    def distinct_kmers(self) -> int:
        """Number of distinct k-mers seen (the k-mer "set" size)."""
        return int(self._merge()[0].size)

    def counts(self) -> tuple[np.ndarray, np.ndarray]:
        """(codes, counts) of every distinct k-mer, codes ascending."""
        return self._merge()

    def count_of(self, code: int) -> int:
        """Exact count of one code (0 if never seen)."""
        codes, counts = self._merge()
        idx = np.searchsorted(codes, np.uint64(code))
        if idx < codes.size and codes[idx] == np.uint64(code):
            return int(counts[idx])
        return 0

    def singleton_fraction(self) -> float:
        """Fraction of distinct k-mers that occur exactly once."""
        _, counts = self._merge()
        if counts.size == 0:
            return 0.0
        return float(np.count_nonzero(counts == 1) / counts.size)

    def retained(self, min_count: int = 2, max_count: int | None = None
                 ) -> tuple[np.ndarray, np.ndarray]:
        """Codes and counts within the reliable range [min_count, max_count]."""
        codes, counts = self._merge()
        mask = counts >= min_count
        if max_count is not None:
            mask &= counts <= max_count
        return codes[mask], counts[mask]


def kmer_frequency_histogram(counts: np.ndarray, max_bin: int = 64) -> np.ndarray:
    """Histogram of k-mer multiplicities: entry i = number of k-mers seen i times.

    Entry 0 is unused; multiplicities above *max_bin* are clamped into the
    last bin.  This is the k-mer frequency spectrum used to sanity-check the
    synthetic data sets against the paper's stated singleton fractions.
    """
    counts = np.asarray(counts, dtype=np.int64)
    if max_bin <= 0:
        raise ValueError("max_bin must be positive")
    clamped = np.minimum(counts, max_bin)
    hist = np.bincount(clamped, minlength=max_bin + 1)
    return hist
