"""k-mer analysis machinery: hashing, Bloom filter, hash table, reliable-k-mer model.

This subpackage holds the distributed data structures and statistical models
of diBELLA's first two pipeline stages:

* :mod:`repro.kmers.hashing` — the 64-bit mixing functions used both for
  Bloom-filter/hash-table probing and for assigning each k-mer to its owner
  rank ("the k-mers are mapped to processors uniformly at random via
  hashing", §4).
* :mod:`repro.kmers.bloom` — the partitioned Bloom filter of stage 1 (§6).
* :mod:`repro.kmers.hyperloglog` — HyperLogLog cardinality estimation, the
  HipMer fallback for sizing the Bloom filter on extremely large inputs (§6).
* :mod:`repro.kmers.counter` — plain k-mer counting (histograms, baseline).
* :mod:`repro.kmers.hashtable` — the per-rank partition of the distributed
  k-mer → [(read id, position)] hash table of stage 2 (§7).
* :mod:`repro.kmers.reliable` — the BELLA reliable-k-mer statistical model:
  optimal k, the high-frequency cutoff m, and cardinality estimates (§2, §3).
* :mod:`repro.kmers.minimizer` — the windowed-minimizer sketch front-end
  (``seed_mode="minimizer"``): keeps only the minimum-hash k-mer per window
  of w, cutting stage 1-3 exchange volume and table size to ~2/(w+1).
"""

from repro.kmers.hashing import mix64, owner_of, hash_with_seed
from repro.kmers.bloom import BloomFilter
from repro.kmers.hyperloglog import HyperLogLog
from repro.kmers.counter import count_kmers, KmerCounter, kmer_frequency_histogram
from repro.kmers.hashtable import KmerHashTablePartition, RetainedKmers
from repro.kmers.minimizer import (
    DEFAULT_MINIMIZER_WINDOW,
    SKETCH_HASH_SEED,
    expected_density,
    minimizer_mask,
    sketch_hash,
    sketch_kmers_batch,
    sketch_kmers_with_strand,
)
from repro.kmers.reliable import (
    probability_correct_kmer,
    probability_shared_kmer,
    optimal_k,
    high_frequency_threshold,
    reliable_range,
    estimate_total_kmers,
    estimate_distinct_kmers,
    expected_singleton_fraction,
)

__all__ = [
    "mix64",
    "owner_of",
    "hash_with_seed",
    "BloomFilter",
    "HyperLogLog",
    "count_kmers",
    "KmerCounter",
    "kmer_frequency_histogram",
    "KmerHashTablePartition",
    "RetainedKmers",
    "DEFAULT_MINIMIZER_WINDOW",
    "SKETCH_HASH_SEED",
    "expected_density",
    "minimizer_mask",
    "sketch_hash",
    "sketch_kmers_batch",
    "sketch_kmers_with_strand",
    "probability_correct_kmer",
    "probability_shared_kmer",
    "optimal_k",
    "high_frequency_threshold",
    "reliable_range",
    "estimate_total_kmers",
    "estimate_distinct_kmers",
    "expected_singleton_fraction",
]
