"""The BELLA reliable-k-mer statistical model.

diBELLA inherits BELLA's data-driven parameter choices (§2, §3):

* **k-mer length** — short enough that two truly overlapping reads share at
  least one *error-free* k-mer with high probability, long enough that random
  repeats do not flood the overlap detection.  The probability that a k-mer
  is sequenced without error in one read is ``(1-e)^k``; the probability that
  a specific position gives a correct shared k-mer in *both* reads of an
  overlap is ``(1-e)^(2k)``.
* **high-frequency threshold m** — a unique genomic k-mer is expected to be
  observed approximately ``d · (1-e)^k`` times in a depth-d data set
  (binomially distributed).  k-mers observed far more often than that almost
  certainly come from genomic repeats and are discarded; the threshold is the
  upper tail of that distribution.
* **cardinality estimates** — equation (2) of the paper: the total k-mer bag
  is ≈ G·d instances, and the distinct-k-mer set is dominated by erroneous
  singletons (up to 98% for long reads, §6), which is what makes the
  Bloom-filter pre-pass worthwhile.
"""

from __future__ import annotations

import math

from scipy import stats


def probability_correct_kmer(error_rate: float, k: int) -> float:
    """Probability that a single k-mer is sequenced with no errors: (1-e)^k."""
    _validate_error_rate(error_rate)
    _validate_k(k)
    return (1.0 - error_rate) ** k


def probability_shared_kmer(error_rate: float, k: int, overlap_length: int) -> float:
    """Probability that two overlapping reads share >= 1 correct k-mer.

    Both copies of a k-mer must be error-free, which happens with probability
    ``(1-e)^(2k)`` per position; an overlap of length ``o`` offers
    ``o - k + 1`` positions.  Positions are treated as independent — the same
    first-order model BELLA uses to pick k.
    """
    _validate_error_rate(error_rate)
    _validate_k(k)
    if overlap_length < k:
        return 0.0
    p_both = (1.0 - error_rate) ** (2 * k)
    n_positions = overlap_length - k + 1
    return 1.0 - (1.0 - p_both) ** n_positions


def optimal_k(
    error_rate: float,
    min_overlap: int = 2000,
    target_probability: float = 0.999,
    k_min: int = 9,
    k_max: int = 31,
) -> int:
    """Largest k whose shared-k-mer probability still meets the target.

    Larger k means fewer repeat-induced spurious matches, so we pick the
    largest k in ``[k_min, k_max]`` for which an overlap of ``min_overlap``
    bases still yields a correct shared k-mer with probability at least
    ``target_probability``.  With PacBio-like error rates (10–15%) and a
    2 kbp minimum overlap this lands at 15–19 — the paper's "17-mers are
    typical".
    """
    if not (0.0 < target_probability < 1.0):
        raise ValueError("target_probability must be in (0, 1)")
    if k_min > k_max:
        raise ValueError("k_min must be <= k_max")
    best = None
    for k in range(k_min, k_max + 1):
        if probability_shared_kmer(error_rate, k, min_overlap) >= target_probability:
            best = k
    if best is None:
        # Even the smallest k fails the target; return k_min as the least-bad
        # choice rather than refusing to run (mirrors BELLA's behaviour of
        # always producing a parameterisation).
        return k_min
    return best


def high_frequency_threshold(
    coverage: float,
    error_rate: float,
    k: int,
    tail_probability: float = 1e-5,
    repeat_margin: float = 2.0,
) -> int:
    """The high-occurrence cutoff m for retained k-mers.

    A unique genomic k-mer appears ``Binomial(n≈2·d, p=(1-e)^k / 2)`` times
    (reads come from both strands; canonicalisation folds them together, so
    the expected count is ``d·(1-e)^k``).  We model the count as Poisson with
    that mean — accurate for the small per-position probabilities involved —
    and set m at the ``1 - tail_probability`` quantile, scaled by
    ``repeat_margin`` to avoid discarding k-mers from the expected-coverage
    upper tail.  k-mers with observed count above m are treated as repeats
    and dropped (§2).
    """
    if coverage <= 0:
        raise ValueError("coverage must be positive")
    _validate_error_rate(error_rate)
    _validate_k(k)
    if not (0.0 < tail_probability < 1.0):
        raise ValueError("tail_probability must be in (0, 1)")
    mean_count = coverage * probability_correct_kmer(error_rate, k)
    mean_count = max(mean_count, 1e-6)
    quantile = stats.poisson.ppf(1.0 - tail_probability, mean_count)
    m = int(math.ceil(repeat_margin * max(quantile, 2.0)))
    return max(m, 4)


def reliable_range(
    coverage: float, error_rate: float, k: int, tail_probability: float = 1e-5
) -> tuple[int, int]:
    """(lower, upper) retained-k-mer count bounds: singletons out, repeats out."""
    upper = high_frequency_threshold(coverage, error_rate, k,
                                     tail_probability=tail_probability)
    return 2, upper


def estimate_total_kmers(genome_size: int, coverage: float) -> int:
    """Equation (2): the k-mer bag size is approximately G · d instances."""
    if genome_size <= 0:
        raise ValueError("genome_size must be positive")
    if coverage <= 0:
        raise ValueError("coverage must be positive")
    return int(genome_size * coverage)


def expected_singleton_fraction(coverage: float, error_rate: float, k: int) -> float:
    """Expected fraction of *distinct* k-mers that are erroneous singletons.

    Each sequencing error corrupts up to k overlapping k-mers, and a
    corrupted k-mer is almost surely unique in the data set.  The number of
    distinct erroneous k-mers is therefore ≈ G·d·(1 - (1-e)^k) while the
    correct distinct k-mers number ≈ G, giving a singleton fraction of
    roughly ``x / (x + 1)`` with ``x = d·(1 - (1-e)^k)``.  For d=30, e=0.12,
    k=17 this is ≈ 0.96 — matching the paper's "up to 98% of k-mers from
    long reads are singletons" (§6).
    """
    if coverage <= 0:
        raise ValueError("coverage must be positive")
    _validate_error_rate(error_rate)
    _validate_k(k)
    erroneous_per_genome_position = coverage * (1.0 - probability_correct_kmer(error_rate, k))
    return erroneous_per_genome_position / (erroneous_per_genome_position + 1.0)


def estimate_distinct_kmers(genome_size: int, coverage: float, error_rate: float,
                            k: int) -> int:
    """Estimated cardinality of the k-mer set (for Bloom-filter sizing, §6).

    Distinct k-mers ≈ correct genomic k-mers (≈ G) plus distinct erroneous
    k-mers (≈ G·d·(1 - (1-e)^k)).
    """
    if genome_size <= 0:
        raise ValueError("genome_size must be positive")
    erroneous = genome_size * coverage * (1.0 - probability_correct_kmer(error_rate, k))
    return int(genome_size + erroneous)


def _validate_error_rate(error_rate: float) -> None:
    if not (0.0 <= error_rate < 1.0):
        raise ValueError("error_rate must be in [0, 1)")


def _validate_k(k: int) -> None:
    if k < 1:
        raise ValueError("k must be >= 1")
