"""64-bit integer hashing used throughout the k-mer machinery.

A single high-quality mixer (the splitmix64 finaliser) serves three purposes:

* deriving the multiple Bloom-filter probe positions (one seed per probe),
* deriving HyperLogLog register/rank bits,
* assigning each distinct k-mer to its owner rank — the uniform-at-random
  k-mer → processor mapping that gives diBELLA its k-mer load balance (§4:
  "each processor will own roughly the same number of distinct k-mers").

All functions are vectorised over numpy ``uint64`` arrays and overflow
(wrap-around) is intentional, as in the reference C implementations.
"""

from __future__ import annotations

import numpy as np

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)


def mix64(values: np.ndarray | int) -> np.ndarray | int:
    """splitmix64 finaliser: a bijective 64-bit mixer with good avalanche."""
    scalar = np.isscalar(values)
    z = np.atleast_1d(np.asarray(values, dtype=np.uint64)).copy()
    with np.errstate(over="ignore"):
        z += _GOLDEN
        z ^= z >> np.uint64(30)
        z *= _MIX1
        z ^= z >> np.uint64(27)
        z *= _MIX2
        z ^= z >> np.uint64(31)
    if scalar:
        return int(z[0])
    return z


def hash_with_seed(values: np.ndarray | int, seed: int) -> np.ndarray | int:
    """Seeded variant of :func:`mix64` (distinct seeds give independent-ish hashes)."""
    scalar = np.isscalar(values)
    arr = np.atleast_1d(np.asarray(values, dtype=np.uint64))
    with np.errstate(over="ignore"):
        seeded = arr ^ (np.uint64(seed & 0xFFFFFFFFFFFFFFFF) * _GOLDEN)
    out = mix64(seeded)
    if scalar:
        return int(np.atleast_1d(out)[0])
    return out


def owner_of(codes: np.ndarray | int, n_ranks: int) -> np.ndarray | int:
    """Owner rank of each k-mer code: ``mix64(code) mod n_ranks``.

    Every stage uses the same mapping, so a k-mer lands on the same rank in
    the Bloom-filter stage, the hash-table stage and the overlap stage —
    "the k-mers are hashed to the same distributed memory location that they
    were in the previous stage" (§7).
    """
    if n_ranks <= 0:
        raise ValueError("n_ranks must be positive")
    hashed = mix64(codes)
    if np.isscalar(hashed):
        return int(hashed % n_ranks)
    return (hashed % np.uint64(n_ranks)).astype(np.int64)
