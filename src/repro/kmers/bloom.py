"""Bloom filter for singleton k-mer detection.

Stage 1 of diBELLA builds a *distributed* Bloom filter: every rank owns a
partition and k-mers are routed to their owner rank before insertion (§6).
This class implements one partition (a plain Bloom filter over ``uint64``
k-mer codes); the distribution is the pipeline's job.

The structure supports the exact usage pattern of the pipeline: bulk
insertion that reports, per k-mer, whether it had (probably) been seen
before — the signal used to promote a k-mer from "possible singleton" to
"hash-table candidate".  It may return false positives (a k-mer reported as
seen that never was), never false negatives, which is why stage 2 re-checks
counts and "remove[s] singleton k-mers that were missed by the Bloom filter"
(§4).
"""

from __future__ import annotations

import math

import numpy as np

from repro.kmers.hashing import hash_with_seed


class BloomFilter:
    """A bit-array Bloom filter over 64-bit k-mer codes.

    Parameters
    ----------
    n_bits:
        Size of the bit array.  Use :meth:`for_expected_items` to size the
        filter from a cardinality estimate and a false-positive target.
    n_hashes:
        Number of probe positions per element.
    """

    def __init__(self, n_bits: int, n_hashes: int = 4):
        if n_bits <= 0:
            raise ValueError("n_bits must be positive")
        if n_hashes <= 0:
            raise ValueError("n_hashes must be positive")
        self.n_bits = int(n_bits)
        self.n_hashes = int(n_hashes)
        self._bits = np.zeros((self.n_bits + 7) // 8, dtype=np.uint8)
        self._n_inserted = 0

    # -- construction helpers ----------------------------------------------------

    @classmethod
    def for_expected_items(cls, expected_items: int, fp_rate: float = 0.05) -> "BloomFilter":
        """Size a filter for *expected_items* insertions at the target FP rate.

        Uses the standard optima ``m = -n ln p / (ln 2)^2`` and
        ``k = (m / n) ln 2``.  diBELLA sizes its filter from the k-mer
        cardinality estimate of equation (2) (§6).
        """
        if expected_items <= 0:
            raise ValueError("expected_items must be positive")
        if not (0.0 < fp_rate < 1.0):
            raise ValueError("fp_rate must be in (0, 1)")
        n_bits = int(math.ceil(-expected_items * math.log(fp_rate) / (math.log(2) ** 2)))
        n_hashes = max(1, int(round((n_bits / expected_items) * math.log(2))))
        return cls(n_bits=max(64, n_bits), n_hashes=n_hashes)

    # -- internal ------------------------------------------------------------------

    def _positions(self, codes: np.ndarray) -> np.ndarray:
        """(n_hashes, n) matrix of probe positions for each code."""
        codes = np.asarray(codes, dtype=np.uint64)
        pos = np.empty((self.n_hashes, codes.size), dtype=np.int64)
        for h in range(self.n_hashes):
            pos[h] = (hash_with_seed(codes, seed=h + 1) % np.uint64(self.n_bits)).astype(np.int64)
        return pos

    def _test_positions(self, pos: np.ndarray) -> np.ndarray:
        """Boolean vector: all probe bits set for each column of *pos*."""
        byte_idx = pos >> 3
        bit_mask = np.left_shift(np.uint8(1), (pos & 7).astype(np.uint8))
        present = (self._bits[byte_idx] & bit_mask) != 0
        return present.all(axis=0)

    # -- public API ------------------------------------------------------------------

    def insert_many(self, codes: np.ndarray) -> np.ndarray:
        """Insert codes; return a boolean array "was (probably) present before".

        Duplicate codes *within the same batch* are handled the way the
        streaming pipeline expects: the second and later occurrences of a
        code in the batch report ``True`` even though the first occurrence
        had not yet set its bits when the batch arrived.
        """
        codes = np.asarray(codes, dtype=np.uint64)
        if codes.size == 0:
            return np.zeros(0, dtype=bool)
        pos = self._positions(codes)
        present_before = self._test_positions(pos)

        # Within-batch duplicates: any code equal to an earlier code in the
        # batch counts as present.
        order = np.argsort(codes, kind="stable")
        sorted_codes = codes[order]
        dup_sorted = np.zeros(codes.size, dtype=bool)
        dup_sorted[1:] = sorted_codes[1:] == sorted_codes[:-1]
        duplicate_in_batch = np.zeros(codes.size, dtype=bool)
        duplicate_in_batch[order] = dup_sorted
        present_before |= duplicate_in_batch

        # Set all probe bits.
        byte_idx = (pos >> 3).ravel()
        bit_mask = np.left_shift(np.uint8(1), (pos & 7).astype(np.uint8)).ravel()
        np.bitwise_or.at(self._bits, byte_idx, bit_mask)
        self._n_inserted += int(codes.size)
        return present_before

    def contains_many(self, codes: np.ndarray) -> np.ndarray:
        """Boolean membership test (may contain false positives)."""
        codes = np.asarray(codes, dtype=np.uint64)
        if codes.size == 0:
            return np.zeros(0, dtype=bool)
        return self._test_positions(self._positions(codes))

    def contains(self, code: int) -> bool:
        """Scalar membership test."""
        return bool(self.contains_many(np.array([code], dtype=np.uint64))[0])

    # -- introspection -----------------------------------------------------------------

    @property
    def n_inserted(self) -> int:
        """Number of insert operations performed (counting duplicates)."""
        return self._n_inserted

    @property
    def nbytes(self) -> int:
        """Memory footprint of the bit array in bytes."""
        return int(self._bits.nbytes)

    def fill_ratio(self) -> float:
        """Fraction of bits currently set (monitoring / FP-rate estimation)."""
        set_bits = int(np.unpackbits(self._bits).sum())
        return set_bits / self.n_bits

    def estimated_fp_rate(self) -> float:
        """Estimated false-positive probability at the current fill ratio."""
        return self.fill_ratio() ** self.n_hashes
