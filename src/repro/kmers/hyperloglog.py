"""HyperLogLog cardinality estimation.

HipMer (and diBELLA for "extremely large and repetitive genomes", §6) uses
HyperLogLog to estimate the number of distinct k-mers before sizing the Bloom
filter.  The paper's experiments got away with the closed-form estimate of
equation (2); we implement the estimator anyway because it is part of the
described system and the bench suite uses it to validate the closed-form
estimate against the synthetic data sets.

The implementation is the standard Flajolet et al. estimator with the usual
small-range (linear counting) correction, vectorised over numpy arrays, and
supports merging partitions — which is how a *distributed* cardinality
estimate is assembled from per-rank sketches with a single allreduce.
"""

from __future__ import annotations

import numpy as np

from repro.kmers.hashing import mix64


class HyperLogLog:
    """HyperLogLog sketch over 64-bit k-mer codes.

    Parameters
    ----------
    precision:
        Number of index bits p; the sketch uses ``2**p`` registers.  14 gives
        ~0.8% relative error at ~16 KiB per sketch.
    """

    def __init__(self, precision: int = 14):
        if not (4 <= precision <= 18):
            raise ValueError("precision must be in [4, 18]")
        self.precision = precision
        self.n_registers = 1 << precision
        self._registers = np.zeros(self.n_registers, dtype=np.uint8)

    # -- updates -------------------------------------------------------------

    def add_many(self, codes: np.ndarray) -> None:
        """Add a batch of codes to the sketch."""
        codes = np.asarray(codes, dtype=np.uint64)
        if codes.size == 0:
            return
        hashed = mix64(codes)
        p = self.precision
        idx = (hashed >> np.uint64(64 - p)).astype(np.int64)
        remainder = hashed << np.uint64(p)  # low 64-p bits shifted up
        # rank = position of the leftmost 1-bit in the remainder, in [1, 64-p+1]
        # Computed as (64 - p) - floor(log2(remainder_bits)) via bit twiddling:
        # use the number of leading zeros of the remainder within 64-p bits.
        rank = np.empty(codes.size, dtype=np.uint8)
        zero_mask = remainder == 0
        rank[zero_mask] = 64 - p + 1
        nz = ~zero_mask
        if np.any(nz):
            # log2 of a uint64 via float conversion is exact for the leading
            # bit position (values < 2^64, and we only need the bit index).
            bit_index = np.floor(np.log2(remainder[nz].astype(np.float64))).astype(np.int64)
            bit_index = np.minimum(bit_index, 63)
            rank[nz] = (64 - bit_index).astype(np.uint8)
        np.maximum.at(self._registers, idx, rank)

    def add(self, code: int) -> None:
        """Add a single code."""
        self.add_many(np.array([code], dtype=np.uint64))

    # -- estimation -----------------------------------------------------------

    @staticmethod
    def _alpha(m: int) -> float:
        if m == 16:
            return 0.673
        if m == 32:
            return 0.697
        if m == 64:
            return 0.709
        return 0.7213 / (1.0 + 1.079 / m)

    def estimate(self) -> float:
        """Estimated number of distinct codes added."""
        m = self.n_registers
        registers = self._registers.astype(np.float64)
        raw = self._alpha(m) * m * m / np.sum(np.power(2.0, -registers))
        zeros = int(np.count_nonzero(self._registers == 0))
        if raw <= 2.5 * m and zeros > 0:
            # linear-counting correction for small cardinalities
            return m * np.log(m / zeros)
        return float(raw)

    # -- distributed use --------------------------------------------------------

    def merge(self, other: "HyperLogLog") -> "HyperLogLog":
        """Merge another sketch into this one (register-wise max); returns self."""
        if other.precision != self.precision:
            raise ValueError("cannot merge sketches with different precision")
        np.maximum(self._registers, other._registers, out=self._registers)
        return self

    def registers(self) -> np.ndarray:
        """Copy of the register array (for allreduce-style merging)."""
        return self._registers.copy()

    @classmethod
    def from_registers(cls, registers: np.ndarray) -> "HyperLogLog":
        """Rebuild a sketch from a register array."""
        registers = np.asarray(registers, dtype=np.uint8)
        m = registers.size
        precision = int(np.log2(m))
        if (1 << precision) != m:
            raise ValueError("register count must be a power of two")
        sketch = cls(precision=precision)
        sketch._registers = registers.copy()
        return sketch

    def __or__(self, other: "HyperLogLog") -> "HyperLogLog":
        merged = HyperLogLog.from_registers(self._registers)
        return merged.merge(other)
