"""Windowed minimizer sketching of the k-mer stream.

diBELLA's stages 1-3 exhaustively extract, exchange and table *every*
canonical k-mer, so their communication volume and retained-table size scale
with total input bases.  Minimap2 and miniasm showed that seeding from
**windowed minimizers** — keeping, for every window of ``w`` consecutive
k-mers, only the one with the smallest hash — preserves overlap sensitivity
while shrinking the seed set to an expected density of ``2/(w+1)`` of the
full k-mer stream.  This module is that front-end: a purely vectorised
selection mask over the batch extraction of :mod:`repro.seq.kmer`, so only
window minima ever reach the Bloom filter, the hash-table exchange, or the
overlap pair generation (``PipelineConfig.seed_mode = "minimizer"``).

Selection is *content-based*: the hash is a seeded invertible mix of the
canonical k-mer code, so every read containing the same (error-free) window
of genome selects the same minimizer — which is what keeps the occurrence
counts of selected k-mers in the reliable range and overlap recall high.

Invariants (pinned by the property tests in ``tests/test_minimizer.py``):

* **coverage** — every window of ``w`` consecutive k-mers of a read contains
  at least one selected position; a read with fewer than ``w`` k-mers keeps
  its single minimum-hash k-mer, so no read drops out of the sketch;
* **subset** — the sketch is a subset of the full canonical k-mer stream
  (same codes, positions and strand flags, just fewer of them);
* **determinism** — the mask is a pure function of (sequence, k, w): batch
  and scalar extraction agree, and so do all ranks and backends;
* ``w = 1`` selects everything (the sketch degenerates to the full stream).

Ties inside a window (only possible for equal canonical codes) break to the
leftmost position, so the selection is deterministic without a tie-breaking
secondary hash.
"""

from __future__ import annotations

import numpy as np

from repro.kmers.hashing import hash_with_seed
from repro.seq.kmer import KmerSpec, extract_kmers_batch, extract_kmers_with_strand

#: Fixed seed of the sketch hash.  Deliberately distinct from the (unseeded)
#: owner-rank hash ``mix64`` so "is a window minimum" and "which rank owns
#: this k-mer" stay statistically independent decisions.
SKETCH_HASH_SEED: int = 0x5EED_AB1E_D1BE_11A5

#: Default window length (k-mers per window).  11 keeps an expected
#: ``2/(w+1) = 1/6`` of the stream — the ablation bench's sweet spot.
DEFAULT_MINIMIZER_WINDOW: int = 11


def sketch_hash(codes: np.ndarray | int) -> np.ndarray | int:
    """The minimizer ordering: a seeded invertible 64-bit mix of each code.

    An invertible mixer gives a uniform pseudo-random total order over
    canonical codes without collisions, so "the window minimum" is a
    well-defined single k-mer per window (up to equal codes).
    """
    return hash_with_seed(codes, SKETCH_HASH_SEED)


def expected_density(window: int) -> float:
    """Expected sketch density ``2/(w+1)`` of random sequence (minimap2 §2)."""
    if window < 1:
        raise ValueError("window must be >= 1")
    return min(1.0, 2.0 / (window + 1))


def minimizer_mask(hashes: np.ndarray, read_index: np.ndarray,
                   window: int) -> np.ndarray:
    """Boolean mask selecting the windowed minimizers of a flat k-mer stream.

    Parameters
    ----------
    hashes:
        ``uint64`` sketch hashes of the k-mers, one per extracted k-mer, in
        extraction order (ascending position within each read).
    read_index:
        Per-k-mer read identifier, non-decreasing (the layout
        :func:`repro.seq.kmer.extract_kmers_batch` produces: each read's
        k-mers form one contiguous run).  Windows never span two reads.
    window:
        Window length ``w >= 1`` in k-mers: every run of ``w`` consecutive
        same-read k-mers contributes its minimum-hash position.

    Returns
    -------
    numpy.ndarray
        Boolean mask over the stream; ``mask[i]`` is True when k-mer ``i`` is
        the minimum of at least one window (or the global minimum of a read
        shorter than one window).

    Notes
    -----
    The sliding-window minimum is computed with a strided window view and a
    single vectorised ``argmin`` over the window axis — no Python-level loop
    over positions and no monotonic deque.  ``argmin`` returns the first
    minimum, so ties break to the leftmost position.
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    hashes = np.asarray(hashes, dtype=np.uint64)
    read_index = np.asarray(read_index, dtype=np.int64)
    if hashes.shape != read_index.shape:
        raise ValueError("hashes and read_index must have the same shape")
    n = hashes.size
    mask = np.zeros(n, dtype=bool)
    if n == 0:
        return mask
    if window == 1:
        mask[:] = True
        return mask

    w = window
    if n >= w:
        # One argmin per window start; windows crossing a read boundary are
        # dropped (a window is intra-read iff its first and last k-mer come
        # from the same read — read runs are contiguous).
        windows = np.lib.stride_tricks.sliding_window_view(hashes, w)
        arg = windows.argmin(axis=1).astype(np.int64)
        starts = np.arange(n - w + 1, dtype=np.int64)
        intra_read = read_index[starts] == read_index[starts + w - 1]
        mask[(starts + arg)[intra_read]] = True

    # Reads with fewer than w k-mers have no full window; keep each such
    # read's global minimum so every read stays represented in the sketch.
    run_first = np.concatenate(([True], read_index[1:] != read_index[:-1]))
    run_starts = np.flatnonzero(run_first)
    run_lengths = np.diff(np.append(run_starts, n))
    short = run_lengths < w
    if short.any():
        # Per-read (min hash, leftmost) via one lexsort: primary key read,
        # secondary hash, tertiary stream position.  The first entry of each
        # read's run in sorted order is its minimum; runs come out in the
        # same ascending-read order as run_starts.
        order = np.lexsort((np.arange(n, dtype=np.int64), hashes, read_index))
        sorted_reads = read_index[order]
        first_of_run = np.concatenate(([True], sorted_reads[1:] != sorted_reads[:-1]))
        run_min = order[first_of_run]
        mask[run_min[short]] = True
    return mask


def sketch_kmers_batch(
    seqs, spec: KmerSpec, window: int, with_strand: bool = False
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Extract the windowed-minimizer sketch of a batch of reads.

    The batch counterpart of :func:`sketch_kmers_with_strand` and the
    sketching mirror of :func:`repro.seq.kmer.extract_kmers_batch`: same
    signature plus ``window``, same return layout ``(codes, read_index,
    positions, is_forward)``, but only the window minima survive — so
    downstream consumers (owner hashing, metadata packing,
    :class:`~repro.overlap.pairs.PairBatch` construction) are unchanged.

    The ordering hash is computed over the codes as returned by the full
    extraction — canonical codes in both pipeline uses (``with_strand=True``
    or a canonical *spec*) — so two reads sharing an error-free window select
    the same minimizer regardless of strand.
    """
    codes, read_index, positions, is_forward = extract_kmers_batch(
        seqs, spec, with_strand=with_strand
    )
    keep = minimizer_mask(sketch_hash(codes), read_index, window)
    return (
        codes[keep],
        read_index[keep],
        positions[keep],
        is_forward[keep] if is_forward.size else is_forward,
    )


def sketch_kmers_with_strand(
    seq: str, spec: KmerSpec, window: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Scalar (one-read) sketch: ``(canonical codes, positions, is_forward)``.

    The sketching mirror of
    :func:`repro.seq.kmer.extract_kmers_with_strand`; used by the property
    tests as the oracle for batch-vs-scalar equivalence.
    """
    codes, positions, is_forward = extract_kmers_with_strand(seq, spec)
    keep = minimizer_mask(
        sketch_hash(codes), np.zeros(codes.size, dtype=np.int64), window
    )
    return codes[keep], positions[keep], is_forward[keep]
