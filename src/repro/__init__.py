"""repro: a from-scratch Python reproduction of diBELLA (ICPP 2019).

diBELLA is a distributed-memory pipeline that finds overlapping pairs of
long, noisy reads and computes seed-and-extend pairwise alignments for them.
This package reimplements the full system — the SPMD runtime, the k-mer
analysis (Bloom filter, distributed hash table, reliable-k-mer model), the
overlap and alignment stages, the synthetic PacBio-like data sets, the
DALIGNER-style baseline, and the cross-platform performance model used to
regenerate the paper's figures and tables.

Quickstart
----------
>>> from repro.data import tiny_dataset, generate_dataset
>>> from repro.core import run_dibella
>>> dataset = generate_dataset(tiny_dataset())
>>> result = run_dibella(dataset.reads, n_nodes=1, ranks_per_node=2)
>>> result.n_overlap_pairs > 0
True

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every reproduced table and figure.
"""

from repro.core import PipelineConfig, PipelineResult, run_dibella
from repro.mpisim import Topology
from repro.overlap import SeedStrategy
from repro.seq import Read, ReadSet
from repro.seq.kmer import KmerSpec

__version__ = "1.0.0"

__all__ = [
    "PipelineConfig",
    "PipelineResult",
    "run_dibella",
    "Topology",
    "SeedStrategy",
    "Read",
    "ReadSet",
    "KmerSpec",
    "__version__",
]
