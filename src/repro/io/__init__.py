"""File I/O: FASTQ/FASTA parsing and writing, and block partitioning of reads.

diBELLA's input is a FASTQ file of long reads; the first thing the pipeline
does is distribute the reads "roughly uniformly over the processors using
parallel I/O" (§6).  This subpackage provides the sequential readers/writers
plus the block partitioner that reproduces that distribution (by cumulative
read size in memory, as in §9: "partitions them as uniformly as possible ...
by the read size in memory").
"""

from repro.io.fasta import read_fasta, write_fasta
from repro.io.fastq import read_fastq, write_fastq
from repro.io.partition import partition_reads, partition_by_size, partition_round_robin

__all__ = [
    "read_fasta",
    "write_fasta",
    "read_fastq",
    "write_fastq",
    "partition_reads",
    "partition_by_size",
    "partition_round_robin",
]
