"""Block partitioning of reads across ranks.

The paper distributes input reads "roughly uniformly over the processors
using parallel I/O" (§6) and notes in §9 that the partitioning is "as
uniformly as possible ... by the read size in memory".  There is no locality
in the input order, so a greedy contiguous-block split by cumulative bytes is
both what the original implementation does and what we reproduce here.

All partitioners return a list of RID lists, one per rank, covering every RID
exactly once.
"""

from __future__ import annotations

import numpy as np

from repro.seq.records import ReadSet


def partition_by_size(readset: ReadSet, n_ranks: int) -> list[list[int]]:
    """Split RIDs into contiguous blocks balanced by total sequence bytes.

    Greedy scan: each rank receives consecutive reads until its running byte
    total reaches the ideal share (total_bytes / n_ranks).  Later ranks absorb
    any remainder, mirroring a block-cyclic parallel file read where each rank
    owns a contiguous byte range of the FASTQ file.
    """
    if n_ranks <= 0:
        raise ValueError("n_ranks must be positive")
    lengths = readset.read_lengths()
    n_reads = len(readset)
    if n_reads == 0:
        return [[] for _ in range(n_ranks)]
    total = int(lengths.sum())
    target = total / n_ranks
    assignments: list[list[int]] = [[] for _ in range(n_ranks)]
    rank = 0
    acc = 0
    for rid in range(n_reads):
        # Move to the next rank once this one has its share, but never leave
        # trailing ranks starved while earlier ranks hold surplus reads.
        if rank < n_ranks - 1 and acc >= target * (rank + 1):
            rank += 1
        assignments[rank].append(rid)
        acc += int(lengths[rid])
    return assignments


def partition_round_robin(readset: ReadSet, n_ranks: int) -> list[list[int]]:
    """Deal RIDs round-robin across ranks (used by ablation comparisons)."""
    if n_ranks <= 0:
        raise ValueError("n_ranks must be positive")
    assignments: list[list[int]] = [[] for _ in range(n_ranks)]
    for rid in range(len(readset)):
        assignments[rid % n_ranks].append(rid)
    return assignments


def partition_reads(
    readset: ReadSet, n_ranks: int, strategy: str = "size"
) -> list[list[int]]:
    """Partition reads across ranks using the named strategy.

    ``"size"`` (default) is the paper's contiguous byte-balanced split;
    ``"round_robin"`` deals reads cyclically and is used in ablations.
    """
    if strategy == "size":
        return partition_by_size(readset, n_ranks)
    if strategy == "round_robin":
        return partition_round_robin(readset, n_ranks)
    raise ValueError(f"unknown partition strategy: {strategy!r}")


def partition_imbalance(assignments: list[list[int]], readset: ReadSet) -> float:
    """Byte-level load imbalance of a partition (max over mean; 1.0 = perfect)."""
    lengths = readset.read_lengths()
    per_rank = np.array([int(lengths[rids].sum()) if rids else 0 for rids in assignments],
                        dtype=np.float64)
    if per_rank.sum() == 0:
        return 1.0
    return float(per_rank.max() / per_rank.mean())
