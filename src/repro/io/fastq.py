"""FASTQ reading and writing.

The parser is deliberately strict about record structure (4 lines per record,
``@`` header, ``+`` separator, matching sequence/quality lengths) because
malformed records silently corrupt downstream RID bookkeeping.  Sequences are
sanitised to the ACGT alphabet on ingest (ambiguous bases replaced), matching
the behaviour of diBELLA's k-mer parser which operates on the 4-letter
alphabet only.
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from typing import Iterable, Iterator, TextIO

from repro.seq.alphabet import sanitize
from repro.seq.records import Read, ReadSet


class FastqFormatError(ValueError):
    """Raised when a FASTQ file violates the 4-line record structure."""


def _open_text(path: str | Path) -> TextIO:
    """Open a possibly gzip-compressed text file for reading."""
    path = Path(path)
    if path.suffix == ".gz":
        return io.TextIOWrapper(gzip.open(path, "rb"), encoding="ascii")
    return open(path, "r", encoding="ascii")


def iter_fastq(path: str | Path) -> Iterator[Read]:
    """Yield :class:`Read` records from a FASTQ (optionally ``.gz``) file."""
    with _open_text(path) as fh:
        yield from parse_fastq(fh)


def parse_fastq(handle: Iterable[str]) -> Iterator[Read]:
    """Parse FASTQ records from an iterable of lines."""
    lines = iter(handle)
    lineno = 0
    while True:
        try:
            header = next(lines)
        except StopIteration:
            return
        lineno += 1
        header = header.rstrip("\n")
        if not header:
            continue  # tolerate trailing blank lines
        if not header.startswith("@"):
            raise FastqFormatError(f"line {lineno}: expected '@' header, got {header[:20]!r}")
        try:
            seq = next(lines).rstrip("\n")
            plus = next(lines).rstrip("\n")
            qual = next(lines).rstrip("\n")
        except StopIteration:
            raise FastqFormatError(f"truncated FASTQ record starting at line {lineno}") from None
        lineno += 3
        if not plus.startswith("+"):
            raise FastqFormatError(f"line {lineno - 1}: expected '+' separator, got {plus[:20]!r}")
        if len(seq) != len(qual):
            raise FastqFormatError(
                f"record {header[1:]!r}: sequence length {len(seq)} != quality length {len(qual)}"
            )
        name = header[1:].split()[0] if len(header) > 1 else f"read{lineno}"
        yield Read(name=name, sequence=sanitize(seq), quality=qual)


def read_fastq(path: str | Path) -> ReadSet:
    """Read an entire FASTQ file into a :class:`ReadSet`."""
    return ReadSet(iter_fastq(path))


def write_fastq(reads: Iterable[Read], path: str | Path) -> int:
    """Write reads to a FASTQ file; returns the number of records written.

    Reads without quality strings get a constant placeholder quality (``I``),
    which is how the synthetic data generator materialises data sets to disk.
    """
    path = Path(path)
    count = 0
    opener = gzip.open if path.suffix == ".gz" else open
    with opener(path, "wt", encoding="ascii") as fh:
        for read in reads:
            qual = read.quality if read.quality is not None else "I" * len(read.sequence)
            fh.write(f"@{read.name}\n{read.sequence}\n+\n{qual}\n")
            count += 1
    return count
