"""FASTA reading and writing (reference genomes and overlap output)."""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import Iterable, Iterator

from repro.seq.alphabet import sanitize
from repro.seq.records import Read, ReadSet


class FastaFormatError(ValueError):
    """Raised when a FASTA file is structurally invalid."""


def iter_fasta(path: str | Path) -> Iterator[Read]:
    """Yield :class:`Read` records (no quality) from a FASTA (``.gz`` ok) file."""
    path = Path(path)
    opener = gzip.open if path.suffix == ".gz" else open
    name: str | None = None
    chunks: list[str] = []
    with opener(path, "rt", encoding="ascii") as fh:
        for line in fh:
            line = line.rstrip("\n")
            if not line:
                continue
            if line.startswith(">"):
                if name is not None:
                    yield Read(name=name, sequence=sanitize("".join(chunks)))
                name = line[1:].split()[0]
                chunks = []
            else:
                if name is None:
                    raise FastaFormatError("sequence data before first '>' header")
                chunks.append(line)
        if name is not None:
            yield Read(name=name, sequence=sanitize("".join(chunks)))


def read_fasta(path: str | Path) -> ReadSet:
    """Read an entire FASTA file into a :class:`ReadSet`."""
    return ReadSet(iter_fasta(path))


def write_fasta(reads: Iterable[Read], path: str | Path, line_width: int = 80) -> int:
    """Write reads to a FASTA file wrapped at *line_width* columns."""
    if line_width <= 0:
        raise ValueError("line_width must be positive")
    path = Path(path)
    opener = gzip.open if path.suffix == ".gz" else open
    count = 0
    with opener(path, "wt", encoding="ascii") as fh:
        for read in reads:
            fh.write(f">{read.name}\n")
            seq = read.sequence
            for i in range(0, len(seq), line_width):
                fh.write(seq[i : i + line_width] + "\n")
            count += 1
    return count
