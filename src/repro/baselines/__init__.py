"""Baseline overlappers used for comparison and as correctness oracles.

* :mod:`repro.baselines.daligner` — a DALIGNER-style block sort-merge
  overlapper (Myers 2014): the single-node comparator of the paper's
  Table 2.
* :mod:`repro.baselines.bruteforce` — exhaustive all-pairs overlap detection
  on (small) read sets, the correctness oracle for the seed-based detectors.
"""

from repro.baselines.daligner import DalignerLikeOverlapper, DalignerConfig
from repro.baselines.bruteforce import brute_force_overlaps, brute_force_alignments

__all__ = [
    "DalignerLikeOverlapper",
    "DalignerConfig",
    "brute_force_overlaps",
    "brute_force_alignments",
]
