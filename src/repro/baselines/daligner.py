"""A DALIGNER-style single-node overlapper (the Table 2 comparator).

DALIGNER (Myers 2014) finds overlap candidates by *sorting* k-mers rather
than hashing them: reads are split into blocks, the (k-mer, read, position)
tuples of each pair of blocks are sorted and merge-scanned to find shared
k-mers, shared k-mers of a read pair are grouped, and a local alignment is
computed around promising groups.  Its distributed-memory story is a script
that runs block-against-block jobs independently — the approach §11
contrasts with diBELLA's.

This module reproduces that algorithmic skeleton on one node:

* block decomposition of the read set,
* per-block-pair k-mer sort + merge to find shared k-mers,
* per-pair seed grouping with a frequency cutoff (DALIGNER also suppresses
  overly frequent k-mers),
* x-drop seed extension using the same alignment kernel as diBELLA (so the
  Table 2 comparison is between the two *candidate-finding* strategies, not
  between two different aligners).

It is used by ``benchmarks/bench_table2_daligner.py`` to reproduce the shape
of Table 2 (diBELLA single-node runtime within a small factor of DALIGNER's)
and doubles as an independent overlap detector for cross-validating the
pipeline's output.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.align.batch import AlignmentTask, batched_xdrop_align
from repro.align.scoring import ScoringScheme
from repro.seq.kmer import KmerSpec, extract_kmers_with_strand
from repro.seq.records import ReadSet


@dataclass(frozen=True)
class DalignerConfig:
    """Parameters of the DALIGNER-like baseline.

    Attributes
    ----------
    k:
        Seed k-mer length (DALIGNER's default is 14; we keep diBELLA's 17 by
        default so the Table 2 comparison uses identical seeds).
    block_size:
        Number of reads per block; blocks are compared pairwise, which is the
        memory-bounding mechanism DALIGNER's scripting frontend exposes.
    max_kmer_freq:
        Shared k-mers whose total multiplicity within a block pair exceeds
        this are ignored (repeat suppression).
    min_shared_kmers:
        Read pairs sharing fewer seeds than this are not aligned.
    xdrop / band / scoring:
        Alignment kernel parameters (matching diBELLA's defaults).
    """

    k: int = 17
    block_size: int = 512
    max_kmer_freq: int = 64
    min_shared_kmers: int = 1
    xdrop: int = 25
    band: int = 33
    scoring: ScoringScheme = field(default_factory=ScoringScheme)

    def __post_init__(self) -> None:
        if self.block_size < 1:
            raise ValueError("block_size must be positive")
        if self.max_kmer_freq < 2:
            raise ValueError("max_kmer_freq must be at least 2")
        if self.min_shared_kmers < 1:
            raise ValueError("min_shared_kmers must be at least 1")


@dataclass
class DalignerResult:
    """Output of a baseline run: overlaps, alignments and timing."""

    overlap_pairs: set[tuple[int, int]]
    n_alignments: int
    total_score: int
    seconds_sort_merge: float
    seconds_alignment: float

    @property
    def total_seconds(self) -> float:
        """Total runtime (sort/merge plus alignment), excluding I/O."""
        return self.seconds_sort_merge + self.seconds_alignment


class DalignerLikeOverlapper:
    """Block sort-merge overlap detection with x-drop alignment."""

    def __init__(self, config: DalignerConfig | None = None):
        self.config = config or DalignerConfig()

    # -- k-mer table construction ------------------------------------------------

    def _block_table(self, reads: ReadSet, rids: list[int]
                     ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """(codes, rids, positions, strands) of every k-mer in a block, sorted by code."""
        spec = KmerSpec(k=self.config.k)
        code_chunks, rid_chunks, pos_chunks, strand_chunks = [], [], [], []
        for rid in rids:
            codes, positions, strands = extract_kmers_with_strand(reads[rid].sequence, spec)
            code_chunks.append(codes)
            pos_chunks.append(positions)
            strand_chunks.append(strands)
            rid_chunks.append(np.full(codes.size, rid, dtype=np.int64))
        if not code_chunks:
            return (np.empty(0, dtype=np.uint64), np.empty(0, dtype=np.int64),
                    np.empty(0, dtype=np.int64), np.empty(0, dtype=bool))
        codes = np.concatenate(code_chunks)
        rids_arr = np.concatenate(rid_chunks)
        positions = np.concatenate(pos_chunks)
        strands = np.concatenate(strand_chunks)
        order = np.argsort(codes, kind="stable")
        return codes[order], rids_arr[order], positions[order], strands[order]

    def _merge_blocks(
        self,
        table_a: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
        table_b: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
        same_block: bool,
    ) -> dict[tuple[int, int], list[tuple[int, int, bool]]]:
        """Merge two sorted k-mer tables; collect seeds per read pair."""
        codes_a, rids_a, pos_a, str_a = table_a
        codes_b, rids_b, pos_b, str_b = table_b
        seeds: dict[tuple[int, int], list[tuple[int, int, bool]]] = {}
        if codes_a.size == 0 or codes_b.size == 0:
            return seeds

        # Shared codes via sorted intersection.
        shared = np.intersect1d(codes_a, codes_b)
        for code in shared:
            lo_a = np.searchsorted(codes_a, code, side="left")
            hi_a = np.searchsorted(codes_a, code, side="right")
            lo_b = np.searchsorted(codes_b, code, side="left")
            hi_b = np.searchsorted(codes_b, code, side="right")
            if (hi_a - lo_a) + (hi_b - lo_b) > self.config.max_kmer_freq:
                continue  # repeat suppression
            for i in range(lo_a, hi_a):
                for j in range(lo_b, hi_b):
                    ra, rb = int(rids_a[i]), int(rids_b[j])
                    if ra == rb:
                        continue
                    if same_block and ra > rb:
                        continue  # avoid double counting within a block
                    key = (min(ra, rb), max(ra, rb))
                    if ra <= rb:
                        seed = (int(pos_a[i]), int(pos_b[j]), bool(str_a[i] == str_b[j]))
                    else:
                        seed = (int(pos_b[j]), int(pos_a[i]), bool(str_a[i] == str_b[j]))
                    seeds.setdefault(key, []).append(seed)
        return seeds

    # -- public API -------------------------------------------------------------------

    def run(self, reads: ReadSet) -> DalignerResult:
        """Detect overlaps and align them, reporting the phase timings."""
        config = self.config
        rids = list(range(len(reads)))
        blocks = [rids[i : i + config.block_size]
                  for i in range(0, len(rids), config.block_size)]

        t0 = time.perf_counter()
        tables = [self._block_table(reads, block) for block in blocks]
        all_seeds: dict[tuple[int, int], list[tuple[int, int, bool]]] = {}
        for bi in range(len(blocks)):
            for bj in range(bi, len(blocks)):
                merged = self._merge_blocks(tables[bi], tables[bj], same_block=(bi == bj))
                for key, seed_list in merged.items():
                    all_seeds.setdefault(key, []).extend(seed_list)
        sort_merge_seconds = time.perf_counter() - t0

        # One alignment per pair, seeded by its first shared k-mer (DALIGNER
        # merges seed groups into one local alignment per diagonal band).
        t1 = time.perf_counter()
        tasks: list[AlignmentTask] = []
        for (ra, rb), seed_list in all_seeds.items():
            if len(seed_list) < config.min_shared_kmers:
                continue
            pa, pb, same = seed_list[0]
            tasks.append(AlignmentTask(rid_a=ra, rid_b=rb, seed_pos_a=pa,
                                       seed_pos_b=pb, same_strand=same))
        sequences = {rid: reads[rid].sequence for rid in range(len(reads))}
        results = batched_xdrop_align(
            tasks, sequences, k=config.k, scoring=config.scoring,
            xdrop=config.xdrop, band=config.band,
        )
        alignment_seconds = time.perf_counter() - t1

        return DalignerResult(
            overlap_pairs={(t.rid_a, t.rid_b) for t in tasks},
            n_alignments=len(results),
            total_score=int(sum(r.score for r in results)),
            seconds_sort_merge=sort_merge_seconds,
            seconds_alignment=alignment_seconds,
        )
