"""Brute-force all-pairs overlap detection (correctness oracle).

"Done naively, set alignment requires O(|S|·|T|·L²) operations ... which
becomes intractable for large data sets" (§2) — which is exactly why it is
only used here as an oracle on small read sets: it aligns every pair of
reads with the exact Smith–Waterman kernel (both strands) and reports the
pairs whose score clears a threshold, with no k-mer filtering that could
miss anything.
"""

from __future__ import annotations

from itertools import combinations

from repro.align.results import AlignmentResult
from repro.align.scoring import ScoringScheme
from repro.align.smith_waterman import smith_waterman
from repro.seq.alphabet import reverse_complement
from repro.seq.records import ReadSet


def brute_force_alignments(
    reads: ReadSet,
    min_score: int = 50,
    scoring: ScoringScheme | None = None,
    max_reads: int = 100,
    both_strands: bool = True,
) -> dict[tuple[int, int], AlignmentResult]:
    """Align every pair of reads exactly; return the pairs scoring >= min_score.

    Refuses read sets larger than *max_reads* — the quadratic cost is the
    whole point of not doing this at scale.  With ``both_strands`` the second
    read is also tried reverse-complemented (simulated reads come from either
    strand) and the better of the two alignments is kept.
    """
    if len(reads) > max_reads:
        raise ValueError(
            f"brute force is quadratic; refusing {len(reads)} reads (max {max_reads})"
        )
    scoring = scoring or ScoringScheme()
    results: dict[tuple[int, int], AlignmentResult] = {}
    revcomp_cache = {
        rid: reverse_complement(reads[rid].sequence) for rid in range(len(reads))
    } if both_strands else {}
    for rid_a, rid_b in combinations(range(len(reads)), 2):
        seq_a = reads[rid_a].sequence
        best = smith_waterman(seq_a, reads[rid_b].sequence, scoring=scoring)
        if both_strands:
            rc = smith_waterman(seq_a, revcomp_cache[rid_b], scoring=scoring)
            if rc.score > best.score:
                best = rc
        if best.score >= min_score:
            results[(rid_a, rid_b)] = best
    return results


def brute_force_overlaps(
    reads: ReadSet,
    min_score: int = 50,
    scoring: ScoringScheme | None = None,
    max_reads: int = 100,
    both_strands: bool = True,
) -> set[tuple[int, int]]:
    """The overlapping pair set according to the brute-force aligner."""
    return set(
        brute_force_alignments(
            reads, min_score=min_score, scoring=scoring, max_reads=max_reads,
            both_strands=both_strands,
        )
    )
