"""Pipeline configuration.

Collects every runtime parameter of the diBELLA pipeline in one frozen
dataclass: the k-mer analysis parameters (§2), the streaming/memory bound
(§4: "diBELLA executes in a streaming fashion with a subset of input data at
a time"), the seed-selection constraints (§5, §8), the alignment kernel
settings (§9), and the layout/heuristic knobs exercised by the ablation
benches.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

from repro.align.batched_xdrop import DEFAULT_XDROP_BAND
from repro.align.scoring import ScoringScheme
from repro.kmers.reliable import high_frequency_threshold
from repro.mpisim.faults import FaultPlan
from repro.overlap.seeds import SeedStrategy
from repro.seq.kmer import KmerSpec
from repro.seq.records import ReadSet


#: The four stages whose exchanges run on the unified superstep scheduler
#: (`repro.core.supersteps`), in pipeline order.  Mirrors
#: ``repro.core.result.STAGE_NAMES`` (kept separate to avoid an import
#: cycle: ``result`` imports this module).
SUPERSTEP_STAGES: tuple[str, ...] = ("bloom", "hashtable", "overlap", "alignment")


def _env_flag(name: str, default: bool) -> bool:
    """Parse a boolean environment knob (unset -> *default*)."""
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw.strip().lower() not in ("0", "", "false", "off", "no")


def _env_stage_tuple(name: str) -> tuple[str, ...] | None:
    """Parse a comma-separated stage list from the environment (unset -> None)."""
    raw = os.environ.get(name)
    if raw is None:
        return None
    return tuple(part.strip() for part in raw.split(",") if part.strip())


def _env_optional_int(name: str) -> int | None:
    """Parse an optional positive int knob (unset or "0" -> None)."""
    raw = os.environ.get(name)
    if raw is None or raw.strip() in ("", "0"):
        return None
    return int(raw)


def _env_optional_float(name: str, default: float | None) -> float | None:
    """Parse an optional float knob (unset -> *default*, "0" -> None)."""
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    value = float(raw)
    return None if value == 0 else value


@dataclass(frozen=True)
class PipelineConfig:
    """All runtime parameters of a diBELLA run.

    Attributes
    ----------
    kmer:
        k-mer length and canonicalisation (defaults to 17-mers, §2).
    seed_mode:
        Seeding front-end of stages 1-3.  ``"reliable"`` (the paper) extracts
        and exchanges *every* canonical k-mer; ``"minimizer"`` keeps only the
        minimum-hash k-mer per window of ``minimizer_window`` consecutive
        k-mers (:mod:`repro.kmers.minimizer`), so the Bloom filter, the HLL
        pre-pass, the hash-table exchange, the retained table and pair
        generation all see an expected ``2/(w+1)`` of the stream — a ~w/2-x
        cut of stage 1-3 wire bytes and table memory at a small recall cost
        (measured by ``benchmarks/bench_ablation_seed_sketch.py``).  The
        serve path sketches index build and query batches with the same
        (k, w), and the resident-index tag includes the sketch parameters so
        mismatched build/query modes never share an index.  The default
        honours ``DIBELLA_SEED_MODE`` (CLI ``--seed-mode``).
    minimizer_window:
        Window length w (in k-mers) of the minimizer sketch; ``1`` selects
        every k-mer (sketching off), larger windows trade seed density for
        volume.  Ignored in ``"reliable"`` mode.  The default honours
        ``DIBELLA_MINIMIZER_WINDOW`` (CLI ``--minimizer-window``).
    min_kmer_count:
        Lower bound of the reliable range — k-mers below it are singletons
        and dropped (always 2 in the paper).
    high_freq_threshold:
        Upper bound m of the reliable range; ``None`` means "compute it from
        the data characteristics with the BELLA model" (needs the coverage
        and error-rate hints).
    coverage_hint / error_rate_hint:
        Data-set characteristics used to compute m when it is not given
        explicitly.
    bloom_fp_rate:
        Target false-positive rate when sizing each rank's Bloom-filter
        partition.
    hll_precision:
        Register-index bits of the HyperLogLog sketch used to estimate the
        number of *distinct* k-mers before sizing the Bloom filter (§6,
        eq. 2).  14 gives ~0.8% relative error at 16 KiB per rank.
    batch_reads:
        Number of local reads parsed per streaming superstep in stages 1-2 —
        the memory-bounding knob of §4.  All ranks execute the same number
        of supersteps (the maximum over ranks), padding with empty exchanges.
        The default honours ``DIBELLA_BATCH_READS`` (CLI ``--batch-reads``).
    seed_strategy:
        Which shared seeds to align per overlapping pair (§5's one-seed /
        1 kbp separation / k separation settings).
    kernel / xdrop / band / scoring / min_alignment_score:
        Alignment-stage kernel configuration (§9).
    partition_strategy:
        How input reads are split across ranks (``"size"`` reproduces the
        paper's byte-balanced blocks).
    owner_heuristic:
        Task-owner rule in the overlap stage (``"oddeven"`` is Algorithm 1;
        ``"min"`` and ``"random"`` are ablation alternatives).
    backend:
        SPMD runtime backend: ``"thread"`` (ranks are threads, zero-copy
        collectives, compute serialised by the GIL) or ``"process"`` (ranks
        are processes exchanging typed buffers via shared memory — real
        multi-core compute).  The default honours the ``DIBELLA_BACKEND``
        environment variable so whole test/CI runs can be switched without
        touching call sites.
    exchange_chunk_mb:
        Memory bound (MiB of wire payload per rank) on each superstep of the
        overlap stage's streamed pair exchange; at most two chunks are in
        flight per rank (the double buffer), so this also bounds the pair
        buffers held in memory.  ``None`` disables chunking (one monolithic
        Alltoallv, the paper's original pattern).  The default honours
        ``DIBELLA_EXCHANGE_CHUNK_MB`` (``0`` disables chunking; CLI
        ``--exchange-chunk-mb``).
    double_buffer:
        Double-buffer every stage's exchange supersteps: each stage's chunk
        ``i+1`` is generated and published while the peers are still reading
        chunk ``i`` (split-phase ``alltoallv_start``/``alltoallv_finish``
        through the unified :class:`~repro.core.supersteps.SuperstepSchedule`),
        hiding batch parsing / pair generation / read serving behind the
        exchanges.  Scientific output is bit-identical either way; the
        default honours ``DIBELLA_DOUBLE_BUFFER`` (set to ``0`` to force the
        bulk-synchronous schedule everywhere).
    double_buffer_stages:
        Per-stage override of ``double_buffer``: when set, exactly the named
        stages (a subset of :data:`SUPERSTEP_STAGES`) run double-buffered
        and the rest run bulk-synchronous, regardless of the global flag.
        ``None`` (the default) applies ``double_buffer`` uniformly.  The
        default honours ``DIBELLA_DOUBLE_BUFFER_STAGES`` (comma-separated
        stage names; an empty value means "no stage double-buffers").
    wire_packing:
        Ship the alignment-stage read blocks 2-bit packed (4 bases/byte, see
        :mod:`repro.seq.packing` and ``docs/wire-format.md``) instead of
        ASCII — roughly a 4x cut of that phase's exchange volume.  Scientific
        output is bit-identical either way; the trace counters
        ``read_payload_raw_bytes`` / ``read_payload_wire_bytes`` record the
        saving.  The default honours ``DIBELLA_WIRE_PACKING`` (set to ``0``
        to force the ASCII wire format; CLI ``--no-wire-packing``).
    hash_table_shards:
        Number of k-mer code-range shards the retained-k-mer table is built
        in.  With ``S > 1`` the hash-table/overlap boundary streams one
        contiguous code range at a time through finalise → pair generation →
        release, so peak retained-table memory drops to roughly the largest
        shard instead of the whole partition (counter
        ``retained_table_peak_bytes``).  Output is bit-identical for every
        shard count.  The default honours ``DIBELLA_HASH_SHARDS``.
    alignment_batch_tasks:
        Number of alignment tasks per superstep of the alignment stage's
        two-hop (request/response) read-fetch schedule.  With a bound, each
        superstep requests only the remote reads its task batch needs first
        (every read is still fetched exactly once), and with double
        buffering batch ``i+1``'s fetch is in flight while batch ``i``
        aligns.  ``None`` (the default) fetches everything in one superstep
        — the paper's original two-round exchange.  Output is bit-identical
        for every batch size.  The default honours
        ``DIBELLA_ALIGN_BATCH_TASKS`` (``0``/unset means ``None``).
    pool:
        Run the SPMD program on the persistent rank pool: with the process
        backend, rank processes park on a barrier between ``spmd_run``
        invocations instead of being re-forked, amortising startup across
        repeated runs, and each rank's alignment-stage read cache persists
        across runs over the same read set (keyed by a data-set generation
        tag, so a reused rank never serves stale reads).  The thread backend
        has no fork cost but still keeps the cross-run read caches.  The
        default honours ``DIBELLA_POOL``.
    serve_batch_reads:
        Serve-phase admission bound: the
        :class:`~repro.core.service.AlignmentService` coalesces queued query
        submissions into one drained batch of at most this many reads, so a
        burst of small submissions pays the per-batch SPMD dispatch once.
        The default honours ``DIBELLA_SERVE_BATCH_READS``.
    read_cache_mb:
        Byte-capacity bound (MiB) of each rank's alignment-stage read cache.
        ``0`` (the default) keeps the PR-3 behaviour — the cache grows
        without limit across pooled runs — which is fine for one-shot
        batches but a slow leak for an always-on service; a positive bound
        evicts least-recently-used reads down to the capacity at the end of
        every alignment stage (counters ``read_cache_evictions`` /
        ``read_cache_evicted_bytes``).  The default honours
        ``DIBELLA_READ_CACHE_MB``.
    sanitize:
        Arm the runtime sanitizer for every SPMD run this pipeline launches:
        cross-rank collective congruence checks, split-phase segment
        lifecycle guards, and a hang watchdog (see
        :mod:`repro.mpisim.sanitize` and ``docs/static-analysis.md``).
        Observation-only on the happy path — sanitized runs are
        bit-identical to unsanitized ones.  The default honours
        ``DIBELLA_SANITIZE`` (CLI ``--sanitize``).
    fault_plan:
        Deterministic fault plan injected into this pipeline's SPMD runs
        (grammar in :mod:`repro.mpisim.faults`, e.g.
        ``"kill:rank=2:step=3"``): kill a rank process, stall a collective,
        or fail a rank with a typed error at an exact superstep — the test
        harness behind ``docs/fault-tolerance.md``.  ``kill`` faults need
        ``backend="process"``.  ``None`` (the default) injects nothing; the
        default honours ``DIBELLA_FAULT_PLAN`` (CLI ``--fault-plan``).
    serve_max_retries:
        How many times the :class:`~repro.core.service.AlignmentService`
        retries an index build or query batch whose SPMD run died from a
        rank failure (the evicted pool is respawned and the resident index
        rebuilt; retried batches stay bit-identical).  ``0`` disables
        recovery — the first :class:`~repro.mpisim.errors.RankFailedError`
        propagates.  The default honours ``DIBELLA_SERVE_MAX_RETRIES``
        (CLI ``--serve-max-retries``).
    collective:
        All-to-all collective layout (see ``docs/topology.md``).
        ``"flat"`` (the paper's pattern) publishes one segment per
        (source, destination) pair — O(R²) per superstep; ``"hier"``
        partitions the ranks into groups, elects the lowest rank of each
        group leader, and runs every ``alltoallv`` as gather-to-leader →
        leader-to-leader cross-group exchange of concatenated
        per-destination payloads → intra-group scatter, cutting the
        cross-group segment count to O(G²).  Scientific output, counters
        and traces of the logical exchange are bit-identical either way;
        ``benchmarks/bench_backend_scaling.py`` gates the reduction.  The
        default honours ``DIBELLA_COLLECTIVE`` (CLI ``--collective``).
    rank_groups:
        Number of rank groups G of the hierarchical collectives.  ``None``
        (the default) auto-detects one group per physical CPU socket of
        the schedulable cores (clamped to ``[1, n_ranks]``, see
        :func:`repro.mpisim.topology.resolve_rank_groups`); an explicit
        count wins over detection.  Ignored with ``collective="flat"``.
        The default honours ``DIBELLA_RANK_GROUPS`` (CLI
        ``--rank-groups``; ``0``/unset means auto).
    pin_ranks:
        Pin each process-backend rank worker to a CPU core of its group
        via ``os.sched_setaffinity`` (map computed by
        :func:`repro.mpisim.topology.assign_pin_cores`), so co-grouped
        ranks share a socket and stay there.  A graceful no-op — counted
        in ``rank_pins_skipped`` — where affinity is restricted
        (cgroups, non-Linux) or the backend is ``"thread"`` (pinning the
        thread would pin the whole interpreter).  Pooled workers keep
        their pins across runs.  The default honours
        ``DIBELLA_PIN_RANKS`` (CLI ``--pin-ranks``).
    """

    kmer: KmerSpec = field(default_factory=lambda: KmerSpec(k=17))
    seed_mode: str = field(
        default_factory=lambda: os.environ.get("DIBELLA_SEED_MODE", "reliable")
    )
    minimizer_window: int = field(
        default_factory=lambda: int(os.environ.get("DIBELLA_MINIMIZER_WINDOW", "11"))
    )
    min_kmer_count: int = 2
    high_freq_threshold: int | None = None
    coverage_hint: float | None = None
    error_rate_hint: float | None = None
    bloom_fp_rate: float = 0.05
    hll_precision: int = 14
    batch_reads: int = field(
        default_factory=lambda: int(os.environ.get("DIBELLA_BATCH_READS", "2048"))
    )
    # spmdlint: disable=SL005 composite SeedStrategy object; the CLI exposes it
    # as the named presets of --seed-strategy (the "dk" preset depends on -k),
    # so a scalar env default cannot express it.
    seed_strategy: SeedStrategy = field(default_factory=SeedStrategy.one_seed)
    kernel: str = "xdrop"
    xdrop: int = 25
    band: int = DEFAULT_XDROP_BAND
    scoring: ScoringScheme = field(default_factory=ScoringScheme)
    min_alignment_score: int = 0
    partition_strategy: str = "size"
    owner_heuristic: str = "oddeven"
    backend: str = field(
        default_factory=lambda: os.environ.get("DIBELLA_BACKEND", "thread")
    )
    exchange_chunk_mb: float | None = field(
        default_factory=lambda: _env_optional_float("DIBELLA_EXCHANGE_CHUNK_MB", 8.0)
    )
    double_buffer: bool = field(
        default_factory=lambda: _env_flag("DIBELLA_DOUBLE_BUFFER", True)
    )
    double_buffer_stages: tuple[str, ...] | None = field(
        default_factory=lambda: _env_stage_tuple("DIBELLA_DOUBLE_BUFFER_STAGES")
    )
    wire_packing: bool = field(
        default_factory=lambda: _env_flag("DIBELLA_WIRE_PACKING", True)
    )
    hash_table_shards: int = field(
        default_factory=lambda: int(os.environ.get("DIBELLA_HASH_SHARDS", "4"))
    )
    alignment_batch_tasks: int | None = field(
        default_factory=lambda: _env_optional_int("DIBELLA_ALIGN_BATCH_TASKS")
    )
    pool: bool = field(default_factory=lambda: _env_flag("DIBELLA_POOL", False))
    serve_batch_reads: int = field(
        default_factory=lambda: int(os.environ.get("DIBELLA_SERVE_BATCH_READS", "4096"))
    )
    read_cache_mb: float = field(
        default_factory=lambda: float(os.environ.get("DIBELLA_READ_CACHE_MB", "0"))
    )
    sanitize: bool = field(
        default_factory=lambda: _env_flag("DIBELLA_SANITIZE", False)
    )
    fault_plan: str | None = field(
        default_factory=lambda: os.environ.get("DIBELLA_FAULT_PLAN") or None
    )
    serve_max_retries: int = field(
        default_factory=lambda: int(os.environ.get("DIBELLA_SERVE_MAX_RETRIES", "2"))
    )
    collective: str = field(
        default_factory=lambda: os.environ.get("DIBELLA_COLLECTIVE", "flat")
    )
    rank_groups: int | None = field(
        default_factory=lambda: _env_optional_int("DIBELLA_RANK_GROUPS")
    )
    pin_ranks: bool = field(
        default_factory=lambda: _env_flag("DIBELLA_PIN_RANKS", False)
    )

    def __post_init__(self) -> None:
        if self.seed_mode not in ("reliable", "minimizer"):
            raise ValueError(f"unknown seed mode {self.seed_mode!r}")
        if self.minimizer_window < 1:
            raise ValueError("minimizer_window must be >= 1")
        if self.min_kmer_count < 1:
            raise ValueError("min_kmer_count must be >= 1")
        if self.high_freq_threshold is not None and self.high_freq_threshold < self.min_kmer_count:
            raise ValueError("high_freq_threshold must be >= min_kmer_count")
        if not (0.0 < self.bloom_fp_rate < 1.0):
            raise ValueError("bloom_fp_rate must be in (0, 1)")
        if not (4 <= self.hll_precision <= 18):
            raise ValueError("hll_precision must be in [4, 18]")
        if self.batch_reads < 1:
            raise ValueError("batch_reads must be >= 1")
        if self.kernel not in ("xdrop", "banded", "full"):
            raise ValueError(f"unknown kernel {self.kernel!r}")
        if self.partition_strategy not in ("size", "round_robin"):
            raise ValueError(f"unknown partition strategy {self.partition_strategy!r}")
        if self.owner_heuristic not in ("oddeven", "min", "random"):
            raise ValueError(f"unknown owner heuristic {self.owner_heuristic!r}")
        if self.backend not in ("thread", "process"):
            raise ValueError(f"unknown runtime backend {self.backend!r}")
        if self.exchange_chunk_mb is not None and self.exchange_chunk_mb <= 0:
            raise ValueError("exchange_chunk_mb must be positive (or None to disable)")
        if self.hash_table_shards < 1:
            raise ValueError("hash_table_shards must be >= 1")
        if self.double_buffer_stages is not None:
            # Normalise list-like inputs to a tuple (the config is frozen).
            object.__setattr__(self, "double_buffer_stages",
                               tuple(self.double_buffer_stages))
            unknown = set(self.double_buffer_stages) - set(SUPERSTEP_STAGES)
            if unknown:
                raise ValueError(
                    f"unknown double_buffer_stages {sorted(unknown)}; "
                    f"expected a subset of {SUPERSTEP_STAGES}"
                )
        if self.alignment_batch_tasks is not None and self.alignment_batch_tasks < 1:
            raise ValueError(
                "alignment_batch_tasks must be >= 1 (or None for one batch)")
        if self.serve_batch_reads < 1:
            raise ValueError("serve_batch_reads must be >= 1")
        if self.read_cache_mb < 0:
            raise ValueError("read_cache_mb must be >= 0 (0 = unbounded)")
        if self.serve_max_retries < 0:
            raise ValueError("serve_max_retries must be >= 0 (0 = no recovery)")
        if self.collective not in ("flat", "hier"):
            raise ValueError(f"unknown collective layout {self.collective!r}")
        if self.rank_groups is not None and self.rank_groups < 1:
            raise ValueError("rank_groups must be >= 1 (or None for auto)")
        if self.fault_plan is not None:
            # Parse eagerly so a malformed plan fails at configuration time,
            # not at an arbitrary later spmd_run.
            plan = FaultPlan.parse(self.fault_plan)
            if plan.has_kill and self.backend == "thread":
                raise ValueError(
                    "fault plan contains a 'kill' fault but backend='thread': "
                    "ranks are threads of this process, so killing one would "
                    "kill the whole run — use backend='process' (or an 'exit' "
                    "fault)"
                )

    # -- derived parameters ---------------------------------------------------

    @property
    def exchange_chunk_bytes(self) -> int | None:
        """The overlap-exchange chunk bound in bytes (``None`` = unchunked)."""
        if self.exchange_chunk_mb is None:
            return None
        return int(self.exchange_chunk_mb * (1 << 20))

    def with_backend(self, backend: str) -> "PipelineConfig":
        """Copy of this config running on a different runtime backend."""
        return replace(self, backend=backend)

    def with_pool(self, pool: bool) -> "PipelineConfig":
        """Copy of this config with the persistent rank pool on or off."""
        return replace(self, pool=pool)

    def with_double_buffer(self, double_buffer: bool) -> "PipelineConfig":
        """Copy of this config with exchange double buffering on or off (all stages)."""
        return replace(self, double_buffer=double_buffer, double_buffer_stages=None)

    def with_double_buffer_stages(
        self, stages: tuple[str, ...] | None
    ) -> "PipelineConfig":
        """Copy of this config double-buffering exactly *stages* (None = global flag)."""
        return replace(self, double_buffer_stages=stages)

    def with_alignment_batch_tasks(self, batch: int | None) -> "PipelineConfig":
        """Copy of this config fetching/aligning *batch* tasks per superstep."""
        return replace(self, alignment_batch_tasks=batch)

    def stage_double_buffer(self, stage: str) -> bool:
        """Whether *stage*'s exchange supersteps run double-buffered.

        Parameters
        ----------
        stage:
            One of :data:`SUPERSTEP_STAGES`.

        Returns
        -------
        bool
            The per-stage override when ``double_buffer_stages`` is set,
            otherwise the global ``double_buffer`` flag.
        """
        if stage not in SUPERSTEP_STAGES:
            raise ValueError(f"unknown superstep stage {stage!r}")
        if self.double_buffer_stages is not None:
            return stage in self.double_buffer_stages
        return bool(self.double_buffer)

    def with_wire_packing(self, wire_packing: bool) -> "PipelineConfig":
        """Copy of this config with 2-bit read-block wire packing on or off."""
        return replace(self, wire_packing=wire_packing)

    def with_hash_table_shards(self, hash_table_shards: int) -> "PipelineConfig":
        """Copy of this config building the k-mer table in *hash_table_shards* code ranges."""
        return replace(self, hash_table_shards=hash_table_shards)

    def resolve_high_freq_threshold(self, readset: ReadSet | None = None) -> int:
        """The high-occurrence cutoff m actually used for a run.

        If ``high_freq_threshold`` is set, return it.  Otherwise compute it
        with the BELLA model from the coverage and error-rate hints; missing
        hints fall back to conservative long-read defaults (coverage 30,
        error 0.12), which keeps small test runs working without hints.
        """
        if self.high_freq_threshold is not None:
            return self.high_freq_threshold
        coverage = self.coverage_hint if self.coverage_hint is not None else 30.0
        error_rate = self.error_rate_hint if self.error_rate_hint is not None else 0.12
        return high_frequency_threshold(coverage, error_rate, self.kmer.k)

    @property
    def read_cache_capacity_bytes(self) -> int:
        """The read-cache byte bound (``0`` = unbounded)."""
        return int(self.read_cache_mb * (1 << 20))

    def with_serve_batch_reads(self, serve_batch_reads: int) -> "PipelineConfig":
        """Copy of this config coalescing at most *serve_batch_reads* reads per batch."""
        return replace(self, serve_batch_reads=serve_batch_reads)

    def with_read_cache_mb(self, read_cache_mb: float) -> "PipelineConfig":
        """Copy of this config bounding each rank's read cache to *read_cache_mb* MiB."""
        return replace(self, read_cache_mb=read_cache_mb)

    def with_seed_mode(
        self, seed_mode: str, minimizer_window: int | None = None
    ) -> "PipelineConfig":
        """Copy of this config with a different seeding front-end (and window)."""
        if minimizer_window is None:
            return replace(self, seed_mode=seed_mode)
        return replace(self, seed_mode=seed_mode, minimizer_window=minimizer_window)

    @property
    def sketch_window(self) -> int:
        """The effective sketch window: w in minimizer mode, else 1 (keep all)."""
        return self.minimizer_window if self.seed_mode == "minimizer" else 1

    def with_sanitize(self, sanitize: bool) -> "PipelineConfig":
        """Copy of this config with the runtime sanitizer armed or disarmed."""
        return replace(self, sanitize=sanitize)

    def with_fault_plan(self, fault_plan: str | None) -> "PipelineConfig":
        """Copy of this config injecting *fault_plan* (None = no faults)."""
        return replace(self, fault_plan=fault_plan)

    def with_serve_max_retries(self, serve_max_retries: int) -> "PipelineConfig":
        """Copy of this config retrying failed serve runs *serve_max_retries* times."""
        return replace(self, serve_max_retries=serve_max_retries)

    def with_collective(self, collective: str) -> "PipelineConfig":
        """Copy of this config on a different collective layout ("flat"/"hier")."""
        return replace(self, collective=collective)

    def with_rank_groups(self, rank_groups: int | None) -> "PipelineConfig":
        """Copy of this config with *rank_groups* groups (None = auto-detect)."""
        return replace(self, rank_groups=rank_groups)

    def with_pin_ranks(self, pin_ranks: bool) -> "PipelineConfig":
        """Copy of this config with process-worker core pinning on or off."""
        return replace(self, pin_ranks=pin_ranks)

    def with_seed_strategy(self, strategy: SeedStrategy) -> "PipelineConfig":
        """Copy of this config with a different seed strategy (bench helper)."""
        return replace(self, seed_strategy=strategy)

    def with_kernel(self, kernel: str) -> "PipelineConfig":
        """Copy of this config with a different alignment kernel (bench helper)."""
        return replace(self, kernel=kernel)
