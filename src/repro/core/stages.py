"""The four pipeline stages as per-rank SPMD functions.

``run_rank_pipeline`` is the program every simulated rank executes (the body
of the SPMD job an MPI implementation would run on every process).  Each
stage follows the structure of §§6-9 of the paper:

* parse / compute locally,
* pack per-destination buffers,
* exchange with ``alltoallv``,
* process the received data.

Every stage's exchange loop runs on the shared
:class:`~repro.core.supersteps.SuperstepSchedule`: the stages only provide
produce/consume callbacks, and the scheduler owns global step-count
agreement, the double-buffered split-phase schedule (with its
bulk-synchronous fallback), and the exposed-vs-overlapped timer attribution.

Wall time is measured separately for the compute and exchange parts of every
stage (the paper's runtime-breakdown figures), and each stage accumulates the
machine-independent work counters the performance model projects onto the
Table 1 platforms.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field

import numpy as np

from repro.align.batch import BatchAligner, TaskBatch
from repro.align.read_cache import ReadCache
from repro.core.config import PipelineConfig
from repro.core.result import RankReport
from repro.core.supersteps import StageTimer, SuperstepSchedule
from repro.kmers.bloom import BloomFilter
from repro.kmers.hashing import owner_of
from repro.kmers.hashtable import (
    KmerHashTablePartition,
    RetainedKmers,
    ShardedKmerIndex,
    shard_code_boundaries,
)
from repro.kmers.hyperloglog import HyperLogLog
from repro.kmers.minimizer import minimizer_mask, sketch_hash
from repro.mpisim.collectives import bucket_by_destination
from repro.mpisim.communicator import SimCommunicator
from repro.overlap.pairs import (
    OverlapTable,
    PairBatch,
    choose_owner,
    generate_pairs,
    pair_chunk_ranges,
)
from repro.overlap.seeds import select_seeds_batched
from repro.seq.kmer import extract_kmers_batch
from repro.seq.packing import PackedReadBlock, pack_read_block
from repro.seq.records import ReadSet

@dataclass
class _RankState:
    """Mutable per-rank state threaded through the stages."""

    config: PipelineConfig
    readset: ReadSet
    local_rids: list[int]
    read_owner: np.ndarray
    high_freq_threshold: int
    hashtable: KmerHashTablePartition = field(default_factory=KmerHashTablePartition)
    hashtable_built: bool = False
    overlaps: OverlapTable = field(default_factory=OverlapTable.empty)
    tasks: TaskBatch = field(default_factory=TaskBatch.empty)
    read_cache: ReadCache = field(default_factory=ReadCache)
    timers: dict[str, StageTimer] = field(default_factory=dict)
    work: dict[str, float] = field(default_factory=dict)
    local_bytes: dict[str, float] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)

    def timer(self, stage: str) -> StageTimer:
        return self.timers.setdefault(stage, StageTimer())


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------

#: Read caches that outlive a single pipeline run, keyed by (generation tag,
#: rank).  Under the persistent rank pool a worker process survives across
#: ``spmd_run`` invocations, so keeping its rank's cache here lets the second
#: run over the same data set skip the remote fetches the first already paid
#: for (``ReadCache.fetch_hits``).  The generation tag fingerprints the data
#: set: a pooled worker reused for a *different* read set gets a fresh cache
#: and its stale entries are evicted — a reused rank never serves stale reads.
_PERSISTENT_READ_CACHES: dict[tuple[str, int], ReadCache] = {}
_PERSISTENT_READ_CACHES_LOCK = threading.Lock()


def _acquire_read_cache(cache_tag: str | None, rank: int) -> ReadCache:
    """The rank's read cache: ephemeral, or persistent under *cache_tag*.

    Thread-backend ranks share this process (and therefore this registry),
    so eviction + lookup happen under a lock; per-rank keying keeps the
    caches themselves unshared.
    """
    if cache_tag is None:
        return ReadCache()
    with _PERSISTENT_READ_CACHES_LOCK:
        stale = [key for key in _PERSISTENT_READ_CACHES if key[0] != cache_tag]
        for key in stale:
            del _PERSISTENT_READ_CACHES[key]
        return _PERSISTENT_READ_CACHES.setdefault((cache_tag, rank), ReadCache())


def reset_persistent_read_caches() -> None:
    """Drop every persistent read cache (tests and benches reset state)."""
    with _PERSISTENT_READ_CACHES_LOCK:
        _PERSISTENT_READ_CACHES.clear()


def _build_read_owner(readset: ReadSet, assignments: list[list[int]]) -> np.ndarray:
    """RID → owning rank from the partition, validating full coverage.

    Every read must appear in exactly one rank's assignment; a gap would
    otherwise turn into a garbage destination rank in the overlap and
    alignment exchanges (the array used to be ``np.empty``-initialised, so
    an uncovered RID silently routed its tasks to whatever rank number the
    uninitialised memory spelled out).
    """
    read_owner = np.full(len(readset), -1, dtype=np.int64)
    total_assigned = 0
    for rank, rids in enumerate(assignments):
        read_owner[np.asarray(rids, dtype=np.int64)] = rank
        total_assigned += len(rids)
    missing = np.flatnonzero(read_owner < 0)
    if missing.size:
        preview = ", ".join(str(rid) for rid in missing[:5].tolist())
        suffix = ", ..." if missing.size > 5 else ""
        raise ValueError(
            f"read partition does not cover {missing.size} of {len(readset)} "
            f"reads (missing RIDs: {preview}{suffix}); every read must be "
            "assigned to exactly one rank"
        )
    if total_assigned != len(readset):
        # Full coverage + a length mismatch means some RID appears in more
        # than one rank's assignment (its k-mers and pairs would be
        # processed twice, silently corrupting the output).
        raise ValueError(
            f"read partition assigns {total_assigned} RIDs for "
            f"{len(readset)} reads: some read is assigned to more than one "
            "rank; every read must be assigned to exactly one rank"
        )
    return read_owner


def _local_batches(local_rids: list[int], batch_reads: int) -> list[list[int]]:
    """Split this rank's RIDs into streaming batches of at most batch_reads."""
    return [local_rids[i : i + batch_reads] for i in range(0, len(local_rids), batch_reads)]


def _extract_batch_kmers(
    readset: ReadSet,
    rids: list[int],
    config: PipelineConfig,
    with_positions: bool,
    counters: dict[str, int] | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Extract k-mers (and optionally RIDs/positions/strands) from a batch of reads.

    The whole batch is encoded and scanned as one concatenated array
    (:func:`repro.seq.kmer.extract_kmers_batch`) — no per-read Python loop.

    This is the single funnel every stage's k-mer stream flows through, so
    the minimizer sketch (``config.seed_mode == "minimizer"``) is applied
    here: the extracted stream is reduced to its windowed minima
    (:func:`repro.kmers.minimizer.minimizer_mask`) before anything
    downstream — the HLL pre-pass, the Bloom filter, the occurrence
    exchange, the resident index, or the query route — ever sees it.  The
    *counters* dict (a rank's ``state.counters``) accumulates
    ``kmers_extracted_total`` (pre-sketch) and ``kmers_after_sketch``
    (post-sketch; equal in reliable mode), from which the pipeline derives
    the reported ``sketch_density_ppm``.
    """
    empty_i = np.empty(0, dtype=np.int64)
    if not rids:
        return np.empty(0, dtype=np.uint64), empty_i, empty_i.copy(), np.empty(0, dtype=bool)
    sequences = [readset[rid].sequence for rid in rids]
    codes, read_index, positions, strands = extract_kmers_batch(
        sequences, config.kmer, with_strand=with_positions
    )
    if counters is not None:
        counters["kmers_extracted_total"] = (
            counters.get("kmers_extracted_total", 0) + int(codes.size))
    if config.seed_mode == "minimizer":
        keep = minimizer_mask(sketch_hash(codes), read_index,
                              config.minimizer_window)
        codes, read_index, positions = codes[keep], read_index[keep], positions[keep]
        if strands.size:
            strands = strands[keep]
    if counters is not None:
        counters["kmers_after_sketch"] = (
            counters.get("kmers_after_sketch", 0) + int(codes.size))
    if with_positions:
        rid_arr = np.asarray(rids, dtype=np.int64)[read_index]
        return codes, rid_arr, positions, strands
    return codes, empty_i, empty_i.copy(), np.empty(0, dtype=bool)


# ---------------------------------------------------------------------------
# Stage 1: Bloom-filter construction (§6)
# ---------------------------------------------------------------------------

def bloom_filter_stage(comm: SimCommunicator, state: _RankState) -> None:
    """Stage 1: route every k-mer to its owner, build the Bloom filter partition.

    k-mers the filter has already (probably) seen are promoted to hash-table
    candidate keys — "if a k-mer was already present, it is also inserted
    into the local hash table partition" (§6).

    The filter is sized from the number of *distinct* k-mers, estimated with
    a HyperLogLog pre-pass over the local reads whose registers are merged
    across ranks with one allreduce (§6, eq. 2) — sizing from the raw k-mer
    instance count would overshoot by roughly the coverage depth.

    Each batch's k-mers are extracted exactly once: the pre-pass stashes the
    per-batch code arrays it sketches, and the superstep schedule consumes
    the stash one batch per step — each entry is **released** the moment its
    send buffers exist, instead of the whole stash being retained until the
    stage ends.  The pre-pass itself still materialises the full stash once
    (the filter must be sized before the first insert, so every local k-mer
    is sketched first); what the release schedule buys is that the stash
    shrinks by one batch per superstep instead of riding at full size
    through the whole exchange loop.  The counters
    ``bloom_stash_total_bytes`` (the full stash, which whole-stage retention
    held through every superstep *and* the finalise) and
    ``bloom_stash_peak_bytes`` (the largest residue surviving any superstep
    under the consume-and-free schedule — ``total`` minus the first batch)
    record exactly that saving; both are pure functions of the batch layout,
    so they are bit-identical across backends and schedules.

    With double buffering (``config.stage_double_buffer("bloom")``), batch
    ``i+1``'s bucketing is performed — and published — while the peers are
    still reading batch ``i``'s k-mers.

    Parameters
    ----------
    comm:
        This rank's communicator (phase label ``"bloom_exchange"``).
    state:
        The rank's mutable pipeline state; on return ``state.hashtable``
        holds the deduplicated candidate keys.
    """
    config = state.config
    timer = state.timer("bloom")
    comm.set_phase("bloom_exchange")

    batches = _local_batches(state.local_rids, config.batch_reads)

    # HyperLogLog pre-pass: sketch the local k-mers, merge the registers
    # across ranks (register-wise max == sketch union), size the filter from
    # the distinct-cardinality estimate.
    with timer.compute():
        sketch = HyperLogLog(precision=config.hll_precision)
        batch_codes: list[np.ndarray | None] = []
        for rids in batches:
            codes, _, _, _ = _extract_batch_kmers(state.readset, rids, config,
                                                  with_positions=False,
                                                  counters=state.counters)
            sketch.add_many(codes)
            batch_codes.append(codes)
        batch_nbytes = [int(codes.nbytes) for codes in batch_codes]
    with timer.exchange():
        merged_registers = comm.allreduce(sketch.registers(), op="max")
    with timer.compute():
        distinct_estimate = HyperLogLog.from_registers(merged_registers).estimate()
        # The owner hash spreads distinct k-mers uniformly over ranks.
        expected_per_rank = max(1024, int(distinct_estimate / comm.size) + 1)
        bloom = BloomFilter.for_expected_items(expected_per_rank,
                                               fp_rate=config.bloom_fp_rate)

    # Stash accounting: the total is what the stage used to hold until its
    # end; the peak is the largest residue left after any superstep releases
    # its batch (a pure function of the batch byte sizes, so it is identical
    # across backends and across the double-buffered/synchronous schedules).
    stash_total = sum(batch_nbytes)
    stash_peak = 0
    remaining = stash_total
    for nbytes in batch_nbytes:
        remaining -= nbytes
        stash_peak = max(stash_peak, remaining)

    kmers_parsed = 0
    kmers_received = 0
    payload_bytes = 0

    def produce(step: int) -> list[np.ndarray]:
        nonlocal kmers_parsed
        if step < len(batch_codes):
            codes = batch_codes[step]
            batch_codes[step] = None  # consumed: free the stash entry
        else:
            codes = np.empty(0, dtype=np.uint64)
        kmers_parsed += int(codes.size)
        if codes.size:
            owners = owner_of(codes, comm.size)
            return bucket_by_destination(codes, owners, comm.size)
        return [np.empty(0, dtype=np.uint64) for _ in range(comm.size)]

    def consume(step: int, received: list) -> None:
        nonlocal kmers_received, payload_bytes
        chunks = [np.asarray(c, dtype=np.uint64) for c in received if np.asarray(c).size]
        payload_bytes += sum(int(c.nbytes) for c in chunks)
        if chunks:
            incoming = np.concatenate(chunks)
            kmers_received += int(incoming.size)
            seen_before = bloom.insert_many(incoming)
            state.hashtable.add_candidate_keys(incoming[seen_before])

    schedule = SuperstepSchedule(
        comm, timer, len(batches),
        double_buffer=config.stage_double_buffer("bloom"), label="bloom",
    )
    outcome = schedule.run(produce, consume)

    with timer.compute():
        n_keys = state.hashtable.finalize_keys()

    state.work["bloom"] = float(kmers_received)
    state.local_bytes["bloom"] = float(bloom.nbytes + state.hashtable.memory_nbytes())
    state.counters["kmers_parsed"] = kmers_parsed
    state.counters["kmers_received_bloom"] = kmers_received
    # Received-side wire bytes of this stage's k-mer exchange (summed over
    # all ranks they equal the sent volume); a pure function of the sketched
    # k-mer stream, so bit-identical across backends and schedules.
    state.counters["bloom_payload_bytes"] = payload_bytes
    state.counters["distinct_keys"] = n_keys
    state.counters["bloom_nbytes"] = bloom.nbytes
    state.counters["bloom_stash_total_bytes"] = stash_total
    state.counters["bloom_stash_peak_bytes"] = stash_peak
    # Schedule flags: functions of the config and batch layout only, so they
    # stay bit-identical across runtime backends (the counter-parity
    # invariant) — like the overlap stage's counterparts.
    state.counters["bloom_exchange_double_buffered"] = int(outcome.double_buffered)
    state.counters["bloom_steps_overlapped"] = outcome.steps_overlapped
    if comm.rank == 0:
        # Identical on every rank after the allreduce; recorded once so the
        # summed global counters report the estimate itself.
        state.counters["hll_distinct_estimate"] = int(round(distinct_estimate))


# ---------------------------------------------------------------------------
# Stage 2: hash-table construction (§7)
# ---------------------------------------------------------------------------

def hash_table_stage(comm: SimCommunicator, state: _RankState) -> None:
    """Stage 2: second pass shipping (k-mer, RID, position) to the owner rank.

    Occurrences are stored only for k-mers already registered as keys; the
    finalisation then removes false-positive singletons and k-mers above the
    high-frequency threshold m, leaving the retained k-mers (§7).

    The stage streams its batches through the superstep schedule: each step
    extracts and packs one batch of local reads and ships the (k-mer,
    packed-metadata) pairs to their owners.  With double buffering
    (``config.stage_double_buffer("hashtable")``), batch ``i+1``'s
    extraction — the stage's dominant compute — runs while the peers are
    still reading batch ``i``'s occurrences.

    The finalisation itself — grouping the buffered occurrences into the
    retained table — is *deferred*: it runs one k-mer **code-range shard**
    at a time (``config.hash_table_shards`` contiguous ranges of the code
    space), interleaved with the overlap stage's pair generation, so the
    grouped table for shard ``s`` is built, consumed and released before
    shard ``s+1`` exists.  Peak retained-table memory is therefore bounded
    by the largest shard (counter ``retained_table_peak_bytes``) instead of
    the whole partition.  The build time still lands in this stage's
    ``compute`` timer, and the retained-k-mer counters are unchanged —
    sharding is a schedule change, not a semantic one.

    Parameters
    ----------
    comm:
        This rank's communicator (phase label ``"hashtable_exchange"``).
    state:
        The rank's mutable pipeline state; on return ``state.hashtable``
        holds the buffered occurrences ready for the sharded finalise and
        ``state.hashtable_built`` is set.
    """
    config = state.config
    timer = state.timer("hashtable")
    comm.set_phase("hashtable_exchange")

    batches = _local_batches(state.local_rids, config.batch_reads)

    occurrences_received = 0
    occurrences_stored = 0
    payload_bytes = 0

    def produce(step: int) -> list[np.ndarray]:
        rids = batches[step] if step < len(batches) else []
        codes, rid_arr, pos_arr, strand_arr = _extract_batch_kmers(
            state.readset, rids, config, with_positions=True,
            counters=state.counters,
        )
        if codes.size:
            owners = owner_of(codes, comm.size)
            # Pack (RID, strand, position) into one word: RID in the high
            # 32 bits, the strand flag in bit 31, the position in the low
            # 31 bits.  This keeps the hash-table exchange at 2 words per
            # k-mer instance (the paper reports ~2.5x the Bloom-filter
            # stage volume, §7).
            packed_meta = (
                (rid_arr.astype(np.uint64) << np.uint64(32))
                | (strand_arr.astype(np.uint64) << np.uint64(31))
                | pos_arr.astype(np.uint64)
            )
            payload = np.stack([codes, packed_meta], axis=1)
            return bucket_by_destination(payload, owners, comm.size)
        return [np.empty((0, 2), dtype=np.uint64) for _ in range(comm.size)]

    def consume(step: int, received: list) -> None:
        nonlocal occurrences_received, occurrences_stored, payload_bytes
        chunks = [np.asarray(c, dtype=np.uint64) for c in received
                  if np.asarray(c).size]
        payload_bytes += sum(int(c.nbytes) for c in chunks)
        if chunks:
            incoming = np.concatenate(chunks, axis=0)
            occurrences_received += int(incoming.shape[0])
            meta = incoming[:, 1]
            occurrences_stored += state.hashtable.add_occurrences(
                incoming[:, 0],
                (meta >> np.uint64(32)).astype(np.int64),
                (meta & np.uint64(0x7FFFFFFF)).astype(np.int64),
                ((meta >> np.uint64(31)) & np.uint64(1)).astype(bool),
            )

    schedule = SuperstepSchedule(
        comm, timer, len(batches),
        double_buffer=config.stage_double_buffer("hashtable"), label="hashtable",
    )
    outcome = schedule.run(produce, consume)

    state.hashtable_built = True
    state.work["hashtable"] = float(occurrences_received)
    state.local_bytes["hashtable"] = float(state.hashtable.memory_nbytes())
    state.counters["kmers_received_hashtable"] = occurrences_received
    state.counters["occurrences_stored"] = occurrences_stored
    state.counters["hashtable_payload_bytes"] = payload_bytes
    state.counters["hashtable_exchange_double_buffered"] = int(outcome.double_buffered)
    state.counters["hashtable_steps_overlapped"] = outcome.steps_overlapped


# ---------------------------------------------------------------------------
# Stage 3: overlap detection (§8, Algorithm 1)
# ---------------------------------------------------------------------------

def overlap_stage(comm: SimCommunicator, state: _RankState) -> None:
    """Stage 3: form all read pairs per retained k-mer and route them to owners.

    The retained table is consumed one **code-range shard** at a time
    (``config.hash_table_shards`` contiguous slices of the k-mer code
    space): each shard is finalised from the buffered stage-2 occurrences,
    its pairs are generated and exchanged, and the shard is released before
    the next one is built — so at most one shard's grouped table is live per
    rank.  Shards partition the code space, so the concatenated pair stream
    (and therefore the consolidated overlap table) is bit-identical to the
    unsharded build.

    Within a shard the pair exchange streams in *bounded chunked supersteps*
    like the k-mer stages: the shard's retained k-mers are split into ranges
    whose pair expansion fits the ``exchange_chunk_mb`` wire budget
    (:func:`pair_chunk_ranges`), and each superstep — one
    :class:`~repro.core.supersteps.SuperstepSchedule` instance per shard —
    generates, packs and ships only one chunk, so the in-flight send buffers
    stay bounded regardless of how many pairs the partition produces in
    total.  Every rank runs the same number of supersteps per shard (the
    global maximum), padding with empty exchanges; each superstep is a full
    ``alltoallv`` and is traced per chunk, so the cost model sees the same
    total volume plus the true call count.

    With ``config.stage_double_buffer("overlap")`` (the default) the
    supersteps are **double-buffered**: chunk ``i``'s exchange is split into
    ``alltoallv_start``/``alltoallv_finish``, and chunk ``i+1`` is generated
    — and published — between the two, while the peers are still reading
    chunk ``i``'s segments.  The generation time spent with an exchange in
    flight is recorded as *overlapped* (latency the pipeline hid);
    ``exchange_seconds`` then only measures the **exposed** remainder.  The
    received payloads, their order, and the trace volumes are bit-identical
    to the bulk-synchronous path — double buffering is a schedule change,
    not a semantic one.
    """
    config = state.config
    timer = state.timer("overlap")
    ht_timer = state.timer("hashtable")
    comm.set_phase("overlap_exchange")
    assert state.hashtable_built, "hash_table_stage must run before overlap_stage"

    n_shards = config.hash_table_shards
    double_buffer = config.stage_double_buffer("overlap")
    shard_iter = state.hashtable.finalize_shards(
        shard_code_boundaries(config.kmer.k, n_shards),
        min_count=config.min_kmer_count, max_count=state.high_freq_threshold,
    )

    pairs_generated = 0
    retained_kmers = 0
    retained_occurrences = 0
    retained_local_peak = 0
    total_chunks = 0
    total_supersteps = 0
    chunks_overlapped = 0
    payload_bytes = 0
    received_batches: list[PairBatch] = []

    def make_send(retained: RetainedKmers, chunks: list[tuple[int, int]],
                  step: int) -> tuple[list[np.ndarray], int]:
        """Expand chunk *step* of one shard into per-destination send buffers."""
        if step < len(chunks):
            pairs = generate_pairs(retained, kmer_range=chunks[step])
        else:
            pairs = PairBatch.empty()
        if len(pairs):
            destinations = choose_owner(
                pairs.rid_a, pairs.rid_b, state.read_owner,
                heuristic=config.owner_heuristic, swapped=pairs.swapped,
            )
            send = bucket_by_destination(pairs.to_matrix(), destinations, comm.size)
        else:
            send = [np.empty((0, 5), dtype=np.int64) for _ in range(comm.size)]
        return send, len(pairs)

    def consume(step: int, received: list) -> None:
        nonlocal payload_bytes
        payload_bytes += sum(int(np.asarray(c).nbytes) for c in received)
        received_batches.extend(
            PairBatch.from_matrix(np.asarray(c)) for c in received
        )

    def stream_shard(retained: RetainedKmers, chunks: list[tuple[int, int]]):
        """Run one shard's chunked pair exchange as a schedule instance.

        The produce closure lives only inside this call frame, so the shard
        it captures is actually freed when the caller drops its reference —
        a longer-lived closure would silently keep two shards alive at once.
        """
        nonlocal pairs_generated

        def produce(step: int) -> list[np.ndarray]:
            nonlocal pairs_generated
            send, n_pairs = make_send(retained, chunks, step)
            pairs_generated += n_pairs
            return send

        schedule = SuperstepSchedule(
            comm, timer, len(chunks), double_buffer=double_buffer, label="overlap",
        )
        return schedule.run(produce, consume)

    for _shard in range(n_shards):
        # Build this shard's slice of the retained table (hash-table stage
        # work, so the build lands in that stage's compute timer), stream its
        # pairs, then release it before the next shard is built — the
        # build → pair-generation → release pipeline that bounds peak table
        # memory at one shard.
        with ht_timer.compute():
            retained = next(shard_iter)
            retained_kmers += retained.n_kmers
            retained_occurrences += retained.n_occurrences
            retained_local_peak = max(
                retained_local_peak,
                retained.rids.nbytes + retained.positions.nbytes,
            )
        with timer.compute():
            chunks = pair_chunk_ranges(retained, config.exchange_chunk_bytes)
        outcome = stream_shard(retained, chunks)
        total_chunks += len(chunks)
        total_supersteps += outcome.n_supersteps
        chunks_overlapped += outcome.steps_overlapped
        retained = None  # release the shard before building the next one

    use_double_buffer = bool(double_buffer) and total_supersteps > 0

    with timer.compute():
        incoming = PairBatch.concatenate(received_batches)
        table = OverlapTable.from_pairs(incoming)
        state.overlaps = table
        # Apply the seed-selection constraint, batched over every pair at
        # once, and gather the selected seeds into a flat task batch.
        selected = select_seeds_batched(table, config.seed_strategy)
        pair_of_seed = np.searchsorted(table.seed_offsets, selected, side="right") - 1
        state.tasks = TaskBatch(
            rid_a=table.rid_a[pair_of_seed],
            rid_b=table.rid_b[pair_of_seed],
            seed_pos_a=table.seed_pos_a[selected],
            seed_pos_b=table.seed_pos_b[selected],
            same_strand=table.seed_same_strand[selected],
        )

    state.work["overlap"] = float(retained_occurrences + pairs_generated)
    state.local_bytes["overlap"] = float(retained_local_peak + 32 * pairs_generated)
    state.counters["retained_kmers"] = retained_kmers
    state.counters["retained_occurrences"] = retained_occurrences
    state.counters["hash_table_shards"] = n_shards
    state.counters["retained_table_peak_bytes"] = state.hashtable.retained_peak_nbytes
    state.counters["pairs_generated"] = pairs_generated
    state.counters["overlap_pairs"] = len(state.overlaps)
    state.counters["alignment_tasks"] = len(state.tasks)
    state.counters["overlap_exchange_chunks"] = total_chunks
    state.counters["overlap_payload_bytes"] = payload_bytes
    # All of these are functions of the config and the chunk/shard layout
    # only, so they stay bit-identical across runtime backends (the
    # counter-parity invariant).
    state.counters["overlap_exchange_double_buffered"] = int(use_double_buffer)
    state.counters["overlap_chunks_overlapped"] = chunks_overlapped


# ---------------------------------------------------------------------------
# Stage 4: read exchange and pairwise alignment (§9)
# ---------------------------------------------------------------------------

def _build_read_block(
    rids: np.ndarray, readset: ReadSet, cache: ReadCache, wire_packing: bool
) -> PackedReadBlock | tuple[np.ndarray, np.ndarray, bytes]:
    """Serve the requested reads as one typed wire block.

    Parameters
    ----------
    rids:
        The RIDs a peer requested (all local to this rank).
    readset:
        The rank's read set (the source of truth for sequences).
    cache:
        The rank's read cache.  On the packed path the served reads are
        routed through it so their 2-bit encodings are computed at most once
        — repeated serves (and pooled reruns) pack straight from the
        memoised buffers.
    wire_packing:
        True → a :class:`~repro.seq.packing.PackedReadBlock` (2 bits/base,
        lengths in the typed header); False → the ASCII block
        ``(rids, offsets, bytes)``.

    Both layouts are flat typed buffers, so the payload crosses the typed
    collectives protocol (and a real network) without per-read envelopes;
    see ``docs/wire-format.md``.
    """
    rids = np.asarray(rids, dtype=np.int64)
    if wire_packing:
        # Put-if-absent: served reads are this rank's own immutable local
        # reads, so an existing entry is always current.  The stored string
        # is a reference to the readset's resident sequence; the memoised
        # code array (1 byte/base) is the buffer repeat serves reuse.
        code_arrays = []
        for rid in rids.tolist():
            if rid not in cache:
                cache.put(rid, readset[rid].sequence)
            code_arrays.append(cache.encoded_peek(rid))
        return pack_read_block(rids, code_arrays)
    sequences = [readset[int(rid)].sequence for rid in rids]
    lengths = np.fromiter((len(s) for s in sequences), dtype=np.int64, count=len(sequences))
    offsets = np.concatenate(([0], np.cumsum(lengths))).astype(np.int64)
    return rids, offsets, "".join(sequences).encode("ascii")


def _read_block_payload_bytes(
    block: PackedReadBlock | tuple[np.ndarray, np.ndarray, bytes],
) -> tuple[int, int]:
    """(ASCII-equivalent bytes, actual wire payload bytes) of one read block.

    The sequence payload only — headers (RIDs, offsets/lengths) are excluded
    from both numbers, so the pair isolates exactly what the 2-bit packing
    compresses.
    """
    if isinstance(block, PackedReadBlock):
        return block.raw_nbytes, int(block.packed.nbytes)
    _rids, _offsets, blob = block
    return len(blob), len(blob)


def _unpack_read_block(
    block: PackedReadBlock | tuple[np.ndarray, np.ndarray, bytes],
    cache: ReadCache,
) -> int:
    """Insert a received read block into the per-rank read cache.

    Packed blocks are inserted **without decoding**: each read's packed
    bytes land in the cache as-is (:meth:`ReadCache.put_packed`) and are
    unpacked to a 2-bit code array only when the aligner first touches the
    read — the ASCII string is never materialised unless a string-consuming
    kernel asks for it.
    """
    if isinstance(block, PackedReadBlock):
        for index, rid in enumerate(block.rids.tolist()):
            cache.put_packed(rid, block.packed_slice(index), int(block.lengths[index]))
        return block.n_reads
    rids, offsets, blob = block
    text = bytes(blob).decode("ascii")
    rids = np.asarray(rids, dtype=np.int64)
    offsets = np.asarray(offsets, dtype=np.int64)
    for index, rid in enumerate(rids.tolist()):
        cache.put(rid, text[offsets[index] : offsets[index + 1]])
    return int(rids.size)


def _alignment_task_slices(n_tasks: int,
                           batch_tasks: int | None) -> list[tuple[int, int]]:
    """Contiguous ``[lo, hi)`` task ranges, one per fetch/align superstep.

    ``None`` keeps the stage's original shape: one superstep covering every
    task (and exactly one request/response exchange pair, even when the rank
    has no tasks — every rank must issue the same collectives).
    """
    if batch_tasks is None or n_tasks <= batch_tasks:
        return [(0, n_tasks)]
    return [(lo, min(lo + batch_tasks, n_tasks))
            for lo in range(0, n_tasks, batch_tasks)]


def _first_need_requests(
    tasks: TaskBatch,
    task_slices: list[tuple[int, int]],
    to_fetch: np.ndarray,
) -> list[np.ndarray]:
    """Partition *to_fetch* by the first task slice that needs each read.

    Every RID is assigned to exactly one superstep — the earliest whose task
    range references it — so each remote read is requested exactly once and
    is guaranteed to be cached before any task touching it aligns.  The
    partition is a pure function of the task batch and the fetch set, so the
    request payloads (and therefore the trace) are identical across
    schedules and backends.
    """
    if len(task_slices) == 1 or to_fetch.size == 0:
        return [to_fetch] + [np.empty(0, dtype=np.int64)] * (len(task_slices) - 1)
    # First task index referencing each RID: sort (rid, task index) pairs by
    # rid then task index, and take the first position of each fetched RID.
    all_rids = np.concatenate([tasks.rid_a, tasks.rid_b])
    all_tidx = np.tile(np.arange(len(tasks), dtype=np.int64), 2)
    order = np.lexsort((all_tidx, all_rids))
    sorted_rids = all_rids[order]
    first_tidx = all_tidx[order][np.searchsorted(sorted_rids, to_fetch)]
    bounds = np.array([hi for _lo, hi in task_slices], dtype=np.int64)
    first_slice = np.searchsorted(bounds, first_tidx, side="right")
    return [to_fetch[first_slice == index] for index in range(len(task_slices))]


def alignment_stage(comm: SimCommunicator, state: _RankState) -> BatchAligner:
    """Stage 4: fetch non-local reads, then align every task locally.

    The read fetch is a **two-hop superstep schedule**
    (:meth:`~repro.core.supersteps.SuperstepSchedule.run_two_hop`): each
    superstep requests one task batch's missing reads from their owner ranks
    (the *request* hop) and the owners serve the sequences back as typed
    wire blocks (the *response* hop).  With
    ``config.alignment_batch_tasks`` set, the tasks split into batches and
    — under double buffering — batch ``i+1``'s requests are already in
    flight while batch ``i``'s reads are unpacked and aligned; every remote
    read is still requested exactly once (it is assigned to the first batch
    that needs it), so the exchanged payloads are identical for every batch
    size and schedule.  The default (``None``) is the paper's original
    single request/response round.

    With ``config.wire_packing`` (the default) the served blocks are
    **2-bit packed** (4 bases/byte, :class:`PackedReadBlock`) — cutting the
    phase's dominant payload ~4x — and the receive side inserts the packed
    bytes into the cache *without decoding*; the ASCII fallback
    (``--no-wire-packing`` / ``DIBELLA_WIRE_PACKING=0``) ships
    ``(rids, offsets, bytes)`` exactly as before.  Both layouts are specified
    in ``docs/wire-format.md``; the counters ``read_payload_raw_bytes`` /
    ``read_payload_wire_bytes`` record the saving.

    Fetched sequences land in the rank's :class:`ReadCache`, which also
    memoises the 2-bit encodings the x-drop kernel consumes — repeated tasks
    against the same read reuse one buffer, and reads already cached are
    never re-requested from their owner.  The serve side routes the packed
    blocks through the same cache, so a read served twice (or re-served by a
    pooled rank) packs from its memoised encoding.  The cache's hit/miss
    counters are surfaced in the run result.

    Parameters
    ----------
    comm:
        This rank's communicator (phase label ``"alignment_exchange"``).
    state:
        The rank's mutable pipeline state (tasks from the overlap stage).

    Returns
    -------
    BatchAligner
        The executor that ran the tasks, with its work counters populated.
    """
    config = state.config
    timer = state.timer("alignment")
    comm.set_phase("alignment_exchange")

    # Persistent (pooled) caches carry counts from previous runs; report this
    # run's activity as a delta from the entry snapshot.
    cache_counter_base = state.read_cache.counters()
    cache = state.read_cache
    cache.capacity_bytes = config.read_cache_capacity_bytes
    tasks = state.tasks

    with timer.compute():
        needed = tasks.rids()
        local_arr = np.asarray(state.local_rids, dtype=np.int64)
        is_local = np.isin(needed, local_arr)
        for rid in needed[is_local].tolist():
            cache.put(rid, state.readset[rid].sequence)
        remote = needed[~is_local]
        to_fetch = cache.missing(remote)
        # Plan the fetch supersteps: contiguous task batches, each remote
        # read assigned to the first batch needing it.
        task_slices = _alignment_task_slices(len(tasks), config.alignment_batch_tasks)
        requests = _first_need_requests(tasks, task_slices, to_fetch)
        sequences = cache.sequence_view()
        aligner = BatchAligner(
            sequences=sequences,
            kernel=config.kernel,
            k=config.kmer.k,
            scoring=config.scoring,
            xdrop=config.xdrop,
            band=config.band,
            min_score=config.min_alignment_score,
            cache=cache,
        )

    read_payload_raw = 0
    read_payload_wire = 0
    results = []

    def produce(step: int) -> list[np.ndarray]:
        rids = (requests[step] if step < len(requests)
                else np.empty(0, dtype=np.int64))
        if rids.size:
            # Group read requests by the rank owning each read.
            return bucket_by_destination(rids, state.read_owner[rids], comm.size)
        return [np.empty(0, dtype=np.int64) for _ in range(comm.size)]

    def respond(step: int, incoming_requests: list) -> list:
        # Serve requested read sequences back to each requesting rank as
        # typed blocks: 2-bit packed (config.wire_packing, the default) or
        # ASCII (rids, offsets, bytes).
        nonlocal read_payload_raw, read_payload_wire
        blocks = [
            _build_read_block(np.asarray(incoming_requests[src], dtype=np.int64),
                              state.readset, cache, config.wire_packing)
            for src in range(comm.size)
        ]
        for block in blocks:
            raw, wire = _read_block_payload_bytes(block)
            read_payload_raw += raw
            read_payload_wire += wire
        return blocks

    def consume(step: int, blocks: list) -> None:
        for block in blocks:
            _unpack_read_block(block, cache)
        if step < len(task_slices):
            lo, hi = task_slices[step]
            if hi > lo:
                batch = TaskBatch(
                    rid_a=tasks.rid_a[lo:hi],
                    rid_b=tasks.rid_b[lo:hi],
                    seed_pos_a=tasks.seed_pos_a[lo:hi],
                    seed_pos_b=tasks.seed_pos_b[lo:hi],
                    same_strand=tasks.same_strand[lo:hi],
                )
                results.extend(aligner.align_all(batch))

    schedule = SuperstepSchedule(
        comm, timer, len(task_slices),
        double_buffer=config.stage_double_buffer("alignment"), label="alignment",
        # Unbatched, every rank has exactly one (possibly empty) fetch round,
        # so the step count needs no agreement — and the stage's exchange
        # pattern stays byte-identical to the original two-round fetch.
        agree_step_count=config.alignment_batch_tasks is not None,
    )
    outcome = schedule.run_two_hop(produce, respond, consume)

    with timer.compute():
        n_results = len(results)
        scores = np.fromiter((r.score for r in results), dtype=np.int64, count=n_results)
        spans_a = np.fromiter((r.span_a for r in results), dtype=np.int64, count=n_results)
        spans_b = np.fromiter((r.span_b for r in results), dtype=np.int64, count=n_results)
        accepted = scores >= config.min_alignment_score

    state.work["alignment"] = float(aligner.stats.cells)
    # Bytes of the reads this rank's tasks actually touch — deliberately not
    # the whole cache, which may also hold reads memoised while *serving*
    # peers on the packed path (and, under the pool, previous runs' reads):
    # the cost-model input must not depend on the wire encoding.
    state.local_bytes["alignment"] = float(cache.bases_cached(needed))
    # Capacity trim happens only here, at stage exit: every task has aligned,
    # so no read the fetch plan promised is still needed (a mid-stage evict
    # would break that promise).  The eviction counters land in this run's
    # delta below.
    cache.trim()
    state.counters["alignments"] = aligner.stats.alignments
    state.counters["accepted_alignments"] = aligner.stats.accepted
    state.counters["dp_cells"] = aligner.stats.cells
    state.counters["remote_reads_fetched"] = int(to_fetch.size)
    # Packed-vs-raw accounting of the served read payloads: ``raw`` is the
    # ASCII-equivalent byte count (one byte per base), ``wire`` what actually
    # crossed the exchange — ~raw/4 with packing on, equal with it off.
    state.counters["read_payload_raw_bytes"] = read_payload_raw
    state.counters["read_payload_wire_bytes"] = read_payload_wire
    state.counters["alignment_wire_packing"] = int(config.wire_packing)
    state.counters["alignment_fetch_rounds"] = outcome.n_supersteps
    state.counters["alignment_exchange_double_buffered"] = int(outcome.double_buffered)
    state.counters["alignment_steps_overlapped"] = outcome.steps_overlapped
    # spmdlint: disable=SL004 keys come from ReadCache.counters(), all five
    # declared as the read_cache_* group in repro.core.counters.
    state.counters.update({
        name: value - cache_counter_base.get(name, 0)
        for name, value in cache.counters().items()
    })

    state._accepted = (  # type: ignore[attr-defined]
        state.tasks.rid_a[accepted].astype(np.int64),
        state.tasks.rid_b[accepted].astype(np.int64),
        scores[accepted],
        spans_a[accepted],
        spans_b[accepted],
    )
    return aligner


# ---------------------------------------------------------------------------
# Rank placement: core pinning + hierarchical-exchange accounting
# ---------------------------------------------------------------------------

def _apply_rank_pinning(comm: SimCommunicator, counters: dict[str, int]) -> None:
    """Pin this rank's worker to its assigned core (graceful no-op).

    Only acts when the run topology carries a pin map — the pipeline
    attaches one only for ``pin_ranks`` on the **process** backend, where
    each rank is its own process so ``os.sched_setaffinity`` binds exactly
    one rank (pinning a thread-backend rank would pin the whole
    interpreter).  A restricted cgroup mask or a platform without affinity
    control counts ``rank_pins_skipped`` instead of failing the run.
    Pooled workers keep the affinity across parked runs; the next pinned
    run simply re-applies it.
    """
    pins = comm.topology.pin_cores
    if pins is None:
        return
    try:
        os.sched_setaffinity(0, {pins[comm.rank]})
    except (AttributeError, OSError):
        counters["rank_pins_skipped"] = counters.get("rank_pins_skipped", 0) + 1
        return
    counters["ranks_pinned"] = counters.get("ranks_pinned", 0) + 1


def _fold_hier_counters(comm: SimCommunicator, counters: dict[str, int]) -> None:
    """Fold the communicator's hierarchical-exchange stats into the report.

    Only hierarchical runs (a topology with a group map) write these keys,
    so flat runs' counter dicts are untouched.  The byte counters are exact
    functions of the logical send lists (``payload_nbytes`` sums), hence
    identical across backends, schedules and chunk sizes; the leader
    aggregation time is wall clock, folded as its ceiling in whole seconds
    so the aggregate stays deterministic — exactly 1 per group leader, 0 on
    every other rank.
    """
    if comm.topology.groups is None:
        return
    stats = comm.hier_stats
    counters["intragroup_bytes"] = (
        counters.get("intragroup_bytes", 0) + int(stats["intragroup_bytes"]))
    counters["intergroup_bytes"] = (
        counters.get("intergroup_bytes", 0) + int(stats["intergroup_bytes"]))
    if stats["leader_seconds"] > 0:
        counters["leader_aggregation_seconds"] = (
            counters.get("leader_aggregation_seconds", 0)
            + int(np.ceil(stats["leader_seconds"])))


# ---------------------------------------------------------------------------
# The full per-rank program
# ---------------------------------------------------------------------------

def run_rank_pipeline(
    comm: SimCommunicator,
    readset: ReadSet,
    assignments: list[list[int]],
    config: PipelineConfig,
    high_freq_threshold: int,
    cache_tag: str | None = None,
) -> RankReport:
    """Execute all four stages on one rank and return its report.

    This is the SPMD program every simulated rank runs — the body an MPI
    implementation would execute on every process (see
    ``docs/architecture.md`` for the stage-by-stage map).

    Parameters
    ----------
    comm:
        This rank's :class:`~repro.mpisim.communicator.SimCommunicator`.
    readset:
        The full read set (every rank holds it; each rank parses only its
        assigned RIDs, mirroring the paper's parallel file read).
    assignments:
        Per-rank RID lists from :func:`repro.io.partition.partition_reads`;
        must cover every read exactly once.
    config:
        The run's :class:`~repro.core.config.PipelineConfig`.
    high_freq_threshold:
        The resolved high-occurrence cutoff m (already broadcast-identical
        across ranks).
    cache_tag:
        Set by the pipeline when the rank pool is enabled: keys this rank's
        read cache into the persistent registry, so a pooled worker reused
        for another run over the *same* read set starts with the reads it
        already fetched; a different tag evicts the stale generation first.

    Returns
    -------
    RankReport
        The rank's counters, timers, overlaps and accepted alignments.
    """
    read_owner = _build_read_owner(readset, assignments)

    state = _RankState(
        config=config,
        readset=readset,
        local_rids=list(assignments[comm.rank]),
        read_owner=read_owner,
        high_freq_threshold=high_freq_threshold,
        read_cache=_acquire_read_cache(cache_tag, comm.rank),
    )
    _apply_rank_pinning(comm, state.counters)

    bloom_filter_stage(comm, state)
    hash_table_stage(comm, state)
    overlap_stage(comm, state)
    alignment_stage(comm, state)
    _fold_hier_counters(comm, state.counters)

    accepted = getattr(state, "_accepted")
    return RankReport(
        rank=comm.rank,
        stage_work=dict(state.work),
        stage_bytes=dict(state.local_bytes),
        stage_compute_seconds={name: t.compute_seconds for name, t in state.timers.items()},
        stage_exchange_seconds={name: t.exchange_seconds for name, t in state.timers.items()},
        counters=dict(state.counters),
        overlaps=state.overlaps,
        aln_rid_a=accepted[0],
        aln_rid_b=accepted[1],
        aln_score=accepted[2],
        aln_span_a=accepted[3],
        aln_span_b=accepted[4],
        stage_overlapped_seconds={name: t.overlapped_seconds
                                  for name, t in state.timers.items()},
    )


# ---------------------------------------------------------------------------
# Build / serve phase split: index residency + query batches
# ---------------------------------------------------------------------------

#: Resident sharded k-mer indexes that outlive a single SPMD run, keyed by
#: (index tag, rank) — the serve phase's counterpart of the persistent read
#: caches above.  Under the persistent rank pool a worker process survives
#: across ``spmd_run`` invocations, so the index a rank built in
#: ``run_index_build`` is still here when ``run_query_batch`` executes, and
#: the query batch touches zero index-build code paths (counter
#: ``index_reuse_hits``).  The tag fingerprints the index read set *and* the
#: parameters the resident layout depends on (k, shard count, rank count);
#: acquiring a different tag evicts the previous generation, so a reused
#: rank never serves a stale index.
_RESIDENT_INDEXES: dict[tuple[str, int], ShardedKmerIndex] = {}
_RESIDENT_INDEXES_LOCK = threading.Lock()


def _resident_index(index_tag: str, rank: int) -> ShardedKmerIndex | None:
    """This rank's resident index under *index_tag*, evicting stale tags."""
    with _RESIDENT_INDEXES_LOCK:
        stale = [key for key in _RESIDENT_INDEXES if key[0] != index_tag]
        for key in stale:
            del _RESIDENT_INDEXES[key]
        return _RESIDENT_INDEXES.get((index_tag, rank))


def _store_resident_index(index_tag: str, rank: int,
                          index: ShardedKmerIndex) -> None:
    """Publish *rank*'s freshly built index under *index_tag*."""
    with _RESIDENT_INDEXES_LOCK:
        _RESIDENT_INDEXES[(index_tag, rank)] = index


def reset_resident_indexes() -> None:
    """Drop every resident index (tests and benches reset state)."""
    with _RESIDENT_INDEXES_LOCK:
        _RESIDENT_INDEXES.clear()


def _union_order_key(assignments: list[list[int]], n_reads: int,
                     batch_reads: int) -> np.ndarray:
    """RID → arrival ordinal of the emulated one-shot run over these reads.

    In the one-shot pipeline, occurrences reach their owner rank in
    (superstep, source rank, in-batch read order) order: superstep ``b``
    carries every rank's batch ``b``, the consume callback concatenates the
    received chunks in source-rank order, and within one batch the reads
    keep their local order.  ``((b * P) + src) * batch_reads + i`` (with
    ``i`` the read's index within its batch) is a per-read key whose sort
    order equals exactly that arrival order — the key the serve phase sorts
    merged occurrence groups by to reproduce the one-shot retained table bit
    for bit (see :meth:`~repro.kmers.hashtable.ShardedKmerIndex.merged_shard`).
    """
    n_ranks = len(assignments)
    key = np.empty(n_reads, dtype=np.int64)
    for rank, rids in enumerate(assignments):
        rid_arr = np.asarray(rids, dtype=np.int64)
        if rid_arr.size == 0:
            continue
        local = np.arange(rid_arr.size, dtype=np.int64)
        batch, in_batch = local // batch_reads, local % batch_reads
        key[rid_arr] = ((batch * n_ranks) + rank) * batch_reads + in_batch
    return key


def _index_hash_table(comm: SimCommunicator, state: _RankState) -> ShardedKmerIndex:
    """Build this rank's resident index from its local reads (build phase).

    Runs the stage-2 occurrence exchange with the Bloom candidate gate
    lifted (:meth:`~repro.kmers.hashtable.KmerHashTablePartition.accept_all_keys`):
    the index must keep singleton occurrences too, because a later query
    batch can lift a singleton's union count into the reliable range.  The
    Bloom stage (stage 1) is skipped entirely — its only output is the
    candidate-key set the lifted gate replaces.  The buffered occurrences
    are then drained into a :class:`ShardedKmerIndex` bucketed by the same
    code-range boundaries the batch pipeline shards by.
    """
    config = state.config
    state.hashtable.accept_all_keys()
    hash_table_stage(comm, state)
    with state.timer("hashtable").compute():
        index = ShardedKmerIndex.from_partition(
            state.hashtable,
            shard_code_boundaries(config.kmer.k, config.hash_table_shards),
        )
    return index


def _index_report_counters(state: _RankState, index: ShardedKmerIndex) -> None:
    """Record the per-rank index shape counters on *state*."""
    config = state.config
    retained_kmers = 0
    retained_occurrences = 0
    with state.timer("hashtable").compute():
        for shard in range(index.n_shards):
            part = index.retained_shard(shard, min_count=config.min_kmer_count,
                                        max_count=state.high_freq_threshold)
            retained_kmers += part.n_kmers
            retained_occurrences += part.n_occurrences
    state.counters["index_build_runs"] = 1
    state.counters["index_retained_kmers"] = retained_kmers
    state.counters["index_retained_occurrences"] = retained_occurrences
    state.counters["index_occurrences"] = index.n_occurrences
    state.counters["index_nbytes"] = index.nbytes
    state.counters["index_digest"] = index.digest()
    state.counters["hash_table_shards"] = index.n_shards


def _empty_rank_report(comm: SimCommunicator, state: _RankState) -> RankReport:
    """A RankReport for a run that produced no overlaps or alignments."""
    empty = np.empty(0, dtype=np.int64)
    return RankReport(
        rank=comm.rank,
        stage_work=dict(state.work),
        stage_bytes=dict(state.local_bytes),
        stage_compute_seconds={name: t.compute_seconds
                               for name, t in state.timers.items()},
        stage_exchange_seconds={name: t.exchange_seconds
                                for name, t in state.timers.items()},
        counters=dict(state.counters),
        overlaps=OverlapTable.empty(),
        aln_rid_a=empty,
        aln_rid_b=empty.copy(),
        aln_score=empty.copy(),
        aln_span_a=empty.copy(),
        aln_span_b=empty.copy(),
        stage_overlapped_seconds={name: t.overlapped_seconds
                                  for name, t in state.timers.items()},
    )


def run_index_build(
    comm: SimCommunicator,
    readset: ReadSet,
    assignments: list[list[int]],
    config: PipelineConfig,
    high_freq_threshold: int,
    index_tag: str,
    cache_tag: str | None = None,
) -> RankReport:
    """Build phase: construct this rank's sharded k-mer index and keep it resident.

    The SPMD program of :meth:`DibellaPipeline.build_index`: runs the
    stage-2 occurrence exchange over the index reads (Bloom gate lifted, see
    :func:`_index_hash_table`), drains the buffered occurrences into a
    :class:`~repro.kmers.hashtable.ShardedKmerIndex`, and publishes it in
    the resident-index registry under *index_tag* — where subsequent
    :func:`run_query_batch` invocations on a pooled rank find it without
    rebuilding.  No overlaps or alignments are produced.

    Counters: ``index_build_runs`` (always 1 here), ``index_retained_kmers``
    / ``index_retained_occurrences`` (the table a query batch with no novel
    occurrences would see), ``index_occurrences`` / ``index_nbytes`` (the
    resident buffers), and ``index_digest`` — an insertion-order-independent
    content digest, comparable across backends even when the index itself
    lives in an unreachable worker process.
    """
    read_owner = _build_read_owner(readset, assignments)
    state = _RankState(
        config=config,
        readset=readset,
        local_rids=list(assignments[comm.rank]),
        read_owner=read_owner,
        high_freq_threshold=high_freq_threshold,
        read_cache=_acquire_read_cache(cache_tag, comm.rank),
    )
    _apply_rank_pinning(comm, state.counters)
    index = _index_hash_table(comm, state)
    _store_resident_index(index_tag, comm.rank, index)
    _index_report_counters(state, index)
    _fold_hier_counters(comm, state.counters)
    return _empty_rank_report(comm, state)


def run_query_batch(
    comm: SimCommunicator,
    readset: ReadSet,
    assignments: list[list[int]],
    n_index_reads: int,
    config: PipelineConfig,
    high_freq_threshold: int,
    index_tag: str,
    cache_tag: str | None = None,
) -> RankReport:
    """Serve phase: align one query batch against the resident index.

    The SPMD program of :meth:`DibellaPipeline.run_query_batch`.  *readset*
    is the combined set — index reads first (RIDs ``< n_index_reads``), the
    query batch after them — and *assignments* partitions the combined set
    exactly as a one-shot run over it would (the *emulated union run*).  The
    batch flows through three stages:

    1. **Query route** — extract the local *query* reads' k-mers and ship
       (code, RID, position, strand) to the owner ranks on the superstep
       scheduler, exactly like stage 2 but only over the query reads
       (``query_route`` timers/counters; the index reads are never
       re-parsed).
    2. **Query overlap** — per code-range shard, merge the routed query
       occurrences into the resident shard
       (:meth:`~repro.kmers.hashtable.ShardedKmerIndex.merged_shard`,
       ordered by the emulated union run's arrival order), generate pairs,
       keep only **query-vs-index** pairs (``rid_a < n_index_reads <=
       rid_b`` — within-side pairs are not this batch's job), and exchange
       them chunked/double-buffered like the batch overlap stage.
    3. **Alignment** — the unmodified :func:`alignment_stage`: two-hop read
       fetch + x-drop over the consolidated tasks.

    Ordering the merged occurrence groups by the union run's arrival order
    makes the surviving pair stream — and therefore the accepted alignments
    — bit-identical to running the one-shot pipeline over the combined set
    and keeping only its query-vs-index alignments (pinned by the serve
    parity tests).

    If any rank lost its resident index (non-pooled process backend: fresh
    workers every run), **all** ranks rebuild it first — presence is agreed
    with a min-allreduce, so the rebuild's collectives stay matched — and
    the run reports ``index_build_runs`` instead of ``index_reuse_hits``.

    Query RIDs are reused by every batch, so the previous batch's query
    reads are evicted from the (possibly pooled) read cache before the
    alignment stage caches this batch's.
    """
    read_owner = _build_read_owner(readset, assignments)
    local_rids = list(assignments[comm.rank])
    cache = _acquire_read_cache(cache_tag, comm.rank)
    cache.evict_rids_at_or_above(n_index_reads)

    state = _RankState(
        config=config,
        readset=readset,
        local_rids=local_rids,
        read_owner=read_owner,
        high_freq_threshold=high_freq_threshold,
        read_cache=cache,
    )
    _apply_rank_pinning(comm, state.counters)

    route_timer = state.timer("query_route")
    comm.set_phase("query_route_exchange")

    # Index residency consensus: either every rank reuses its resident index
    # or every rank rebuilds — a mixed decision would leave the rebuilding
    # ranks alone in the hash-table exchange and deadlock the collectives.
    index = _resident_index(index_tag, comm.rank)
    with route_timer.exchange():
        all_present = int(comm.allreduce(
            np.array([0 if index is None else 1], dtype=np.int64), op="min")[0])
    if all_present:
        state.counters["index_reuse_hits"] = 1
        state.counters["hash_table_shards"] = index.n_shards
    else:
        # Rebuild over the index reads only (their slots in the combined
        # partition still cover each exactly once).  Storage order does not
        # matter — merged_shard re-sorts by the union arrival order.
        build_state = _RankState(
            config=config,
            readset=readset,
            local_rids=[rid for rid in local_rids if rid < n_index_reads],
            read_owner=read_owner,
            high_freq_threshold=high_freq_threshold,
            read_cache=cache,
        )
        index = _index_hash_table(comm, build_state)
        _store_resident_index(index_tag, comm.rank, index)
        state.counters["index_build_runs"] = 1
        state.counters["hash_table_shards"] = index.n_shards
        for name in ("work", "local_bytes", "counters"):
            getattr(state, name).update(getattr(build_state, name))
        state.timers.update(build_state.timers)
        comm.set_phase("query_route_exchange")

    # -- stage Q1: route the query batch's k-mers to their owner ranks ------
    local_query_rids = [rid for rid in local_rids if rid >= n_index_reads]
    batches = _local_batches(local_query_rids, config.batch_reads)

    query_kmers_parsed = 0
    query_kmers_routed = 0
    route_payload_bytes = 0
    received_meta: list[np.ndarray] = []

    def route_produce(step: int) -> list[np.ndarray]:
        nonlocal query_kmers_parsed
        rids = batches[step] if step < len(batches) else []
        # The sketch funnel: query k-mers are reduced with the same (k, w)
        # the index build used, so build and serve see consistent seed sets.
        codes, rid_arr, pos_arr, strand_arr = _extract_batch_kmers(
            state.readset, rids, config, with_positions=True,
            counters=state.counters,
        )
        query_kmers_parsed += int(codes.size)
        if codes.size:
            owners = owner_of(codes, comm.size)
            packed_meta = (
                (rid_arr.astype(np.uint64) << np.uint64(32))
                | (strand_arr.astype(np.uint64) << np.uint64(31))
                | pos_arr.astype(np.uint64)
            )
            payload = np.stack([codes, packed_meta], axis=1)
            return bucket_by_destination(payload, owners, comm.size)
        return [np.empty((0, 2), dtype=np.uint64) for _ in range(comm.size)]

    def route_consume(step: int, received: list) -> None:
        nonlocal query_kmers_routed, route_payload_bytes
        chunks = [np.asarray(c, dtype=np.uint64) for c in received
                  if np.asarray(c).size]
        route_payload_bytes += sum(int(c.nbytes) for c in chunks)
        if chunks:
            incoming = np.concatenate(chunks, axis=0)
            query_kmers_routed += int(incoming.shape[0])
            received_meta.append(incoming)

    route_schedule = SuperstepSchedule(
        comm, route_timer, len(batches),
        double_buffer=config.stage_double_buffer("hashtable"), label="query_route",
    )
    route_outcome = route_schedule.run(route_produce, route_consume)

    with route_timer.compute():
        if received_meta:
            incoming = np.concatenate(received_meta, axis=0)
            meta = incoming[:, 1]
            q_codes = incoming[:, 0]
            q_rids = (meta >> np.uint64(32)).astype(np.int64)
            q_positions = (meta & np.uint64(0x7FFFFFFF)).astype(np.int64)
            q_strands = ((meta >> np.uint64(31)) & np.uint64(1)).astype(bool)
        else:
            q_codes = np.empty(0, dtype=np.uint64)
            q_rids = np.empty(0, dtype=np.int64)
            q_positions = np.empty(0, dtype=np.int64)
            q_strands = np.empty(0, dtype=bool)
        order_key = _union_order_key(assignments, len(readset), config.batch_reads)
        q_shard_of = np.searchsorted(index.boundaries, q_codes, side="right")

    state.work["query_route"] = float(query_kmers_routed)
    state.local_bytes["query_route"] = float(index.nbytes + q_codes.nbytes * 4)
    state.counters["query_kmers_parsed"] = query_kmers_parsed
    state.counters["query_kmers_routed"] = query_kmers_routed
    state.counters["query_route_payload_bytes"] = route_payload_bytes
    state.counters["query_route_double_buffered"] = int(route_outcome.double_buffered)
    state.counters["query_route_steps_overlapped"] = route_outcome.steps_overlapped

    # -- stage Q2: merged per-shard pair generation, cross pairs only -------
    timer = state.timer("overlap")
    comm.set_phase("overlap_exchange")
    double_buffer = config.stage_double_buffer("overlap")

    pairs_generated = 0
    cross_pairs = 0
    retained_kmers = 0
    retained_occurrences = 0
    total_chunks = 0
    total_supersteps = 0
    chunks_overlapped = 0
    payload_bytes = 0
    received_batches: list[PairBatch] = []

    def consume(step: int, received: list) -> None:
        nonlocal payload_bytes
        payload_bytes += sum(int(np.asarray(c).nbytes) for c in received)
        received_batches.extend(
            PairBatch.from_matrix(np.asarray(c)) for c in received
        )

    def stream_shard(merged: RetainedKmers, chunks: list[tuple[int, int]]):
        nonlocal pairs_generated, cross_pairs

        def produce(step: int) -> list[np.ndarray]:
            nonlocal pairs_generated, cross_pairs
            if step < len(chunks):
                pairs = generate_pairs(merged, kmer_range=chunks[step])
            else:
                pairs = PairBatch.empty()
            pairs_generated += len(pairs)
            if len(pairs):
                # The batch's job is query-vs-index pairs only: rid_a <
                # rid_b always holds, so a cross pair is exactly rid_a on
                # the index side and rid_b on the query side.  Owner choice
                # happens before the filter drops the swapped annotation.
                destinations = choose_owner(
                    pairs.rid_a, pairs.rid_b, state.read_owner,
                    heuristic=config.owner_heuristic, swapped=pairs.swapped,
                )
                cross = (pairs.rid_a < n_index_reads) & (pairs.rid_b >= n_index_reads)
                cross_pairs += int(cross.sum())
                return bucket_by_destination(
                    pairs.to_matrix()[cross], destinations[cross], comm.size)
            return [np.empty((0, 5), dtype=np.int64) for _ in range(comm.size)]

        schedule = SuperstepSchedule(
            comm, timer, len(chunks), double_buffer=double_buffer,
            label="query_overlap",
        )
        return schedule.run(produce, consume)

    for shard in range(index.n_shards):
        with route_timer.compute():
            in_shard = q_shard_of == shard
            merged = index.merged_shard(
                shard,
                q_codes[in_shard], q_rids[in_shard],
                q_positions[in_shard], q_strands[in_shard],
                order_key, n_index_reads,
                min_count=config.min_kmer_count,
                max_count=high_freq_threshold,
            )
            retained_kmers += merged.n_kmers
            retained_occurrences += merged.n_occurrences
        with timer.compute():
            chunks = pair_chunk_ranges(merged, config.exchange_chunk_bytes)
        outcome = stream_shard(merged, chunks)
        total_chunks += len(chunks)
        total_supersteps += outcome.n_supersteps
        chunks_overlapped += outcome.steps_overlapped
        merged = None  # release the merged shard before building the next

    with timer.compute():
        incoming_pairs = PairBatch.concatenate(received_batches)
        table = OverlapTable.from_pairs(incoming_pairs)
        state.overlaps = table
        selected = select_seeds_batched(table, config.seed_strategy)
        pair_of_seed = np.searchsorted(table.seed_offsets, selected, side="right") - 1
        state.tasks = TaskBatch(
            rid_a=table.rid_a[pair_of_seed],
            rid_b=table.rid_b[pair_of_seed],
            seed_pos_a=table.seed_pos_a[selected],
            seed_pos_b=table.seed_pos_b[selected],
            same_strand=table.seed_same_strand[selected],
        )

    state.work["overlap"] = float(retained_occurrences + pairs_generated)
    state.local_bytes["overlap"] = float(32 * pairs_generated)
    state.counters["retained_kmers"] = retained_kmers
    state.counters["retained_occurrences"] = retained_occurrences
    state.counters["query_pairs_generated"] = pairs_generated
    state.counters["query_cross_pairs"] = cross_pairs
    state.counters["overlap_pairs"] = len(state.overlaps)
    state.counters["alignment_tasks"] = len(state.tasks)
    state.counters["overlap_exchange_chunks"] = total_chunks
    state.counters["overlap_payload_bytes"] = payload_bytes
    state.counters["overlap_exchange_double_buffered"] = int(
        bool(double_buffer) and total_supersteps > 0)
    state.counters["overlap_chunks_overlapped"] = chunks_overlapped

    # -- stage Q3: the unmodified two-hop fetch + alignment -----------------
    alignment_stage(comm, state)
    _fold_hier_counters(comm, state.counters)

    accepted = getattr(state, "_accepted")
    return RankReport(
        rank=comm.rank,
        stage_work=dict(state.work),
        stage_bytes=dict(state.local_bytes),
        stage_compute_seconds={name: t.compute_seconds
                               for name, t in state.timers.items()},
        stage_exchange_seconds={name: t.exchange_seconds
                                for name, t in state.timers.items()},
        counters=dict(state.counters),
        overlaps=state.overlaps,
        aln_rid_a=accepted[0],
        aln_rid_b=accepted[1],
        aln_score=accepted[2],
        aln_span_a=accepted[3],
        aln_span_b=accepted[4],
        stage_overlapped_seconds={name: t.overlapped_seconds
                                  for name, t in state.timers.items()},
    )
