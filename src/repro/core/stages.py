"""The four pipeline stages as per-rank SPMD functions.

``run_rank_pipeline`` is the program every simulated rank executes (the body
of the SPMD job an MPI implementation would run on every process).  Each
stage follows the structure of §§6-9 of the paper:

* parse / compute locally,
* pack per-destination buffers,
* exchange with ``alltoallv``,
* process the received data.

Wall time is measured separately for the compute and exchange parts of every
stage (the paper's runtime-breakdown figures), and each stage accumulates the
machine-independent work counters the performance model projects onto the
Table 1 platforms.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.align.batch import AlignmentTask, BatchAligner
from repro.core.config import PipelineConfig
from repro.core.result import RankReport
from repro.kmers.bloom import BloomFilter
from repro.kmers.hashing import owner_of
from repro.kmers.hashtable import KmerHashTablePartition, RetainedKmers
from repro.mpisim.collectives import bucket_by_destination
from repro.mpisim.communicator import SimCommunicator
from repro.overlap.pairs import (
    OverlapRecord,
    PairBatch,
    choose_owner,
    consolidate_pairs,
    generate_pairs,
)
from repro.overlap.seeds import select_seeds
from repro.seq.kmer import extract_kmer_codes, extract_kmers_with_strand
from repro.seq.records import ReadSet


@dataclass
class _StageTimer:
    """Accumulates compute vs exchange wall time for one stage on one rank."""

    compute_seconds: float = 0.0
    exchange_seconds: float = 0.0

    class _Section:
        def __init__(self, timer: "_StageTimer", attr: str):
            self._timer = timer
            self._attr = attr
            self._start = 0.0

        def __enter__(self) -> "_StageTimer._Section":
            self._start = time.perf_counter()
            return self

        def __exit__(self, *exc_info: object) -> None:
            elapsed = time.perf_counter() - self._start
            setattr(self._timer, self._attr,
                    getattr(self._timer, self._attr) + elapsed)

    def compute(self) -> "_StageTimer._Section":
        """Context manager timing a local-compute section."""
        return self._Section(self, "compute_seconds")

    def exchange(self) -> "_StageTimer._Section":
        """Context manager timing a communication section."""
        return self._Section(self, "exchange_seconds")


@dataclass
class _RankState:
    """Mutable per-rank state threaded through the stages."""

    config: PipelineConfig
    readset: ReadSet
    local_rids: list[int]
    read_owner: np.ndarray
    high_freq_threshold: int
    hashtable: KmerHashTablePartition = field(default_factory=KmerHashTablePartition)
    retained: RetainedKmers | None = None
    overlaps: list[OverlapRecord] = field(default_factory=list)
    tasks: list[AlignmentTask] = field(default_factory=list)
    timers: dict[str, _StageTimer] = field(default_factory=dict)
    work: dict[str, float] = field(default_factory=dict)
    local_bytes: dict[str, float] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)

    def timer(self, stage: str) -> _StageTimer:
        return self.timers.setdefault(stage, _StageTimer())


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------

def _local_batches(local_rids: list[int], batch_reads: int) -> list[list[int]]:
    """Split this rank's RIDs into streaming batches of at most batch_reads."""
    return [local_rids[i : i + batch_reads] for i in range(0, len(local_rids), batch_reads)]


def _global_batch_count(comm: SimCommunicator, n_local_batches: int) -> int:
    """Every rank must run the same number of supersteps (max over ranks)."""
    return int(comm.allreduce(n_local_batches, op="max"))


def _extract_batch_kmers(
    readset: ReadSet, rids: list[int], config: PipelineConfig, with_positions: bool
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Extract k-mers (and optionally RIDs/positions/strands) from a batch of reads."""
    code_chunks: list[np.ndarray] = []
    rid_chunks: list[np.ndarray] = []
    pos_chunks: list[np.ndarray] = []
    strand_chunks: list[np.ndarray] = []
    for rid in rids:
        sequence = readset[rid].sequence
        if with_positions:
            codes, positions, strands = extract_kmers_with_strand(sequence, config.kmer)
            pos_chunks.append(positions)
            strand_chunks.append(strands)
            rid_chunks.append(np.full(codes.size, rid, dtype=np.int64))
        else:
            codes = extract_kmer_codes(sequence, config.kmer)
        code_chunks.append(codes)
    if not code_chunks:
        empty64 = np.empty(0, dtype=np.uint64)
        empty_i = np.empty(0, dtype=np.int64)
        return empty64, empty_i, empty_i, np.empty(0, dtype=bool)
    codes = np.concatenate(code_chunks)
    if with_positions:
        return (codes, np.concatenate(rid_chunks), np.concatenate(pos_chunks),
                np.concatenate(strand_chunks))
    return (codes, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
            np.empty(0, dtype=bool))


# ---------------------------------------------------------------------------
# Stage 1: Bloom-filter construction (§6)
# ---------------------------------------------------------------------------

def bloom_filter_stage(comm: SimCommunicator, state: _RankState) -> None:
    """Stage 1: route every k-mer to its owner, build the Bloom filter partition.

    k-mers the filter has already (probably) seen are promoted to hash-table
    candidate keys — "if a k-mer was already present, it is also inserted
    into the local hash table partition" (§6).
    """
    config = state.config
    timer = state.timer("bloom")
    comm.set_phase("bloom_exchange")

    batches = _local_batches(state.local_rids, config.batch_reads)
    n_supersteps = _global_batch_count(comm, len(batches))

    total_kmers = state.readset.total_kmers(config.kmer.k)
    expected_per_rank = max(1024, total_kmers // comm.size)
    bloom = BloomFilter.for_expected_items(expected_per_rank, fp_rate=config.bloom_fp_rate)

    kmers_parsed = 0
    kmers_received = 0

    for step in range(n_supersteps):
        rids = batches[step] if step < len(batches) else []
        with timer.compute():
            codes, _, _, _ = _extract_batch_kmers(state.readset, rids, config, with_positions=False)
            kmers_parsed += int(codes.size)
            owners = owner_of(codes, comm.size) if codes.size else np.empty(0, dtype=np.int64)
            send = bucket_by_destination(codes, owners, comm.size) if codes.size else [
                np.empty(0, dtype=np.uint64) for _ in range(comm.size)
            ]
        with timer.exchange():
            received = comm.alltoallv(send)
        with timer.compute():
            chunks = [np.asarray(c, dtype=np.uint64) for c in received if np.asarray(c).size]
            if chunks:
                incoming = np.concatenate(chunks)
                kmers_received += int(incoming.size)
                seen_before = bloom.insert_many(incoming)
                state.hashtable.add_candidate_keys(incoming[seen_before])

    with timer.compute():
        n_keys = state.hashtable.finalize_keys()

    state.work["bloom"] = float(kmers_received)
    state.local_bytes["bloom"] = float(bloom.nbytes + state.hashtable.memory_nbytes())
    state.counters["kmers_parsed"] = kmers_parsed
    state.counters["kmers_received_bloom"] = kmers_received
    state.counters["distinct_keys"] = n_keys
    state.counters["bloom_nbytes"] = bloom.nbytes


# ---------------------------------------------------------------------------
# Stage 2: hash-table construction (§7)
# ---------------------------------------------------------------------------

def hash_table_stage(comm: SimCommunicator, state: _RankState) -> None:
    """Stage 2: second pass shipping (k-mer, RID, position) to the owner rank.

    Occurrences are stored only for k-mers already registered as keys; the
    finalisation then removes false-positive singletons and k-mers above the
    high-frequency threshold m, leaving the retained k-mers (§7).
    """
    config = state.config
    timer = state.timer("hashtable")
    comm.set_phase("hashtable_exchange")

    batches = _local_batches(state.local_rids, config.batch_reads)
    n_supersteps = _global_batch_count(comm, len(batches))

    occurrences_received = 0
    occurrences_stored = 0

    for step in range(n_supersteps):
        rids = batches[step] if step < len(batches) else []
        with timer.compute():
            codes, rid_arr, pos_arr, strand_arr = _extract_batch_kmers(
                state.readset, rids, config, with_positions=True
            )
            if codes.size:
                owners = owner_of(codes, comm.size)
                # Pack (RID, strand, position) into one word: RID in the high
                # 32 bits, the strand flag in bit 31, the position in the low
                # 31 bits.  This keeps the hash-table exchange at 2 words per
                # k-mer instance (the paper reports ~2.5x the Bloom-filter
                # stage volume, §7).
                packed_meta = (
                    (rid_arr.astype(np.uint64) << np.uint64(32))
                    | (strand_arr.astype(np.uint64) << np.uint64(31))
                    | pos_arr.astype(np.uint64)
                )
                payload = np.stack([codes, packed_meta], axis=1)
                send = bucket_by_destination(payload, owners, comm.size)
            else:
                send = [np.empty((0, 2), dtype=np.uint64) for _ in range(comm.size)]
        with timer.exchange():
            received = comm.alltoallv(send)
        with timer.compute():
            chunks = [np.asarray(c, dtype=np.uint64) for c in received
                      if np.asarray(c).size]
            if chunks:
                incoming = np.concatenate(chunks, axis=0)
                occurrences_received += int(incoming.shape[0])
                meta = incoming[:, 1]
                occurrences_stored += state.hashtable.add_occurrences(
                    incoming[:, 0],
                    (meta >> np.uint64(32)).astype(np.int64),
                    (meta & np.uint64(0x7FFFFFFF)).astype(np.int64),
                    ((meta >> np.uint64(31)) & np.uint64(1)).astype(bool),
                )

    with timer.compute():
        state.retained = state.hashtable.finalize(
            min_count=config.min_kmer_count, max_count=state.high_freq_threshold
        )

    state.work["hashtable"] = float(occurrences_received)
    state.local_bytes["hashtable"] = float(state.hashtable.memory_nbytes())
    state.counters["kmers_received_hashtable"] = occurrences_received
    state.counters["occurrences_stored"] = occurrences_stored
    state.counters["retained_kmers"] = state.retained.n_kmers
    state.counters["retained_occurrences"] = state.retained.n_occurrences


# ---------------------------------------------------------------------------
# Stage 3: overlap detection (§8, Algorithm 1)
# ---------------------------------------------------------------------------

def overlap_stage(comm: SimCommunicator, state: _RankState) -> None:
    """Stage 3: form all read pairs per retained k-mer and route them to owners."""
    config = state.config
    timer = state.timer("overlap")
    comm.set_phase("overlap_exchange")
    assert state.retained is not None, "hash_table_stage must run before overlap_stage"

    with timer.compute():
        pairs = generate_pairs(state.retained)
        if len(pairs):
            destinations = choose_owner(
                pairs.rid_a, pairs.rid_b, state.read_owner, heuristic=config.owner_heuristic
            )
            send = bucket_by_destination(pairs.to_matrix(), destinations, comm.size)
        else:
            send = [np.empty((0, 5), dtype=np.int64) for _ in range(comm.size)]

    with timer.exchange():
        received = comm.alltoallv(send)

    with timer.compute():
        incoming = PairBatch.concatenate(
            [PairBatch.from_matrix(np.asarray(c)) for c in received]
        )
        state.overlaps = consolidate_pairs(incoming)
        # Apply the seed-selection constraint to produce alignment tasks.
        tasks: list[AlignmentTask] = []
        for record in state.overlaps:
            chosen = select_seeds(record.seed_pos_a, record.seed_pos_b, config.seed_strategy)
            for idx in chosen:
                tasks.append(
                    AlignmentTask(
                        rid_a=record.rid_a,
                        rid_b=record.rid_b,
                        seed_pos_a=int(record.seed_pos_a[idx]),
                        seed_pos_b=int(record.seed_pos_b[idx]),
                        same_strand=bool(record.seed_same_strand[idx]),
                    )
                )
        state.tasks = tasks

    state.work["overlap"] = float(state.retained.n_occurrences + len(pairs))
    state.local_bytes["overlap"] = float(
        state.retained.rids.nbytes + state.retained.positions.nbytes + 32 * len(pairs)
    )
    state.counters["pairs_generated"] = len(pairs)
    state.counters["overlap_pairs"] = len(state.overlaps)
    state.counters["alignment_tasks"] = len(state.tasks)


# ---------------------------------------------------------------------------
# Stage 4: read exchange and pairwise alignment (§9)
# ---------------------------------------------------------------------------

def alignment_stage(comm: SimCommunicator, state: _RankState) -> BatchAligner:
    """Stage 4: fetch non-local reads, then align every task locally."""
    config = state.config
    timer = state.timer("alignment")
    comm.set_phase("alignment_exchange")

    local_set = set(state.local_rids)

    with timer.compute():
        needed: set[int] = set()
        for task in state.tasks:
            needed.add(task.rid_a)
            needed.add(task.rid_b)
        remote = sorted(rid for rid in needed if rid not in local_set)
        # Group read requests by the rank owning each read.
        request_buckets: list[list[int]] = [[] for _ in range(comm.size)]
        for rid in remote:
            request_buckets[int(state.read_owner[rid])].append(rid)
        request_arrays = [np.array(b, dtype=np.int64) for b in request_buckets]

    with timer.exchange():
        incoming_requests = comm.alltoallv(request_arrays)

    with timer.compute():
        # Serve requested read sequences back to each requesting rank.
        responses: list[list[tuple[int, str]]] = []
        for src in range(comm.size):
            wanted = np.asarray(incoming_requests[src], dtype=np.int64)
            responses.append(
                [(int(rid), state.readset[int(rid)].sequence) for rid in wanted]
            )

    with timer.exchange():
        incoming_reads = comm.alltoallv(responses)

    with timer.compute():
        sequences: dict[int, str] = {rid: state.readset[rid].sequence for rid in local_set}
        for chunk in incoming_reads:
            for rid, sequence in chunk:
                sequences[rid] = sequence

        aligner = BatchAligner(
            sequences=sequences,
            kernel=config.kernel,
            k=config.kmer.k,
            scoring=config.scoring,
            xdrop=config.xdrop,
            band=config.band,
            min_score=config.min_alignment_score,
        )
        accepted_ra: list[int] = []
        accepted_rb: list[int] = []
        accepted_score: list[int] = []
        accepted_span_a: list[int] = []
        accepted_span_b: list[int] = []
        results = aligner.align_all(state.tasks)
        for task, result in zip(state.tasks, results):
            if result.score >= config.min_alignment_score:
                accepted_ra.append(task.rid_a)
                accepted_rb.append(task.rid_b)
                accepted_score.append(result.score)
                accepted_span_a.append(result.span_a)
                accepted_span_b.append(result.span_b)

    state.work["alignment"] = float(aligner.stats.cells)
    state.local_bytes["alignment"] = float(sum(len(s) for s in sequences.values()))
    state.counters["alignments"] = aligner.stats.alignments
    state.counters["accepted_alignments"] = aligner.stats.accepted
    state.counters["dp_cells"] = aligner.stats.cells
    state.counters["remote_reads_fetched"] = len(remote)

    state._accepted = (  # type: ignore[attr-defined]
        np.array(accepted_ra, dtype=np.int64),
        np.array(accepted_rb, dtype=np.int64),
        np.array(accepted_score, dtype=np.int64),
        np.array(accepted_span_a, dtype=np.int64),
        np.array(accepted_span_b, dtype=np.int64),
    )
    return aligner


# ---------------------------------------------------------------------------
# The full per-rank program
# ---------------------------------------------------------------------------

def run_rank_pipeline(
    comm: SimCommunicator,
    readset: ReadSet,
    assignments: list[list[int]],
    config: PipelineConfig,
    high_freq_threshold: int,
) -> RankReport:
    """Execute all four stages on one rank and return its report."""
    read_owner = np.empty(len(readset), dtype=np.int64)
    for rank, rids in enumerate(assignments):
        for rid in rids:
            read_owner[rid] = rank

    state = _RankState(
        config=config,
        readset=readset,
        local_rids=list(assignments[comm.rank]),
        read_owner=read_owner,
        high_freq_threshold=high_freq_threshold,
    )

    bloom_filter_stage(comm, state)
    hash_table_stage(comm, state)
    overlap_stage(comm, state)
    alignment_stage(comm, state)

    accepted = getattr(state, "_accepted")
    return RankReport(
        rank=comm.rank,
        stage_work=dict(state.work),
        stage_bytes=dict(state.local_bytes),
        stage_compute_seconds={name: t.compute_seconds for name, t in state.timers.items()},
        stage_exchange_seconds={name: t.exchange_seconds for name, t in state.timers.items()},
        counters=dict(state.counters),
        overlaps=list(state.overlaps),
        aln_rid_a=accepted[0],
        aln_rid_b=accepted[1],
        aln_score=accepted[2],
        aln_span_a=accepted[3],
        aln_span_b=accepted[4],
    )
