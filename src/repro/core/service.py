"""Admission/batching front-end for the serve phase: :class:`AlignmentService`.

The build/serve refactor turns the pipeline into two phases
(:meth:`~repro.core.pipeline.DibellaPipeline.build_index` /
:meth:`~repro.core.pipeline.DibellaPipeline.run_query_batch`); this module
adds the always-on front of the ROADMAP's "alignment service" on top:

* **submit** queues a batch of query reads without running anything — each
  submission's read names are prefixed with a submission sequence number, so
  callers can reuse names freely without colliding with the index read set
  or with each other;
* **drain** coalesces queued submissions into batches of at most
  ``config.serve_batch_reads`` reads (whole submissions — a submission never
  splits across batches, so one caller's reads always align together) and
  runs each batch through the pooled pipeline, recording a per-batch
  :class:`QueryBatchRecord` with the wall latency and the run counters;
* **latency_stats** summarises the drained batches (p50/p99 wall seconds
  per batch, reads served per second) — the numbers the serve latency bench
  writes under ``benchmarks/results/``.

The index is built lazily on the first drain (or eagerly via
:meth:`AlignmentService.build`) and stays resident on the pooled ranks, so
every batch after the first touches zero index-build code paths
(``index_reuse_hits`` in each record's counters).  With the process backend
the service forces the persistent rank pool on — without it every batch
would land on freshly forked workers and rebuild the index.

The service survives rank failures: a build or batch whose SPMD run died
from a :class:`~repro.mpisim.errors.RankFailedError` is retried up to
``config.serve_max_retries`` times with exponential backoff.  The runtime
has already evicted the broken pool by then; the retry lands on freshly
respawned workers, which rebuild the resident index inside the run (the
PR 6 rebuild path), so retried batches return bit-identical alignments.
Successful-but-retried results carry the recovery evidence in their
counters (``query_batch_retries``, ``rank_failures_detected``,
``pool_respawns``, ``recovery_seconds``); see ``docs/fault-tolerance.md``.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, replace
from typing import Callable

import numpy as np

from repro.core.config import PipelineConfig
from repro.core.pipeline import DibellaPipeline
from repro.core.result import PipelineResult
from repro.mpisim.backend import recovery_counters
from repro.mpisim.errors import RankFailedError
from repro.mpisim.topology import Topology
from repro.seq.records import Read, ReadSet

__all__ = ["AlignmentService", "QueryBatchRecord"]


@dataclass(frozen=True)
class QueryBatchRecord:
    """One drained query batch: its shape, latency and run result.

    Attributes
    ----------
    batch_index:
        Position of this batch in the service's drain history (0-based).
    n_reads / n_submissions:
        Reads in the batch and how many submissions were coalesced into it.
    wall_seconds:
        End-to-end latency of the batch (partition + SPMD run + assembly).
    result:
        The batch's :class:`~repro.core.result.PipelineResult`; query RIDs
        are ``n_index_reads + position`` within the batch, and
        ``result.counters`` carries the reuse/rebuild evidence
        (``index_reuse_hits`` vs ``index_build_runs``).
    query_names:
        The batch's (prefixed) read names in RID order — position ``i`` is
        the read serving as RID ``n_index_reads + i``.
    """

    batch_index: int
    n_reads: int
    n_submissions: int
    wall_seconds: float
    result: PipelineResult
    query_names: list[str]


class AlignmentService:
    """Build-once, query-many alignment service over a resident k-mer index.

    Parameters
    ----------
    index_reads:
        The reference read set the index phase builds over.
    config:
        Pipeline parameters.  ``config.serve_batch_reads`` bounds batch
        coalescing; with ``backend == "process"`` the persistent rank pool
        is forced on (index residency requires surviving workers).
    topology:
        Simulated node/rank layout (defaults to one node with four ranks,
        like :class:`~repro.core.pipeline.DibellaPipeline`).

    Examples
    --------
    >>> service = AlignmentService(index_reads, config)     # doctest: +SKIP
    >>> service.submit(query_reads)                         # doctest: +SKIP
    0
    >>> records = service.drain()                           # doctest: +SKIP
    >>> records[0].result.alignment_table()                 # doctest: +SKIP
    """

    def __init__(self, index_reads: ReadSet,
                 config: PipelineConfig | None = None,
                 topology: Topology | None = None):
        if len(index_reads) == 0:
            raise ValueError("cannot serve against an empty index read set")
        config = config or PipelineConfig()
        if config.backend == "process" and not config.pool:
            config = config.with_pool(True)
        self.config = config
        self.index_reads = index_reads
        self.pipeline = DibellaPipeline(config=config, topology=topology)
        self.build_result: PipelineResult | None = None
        self.records: list[QueryBatchRecord] = []
        self._pending: list[tuple[int, list[Read]]] = []
        self._next_submission = 0
        self._closed = False

    def _check_open(self, what: str) -> None:
        if self._closed:
            raise RuntimeError(
                f"cannot {what}: this AlignmentService was shut down (its "
                "pooled ranks and resident index are gone); build a new one"
            )

    # -- recovery ------------------------------------------------------------

    def _run_recovering(
        self,
        run_once: Callable[[], PipelineResult],
        retry_counter: str | None = None,
    ) -> PipelineResult:
        """Run one SPMD phase, retrying on rank failure.

        A :class:`RankFailedError` means the runtime already reaped the run
        and (under the pool) evicted the broken pool; this wrapper clears the
        parent-side resident registries, backs off exponentially, and
        re-runs — up to ``config.serve_max_retries`` times, after which the
        last failure propagates.  A successful retried result gets the
        recovery evidence folded into its counters: *retry_counter* (attempts
        beyond the first), the runtime's ``rank_failures_detected`` /
        ``pool_respawns`` deltas across the whole call, and
        ``recovery_seconds`` (wall time lost before the winning attempt
        started, rounded up — at least 1 when any retry happened).
        """
        before = recovery_counters()
        first_start = time.perf_counter()
        retries = 0
        while True:
            attempt_start = time.perf_counter()
            try:
                result = run_once()
            except RankFailedError:
                if retries >= self.config.serve_max_retries:
                    raise
                retries += 1
                self.pipeline.invalidate_resident_state()
                time.sleep(min(2.0, 0.05 * (2 ** (retries - 1))))
                continue
            after = recovery_counters()
            counters = result.counters
            for key in ("rank_failures_detected", "pool_respawns"):
                delta = after[key] - before[key]
                if delta:
                    # spmdlint: disable=SL004 registered recovery counters
                    # (repro.core.counters); written here, outside the ranks.
                    counters[key] = counters.get(key, 0) + delta
            if retries:
                if retry_counter is not None:
                    counters[retry_counter] = (
                        counters.get(retry_counter, 0) + retries)
                counters["recovery_seconds"] = (
                    counters.get("recovery_seconds", 0)
                    + max(1, math.ceil(attempt_start - first_start)))
            return result

    # -- build phase ---------------------------------------------------------

    def build(self) -> PipelineResult:
        """Build the resident index now (idempotent; drain calls it lazily)."""
        self._check_open("build the index")
        if self.build_result is None:
            self.build_result = self._run_recovering(
                lambda: self.pipeline.build_index(self.index_reads))
        return self.build_result

    # -- admission -----------------------------------------------------------

    def submit(self, reads: ReadSet | list[Read]) -> int:
        """Queue one submission of query reads; returns its submission id.

        Nothing runs until :meth:`drain`.  Each read is renamed to
        ``q<submission>/<original name>`` so distinct submissions (and the
        index read set) never collide on names.
        """
        self._check_open("submit queries")
        read_list = list(reads)
        if not read_list:
            raise ValueError("cannot submit an empty query read set")
        submission = self._next_submission
        self._next_submission += 1
        renamed = [replace(read, name=f"q{submission}/{read.name}")
                   for read in read_list]
        self._pending.append((submission, renamed))
        return submission

    @property
    def pending_reads(self) -> int:
        """Total queued reads not yet drained."""
        return sum(len(reads) for _sub, reads in self._pending)

    # -- serve phase ---------------------------------------------------------

    def _take_batch(self) -> tuple[list[Read], int]:
        """Pop whole submissions up to ``serve_batch_reads`` reads.

        Always takes at least one submission, so an oversized submission
        becomes its own batch instead of deadlocking the queue.
        """
        bound = self.config.serve_batch_reads
        batch: list[Read] = []
        n_submissions = 0
        while self._pending:
            _sub, reads = self._pending[0]
            if batch and len(batch) + len(reads) > bound:
                break
            batch.extend(reads)
            n_submissions += 1
            self._pending.pop(0)
        return batch, n_submissions

    def drain(self) -> list[QueryBatchRecord]:
        """Run every queued submission through the pipeline; return new records.

        Builds the index first if no build has happened yet (that cost lands
        outside the per-batch latency records).  Queued submissions are
        coalesced into batches of at most ``config.serve_batch_reads`` reads
        and each batch is one SPMD run against the resident index.
        """
        self._check_open("drain queries")
        self.build()
        new_records: list[QueryBatchRecord] = []
        while self._pending:
            batch, n_submissions = self._take_batch()
            query_set = ReadSet(batch)
            start = time.perf_counter()
            # Retries happen inside the timed window: a recovered batch's
            # wall_seconds (and latency_stats) include the recovery cost.
            result = self._run_recovering(
                lambda: self.pipeline.run_query_batch(query_set),
                retry_counter="query_batch_retries",
            )
            wall_seconds = time.perf_counter() - start
            record = QueryBatchRecord(
                batch_index=len(self.records),
                n_reads=len(batch),
                n_submissions=n_submissions,
                wall_seconds=wall_seconds,
                result=result,
                query_names=query_set.names(),
            )
            self.records.append(record)
            new_records.append(record)
        return new_records

    # -- reporting -----------------------------------------------------------

    def latency_stats(self) -> dict[str, float]:
        """p50/p99 batch latency and reads-per-second over all drained batches."""
        if not self.records:
            return {"batches": 0.0, "reads": 0.0, "p50_seconds": 0.0,
                    "p99_seconds": 0.0, "reads_per_second": 0.0}
        walls = np.array([record.wall_seconds for record in self.records])
        total_reads = sum(record.n_reads for record in self.records)
        total_wall = float(walls.sum())
        return {
            "batches": float(len(self.records)),
            "reads": float(total_reads),
            "p50_seconds": float(np.percentile(walls, 50)),
            "p99_seconds": float(np.percentile(walls, 99)),
            "reads_per_second": (total_reads / total_wall) if total_wall > 0 else 0.0,
        }

    def shutdown(self) -> None:
        """Release the service's pooled ranks (and their resident indexes).

        Idempotent.  Afterwards :meth:`build`, :meth:`submit` and
        :meth:`drain` raise ``RuntimeError`` — the resident index is gone,
        so silently rebuilding on a "closed" service would hide a lifecycle
        bug in the caller.
        """
        from repro.mpisim.backend import shutdown_rank_pools

        self._closed = True
        shutdown_rank_pools()
