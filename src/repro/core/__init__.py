"""The diBELLA pipeline: configuration, stages, orchestration and results.

This is the paper's primary contribution — the four-stage distributed
overlap-and-alignment pipeline (§4):

1. Bloom-filter construction (singleton elimination, §6),
2. hash-table construction (k-mer → read id/position lists, §7),
3. overlap detection (Algorithm 1, §8),
4. read exchange and pairwise alignment (§9).

The public entry point is :func:`repro.core.driver.run_dibella`, which takes
a :class:`~repro.seq.records.ReadSet` and a
:class:`~repro.core.config.PipelineConfig`, runs the SPMD pipeline over the
simulated runtime, and returns a :class:`~repro.core.result.PipelineResult`
with the overlaps, the alignments, per-stage work counters and the
communication trace needed for the cross-platform performance projection.
"""

from repro.core.config import PipelineConfig
from repro.core.result import PipelineResult, StageRecord, RankReport
from repro.core.driver import run_dibella
from repro.core.pipeline import DibellaPipeline
from repro.core.service import AlignmentService, QueryBatchRecord

__all__ = [
    "PipelineConfig",
    "PipelineResult",
    "StageRecord",
    "RankReport",
    "run_dibella",
    "DibellaPipeline",
    "AlignmentService",
    "QueryBatchRecord",
]
