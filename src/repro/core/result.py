"""Result containers for a pipeline run.

A run produces three kinds of information:

* the scientific output — consolidated overlaps and their best alignments,
* per-stage *work counters* and *working-set sizes* per rank, which the
  performance model projects onto the paper's platforms,
* the run's communication trace (owned by the caller, referenced here).

``StageRecord`` implements the duck-typed protocol
:class:`repro.netmodel.projection.StageRecordLike`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import PipelineConfig
from repro.mpisim.topology import Topology
from repro.mpisim.tracing import CommTrace
from repro.overlap.pairs import OverlapRecord, OverlapTable

#: Canonical stage names, in pipeline order.
STAGE_NAMES: tuple[str, ...] = ("bloom", "hashtable", "overlap", "alignment")


@dataclass(frozen=True)
class StageRecord:
    """Per-stage measurements of one pipeline run.

    Attributes
    ----------
    name:
        Stage name (one of :data:`STAGE_NAMES`).
    items:
        Total number of "throughput items" — the unit the paper's per-stage
        figures use (k-mers for stages 1-2, retained k-mer occurrences for
        stage 3, alignments for stage 4).
    work_unit:
        Key into the compute cost model's rate table.
    work_per_rank:
        Work units processed by each rank (drives projected compute time and
        the load-imbalance metric).
    local_bytes_per_rank:
        Approximate per-rank working set, for the cache-effect model.
    exchange_phases:
        Trace phase labels carrying this stage's communication.
    includes_first_alltoallv:
        True for the stage that issued the run's first global Alltoallv (the
        Bloom-filter stage), which carries the MPI setup penalty of §10.
    wall_compute_seconds / wall_exchange_seconds:
        Actually measured per-rank wall times in this process — meaningful
        for single-node comparisons (Table 2), not for cross-platform
        projection.  ``wall_exchange_seconds`` measures *blocking*
        communication only, so under the double-buffered overlap exchange it
        is the **exposed** exchange time.
    wall_overlapped_seconds:
        Per-rank compute performed while an exchange superstep was in flight
        (latency hidden by double buffering); zero on the bulk-synchronous
        path.
    """

    name: str
    items: int
    work_unit: str
    work_per_rank: np.ndarray
    local_bytes_per_rank: np.ndarray
    exchange_phases: list[str]
    includes_first_alltoallv: bool = False
    wall_compute_seconds: np.ndarray = field(default_factory=lambda: np.zeros(0))
    wall_exchange_seconds: np.ndarray = field(default_factory=lambda: np.zeros(0))
    wall_overlapped_seconds: np.ndarray = field(default_factory=lambda: np.zeros(0))

    @property
    def total_work(self) -> float:
        """Sum of work units over ranks."""
        return float(np.asarray(self.work_per_rank).sum())

    def load_imbalance(self) -> float:
        """Work imbalance across ranks: max over mean (1.0 = perfect)."""
        work = np.asarray(self.work_per_rank, dtype=np.float64)
        if work.size == 0 or work.sum() == 0:
            return 1.0
        return float(work.max() / work.mean())

    def wall_load_imbalance(self) -> float:
        """Measured-time imbalance: max over mean of per-rank stage wall time.

        This is the paper's Figure 8 metric ("maximum per rank alignment
        stage times over average times across ranks").
        """
        total = np.asarray(self.wall_compute_seconds, dtype=np.float64) + np.asarray(
            self.wall_exchange_seconds, dtype=np.float64
        )
        overlapped = np.asarray(self.wall_overlapped_seconds, dtype=np.float64)
        if overlapped.size == total.size:
            # Overlapped compute is real per-rank wall time; without this the
            # double-buffered schedule would under-report a rank's load.
            total = total + overlapped
        if total.size == 0 or total.sum() == 0:
            return 1.0
        return float(total.max() / total.mean())


@dataclass
class RankReport:
    """Everything one rank returns from the SPMD pipeline program."""

    rank: int
    # stage name -> work units processed on this rank
    stage_work: dict[str, float]
    # stage name -> approximate working-set bytes on this rank
    stage_bytes: dict[str, float]
    # stage name -> measured compute / exchange wall seconds on this rank
    # (exchange = blocking calls only, i.e. the exposed time)
    stage_compute_seconds: dict[str, float]
    stage_exchange_seconds: dict[str, float]
    # scalar counters
    counters: dict[str, int]
    # consolidated overlaps owned by this rank (struct-of-arrays table;
    # iterates as OverlapRecord objects)
    overlaps: OverlapTable
    # alignment output: parallel arrays (one entry per accepted alignment)
    aln_rid_a: np.ndarray
    aln_rid_b: np.ndarray
    aln_score: np.ndarray
    aln_span_a: np.ndarray
    aln_span_b: np.ndarray
    # stage name -> compute seconds spent while an exchange was in flight
    # (the latency double buffering hid; zero without it)
    stage_overlapped_seconds: dict[str, float] = field(default_factory=dict)


@dataclass
class PipelineResult:
    """The complete output of one diBELLA run."""

    config: PipelineConfig
    topology: Topology
    trace: CommTrace
    stages: list[StageRecord]
    rank_reports: list[RankReport]
    counters: dict[str, int]
    wall_seconds: float

    # -- stage access ------------------------------------------------------------

    def stage(self, name: str) -> StageRecord:
        """Look up a stage record by name."""
        for record in self.stages:
            if record.name == name:
                return record
        raise KeyError(f"no stage named {name!r}")

    # -- scientific output ----------------------------------------------------------

    @property
    def n_overlap_pairs(self) -> int:
        """Number of distinct overlapping read pairs detected."""
        return self.counters.get("overlap_pairs", 0)

    @property
    def n_alignments(self) -> int:
        """Number of pairwise alignments computed (>= overlap pairs when using multiple seeds)."""
        return self.counters.get("alignments", 0)

    @property
    def n_retained_kmers(self) -> int:
        """Number of retained (reliable) k-mers across all partitions."""
        return self.counters.get("retained_kmers", 0)

    def overlaps(self) -> list[OverlapRecord]:
        """All consolidated overlap records, gathered across ranks."""
        out: list[OverlapRecord] = []
        for report in self.rank_reports:
            out.extend(report.overlaps)
        return out

    def overlap_tables(self) -> list[OverlapTable]:
        """Per-rank consolidated overlap tables (the flat representation)."""
        return [report.overlaps for report in self.rank_reports]

    def overlap_pairs(self) -> set[tuple[int, int]]:
        """The set of overlapping (rid_a, rid_b) pairs, rid_a < rid_b."""
        pairs: set[tuple[int, int]] = set()
        for table in self.overlap_tables():
            pairs.update(zip(table.rid_a.tolist(), table.rid_b.tolist()))
        return pairs

    def alignment_table(self) -> dict[str, np.ndarray]:
        """Accepted alignments as parallel arrays gathered across ranks."""
        def cat(attr: str) -> np.ndarray:
            arrays = [getattr(r, attr) for r in self.rank_reports]
            non_empty = [a for a in arrays if a.size]
            if not non_empty:
                return np.empty(0, dtype=np.int64)
            return np.concatenate(non_empty)

        return {
            "rid_a": cat("aln_rid_a"),
            "rid_b": cat("aln_rid_b"),
            "score": cat("aln_score"),
            "span_a": cat("aln_span_a"),
            "span_b": cat("aln_span_b"),
        }

    def best_alignment_scores(self) -> dict[tuple[int, int], int]:
        """Best alignment score per read pair."""
        table = self.alignment_table()
        best: dict[tuple[int, int], int] = {}
        for ra, rb, score in zip(table["rid_a"], table["rid_b"], table["score"]):
            key = (int(ra), int(rb))
            if score > best.get(key, -np.iinfo(np.int64).max):
                best[key] = int(score)
        return best

    # -- performance summaries ------------------------------------------------------

    def stage_wall_seconds(self) -> dict[str, dict[str, float]]:
        """Measured per-stage wall time (max over ranks), split compute /
        exposed-exchange / overlapped-compute."""
        out: dict[str, dict[str, float]] = {}
        for record in self.stages:
            compute = np.asarray(record.wall_compute_seconds, dtype=np.float64)
            exchange = np.asarray(record.wall_exchange_seconds, dtype=np.float64)
            overlapped = np.asarray(record.wall_overlapped_seconds, dtype=np.float64)
            out[record.name] = {
                "compute": float(compute.max(initial=0.0)),
                "exchange": float(exchange.max(initial=0.0)),
                "overlapped": float(overlapped.max(initial=0.0)),
            }
        return out

    def load_imbalance(self, stage: str = "alignment") -> float:
        """Measured-time load imbalance of a stage (Figure 8's metric)."""
        return self.stage(stage).wall_load_imbalance()

    def summary(self) -> dict[str, float]:
        """One-line summary of the run (counts plus wall time)."""
        return {
            "n_ranks": float(self.topology.n_ranks),
            "n_nodes": float(self.topology.n_nodes),
            "input_kmers": float(self.counters.get("input_kmers", 0)),
            "distinct_keys": float(self.counters.get("distinct_keys", 0)),
            "retained_kmers": float(self.counters.get("retained_kmers", 0)),
            "overlap_pairs": float(self.n_overlap_pairs),
            "alignments": float(self.n_alignments),
            "accepted_alignments": float(self.counters.get("accepted_alignments", 0)),
            "wall_seconds": self.wall_seconds,
        }
