"""Central registry of every pipeline counter name.

Every ``state.counters[...]`` key the stages, the superstep scheduler or the
pipeline driver may write is declared here, once, with a one-line meaning.
The registry is the single source of truth for three consumers:

* the **SL004 lint rule** (:mod:`repro.analysis`): a counter key assigned in
  ``stages.py``/``supersteps.py``/``pipeline.py`` that is not declared here
  is a lint error — counters can no longer drift into existence unnamed;
* the **backend-invariance tests** (``tests/test_backends.py``,
  ``tests/test_supersteps.py``): parity assertions iterate
  :data:`SCHEDULE_FLAG_COUNTERS` from here instead of hand-kept copies;
* **humans**: the meaning of a counter is looked up here, not reverse
  engineered from the assignment site.

Counters fall into two classes.  *Science counters* describe the computed
result (k-mers retained, overlaps found, alignments accepted) and must be
bit-identical across every runtime backend, schedule and encoding knob —
the parity matrices pin exactly that.  *Schedule flags*
(:data:`SCHEDULE_FLAG_COUNTERS`) describe which schedule produced the
result (double-buffered?, how many steps overlapped?) and legitimately
differ between schedules, so cross-schedule comparisons exclude them.
"""

from __future__ import annotations

__all__ = [
    "PIPELINE_COUNTERS",
    "RECOVERY_COUNTERS",
    "REGISTERED_COUNTERS",
    "SCHEDULE_FLAG_COUNTERS",
    "is_registered",
]

#: name -> one-line meaning.  Grouped by the stage that writes them.
PIPELINE_COUNTERS: dict[str, str] = {
    # -- pipeline driver ----------------------------------------------------
    "input_kmers": "total k-mer positions in the input reads (length sum - (k-1) per read)",
    "high_freq_threshold": "occurrence cutoff above which a k-mer is considered repetitive",
    "sketch_density_ppm": "retained k-mers per million input k-mer positions (minimizer ablation metric)",
    "query_reads": "reads submitted in the serve-phase query batch",
    # -- stage 1: bloom-filter cardinality pass -----------------------------
    "kmers_extracted_total": "canonical k-mers extracted before any sketching",
    "kmers_after_sketch": "k-mers surviving the seed-mode sketch (equals extracted for seed_mode=reliable)",
    "kmers_parsed": "k-mers parsed out of the streamed read batches",
    "kmers_received_bloom": "k-mers received by their owner rank in the bloom exchange",
    "bloom_payload_bytes": "bytes of k-mer codes moved by the bloom exchange",
    "distinct_keys": "distinct k-mer codes seen by the bloom pass",
    "bloom_nbytes": "bytes allocated to each rank's bloom filter",
    "bloom_stash_total_bytes": "bytes of repeated-k-mer stash accumulated across supersteps",
    "bloom_stash_peak_bytes": "peak bytes of the repeated-k-mer stash on any superstep",
    "hll_distinct_estimate": "HyperLogLog estimate of distinct k-mers (recorded once, on rank 0)",
    # -- stage 2: hash-table construction -----------------------------------
    "kmers_received_hashtable": "k-mer occurrences received by their owner in the hash-table exchange",
    "occurrences_stored": "k-mer occurrences inserted into the distributed hash table",
    "hashtable_payload_bytes": "bytes of (code, rid, pos) tuples moved by the hash-table exchange",
    "retained_kmers": "distinct reliable k-mers retained after frequency filtering",
    "retained_occurrences": "read occurrences retained under the reliable k-mers",
    "hash_table_shards": "code-range shards the retained table was built in (the memory bound)",
    "retained_table_peak_bytes": "peak bytes of any single retained-table shard",
    # -- stage 3: overlap detection -----------------------------------------
    "pairs_generated": "candidate read pairs generated from shared reliable k-mers",
    "overlap_pairs": "consolidated overlapping read pairs after dedup/seed selection",
    "alignment_tasks": "alignment tasks (pair + seed) handed to stage 4",
    "overlap_exchange_chunks": "supersteps the chunked overlap exchange was split into",
    "overlap_payload_bytes": "bytes of candidate-pair rows moved by the overlap exchange",
    # -- stage 4: alignment -------------------------------------------------
    "alignments": "pairwise alignments computed",
    "accepted_alignments": "alignments passing the score acceptance threshold",
    "dp_cells": "dynamic-programming cells evaluated across all alignments",
    "remote_reads_fetched": "read sequences fetched from remote owner ranks",
    "read_payload_raw_bytes": "ASCII-equivalent bytes of the served read payloads",
    "read_payload_wire_bytes": "bytes of read payloads that actually crossed the exchange",
    "alignment_wire_packing": "1 if read payloads shipped 2-bit packed, 0 for ASCII",
    "alignment_fetch_rounds": "fetch supersteps the alignment stage used",
    # -- per-rank read cache (ReadCache.counters) ---------------------------
    "read_cache_hits": "alignment read-cache hits (sequence already resident)",
    "read_cache_misses": "alignment read-cache misses (sequence fetched or faulted)",
    "read_cache_fetch_hits": "misses satisfied by the batched remote fetch",
    "read_cache_evictions": "LRU evictions under the read_cache_mb byte bound",
    "read_cache_evicted_bytes": "bytes evicted from the read cache under the byte bound",
    # -- serve phase: resident index build + query batches ------------------
    "index_build_runs": "index-build passes executed (0 when a resident index was reused)",
    "index_retained_kmers": "reliable k-mers in the built index",
    "index_retained_occurrences": "read occurrences in the built index",
    "index_occurrences": "occurrences scanned while building the index",
    "index_nbytes": "bytes of the resident index structures",
    "index_digest": "content digest of the resident index (staleness detection)",
    "index_reuse_hits": "query batches served from a resident index without rebuilding",
    "query_kmers_parsed": "k-mers parsed from the query-batch reads",
    "query_kmers_routed": "query k-mers routed to their index-owner ranks",
    "query_route_payload_bytes": "bytes moved by the query-routing exchange",
    "query_pairs_generated": "candidate query-target pairs generated from index hits",
    "query_cross_pairs": "query-target pairs crossing rank boundaries",
    # -- schedule flags (see SCHEDULE_FLAG_COUNTERS) ------------------------
    "bloom_exchange_double_buffered": "1 if the bloom exchange ran split-phase double-buffered",
    "bloom_steps_overlapped": "bloom supersteps whose compute overlapped a peer's exchange",
    "hashtable_exchange_double_buffered": "1 if the hash-table exchange ran split-phase double-buffered",
    "hashtable_steps_overlapped": "hash-table supersteps whose compute overlapped a peer's exchange",
    "overlap_exchange_double_buffered": "1 if the overlap exchange ran split-phase double-buffered",
    "overlap_chunks_overlapped": "overlap chunks whose compute overlapped a peer's exchange",
    "alignment_exchange_double_buffered": "1 if the alignment fetch ran split-phase double-buffered",
    "alignment_steps_overlapped": "alignment fetch rounds whose compute overlapped a peer's exchange",
    "query_route_double_buffered": "1 if the query-routing exchange ran split-phase double-buffered",
    "query_route_steps_overlapped": "query-routing supersteps whose compute overlapped a peer's exchange",
    # -- collective layout / rank placement (see SCHEDULE_FLAG_COUNTERS) ----
    "collective_groups": "rank groups the hierarchical collectives ran with (absent on flat runs)",
    "intragroup_bytes": "logical exchange bytes addressed to a destination in the sender's own group",
    "intergroup_bytes": "logical exchange bytes addressed across group boundaries",
    "leader_aggregation_seconds": "wall seconds leaders spent concatenating/splitting member payloads (ceil, >=1 per leader)",
    "ranks_pinned": "rank workers successfully pinned to a core via sched_setaffinity",
    "rank_pins_skipped": "rank pin attempts skipped (thread backend, restricted affinity, non-Linux)",
    # -- rank-failure recovery (see RECOVERY_COUNTERS) ----------------------
    "rank_failures_detected": "dead rank processes detected by the runtime during this call",
    "pool_respawns": "pool worker processes respawned after a failure eviction",
    "query_batch_retries": "extra attempts a recovered query batch needed beyond the first",
    "recovery_seconds": "wall seconds lost to failed attempts before the winning one (ceil, >=1 when retried)",
}

#: Every declared counter name (what the SL004 lint rule checks against).
REGISTERED_COUNTERS: frozenset[str] = frozenset(PIPELINE_COUNTERS)

#: Counters that describe the *schedule* rather than the science: they
#: legitimately differ between double-buffered and bulk-synchronous runs —
#: or between flat and hierarchical collective layouts — of the same input,
#: so cross-schedule parity comparisons exclude exactly this set (and
#: nothing else).
SCHEDULE_FLAG_COUNTERS: frozenset[str] = frozenset({
    "bloom_exchange_double_buffered",
    "bloom_steps_overlapped",
    "hashtable_exchange_double_buffered",
    "hashtable_steps_overlapped",
    "overlap_exchange_double_buffered",
    "overlap_chunks_overlapped",
    "alignment_exchange_double_buffered",
    "alignment_steps_overlapped",
    "query_route_double_buffered",
    "query_route_steps_overlapped",
    "collective_groups",
    "intragroup_bytes",
    "intergroup_bytes",
    "leader_aggregation_seconds",
    "ranks_pinned",
    "rank_pins_skipped",
})

#: Counters that describe *recovery from injected or real rank failures*
#: rather than the science: written by the service layer on results that
#: needed retries (absent from failure-free runs), so bit-identity
#: comparisons between a recovered run and a clean run exclude exactly this
#: set (and nothing else) on the recovered side.
RECOVERY_COUNTERS: frozenset[str] = frozenset({
    "rank_failures_detected",
    "pool_respawns",
    "query_batch_retries",
    "recovery_seconds",
})


def is_registered(name: str) -> bool:
    """Whether *name* is a declared pipeline counter."""
    return name in REGISTERED_COUNTERS
