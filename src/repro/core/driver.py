"""High-level one-call API: :func:`run_dibella`."""

from __future__ import annotations

from repro.core.config import PipelineConfig
from repro.core.pipeline import DibellaPipeline
from repro.core.result import PipelineResult
from repro.mpisim.topology import Topology
from repro.seq.records import ReadSet


def run_dibella(
    readset: ReadSet,
    config: PipelineConfig | None = None,
    n_nodes: int = 1,
    ranks_per_node: int = 4,
    backend: str | None = None,
    pool: bool | None = None,
    seed_mode: str | None = None,
    minimizer_window: int | None = None,
) -> PipelineResult:
    """Run the diBELLA pipeline on a read set.

    Parameters
    ----------
    readset:
        The long reads to overlap and align.
    config:
        Pipeline parameters; defaults are sensible for PacBio-like data
        (17-mers, x-drop alignment, one seed per pair).
    n_nodes / ranks_per_node:
        The simulated machine layout.  ``n_nodes`` is also the node count a
        later performance projection will assume; ``ranks_per_node`` only
        controls how many SPMD ranks the simulation uses per node.
    backend:
        Convenience override of ``config.backend`` — ``"thread"`` runs the
        ranks as threads, ``"process"`` as real processes exchanging typed
        buffers via shared memory (true multi-core compute).
    pool:
        Convenience override of ``config.pool`` — True keeps the rank
        processes (and each rank's read cache for this read set) alive
        across runs, amortising startup for repeated invocations.
    seed_mode / minimizer_window:
        Convenience overrides of ``config.seed_mode`` /
        ``config.minimizer_window`` — ``"minimizer"`` seeds stages 1-3 from
        the windowed-minimizer sketch instead of every canonical k-mer.

    Returns
    -------
    PipelineResult
        Overlaps, alignments, per-stage work counters and the communication
        trace.

    Examples
    --------
    >>> from repro.data import tiny_dataset, generate_dataset
    >>> from repro.core import run_dibella
    >>> dataset = generate_dataset(tiny_dataset())
    >>> result = run_dibella(dataset.reads, n_nodes=1, ranks_per_node=2)
    >>> result.n_overlap_pairs > 0
    True
    """
    topology = Topology(n_nodes=n_nodes, ranks_per_node=ranks_per_node)
    if backend is not None:
        config = (config or PipelineConfig()).with_backend(backend)
    if pool is not None:
        config = (config or PipelineConfig()).with_pool(pool)
    if seed_mode is not None or minimizer_window is not None:
        base = config or PipelineConfig()
        config = base.with_seed_mode(seed_mode or base.seed_mode, minimizer_window)
    pipeline = DibellaPipeline(config=config, topology=topology)
    return pipeline.run(readset)
