"""The unified superstep scheduler: one exchange engine for every stage.

All four pipeline stages are, at heart, the same loop: split the local work
into chunks, and for each chunk *generate* per-destination send buffers,
*publish* them with an ``alltoallv``, and *consume* what the peers sent.
:class:`SuperstepSchedule` owns that loop once — global step-count
agreement, the double-buffered split-phase schedule (with its
bulk-synchronous fallback), per-step trace accounting (inherited from the
communicator), and the exposed-vs-overlapped timer attribution — so the
stages only provide the produce/consume callbacks.

Two schedule shapes cover the pipeline:

* :meth:`SuperstepSchedule.run` — one exchange per superstep (stages 1-3:
  the k-mer exchanges and the chunked pair exchange);
* :meth:`SuperstepSchedule.run_two_hop` — two pipelined exchanges per
  superstep, a *request* hop answered by a *response* hop (stage 4's
  remote-read fetch: requests for batch ``i+1`` are in flight while batch
  ``i``'s reads are unpacked and aligned).

Double buffering is a schedule change, not a semantic one: the payloads a
consume callback receives, their order, and the trace volumes/call counts
are bit-identical to the bulk-synchronous path (pinned by
``tests/test_supersteps.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.mpisim.communicator import SimCommunicator

__all__ = ["StageTimer", "ScheduleOutcome", "SuperstepSchedule"]

#: Generate the per-destination send payloads of one superstep.  Called for
#: every step in ``[0, n_supersteps)`` including the padding steps past this
#: rank's local work, which must return empty payloads.
ProduceFn = Callable[[int], Sequence[Any]]

#: Consume one superstep's received payloads (in source-rank order).
ConsumeFn = Callable[[int, list[Any]], None]

#: Turn one superstep's received *request* payloads into the *response*
#: payloads served back (two-hop schedules only).
RespondFn = Callable[[int, list[Any]], Sequence[Any]]


@dataclass
class StageTimer:
    """Accumulates compute vs exchange wall time for one stage on one rank.

    ``exchange_seconds`` measures *blocking* communication calls only, so
    under a double-buffered schedule it is the **exposed** exchange time;
    ``overlapped_seconds`` measures compute performed while an exchange
    superstep was in flight (latency the double buffering hid).  The
    bulk-synchronous path never records overlapped time.
    """

    compute_seconds: float = 0.0
    exchange_seconds: float = 0.0
    overlapped_seconds: float = 0.0

    class _Section:
        def __init__(self, timer: "StageTimer", attr: str):
            self._timer = timer
            self._attr = attr
            self._start = 0.0

        def __enter__(self) -> "StageTimer._Section":
            self._start = time.perf_counter()
            return self

        def __exit__(self, *exc_info: object) -> None:
            elapsed = time.perf_counter() - self._start
            setattr(self._timer, self._attr,
                    getattr(self._timer, self._attr) + elapsed)

    def compute(self) -> "StageTimer._Section":
        """Context manager timing a local-compute section."""
        return self._Section(self, "compute_seconds")

    def exchange(self) -> "StageTimer._Section":
        """Context manager timing a (blocking) communication section."""
        return self._Section(self, "exchange_seconds")

    def overlapped(self) -> "StageTimer._Section":
        """Context manager timing compute overlapped with an in-flight exchange."""
        return self._Section(self, "overlapped_seconds")


@dataclass(frozen=True)
class ScheduleOutcome:
    """What one schedule run did (feeds the per-stage counters).

    Attributes
    ----------
    n_supersteps : int
        Globally agreed superstep count (the maximum over ranks' local step
        counts; every rank ran exactly this many exchanges per hop).
    steps_overlapped : int
        Number of steps whose produce callback ran while a previous step's
        exchange was still in flight — the latency the double buffer hid.
        Zero on the bulk-synchronous path.  A pure function of the step
        count and the schedule, so it is bit-identical across runtime
        backends.
    double_buffered : bool
        Whether the split-phase schedule actually ran (requested *and* there
        was at least one superstep).
    """

    n_supersteps: int
    steps_overlapped: int
    double_buffered: bool


class SuperstepSchedule:
    """Runs the generate → publish → consume superstep loop for one stage.

    Parameters
    ----------
    comm : SimCommunicator
        This rank's communicator.  Byte/call accounting happens inside its
        exchange primitives, so every superstep is traced identically
        whether or not it is split-phase.
    timer : StageTimer
        The stage's wall-clock timer; the schedule attributes produce time
        to ``compute`` (or ``overlapped`` when an exchange is in flight),
        blocking communication to ``exchange``, and consume time to
        ``compute``.
    n_local_steps : int
        This rank's local chunk count.  The schedule agrees on the global
        superstep count with one max-``allreduce`` (every rank must issue
        the same collectives), so ranks with fewer chunks pad with empty
        exchanges.
    double_buffer : bool, optional
        Run the split-phase schedule: step ``i+1`` is generated — and
        published via ``alltoallv_start`` — while the peers are still
        reading step ``i``'s payloads.  The engines double-buffer the
        in-flight supersteps, so at most :data:`~repro.mpisim.communicator.
        EXCHANGE_SLOTS` publishes are live per rank.  Off, every superstep
        is one blocking ``alltoallv``.
    label : str or None, optional
        Phase label stamped into the exchange op names
        (``"alltoallv[label]"``).  Ranks disagreeing on the label — two
        stages' schedules colliding — raise
        :class:`~repro.mpisim.errors.CollectiveMismatchError` instead of
        silently mixing payloads.
    agree_step_count : bool, optional
        Agree on the global superstep count with one max-``allreduce``
        (default).  Pass ``False`` only when ``n_local_steps`` is already
        provably identical on every rank (e.g. a fixed single-round
        schedule), which skips the extra collective.

    Notes
    -----
    The consume callback always sees superstep ``i``'s payloads before
    superstep ``i+1``'s, in source-rank order, regardless of the schedule —
    double buffering changes *when* work happens, never *what* is computed.
    """

    def __init__(
        self,
        comm: SimCommunicator,
        timer: StageTimer,
        n_local_steps: int,
        *,
        double_buffer: bool = True,
        label: str | None = None,
        agree_step_count: bool = True,
    ) -> None:
        self.comm = comm
        self.timer = timer
        self.label = label
        # Global step-count agreement: every rank must run the same number
        # of supersteps (deliberately untimed — schedule bookkeeping, not
        # stage exchange time).
        if agree_step_count:
            self.n_supersteps = int(comm.allreduce(int(n_local_steps), op="max"))
        else:
            self.n_supersteps = int(n_local_steps)
        self.double_buffer = bool(double_buffer)

    @property
    def double_buffered(self) -> bool:
        """True when the split-phase schedule actually runs."""
        return self.double_buffer and self.n_supersteps > 0

    # -- single-hop schedule -------------------------------------------------

    def run(self, produce: ProduceFn, consume: ConsumeFn) -> ScheduleOutcome:
        """Run every superstep: ``produce(i)`` → exchange → ``consume(i, received)``.

        Parameters
        ----------
        produce : ProduceFn
            ``produce(step)`` returns the per-destination payload list for
            superstep *step* (empty payloads for padding steps past this
            rank's local work).
        consume : ConsumeFn
            ``consume(step, received)`` processes the payloads received in
            superstep *step*, in source-rank order.

        Returns
        -------
        ScheduleOutcome
            The agreed superstep count and overlap accounting.
        """
        comm, timer = self.comm, self.timer
        n = self.n_supersteps
        overlapped = 0
        if self.double_buffered:
            with timer.compute():
                send = produce(0)
            with timer.exchange():
                handle = comm.alltoallv_start(send, label=self.label)
            for step in range(n):
                next_handle = None
                if step + 1 < n:
                    # Generate — and publish — step+1 while the peers are
                    # still reading step's payloads.
                    with timer.overlapped():
                        next_send = produce(step + 1)
                    overlapped += 1
                    with timer.exchange():
                        next_handle = comm.alltoallv_start(next_send,
                                                           label=self.label)
                with timer.exchange():
                    received = comm.alltoallv_finish(handle)
                with timer.compute():
                    consume(step, received)
                handle = next_handle
        else:
            for step in range(n):
                with timer.compute():
                    send = produce(step)
                with timer.exchange():
                    received = comm.alltoallv(send, label=self.label)
                with timer.compute():
                    consume(step, received)
        return ScheduleOutcome(n, overlapped, self.double_buffered)

    # -- two-hop (request/response) schedule -----------------------------------

    def run_two_hop(self, produce: ProduceFn, respond: RespondFn,
                    consume: ConsumeFn) -> ScheduleOutcome:
        """Run request/response supersteps, pipelining fetches ahead of consumes.

        Each superstep is two exchanges: the *request* hop ships
        ``produce(step)`` to the peers, and the *response* hop ships back
        ``respond(step, requests)``.  Double-buffered, step ``i+1``'s
        requests are published while step ``i``'s responses are still in
        flight, and ``consume(i, responses)`` runs with that next fetch
        outstanding — so (in the alignment stage) batch ``i`` aligns while
        batch ``i+1``'s remote reads are already on the wire.

        Parameters
        ----------
        produce : ProduceFn
            ``produce(step)`` returns the request payloads for superstep
            *step* (empty for padding steps).
        respond : RespondFn
            ``respond(step, requests)`` serves the received requests,
            returning the response payloads (one per requesting rank).
        consume : ConsumeFn
            ``consume(step, responses)`` processes the served payloads.

        Returns
        -------
        ScheduleOutcome
            The agreed superstep count and overlap accounting
            (``steps_overlapped`` counts request productions that ran with
            an exchange in flight, mirroring :meth:`run`).
        """
        comm, timer = self.comm, self.timer
        n = self.n_supersteps
        overlapped = 0
        request_label = f"{self.label}:request" if self.label else "request"
        response_label = f"{self.label}:response" if self.label else "response"
        if self.double_buffered:
            with timer.compute():
                send = produce(0)
            with timer.exchange():
                req_handle = comm.alltoallv_start(send, label=request_label)
            for step in range(n):
                with timer.exchange():
                    requests = comm.alltoallv_finish(req_handle)
                with timer.compute():
                    responses = respond(step, requests)
                with timer.exchange():
                    resp_handle = comm.alltoallv_start(responses,
                                                       label=response_label)
                next_req = None
                if step + 1 < n:
                    # Publish the next batch's requests while this batch's
                    # responses are still in flight.
                    with timer.overlapped():
                        send = produce(step + 1)
                    overlapped += 1
                    with timer.exchange():
                        next_req = comm.alltoallv_start(send,
                                                        label=request_label)
                with timer.exchange():
                    blocks = comm.alltoallv_finish(resp_handle)
                # Consuming (unpacking + aligning) batch ``step`` overlaps
                # batch ``step+1``'s in-flight fetch.
                section = timer.overlapped() if next_req is not None else timer.compute()
                with section:
                    consume(step, blocks)
                req_handle = next_req
        else:
            for step in range(n):
                with timer.compute():
                    send = produce(step)
                with timer.exchange():
                    requests = comm.alltoallv(send, label=request_label)
                with timer.compute():
                    responses = respond(step, requests)
                with timer.exchange():
                    blocks = comm.alltoallv(responses, label=response_label)
                with timer.compute():
                    consume(step, blocks)
        return ScheduleOutcome(n, overlapped, self.double_buffered)
