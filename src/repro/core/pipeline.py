"""Pipeline orchestration: partition, launch the SPMD program, assemble results."""

from __future__ import annotations

import time

import numpy as np

from repro.core.config import PipelineConfig
from repro.core.result import PipelineResult, RankReport, StageRecord, STAGE_NAMES
from repro.core.stages import run_rank_pipeline
from repro.io.partition import partition_reads
from repro.mpisim.runtime import spmd_run
from repro.mpisim.topology import Topology
from repro.mpisim.tracing import CommTrace
from repro.seq.records import ReadSet

#: Stage name -> (work unit for the cost model, exchange phase label).
_STAGE_METADATA: dict[str, tuple[str, str]] = {
    "bloom": ("kmers_bloom", "bloom_exchange"),
    "hashtable": ("kmers_hashtable", "hashtable_exchange"),
    "overlap": ("retained_kmers", "overlap_exchange"),
    "alignment": ("dp_cells", "alignment_exchange"),
}

#: Stage name -> counter providing the stage's "throughput items".
_STAGE_ITEM_COUNTER: dict[str, str] = {
    "bloom": "kmers_received_bloom",
    "hashtable": "kmers_received_hashtable",
    "overlap": "retained_kmers",
    "alignment": "alignments",
}


class DibellaPipeline:
    """The diBELLA distributed overlap-and-alignment pipeline.

    Parameters
    ----------
    config:
        Runtime parameters (see :class:`~repro.core.config.PipelineConfig`).
        ``config.backend`` selects the SPMD runtime backend: threads (the
        default) or one process per rank exchanging typed buffers through
        shared memory.
    topology:
        Simulated node/rank layout.  The number of simulated ranks bounds the
        thread/process count; the projection onto real platforms uses the
        node count plus the platform's own cores-per-node.
    cache_namespace:
        Optional qualifier folded into the pooled read-cache generation tag.
        Pooled runs normally share caches whenever the read set matches; a
        caller that wants pool *startup* amortisation without cross-run
        cache reuse (the bench harness — cache hits would change a
        measurement's exchange volumes) passes a fresh namespace per run, so
        the rank processes themselves evict the previous generation when
        they acquire their caches.  No effect without ``config.pool``.
    """

    def __init__(self, config: PipelineConfig | None = None,
                 topology: Topology | None = None,
                 cache_namespace: str | None = None):
        self.config = config or PipelineConfig()
        self.topology = topology or Topology.single_node(4)
        self.cache_namespace = cache_namespace

    def run(self, readset: ReadSet) -> PipelineResult:
        """Run the full pipeline on *readset* and return the assembled result."""
        if len(readset) == 0:
            raise ValueError("cannot run the pipeline on an empty read set")
        config = self.config
        topology = self.topology
        n_ranks = topology.n_ranks

        assignments = partition_reads(readset, n_ranks, strategy=config.partition_strategy)
        high_freq_threshold = config.resolve_high_freq_threshold(readset)
        trace = CommTrace(n_ranks)
        # Under the persistent rank pool, tag this run's read caches with the
        # data set's content digest so reused ranks hit across runs over the
        # same reads — and never across different read sets.  A cache
        # namespace qualifies the tag so the owner of this pipeline can opt
        # out of cross-run reuse (each distinct tag evicts the previous
        # generation inside the rank processes).
        cache_tag = readset.fingerprint() if config.pool else None
        if cache_tag is not None and self.cache_namespace is not None:
            cache_tag = f"{cache_tag}:{self.cache_namespace}"

        start = time.perf_counter()
        reports: list[RankReport] = spmd_run(
            n_ranks,
            run_rank_pipeline,
            readset,
            assignments,
            config,
            high_freq_threshold,
            topology=topology,
            trace=trace,
            backend=config.backend,
            pool=config.pool,
            cache_tag=cache_tag,
        )
        wall_seconds = time.perf_counter() - start

        stages = self._build_stage_records(reports, n_ranks)
        counters = self._aggregate_counters(reports)
        counters["input_kmers"] = counters.get("kmers_parsed", 0)
        counters["high_freq_threshold"] = high_freq_threshold

        return PipelineResult(
            config=config,
            topology=topology,
            trace=trace,
            stages=stages,
            rank_reports=reports,
            counters=counters,
            wall_seconds=wall_seconds,
        )

    # -- assembly helpers -----------------------------------------------------------

    @staticmethod
    def _build_stage_records(reports: list[RankReport], n_ranks: int) -> list[StageRecord]:
        records: list[StageRecord] = []
        for stage in STAGE_NAMES:
            work_unit, exchange_phase = _STAGE_METADATA[stage]
            item_counter = _STAGE_ITEM_COUNTER[stage]
            work = np.array([r.stage_work.get(stage, 0.0) for r in reports])
            local_bytes = np.array([r.stage_bytes.get(stage, 0.0) for r in reports])
            compute = np.array([r.stage_compute_seconds.get(stage, 0.0) for r in reports])
            exchange = np.array([r.stage_exchange_seconds.get(stage, 0.0) for r in reports])
            overlapped = np.array([r.stage_overlapped_seconds.get(stage, 0.0)
                                   for r in reports])
            items = int(sum(r.counters.get(item_counter, 0) for r in reports))
            records.append(
                StageRecord(
                    name=stage,
                    items=items,
                    work_unit=work_unit,
                    work_per_rank=work,
                    local_bytes_per_rank=local_bytes,
                    exchange_phases=[exchange_phase],
                    includes_first_alltoallv=(stage == "bloom"),
                    wall_compute_seconds=compute,
                    wall_exchange_seconds=exchange,
                    wall_overlapped_seconds=overlapped,
                )
            )
        return records

    @staticmethod
    def _aggregate_counters(reports: list[RankReport]) -> dict[str, int]:
        counters: dict[str, int] = {}
        for report in reports:
            for key, value in report.counters.items():
                counters[key] = counters.get(key, 0) + int(value)
        return counters
