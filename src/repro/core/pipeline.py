"""Pipeline orchestration: partition, launch the SPMD program, assemble results."""

from __future__ import annotations

import time

import numpy as np

from repro.core.config import PipelineConfig
from repro.core.result import PipelineResult, RankReport, StageRecord, STAGE_NAMES
from repro.core.stages import (
    reset_persistent_read_caches,
    reset_resident_indexes,
    run_index_build,
    run_query_batch,
    run_rank_pipeline,
)
from repro.io.partition import partition_reads
from repro.mpisim.faults import FaultPlan, RunFaults
from repro.mpisim.runtime import spmd_run
from repro.mpisim.topology import Topology, assign_pin_cores, resolve_rank_groups
from repro.mpisim.tracing import CommTrace
from repro.seq.records import ReadSet

#: Stage name -> (work unit for the cost model, exchange phase label).
_STAGE_METADATA: dict[str, tuple[str, str]] = {
    "bloom": ("kmers_bloom", "bloom_exchange"),
    "hashtable": ("kmers_hashtable", "hashtable_exchange"),
    "overlap": ("retained_kmers", "overlap_exchange"),
    "alignment": ("dp_cells", "alignment_exchange"),
    "query_route": ("query_kmers", "query_route_exchange"),
}

#: Stage name -> counter providing the stage's "throughput items".
_STAGE_ITEM_COUNTER: dict[str, str] = {
    "bloom": "kmers_received_bloom",
    "hashtable": "kmers_received_hashtable",
    "overlap": "retained_kmers",
    "alignment": "alignments",
    "query_route": "query_kmers_routed",
}

#: Stage sequences of the phase-split runs (the one-shot run uses
#: ``STAGE_NAMES``).  The build phase only runs the stage-2 exchange; a
#: query batch routes its k-mers, reuses the overlap/alignment machinery,
#: and — only when a rank lost its resident index — re-runs the hash-table
#: build, whose record then shows the rebuild cost (all-zero otherwise).
_INDEX_BUILD_STAGES: tuple[str, ...] = ("hashtable",)
_QUERY_BATCH_STAGES: tuple[str, ...] = ("hashtable", "query_route", "overlap",
                                        "alignment")


class DibellaPipeline:
    """The diBELLA distributed overlap-and-alignment pipeline.

    Parameters
    ----------
    config:
        Runtime parameters (see :class:`~repro.core.config.PipelineConfig`).
        ``config.backend`` selects the SPMD runtime backend: threads (the
        default) or one process per rank exchanging typed buffers through
        shared memory.
    topology:
        Simulated node/rank layout.  The number of simulated ranks bounds the
        thread/process count; the projection onto real platforms uses the
        node count plus the platform's own cores-per-node.
    cache_namespace:
        Optional qualifier folded into the pooled read-cache generation tag.
        Pooled runs normally share caches whenever the read set matches; a
        caller that wants pool *startup* amortisation without cross-run
        cache reuse (the bench harness — cache hits would change a
        measurement's exchange volumes) passes a fresh namespace per run, so
        the rank processes themselves evict the previous generation when
        they acquire their caches.  No effect without ``config.pool``.
    """

    def __init__(self, config: PipelineConfig | None = None,
                 topology: Topology | None = None,
                 cache_namespace: str | None = None):
        self.config = config or PipelineConfig()
        self.topology = topology or Topology.single_node(4)
        self.cache_namespace = cache_namespace
        # Serve-phase handle, set by build_index: the index read set and the
        # resident-index generation tag query batches run against.
        self._index_readset: ReadSet | None = None
        self._index_tag: str | None = None
        # One FaultPlan per pipeline: its run-binding cursor hands each
        # spmd_run launch a stable ordinal (build = 0, first batch = 1, ...),
        # so retried runs are fault-free unless the plan targets them.
        self._fault_plan: FaultPlan | None = (
            FaultPlan.parse(self.config.fault_plan)
            if self.config.fault_plan else None
        )

    def _next_run_faults(self) -> RunFaults | None:
        """The fault set of the next SPMD launch (None without a plan)."""
        if self._fault_plan is None:
            return None
        return self._fault_plan.bind_next_run()

    def _run_topology(self) -> Topology:
        """The topology SPMD runs actually launch with.

        With ``collective="hier"`` the configured topology gains a rank→group
        map (explicit ``rank_groups``, else one group per detected physical
        socket — see :func:`~repro.mpisim.topology.resolve_rank_groups`);
        with ``pin_ranks`` on the process backend it gains a rank→core pin
        map placing each group on its own core slice.  The flat engine and
        thread-backend runs keep the topology untouched, so existing
        behaviour is bit-for-bit unchanged.
        """
        topology = self.topology
        config = self.config
        if config.collective == "hier":
            n_groups = resolve_rank_groups(config.rank_groups, topology.n_ranks)
            topology = topology.with_groups(n_groups)
        if config.pin_ranks and config.backend == "process":
            topology = topology.with_pin_cores(assign_pin_cores(topology))
        return topology

    def invalidate_resident_state(self) -> None:
        """Drop parent-process resident registries after a failed SPMD run.

        Thread-backend runs keep read caches and resident index shards in
        this process's registries; after a rank failure mid-build those can
        hold partially-populated generations, so recovery clears them and
        the retry rebuilds from scratch.  (Process-pool runs hold the
        equivalents inside the evicted worker processes — eviction already
        discarded them.)
        """
        reset_persistent_read_caches()
        reset_resident_indexes()

    def run(self, readset: ReadSet) -> PipelineResult:
        """Run the full pipeline on *readset* and return the assembled result."""
        if len(readset) == 0:
            raise ValueError("cannot run the pipeline on an empty read set")
        config = self.config
        topology = self._run_topology()
        n_ranks = topology.n_ranks

        assignments = partition_reads(readset, n_ranks, strategy=config.partition_strategy)
        high_freq_threshold = config.resolve_high_freq_threshold(readset)
        trace = CommTrace(n_ranks)
        # Under the persistent rank pool, tag this run's read caches with the
        # data set's content digest so reused ranks hit across runs over the
        # same reads — and never across different read sets.  A cache
        # namespace qualifies the tag so the owner of this pipeline can opt
        # out of cross-run reuse (each distinct tag evicts the previous
        # generation inside the rank processes).
        cache_tag = readset.fingerprint() if config.pool else None
        if cache_tag is not None and self.cache_namespace is not None:
            cache_tag = f"{cache_tag}:{self.cache_namespace}"

        start = time.perf_counter()
        reports: list[RankReport] = spmd_run(
            n_ranks,
            run_rank_pipeline,
            readset,
            assignments,
            config,
            high_freq_threshold,
            topology=topology,
            trace=trace,
            backend=config.backend,
            pool=config.pool,
            sanitize=config.sanitize,
            faults=self._next_run_faults(),
            cache_tag=cache_tag,
        )
        wall_seconds = time.perf_counter() - start

        stages = self._build_stage_records(reports, n_ranks)
        counters = self._aggregate_counters(reports)
        counters["input_kmers"] = counters.get("kmers_parsed", 0)
        counters["high_freq_threshold"] = high_freq_threshold
        self._record_sketch_density(counters)
        self._record_collective_groups(counters, topology)

        return PipelineResult(
            config=config,
            topology=topology,
            trace=trace,
            stages=stages,
            rank_reports=reports,
            counters=counters,
            wall_seconds=wall_seconds,
        )

    # -- build / serve phases -------------------------------------------------------

    def _pool_cache_tag(self, base: str) -> str | None:
        """The persistent read-cache tag for a run (None without the pool)."""
        if not self.config.pool:
            return None
        if self.cache_namespace is not None:
            return f"{base}:{self.cache_namespace}"
        return base

    def build_index(self, readset: ReadSet) -> PipelineResult:
        """Build phase: construct the sharded k-mer index and keep it resident.

        Runs :func:`~repro.core.stages.run_index_build` on every rank: the
        stage-2 occurrence exchange over *readset* with the Bloom candidate
        gate lifted, drained into a per-rank
        :class:`~repro.kmers.hashtable.ShardedKmerIndex` published in the
        resident-index registry.  Under the rank pool (process backend) the
        worker processes stay parked afterwards, holding their index shards
        — subsequent :meth:`run_query_batch` calls touch zero index-build
        code paths (counter ``index_reuse_hits``).

        The index generation tag folds in every parameter the resident
        layout depends on — the read-set fingerprint, k, the shard count and
        the rank count — so a pooled rank reused with different parameters
        rebuilds instead of serving a stale index.

        Returns the build's :class:`PipelineResult` (hash-table stage record
        and the ``index_*`` counters; no overlaps or alignments).
        """
        if len(readset) == 0:
            raise ValueError("cannot build an index from an empty read set")
        config = self.config
        topology = self._run_topology()
        n_ranks = topology.n_ranks

        assignments = partition_reads(readset, n_ranks, strategy=config.partition_strategy)
        high_freq_threshold = config.resolve_high_freq_threshold(readset)
        index_tag = (f"{readset.fingerprint()}:k{config.kmer.k}"
                     f":s{config.hash_table_shards}:r{n_ranks}"
                     f":{self._seed_mode_tag(config)}")
        trace = CommTrace(n_ranks)

        start = time.perf_counter()
        reports: list[RankReport] = spmd_run(
            n_ranks,
            run_index_build,
            readset,
            assignments,
            config,
            high_freq_threshold,
            index_tag,
            topology=topology,
            trace=trace,
            backend=config.backend,
            pool=config.pool,
            sanitize=config.sanitize,
            faults=self._next_run_faults(),
            cache_tag=self._pool_cache_tag(index_tag),
        )
        wall_seconds = time.perf_counter() - start

        self._index_readset = readset
        self._index_tag = index_tag

        stages = self._build_stage_records(reports, n_ranks,
                                           stage_names=_INDEX_BUILD_STAGES)
        counters = self._aggregate_counters(reports)
        counters["high_freq_threshold"] = high_freq_threshold
        self._record_sketch_density(counters)
        self._record_collective_groups(counters, topology)

        return PipelineResult(
            config=config,
            topology=topology,
            trace=trace,
            stages=stages,
            rank_reports=reports,
            counters=counters,
            wall_seconds=wall_seconds,
        )

    def run_query_batch(self, query_reads: ReadSet) -> PipelineResult:
        """Serve phase: align one batch of query reads against the resident index.

        Requires a prior :meth:`build_index` on this pipeline.  The batch's
        k-mers are routed to the owning index shards on the superstep
        scheduler, merged into the resident table per shard, expanded into
        **query-vs-index** pairs only, and aligned with the unmodified
        two-hop fetch + x-drop stage.  The result's alignments are
        bit-identical to running the one-shot pipeline over (index reads ∪
        query batch) and keeping only its query-vs-index alignments; query
        RIDs in the result are ``n_index_reads + position`` within
        *query_reads*.

        Read names must not collide with the index read set (the
        :class:`~repro.core.service.AlignmentService` front-end prefixes
        submissions to guarantee this).
        """
        if self._index_readset is None or self._index_tag is None:
            raise RuntimeError(
                "run_query_batch requires build_index first: the serve phase "
                "aligns queries against the resident index of a build phase"
            )
        if len(query_reads) == 0:
            raise ValueError("cannot serve an empty query batch")
        config = self.config
        topology = self._run_topology()
        n_ranks = topology.n_ranks
        index_readset = self._index_readset
        n_index_reads = len(index_readset)

        try:
            combined = ReadSet(list(index_readset) + list(query_reads))
        except ValueError as exc:
            raise ValueError(
                "query read names collide with the index read set (or each "
                "other); submit queries through AlignmentService, which "
                "prefixes each submission's names"
            ) from exc

        # Partition the *combined* set exactly as a one-shot run over it
        # would: the union partition defines both the serve-phase read
        # ownership and the arrival-order emulation that makes the served
        # alignments bit-identical to that run's query-vs-index subset.
        assignments = partition_reads(combined, n_ranks,
                                      strategy=config.partition_strategy)
        high_freq_threshold = config.resolve_high_freq_threshold(combined)
        trace = CommTrace(n_ranks)

        start = time.perf_counter()
        reports: list[RankReport] = spmd_run(
            n_ranks,
            run_query_batch,
            combined,
            assignments,
            n_index_reads,
            config,
            high_freq_threshold,
            self._index_tag,
            topology=topology,
            trace=trace,
            backend=config.backend,
            pool=config.pool,
            sanitize=config.sanitize,
            faults=self._next_run_faults(),
            # Query runs share the *index* generation's read caches: index
            # reads stay warm across batches, and each batch's query RIDs
            # are evicted on entry (RIDs >= n_index_reads are reused).
            cache_tag=self._pool_cache_tag(self._index_tag),
        )
        wall_seconds = time.perf_counter() - start

        stages = self._build_stage_records(reports, n_ranks,
                                           stage_names=_QUERY_BATCH_STAGES)
        counters = self._aggregate_counters(reports)
        counters["high_freq_threshold"] = high_freq_threshold
        counters["query_reads"] = len(query_reads)
        self._record_sketch_density(counters)
        self._record_collective_groups(counters, topology)

        return PipelineResult(
            config=config,
            topology=topology,
            trace=trace,
            stages=stages,
            rank_reports=reports,
            counters=counters,
            wall_seconds=wall_seconds,
        )

    # -- assembly helpers -----------------------------------------------------------

    @staticmethod
    def _build_stage_records(
        reports: list[RankReport], n_ranks: int,
        stage_names: tuple[str, ...] = tuple(STAGE_NAMES),
    ) -> list[StageRecord]:
        records: list[StageRecord] = []
        for stage in stage_names:
            work_unit, exchange_phase = _STAGE_METADATA[stage]
            item_counter = _STAGE_ITEM_COUNTER[stage]
            work = np.array([r.stage_work.get(stage, 0.0) for r in reports])
            local_bytes = np.array([r.stage_bytes.get(stage, 0.0) for r in reports])
            compute = np.array([r.stage_compute_seconds.get(stage, 0.0) for r in reports])
            exchange = np.array([r.stage_exchange_seconds.get(stage, 0.0) for r in reports])
            overlapped = np.array([r.stage_overlapped_seconds.get(stage, 0.0)
                                   for r in reports])
            items = int(sum(r.counters.get(item_counter, 0) for r in reports))
            records.append(
                StageRecord(
                    name=stage,
                    items=items,
                    work_unit=work_unit,
                    work_per_rank=work,
                    local_bytes_per_rank=local_bytes,
                    exchange_phases=[exchange_phase],
                    includes_first_alltoallv=(stage == "bloom"),
                    wall_compute_seconds=compute,
                    wall_exchange_seconds=exchange,
                    wall_overlapped_seconds=overlapped,
                )
            )
        return records

    @staticmethod
    def _aggregate_counters(reports: list[RankReport]) -> dict[str, int]:
        counters: dict[str, int] = {}
        for report in reports:
            for key, value in report.counters.items():
                # spmdlint: disable=SL004 cross-rank sum of already-written
                # counters; keys are checked at their write sites.
                counters[key] = counters.get(key, 0) + int(value)
        return counters

    @staticmethod
    def _record_collective_groups(counters: dict[str, int],
                                  topology: Topology) -> None:
        """Record the group count a hierarchical run actually used.

        Written only when the run topology carries a group map, so flat
        runs have no ``collective_groups`` key at all — the counter is a
        schedule flag (excluded from cross-layout parity), not science.
        """
        if topology.groups is not None:
            counters["collective_groups"] = topology.n_groups

    @staticmethod
    def _seed_mode_tag(config: PipelineConfig) -> str:
        """The index-tag segment identifying the seeding front-end.

        A resident index built in one seed mode must never serve queries
        sketched in another (or with another window) — the merged occurrence
        streams would disagree — so the sketch parameters are part of the
        index generation tag, like k and the shard count.
        """
        if config.seed_mode == "minimizer":
            return f"minw{config.minimizer_window}"
        return "reliable"

    @staticmethod
    def _record_sketch_density(counters: dict[str, int]) -> None:
        """Derive the reported sketch density from the summed stream counters.

        ``sketch_density_ppm`` = surviving k-mers per million extracted
        (1,000,000 in reliable mode, ~2e6/(w+1) in minimizer mode).  Computed
        after cross-rank aggregation from the two summed totals, so it is an
        exact function of the sketched stream — identical across backends
        and schedules, preserving the counter-parity invariant.
        """
        extracted = counters.get("kmers_extracted_total", 0)
        if extracted > 0:
            counters["sketch_density_ppm"] = int(round(
                1_000_000 * counters.get("kmers_after_sketch", 0) / extracted))
