"""Command-line interface: ``dibella``.

Subcommands
-----------
``simulate``
    Generate a synthetic PacBio-like data set and write it as FASTQ.
``run``
    Run the overlap + alignment pipeline on a FASTQ file (or a named
    synthetic preset) and print the run summary; optionally write the
    detected overlaps to a TSV file.
``serve``
    Build/serve session: build the resident k-mer index over a slice of the
    input, then drain the remaining reads through the
    :class:`~repro.core.service.AlignmentService` as repeated query batches,
    printing per-batch latency and reuse counters.
``query``
    One query batch: build the index from ``--index`` and align the
    ``--queries`` reads against it (the serve phase without the admission
    loop).
``experiment``
    Regenerate one of the paper's tables/figures and print its rows.
``platforms``
    Print the Table 1 platform registry.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.bench import experiments as exp
from repro.bench.reporting import format_table
from repro.core.config import PipelineConfig
from repro.core.driver import run_dibella
from repro.core.service import AlignmentService
from repro.mpisim.topology import Topology
from repro.data.datasets import (
    ecoli100x_like,
    ecoli30x_like,
    generate_dataset,
    tiny_dataset,
)
from repro.io.fastq import read_fastq, write_fastq
from repro.overlap.seeds import SeedStrategy
from repro.seq.kmer import KmerSpec

_PRESETS = {
    "tiny": tiny_dataset,
    "ecoli30x": ecoli30x_like,
    "ecoli100x": ecoli100x_like,
}

_EXPERIMENTS = {
    "table1": exp.table1_platforms,
    "fig3": exp.figure3_bloom_scaling,
    "fig4": exp.figure4_bloom_efficiency_aws,
    "fig5": exp.figure5_hashtable_scaling,
    "fig6": exp.figure6_overlap_scaling,
    "fig7": exp.figure7_alignment_scaling,
    "fig8": exp.figure8_load_imbalance,
    "fig9": exp.figure9_breakdown_30x,
    "fig10": exp.figure10_breakdown_100x,
    "fig11": exp.figure11_overall_efficiency,
    "fig12": exp.figure12_exchange_efficiency,
    "fig13": exp.figure13_pipeline_performance,
    "table2": exp.table2_single_node,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dibella",
        description="diBELLA reproduction: distributed long-read overlap and alignment",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="generate a synthetic data set as FASTQ")
    sim.add_argument("--preset", choices=sorted(_PRESETS), default="tiny")
    sim.add_argument("--scale", type=float, default=0.01,
                     help="genome scale factor for the E. coli presets")
    sim.add_argument("--output", required=True, help="output FASTQ path")

    run = sub.add_parser("run", help="run the overlap+alignment pipeline")
    run.add_argument("--input", help="input FASTQ file (omit to use --preset)")
    run.add_argument("--preset", choices=sorted(_PRESETS), default="tiny")
    run.add_argument("--scale", type=float, default=0.01)
    run.add_argument("-k", type=int, default=17, help="k-mer length")
    run.add_argument("--nodes", type=int, default=1, help="simulated node count")
    run.add_argument("--ranks-per-node", type=int, default=2)
    run.add_argument("--seed-strategy", choices=["one", "d1000", "dk"], default="one")
    run.add_argument("--seed-mode", choices=["reliable", "minimizer"], default=None,
                     help="seeding front-end of stages 1-3: 'reliable' (the "
                          "paper) exchanges every canonical k-mer; 'minimizer' "
                          "keeps only the minimum-hash k-mer per window of "
                          "--minimizer-window, cutting stage 1-3 wire bytes "
                          "and table memory ~w/2-x at a small recall cost "
                          "(DIBELLA_SEED_MODE has the same effect)")
    run.add_argument("--minimizer-window", type=int, default=None,
                     help="minimizer window length w in k-mers (default 11; "
                          "1 = keep every k-mer; ignored in reliable mode; "
                          "DIBELLA_MINIMIZER_WINDOW has the same effect)")
    run.add_argument("--backend", choices=["thread", "process"], default=None,
                     help="SPMD runtime backend: threads (default) or one process "
                          "per rank exchanging typed buffers via shared memory")
    run.add_argument("--collective", choices=["flat", "hier"], default=None,
                     help="all-to-all layout: 'flat' publishes one segment per "
                          "rank pair (the paper's O(R^2) pattern); 'hier' runs "
                          "gather-to-leader -> leader-to-leader -> scatter over "
                          "rank groups, cutting cross-group segments to O(G^2) "
                          "(see docs/topology.md; output is bit-identical; "
                          "DIBELLA_COLLECTIVE has the same effect)")
    run.add_argument("--rank-groups", type=int, default=None,
                     help="rank-group count G of --collective hier; 0 (the "
                          "default) auto-detects one group per physical CPU "
                          "socket (DIBELLA_RANK_GROUPS has the same effect)")
    run.add_argument("--pin-ranks", action="store_true", default=None,
                     help="pin each process-backend rank worker to a core of "
                          "its group via sched_setaffinity; graceful no-op "
                          "where affinity is restricted (DIBELLA_PIN_RANKS=1 "
                          "has the same effect)")
    run.add_argument("--exchange-chunk-mb", type=float, default=None,
                     help="per-rank wire budget (MiB) of each overlap-exchange "
                          "superstep; 0 disables chunking (one monolithic "
                          "Alltoallv); default honours DIBELLA_EXCHANGE_CHUNK_MB, "
                          "else 8")
    run.add_argument("--batch-reads", type=int, default=None,
                     help="local reads parsed per streaming superstep in the "
                          "k-mer stages (the memory bound of the streaming "
                          "pipeline; DIBELLA_BATCH_READS has the same effect, "
                          "default 2048)")
    run.add_argument("--sanitize", action="store_true", default=None,
                     help="arm the runtime sanitizer: cross-rank collective "
                          "congruence checks, split-phase segment lifecycle "
                          "guards and a hang watchdog (DIBELLA_SANITIZE=1 has "
                          "the same effect; output is bit-identical)")
    run.add_argument("--pool", action="store_true", default=None,
                     help="acquire ranks from the persistent rank pool (processes "
                          "parked on a barrier between runs; amortises startup and "
                          "keeps per-rank read caches across runs; DIBELLA_POOL=1 "
                          "has the same effect)")
    run.add_argument("--no-double-buffer", action="store_true",
                     help="disable double buffering of every stage's exchange "
                          "supersteps (bulk-synchronous schedule; output is "
                          "bit-identical either way)")
    run.add_argument("--double-buffer-stages", default=None, metavar="STAGES",
                     help="comma-separated stages to double-buffer (subset of "
                          "bloom,hashtable,overlap,alignment); the rest run "
                          "bulk-synchronous.  An empty value disables double "
                          "buffering everywhere; omit the flag to apply the "
                          "global setting uniformly "
                          "(DIBELLA_DOUBLE_BUFFER_STAGES has the same effect)")
    run.add_argument("--align-batch-tasks", type=int, default=None,
                     help="alignment tasks per read-fetch superstep: batches "
                          "the stage-4 request/response rounds so batch i+1's "
                          "remote reads are in flight while batch i aligns; "
                          "0 (the default) fetches everything in one round "
                          "(DIBELLA_ALIGN_BATCH_TASKS has the same effect)")
    run.add_argument("--no-wire-packing", action="store_true",
                     help="ship alignment-stage read blocks as ASCII instead of "
                          "2-bit packed (4 bases/byte); output is bit-identical "
                          "either way (DIBELLA_WIRE_PACKING=0 has the same effect)")
    run.add_argument("--hash-shards", type=int, default=None,
                     help="number of k-mer code-range shards the retained-k-mer "
                          "table is built in; >1 streams the hash-table/overlap "
                          "boundary one shard at a time, bounding peak table "
                          "memory (default honours DIBELLA_HASH_SHARDS, else 4)")
    run.add_argument("--read-cache-mb", type=float, default=None,
                     help="byte-capacity LRU bound (MiB) of each rank's "
                          "alignment-stage read cache; 0 (the default) is "
                          "unbounded (DIBELLA_READ_CACHE_MB has the same effect)")
    run.add_argument("--fault-plan", default=None, metavar="PLAN",
                     help="deterministic fault plan injected into the run, e.g. "
                          "'kill:rank=2:step=3' (grammar in docs/fault-tolerance.md; "
                          "kill faults need --backend process; "
                          "DIBELLA_FAULT_PLAN has the same effect)")
    run.add_argument("--pool-stats", action="store_true",
                     help="print per-pool usage statistics (runs served, forks "
                          "amortised) after the run; only meaningful with --pool")
    run.add_argument("--overlaps-out", help="write detected overlaps to this TSV file")

    serve = sub.add_parser(
        "serve", help="build a resident index, then serve repeated query batches")
    serve.add_argument("--input", help="input FASTQ file (omit to use --preset)")
    serve.add_argument("--preset", choices=sorted(_PRESETS), default="tiny")
    serve.add_argument("--scale", type=float, default=0.01)
    serve.add_argument("-k", type=int, default=17, help="k-mer length")
    serve.add_argument("--nodes", type=int, default=1)
    serve.add_argument("--ranks-per-node", type=int, default=2)
    serve.add_argument("--backend", choices=["thread", "process"], default=None)
    serve.add_argument("--collective", choices=["flat", "hier"], default=None,
                       help="all-to-all layout for every build/query run "
                            "(see docs/topology.md; DIBELLA_COLLECTIVE has "
                            "the same effect)")
    serve.add_argument("--rank-groups", type=int, default=None,
                       help="rank-group count of --collective hier; 0 = auto "
                            "(DIBELLA_RANK_GROUPS has the same effect)")
    serve.add_argument("--pin-ranks", action="store_true", default=None,
                       help="pin process-backend rank workers to their group's "
                            "cores (DIBELLA_PIN_RANKS=1 has the same effect)")
    serve.add_argument("--hash-shards", type=int, default=None)
    serve.add_argument("--seed-mode", choices=["reliable", "minimizer"], default=None,
                       help="seeding front-end; the index build and every "
                            "query batch sketch with the same (k, w)")
    serve.add_argument("--minimizer-window", type=int, default=None,
                       help="minimizer window length w in k-mers (default 11)")
    serve.add_argument("--pool", action="store_true", default=None,
                       help="force the persistent rank pool on (the service "
                            "already forces it for the process backend — index "
                            "residency requires surviving workers)")
    serve.add_argument("--index-fraction", type=float, default=0.8,
                       help="fraction of the input reads indexed; the rest "
                            "become the query stream (default 0.8)")
    serve.add_argument("--query-batches", type=int, default=2,
                       help="number of query batches the non-indexed reads are "
                            "split into (default 2: enough to show reuse)")
    serve.add_argument("--serve-batch-reads", type=int, default=None,
                       help="admission bound: queued submissions are coalesced "
                            "into batches of at most this many reads "
                            "(DIBELLA_SERVE_BATCH_READS has the same effect)")
    serve.add_argument("--read-cache-mb", type=float, default=None,
                       help="byte-capacity LRU bound (MiB) of each rank's read "
                            "cache; 0 = unbounded (DIBELLA_READ_CACHE_MB has "
                            "the same effect)")
    serve.add_argument("--sanitize", action="store_true", default=None,
                       help="arm the runtime sanitizer for every batch "
                            "(DIBELLA_SANITIZE=1 has the same effect)")
    serve.add_argument("--fault-plan", default=None, metavar="PLAN",
                       help="deterministic fault plan injected into the session "
                            "(build = run 0, first batch = run 1; grammar in "
                            "docs/fault-tolerance.md; DIBELLA_FAULT_PLAN has "
                            "the same effect)")
    serve.add_argument("--serve-max-retries", type=int, default=None,
                       help="retries of an index build or query batch whose "
                            "run died from a rank failure (default 2; 0 "
                            "disables recovery; DIBELLA_SERVE_MAX_RETRIES has "
                            "the same effect)")
    serve.add_argument("--pool-stats", action="store_true",
                       help="print per-pool usage statistics after the session")

    query = sub.add_parser(
        "query", help="align one query batch against an index read set")
    query.add_argument("--index", required=True, help="index FASTQ file")
    query.add_argument("--queries", required=True, help="query FASTQ file")
    query.add_argument("-k", type=int, default=17, help="k-mer length")
    query.add_argument("--nodes", type=int, default=1)
    query.add_argument("--ranks-per-node", type=int, default=2)
    query.add_argument("--backend", choices=["thread", "process"], default=None)
    query.add_argument("--collective", choices=["flat", "hier"], default=None,
                       help="all-to-all layout for the build and the batch "
                            "(see docs/topology.md; DIBELLA_COLLECTIVE has "
                            "the same effect)")
    query.add_argument("--rank-groups", type=int, default=None,
                       help="rank-group count of --collective hier; 0 = auto "
                            "(DIBELLA_RANK_GROUPS has the same effect)")
    query.add_argument("--pin-ranks", action="store_true", default=None,
                       help="pin process-backend rank workers to their group's "
                            "cores (DIBELLA_PIN_RANKS=1 has the same effect)")
    query.add_argument("--hash-shards", type=int, default=None)
    query.add_argument("--seed-mode", choices=["reliable", "minimizer"], default=None,
                       help="seeding front-end; the index build and the query "
                            "batch sketch with the same (k, w)")
    query.add_argument("--minimizer-window", type=int, default=None,
                       help="minimizer window length w in k-mers (default 11)")
    query.add_argument("--read-cache-mb", type=float, default=None)
    query.add_argument("--sanitize", action="store_true", default=None,
                       help="arm the runtime sanitizer for the batch "
                            "(DIBELLA_SANITIZE=1 has the same effect)")
    query.add_argument("--fault-plan", default=None, metavar="PLAN",
                       help="deterministic fault plan injected into the batch "
                            "(grammar in docs/fault-tolerance.md; "
                            "DIBELLA_FAULT_PLAN has the same effect)")
    query.add_argument("--serve-max-retries", type=int, default=None,
                       help="retries of a build/batch killed by a rank failure "
                            "(default 2; DIBELLA_SERVE_MAX_RETRIES has the "
                            "same effect)")
    query.add_argument("--overlaps-out",
                       help="write the query-vs-index alignments to this TSV file")

    ex = sub.add_parser("experiment", help="regenerate a paper table/figure")
    ex.add_argument("name", choices=sorted(_EXPERIMENTS))

    sub.add_parser("platforms", help="print the Table 1 platform registry")
    return parser


def _fold_collective_args(config: PipelineConfig,
                          args: argparse.Namespace) -> PipelineConfig:
    """Apply the shared collective-layout / placement flags to *config*."""
    if getattr(args, "collective", None) is not None:
        config = config.with_collective(args.collective)
    if getattr(args, "rank_groups", None) is not None:
        config = config.with_rank_groups(
            args.rank_groups if args.rank_groups != 0 else None)
    if getattr(args, "pin_ranks", None):
        config = config.with_pin_ranks(True)
    return config


def _resolve_strategy(name: str, k: int) -> SeedStrategy:
    if name == "one":
        return SeedStrategy.one_seed()
    if name == "d1000":
        return SeedStrategy.separated_by(1000)
    return SeedStrategy.separated_by(k)


def _print_pool_stats() -> None:
    from repro.mpisim.backend import rank_pool_stats

    stats = rank_pool_stats()
    if not stats:
        print("pool: no active rank pools")
        return
    for entry in stats:
        print(f"pool[{entry['start_method']} x{entry['n_ranks']}]: "
              f"runs_completed={entry['runs_completed']} "
              f"forks_amortised={entry['forks_amortised']}")


def _load_reads(args: argparse.Namespace) -> tuple["object", str]:
    """The input read set and a printable source label (FASTQ or preset)."""
    if getattr(args, "input", None):
        return read_fastq(args.input), args.input
    factory = _PRESETS[args.preset]
    spec = factory() if args.preset == "tiny" else factory(scale=args.scale)
    return generate_dataset(spec).reads, spec.name


def _cmd_simulate(args: argparse.Namespace) -> int:
    factory = _PRESETS[args.preset]
    spec = factory() if args.preset == "tiny" else factory(scale=args.scale)
    dataset = generate_dataset(spec)
    count = write_fastq(dataset.reads, Path(args.output))
    print(f"wrote {count} reads ({dataset.reads.total_bases} bases) to {args.output}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.input:
        reads = read_fastq(args.input)
        source = args.input
    else:
        factory = _PRESETS[args.preset]
        spec = factory() if args.preset == "tiny" else factory(scale=args.scale)
        reads = generate_dataset(spec).reads
        source = spec.name
    overrides = {}
    if args.exchange_chunk_mb is not None:
        # 0 disables chunking; negative values fall through to the config's
        # validation error instead of silently disabling.  Omitting the flag
        # honours DIBELLA_EXCHANGE_CHUNK_MB (else the 8 MiB default).
        overrides["exchange_chunk_mb"] = (
            args.exchange_chunk_mb if args.exchange_chunk_mb != 0 else None)
    if args.batch_reads is not None:
        overrides["batch_reads"] = args.batch_reads
    if args.sanitize is not None:
        overrides["sanitize"] = args.sanitize
    config = PipelineConfig(
        kmer=KmerSpec(k=args.k),
        seed_strategy=_resolve_strategy(args.seed_strategy, args.k),
        **overrides,
    )
    if args.no_double_buffer:
        config = config.with_double_buffer(False)
    if args.double_buffer_stages is not None:
        stages = tuple(part.strip() for part in args.double_buffer_stages.split(",")
                       if part.strip())
        config = config.with_double_buffer_stages(stages)
    if args.align_batch_tasks is not None:
        config = config.with_alignment_batch_tasks(
            args.align_batch_tasks if args.align_batch_tasks != 0 else None)
    if args.no_wire_packing:
        config = config.with_wire_packing(False)
    if args.hash_shards is not None:
        config = config.with_hash_table_shards(args.hash_shards)
    if args.read_cache_mb is not None:
        config = config.with_read_cache_mb(args.read_cache_mb)
    if args.seed_mode is not None or args.minimizer_window is not None:
        config = config.with_seed_mode(args.seed_mode or config.seed_mode,
                                       args.minimizer_window)
    config = _fold_collective_args(config, args)
    if args.fault_plan is not None:
        # Fold the backend override in first: kill-plan validation depends
        # on it (kill faults are rejected on the thread backend).
        if args.backend is not None:
            config = config.with_backend(args.backend)
        config = config.with_fault_plan(args.fault_plan)
    result = run_dibella(reads, config=config, n_nodes=args.nodes,
                         ranks_per_node=args.ranks_per_node, backend=args.backend,
                         pool=args.pool)
    print(f"input: {source} ({len(reads)} reads, {reads.total_bases} bases)")
    for key, value in result.summary().items():
        print(f"  {key}: {value}")
    if args.overlaps_out:
        table = result.alignment_table()
        with open(args.overlaps_out, "w", encoding="ascii") as fh:
            fh.write("rid_a\trid_b\tscore\tspan_a\tspan_b\n")
            for ra, rb, score, sa, sb in zip(
                table["rid_a"], table["rid_b"], table["score"],
                table["span_a"], table["span_b"],
            ):
                fh.write(f"{ra}\t{rb}\t{score}\t{sa}\t{sb}\n")
        print(f"wrote {table['rid_a'].size} alignments to {args.overlaps_out}")
    if args.pool_stats:
        _print_pool_stats()
    return 0


def _serve_config(args: argparse.Namespace) -> PipelineConfig:
    """Shared config assembly of the serve/query subcommands."""
    config = PipelineConfig(kmer=KmerSpec(k=args.k))
    if args.backend is not None:
        config = config.with_backend(args.backend)
    if args.hash_shards is not None:
        config = config.with_hash_table_shards(args.hash_shards)
    if args.read_cache_mb is not None:
        config = config.with_read_cache_mb(args.read_cache_mb)
    if getattr(args, "pool", None):
        config = config.with_pool(True)
    if getattr(args, "serve_batch_reads", None) is not None:
        config = config.with_serve_batch_reads(args.serve_batch_reads)
    if args.seed_mode is not None or args.minimizer_window is not None:
        config = config.with_seed_mode(args.seed_mode or config.seed_mode,
                                       args.minimizer_window)
    config = _fold_collective_args(config, args)
    if getattr(args, "sanitize", None):
        config = config.with_sanitize(True)
    if getattr(args, "fault_plan", None) is not None:
        config = config.with_fault_plan(args.fault_plan)
    if getattr(args, "serve_max_retries", None) is not None:
        config = config.with_serve_max_retries(args.serve_max_retries)
    return config


def _cmd_serve(args: argparse.Namespace) -> int:
    reads, source = _load_reads(args)
    if not (0.0 < args.index_fraction < 1.0):
        print("serve: --index-fraction must be in (0, 1)", file=sys.stderr)
        return 2
    n_index = max(1, min(len(reads) - 1, int(len(reads) * args.index_fraction)))
    query_rids = list(range(n_index, len(reads)))
    if not query_rids:
        print("serve: input leaves no query reads after the index slice",
              file=sys.stderr)
        return 2
    config = _serve_config(args)
    topology = Topology(n_nodes=args.nodes, ranks_per_node=args.ranks_per_node)
    service = AlignmentService(reads.subset(range(n_index)), config=config,
                               topology=topology)

    build = service.build()
    print(f"index: {source} reads 0..{n_index - 1} "
          f"({build.counters.get('index_retained_kmers', 0)} retained k-mers, "
          f"{build.wall_seconds:.3f}s build)")

    n_batches = max(1, min(args.query_batches, len(query_rids)))
    bounds = [len(query_rids) * i // n_batches for i in range(n_batches + 1)]
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        service.submit([reads[rid] for rid in query_rids[lo:hi]])
        service.drain()

    for record in service.records:
        counters = record.result.counters
        print(f"batch {record.batch_index}: {record.n_reads} reads -> "
              f"{counters.get('accepted_alignments', 0)} alignments in "
              f"{record.wall_seconds:.3f}s "
              f"(index_reuse_hits={counters.get('index_reuse_hits', 0)}, "
              f"index_build_runs={counters.get('index_build_runs', 0)})")
    for key, value in service.latency_stats().items():
        print(f"  {key}: {value:.4f}")
    if args.pool_stats:
        _print_pool_stats()
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    index_reads = read_fastq(args.index)
    query_reads = read_fastq(args.queries)
    config = _serve_config(args)
    topology = Topology(n_nodes=args.nodes, ranks_per_node=args.ranks_per_node)
    service = AlignmentService(index_reads, config=config, topology=topology)
    service.submit(list(query_reads))
    record = service.drain()[0]
    counters = record.result.counters
    print(f"index: {args.index} ({len(index_reads)} reads)  "
          f"queries: {args.queries} ({len(query_reads)} reads)")
    print(f"  alignments: {counters.get('accepted_alignments', 0)}")
    print(f"  overlap_pairs: {counters.get('overlap_pairs', 0)}")
    print(f"  wall_seconds: {record.wall_seconds:.3f}")
    if args.overlaps_out:
        table = record.result.alignment_table()
        n_index = len(index_reads)
        with open(args.overlaps_out, "w", encoding="utf-8") as fh:
            fh.write("index_read\tquery_read\tscore\tspan_a\tspan_b\n")
            for ra, rb, score, sa, sb in zip(
                table["rid_a"], table["rid_b"], table["score"],
                table["span_a"], table["span_b"],
            ):
                fh.write(f"{index_reads[int(ra)].name}\t"
                         f"{query_reads[int(rb) - n_index].name}\t"
                         f"{score}\t{sa}\t{sb}\n")
        print(f"wrote {table['rid_a'].size} alignments to {args.overlaps_out}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    rows = _EXPERIMENTS[args.name]()
    print(format_table(rows, title=f"Experiment {args.name}"))
    return 0


def _cmd_platforms(_args: argparse.Namespace) -> int:
    print(format_table(exp.table1_platforms(), title="Table 1: evaluated platforms"))
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "simulate": _cmd_simulate,
        "run": _cmd_run,
        "serve": _cmd_serve,
        "query": _cmd_query,
        "experiment": _cmd_experiment,
        "platforms": _cmd_platforms,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
