"""spmdlint: AST lint rules for SPMD correctness (see package docstring).

The checker is a single pass of :class:`ast.NodeVisitor` per file (rules
SL001-SL004) plus one project-level rule (SL005) that cross-references the
``PipelineConfig`` fields against the CLI parser and the README knob table.
No code is imported or executed except :mod:`repro.core.counters`, the
declared-counter registry that SL004 checks against.

Suppressions
------------
A finding is silenced by an inline comment naming the rule *with a reason*::

    value = comm.bcast(seed)  # spmdlint: disable=SL001 all ranks reach this

The comment may sit on the flagged line or on a comment-only line directly
above it (a block of consecutive comment lines applies to the next source
line).  A suppression without a reason is itself reported (SL000).
"""

from __future__ import annotations

import ast
import io
import re
import sys
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from repro.core.counters import REGISTERED_COUNTERS

__all__ = ["Finding", "RULES", "lint_paths", "lint_source", "main"]

#: Rule catalogue: id -> one-line description (``--list-rules`` prints this).
RULES: dict[str, str] = {
    "SL000": "malformed spmdlint suppression (missing rule list or reason)",
    "SL001": "collective called under rank-dependent control flow "
             "(ranks may disagree on whether/which collective runs: deadlock)",
    "SL002": "superstep exchange or SuperstepSchedule without a phase label "
             "(unlabelled ops cannot be matched across supersteps/diagnosed)",
    "SL003": "nondeterminism: iteration over a set, global RNG, or wall-clock "
             "value feeding computation (breaks cross-backend bit-identity)",
    "SL004": "counter key not declared in repro.core.counters "
             "(backend-invariance tests iterate the registry)",
    "SL005": "PipelineConfig knob missing one of CLI flag / DIBELLA_* env "
             "default / README knob-table row",
}

#: SimCommunicator collective methods (call sites, not definitions).
_COLLECTIVES = frozenset({
    "barrier", "bcast", "gather", "allgather", "allreduce", "reduce",
    "alltoall", "alltoallv", "alltoallv_start", "alltoallv_finish",
})

#: Exchange entry points that take the ``label=`` phase keyword (SL002).
_LABELLED_EXCHANGES = frozenset({"alltoallv", "alltoallv_start"})

#: Stdlib ``random`` module functions that mutate/read the *global* RNG.
_GLOBAL_RANDOM_FNS = frozenset({
    "random", "randint", "randrange", "uniform", "shuffle", "choice",
    "choices", "sample", "seed", "getrandbits", "gauss", "normalvariate",
})

#: ``numpy.random`` attributes that are fine (explicitly seeded generators).
_SEEDED_NP_RANDOM = frozenset({"default_rng", "Generator", "SeedSequence",
                               "BitGenerator", "PCG64", "Philox"})

#: Files whose counter writes SL004 audits (relative-name match).
_COUNTER_FILES = ("stages.py", "supersteps.py", "pipeline.py")

#: Knobs whose CLI flag does not follow the ``--field-name`` derivation.
_FLAG_ALIASES = {
    "hash_table_shards": "--hash-shards",
    "alignment_batch_tasks": "--align-batch-tasks",
}

_SUPPRESS_RE = re.compile(
    r"#\s*spmdlint:\s*disable=([A-Za-z0-9,\s]*?)(?:\s+(.*))?$")


@dataclass(frozen=True, order=True)
class Finding:
    """One lint finding, printable as ``path:line:col: rule message``."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------

def _iter_comments(source: str) -> "list[tokenize.TokenInfo]":
    """The file's real comment tokens (examples inside strings don't count)."""
    try:
        return [tok for tok in tokenize.generate_tokens(io.StringIO(source).readline)
                if tok.type == tokenize.COMMENT]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return []  # the parse pass reports the syntax error


def _collect_suppressions(
    path: str, source: str, lines: list[str]
) -> tuple[dict[int, set[str]], list[Finding]]:
    """Map line number -> suppressed rule ids, plus SL000 findings.

    A suppression on a comment-only line covers the next non-blank,
    non-comment line (so a wrapped reason spanning several comment lines
    still lands on the statement below the block).
    """
    suppressed: dict[int, set[str]] = {}
    findings: list[Finding] = []
    for token in _iter_comments(source):
        lineno, col = token.start
        text = token.string
        match = _SUPPRESS_RE.search(text)
        if match is None:
            if "spmdlint" in text and "disable" in text:
                findings.append(Finding(path, lineno, 1, "SL000",
                                        "unparseable spmdlint suppression"))
            continue
        rules = {part.strip() for part in match.group(1).split(",") if part.strip()}
        reason = (match.group(2) or "").strip()
        if not rules or any(rule not in RULES for rule in rules):
            findings.append(Finding(path, lineno, 1, "SL000",
                                    f"unknown rule id in suppression: "
                                    f"{sorted(rules) or '(empty)'}"))
            continue
        if not reason:
            findings.append(Finding(
                path, lineno, 1, "SL000",
                f"suppression of {','.join(sorted(rules))} needs a reason "
                f"(# spmdlint: disable=SLxxx <why this is safe>)"))
        target = lineno
        if not lines[lineno - 1][:col].strip():
            # Comment-only line: the suppression covers the next code line.
            for ahead in range(lineno + 1, len(lines) + 1):
                body = lines[ahead - 1].strip()
                if body and not body.startswith("#"):
                    target = ahead
                    break
        suppressed.setdefault(target, set()).update(rules)
    return suppressed, findings


# ---------------------------------------------------------------------------
# Per-file visitor: SL001-SL004
# ---------------------------------------------------------------------------

def _dotted_name(node: ast.AST) -> tuple[str, ...] | None:
    """``a.b.c`` as ``("a", "b", "c")``; None for non-name chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def _mentions_rank(node: ast.AST) -> bool:
    """Whether an expression reads a ``rank`` variable or attribute."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id == "rank":
            return True
        if isinstance(sub, ast.Attribute) and sub.attr == "rank":
            return True
    return False


def _is_set_expr(node: ast.AST) -> bool:
    """Whether an expression is literally a set (unordered iteration)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        # Set algebra (a | b, keys - flags, ...) stays a set.
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


class _Visitor(ast.NodeVisitor):
    def __init__(self, path: str, check_counters: bool) -> None:
        self.path = path
        self.check_counters = check_counters
        self.findings: list[Finding] = []
        self._rank_depth = 0

    def _report(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(Finding(self.path, node.lineno,
                                     node.col_offset + 1, rule, message))

    # -- rank-dependent control flow (SL001 context) ------------------------

    def _visit_branches(self, test: ast.AST, bodies: list[list[ast.stmt]]) -> None:
        rank_dep = _mentions_rank(test)
        self.visit(test)
        if rank_dep:
            self._rank_depth += 1
        for body in bodies:
            for stmt in body:
                self.visit(stmt)
        if rank_dep:
            self._rank_depth -= 1

    def visit_If(self, node: ast.If) -> None:
        self._visit_branches(node.test, [node.body, node.orelse])

    def visit_While(self, node: ast.While) -> None:
        self._visit_branches(node.test, [node.body, node.orelse])

    def visit_IfExp(self, node: ast.IfExp) -> None:
        rank_dep = _mentions_rank(node.test)
        self.visit(node.test)
        if rank_dep:
            self._rank_depth += 1
        self.visit(node.body)
        self.visit(node.orelse)
        if rank_dep:
            self._rank_depth -= 1

    # -- SL003: unordered iteration ----------------------------------------

    def visit_For(self, node: ast.For) -> None:
        if _is_set_expr(node.iter):
            self._report(node.iter, "SL003",
                         "iteration over a set: order differs across "
                         "runs/backends — sort it first")
        self.generic_visit(node)

    def _visit_comp(self, node: ast.AST) -> None:
        for gen in node.generators:  # type: ignore[attr-defined]
            if _is_set_expr(gen.iter):
                self._report(gen.iter, "SL003",
                             "comprehension over a set: order differs across "
                             "runs/backends — sort it first")
        self.generic_visit(node)

    visit_ListComp = visit_GeneratorExp = _visit_comp  # type: ignore[assignment]

    # -- SL001/SL002/SL003/SL004: calls ------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr in _COLLECTIVES and self._rank_depth > 0:
                self._report(node, "SL001",
                             f"collective .{func.attr}() under rank-dependent "
                             f"control flow: ranks taking different branches "
                             f"deadlock or mismatch")
            if func.attr in _LABELLED_EXCHANGES:
                label = next((kw.value for kw in node.keywords
                              if kw.arg == "label"), None)
                if label is None or (isinstance(label, ast.Constant)
                                     and label.value is None):
                    self._report(node, "SL002",
                                 f".{func.attr}() without a phase label: pass "
                                 f"label=... so the exchange op name carries "
                                 f"its phase")
            if self.check_counters and func.attr == "update":
                self._check_counter_update(node, func)
        name = _dotted_name(func)
        if name is not None:
            self._check_call_determinism(node, name)
        if (name is not None and name[-1] == "SuperstepSchedule"
                and not any(kw.arg == "label" for kw in node.keywords)):
            self._report(node, "SL002",
                         "SuperstepSchedule(...) without label=: the schedule "
                         "stamps the phase into every exchange op name")
        self.generic_visit(node)

    def _check_call_determinism(self, node: ast.Call,
                                name: tuple[str, ...]) -> None:
        dotted = ".".join(name)
        if name[-2:] == ("time", "time"):
            self._report(node, "SL003",
                         "time.time() is wall clock: use time.perf_counter() "
                         "for durations; never feed wall clock into results")
        elif name[-1] in ("now", "utcnow", "today") and "datetime" in name[:-1]:
            self._report(node, "SL003",
                         f"{dotted}() is wall clock: results must not depend "
                         f"on the current date/time")
        elif (len(name) >= 3 and name[-2] == "random"
                and name[0] in ("np", "numpy")
                and name[-1] not in _SEEDED_NP_RANDOM):
            self._report(node, "SL003",
                         f"{dotted}() uses numpy's global RNG: use a seeded "
                         f"np.random.default_rng(seed) generator")
        elif (len(name) == 2 and name[0] == "random"
                and name[1] in _GLOBAL_RANDOM_FNS):
            self._report(node, "SL003",
                         f"{dotted}() uses the process-global RNG: use a "
                         f"seeded random.Random(seed) instance")

    # -- SL004: counter writes ----------------------------------------------

    @staticmethod
    def _is_counters_store(node: ast.AST) -> bool:
        if not isinstance(node, ast.Subscript):
            return False
        name = _dotted_name(node.value)
        return name is not None and name[-1] == "counters"

    def _check_counter_key(self, key_node: ast.AST) -> None:
        if isinstance(key_node, ast.Constant) and isinstance(key_node.value, str):
            if key_node.value not in REGISTERED_COUNTERS:
                self._report(key_node, "SL004",
                             f"counter {key_node.value!r} is not declared in "
                             f"repro.core.counters.PIPELINE_COUNTERS")
        else:
            self._report(key_node, "SL004",
                         "non-literal counter key: declare the keys in "
                         "repro.core.counters and write them literally (or "
                         "suppress with the key source documented)")

    def _check_counter_update(self, node: ast.Call, func: ast.Attribute) -> None:
        base = _dotted_name(func.value)
        if base is None or base[-1] != "counters":
            return
        arg = node.args[0] if node.args else None
        if isinstance(arg, ast.Dict) and all(
                isinstance(k, ast.Constant) and isinstance(k.value, str)
                for k in arg.keys):
            for key in arg.keys:
                self._check_counter_key(key)
        else:
            self._report(node, "SL004",
                         "dynamic .counters.update(...): keys cannot be "
                         "checked against the registry — declare them in "
                         "repro.core.counters and suppress with the source "
                         "documented")

    def visit_Assign(self, node: ast.Assign) -> None:
        if self.check_counters:
            for target in node.targets:
                if self._is_counters_store(target):
                    self._check_counter_key(target.slice)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if self.check_counters and self._is_counters_store(node.target):
            self._check_counter_key(node.target.slice)
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# SL005: knob plumbing (project-level)
# ---------------------------------------------------------------------------

def _config_fields(tree: ast.Module) -> list[tuple[str, int, set[str]]]:
    """``(field, lineno, env_vars)`` per PipelineConfig dataclass field."""
    fields: list[tuple[str, int, set[str]]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == "PipelineConfig":
            for stmt in node.body:
                if (isinstance(stmt, ast.AnnAssign)
                        and isinstance(stmt.target, ast.Name)):
                    envs = set()
                    for sub in ast.walk(stmt):
                        if (isinstance(sub, ast.Constant)
                                and isinstance(sub.value, str)
                                and sub.value.startswith("DIBELLA_")):
                            envs.add(sub.value)
                    fields.append((stmt.target.id, stmt.lineno, envs))
    return fields


def _cli_flags(cli_path: Path) -> set[str]:
    """Every ``--flag`` string passed to an ``add_argument`` call."""
    tree = ast.parse(cli_path.read_text(encoding="utf-8"), filename=str(cli_path))
    flags: set[str] = set()
    for node in ast.walk(tree):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "add_argument"):
            for arg in node.args:
                if (isinstance(arg, ast.Constant)
                        and isinstance(arg.value, str)
                        and arg.value.startswith("-")):
                    flags.add(arg.value)
    return flags


def _readme_knob_fields(readme_path: Path) -> set[str]:
    """Backticked names appearing in README table rows (lines starting '|')."""
    names: set[str] = set()
    for line in readme_path.read_text(encoding="utf-8").splitlines():
        if line.lstrip().startswith("|"):
            names.update(re.findall(r"`([A-Za-z_][A-Za-z0-9_]*)`", line))
    return names


def _check_knob_plumbing(
    config_path: Path, tree: ast.Module, suppressed: dict[int, set[str]]
) -> list[Finding]:
    """SL005: every participating config knob has flag + env + README row.

    A field *participates* in knob plumbing once it is exposed through any
    of the three surfaces (a derived CLI flag, a ``DIBELLA_*`` env default,
    or a README knob-table row); participation requires all three, so a knob
    cannot be settable from the CLI but invisible to scripted env-driven CI,
    or documented but not settable.  Purely programmatic fields (scoring
    schemes, hints) expose none of the three and are exempt.
    """
    cli_path = config_path.parent.parent / "cli.py"
    readme_path = next(
        (parent / "README.md" for parent in config_path.resolve().parents
         if (parent / "README.md").is_file()), None)
    if not cli_path.is_file() or readme_path is None:
        return []
    flags = _cli_flags(cli_path)
    rows = _readme_knob_fields(readme_path)
    findings: list[Finding] = []
    for name, lineno, envs in _config_fields(tree):
        derived = _FLAG_ALIASES.get(name, "--" + name.replace("_", "-"))
        no_variant = "--no-" + derived.removeprefix("--")
        has_flag = derived in flags or no_variant in flags
        has_env = bool(envs)
        has_row = name in rows
        if not (has_flag or has_env or has_row):
            continue  # programmatic-only field: exempt
        missing = [label for present, label in (
            (has_flag, f"CLI flag {derived}"),
            (has_env, "DIBELLA_* env default"),
            (has_row, "README knob-table row"),
        ) if not present]
        if missing and "SL005" not in suppressed.get(lineno, set()):
            findings.append(Finding(
                str(config_path), lineno, 1, "SL005",
                f"knob {name!r} is missing: {', '.join(missing)}"))
    return findings


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def lint_source(source: str, path: str = "<string>") -> list[Finding]:
    """Lint one file's source text (SL001-SL004 + suppression hygiene)."""
    lines = source.splitlines()
    suppressed, findings = _collect_suppressions(path, source, lines)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        findings.append(Finding(path, exc.lineno or 1, exc.offset or 1,
                                "SL000", f"syntax error: {exc.msg}"))
        return sorted(findings)
    visitor = _Visitor(path, check_counters=path.endswith(_COUNTER_FILES))
    visitor.visit(tree)
    findings.extend(
        finding for finding in visitor.findings
        if finding.rule not in suppressed.get(finding.line, set()))
    return sorted(findings)


def lint_paths(paths: Iterable[Path]) -> tuple[list[Finding], int]:
    """Lint every ``.py`` file under *paths*; returns (findings, n_files)."""
    files: list[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    findings: list[Finding] = []
    for file in files:
        source = file.read_text(encoding="utf-8")
        findings.extend(lint_source(source, str(file)))
        if str(file).replace("\\", "/").endswith("core/config.py"):
            suppressed, _ = _collect_suppressions(str(file), source,
                                                  source.splitlines())
            findings.extend(_check_knob_plumbing(
                file, ast.parse(source, filename=str(file)), suppressed))
    return sorted(findings), len(files)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: ``python -m repro.analysis.lint [paths...]``."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if "--list-rules" in argv:
        for rule, description in sorted(RULES.items()):
            print(f"{rule}  {description}")
        return 0
    paths = [Path(arg) for arg in argv if not arg.startswith("-")] or [Path("src")]
    missing = [path for path in paths if not path.exists()]
    if missing:
        print(f"spmdlint: no such path: {', '.join(map(str, missing))}",
              file=sys.stderr)
        return 2
    findings, n_files = lint_paths(paths)
    for finding in findings:
        print(finding)
    if findings:
        print(f"spmdlint: {len(findings)} finding(s) in {n_files} file(s)")
        return 1
    print(f"spmdlint: clean ({n_files} files)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
