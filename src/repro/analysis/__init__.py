"""Static analysis for the SPMD pipeline: the ``spmdlint`` checker.

SPMD bugs are miserable to debug at runtime — a rank-divergent collective
deadlocks, an unlabelled exchange pairs the wrong supersteps, an unordered
iteration breaks backend bit-identity only sometimes.  This package lints the
source tree for the whole-program properties the runtime cannot check until
it is too late:

========  ==============================================================
Rule      What it catches
========  ==============================================================
SL001     collectives called under rank-dependent control flow
SL002     superstep exchanges / schedules without a phase label
SL003     nondeterminism: unordered iteration, global RNG, wall clock
SL004     counters written but not declared in ``repro.core.counters``
SL005     config knobs missing their CLI flag, env default or README row
========  ==============================================================

Run it as ``python -m repro.analysis.lint src/`` (or
``scripts/spmdlint.py``); findings print as ``path:line:col: SLxxx
message`` and a non-zero exit code gates CI.  Genuine-but-intended sites
carry an inline suppression with a mandatory reason::

    if comm.rank == 0:
        comm.bcast(header)  # spmdlint: disable=SL001 every rank reaches this

See ``docs/static-analysis.md`` for the rule catalogue and the companion
runtime sanitizer (``DIBELLA_SANITIZE``).
"""

__all__ = ["Finding", "RULES", "lint_paths", "lint_source"]


def __getattr__(name):
    # Lazy re-export: importing the submodule here would trip runpy's
    # double-import warning under ``python -m repro.analysis.lint``.
    if name in __all__:
        from repro.analysis import lint

        return getattr(lint, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
