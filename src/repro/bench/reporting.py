"""Plain-text rendering of experiment rows (tables and series).

The benchmark scripts print these tables so that ``pytest benchmarks/ -s``
regenerates the paper's figures as readable text; the same formatting is used
by the CLI's ``experiments`` subcommand and when recording results in
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


def _format_value(value: object, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(rows: Sequence[Mapping[str, object]], columns: Sequence[str] | None = None,
                 precision: int = 3, title: str | None = None) -> str:
    """Render dict rows as a fixed-width text table.

    Columns default to the keys of the first row, in their insertion order.
    """
    rows = list(rows)
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    cols = list(columns) if columns else list(rows[0].keys())
    rendered = [[_format_value(row.get(col, ""), precision) for col in cols] for row in rows]
    widths = [max(len(col), max(len(r[i]) for r in rendered)) for i, col in enumerate(cols)]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(cols))
    lines.append(header)
    lines.append("  ".join("-" * widths[i] for i in range(len(cols))))
    for r in rendered:
        lines.append("  ".join(r[i].ljust(widths[i]) for i in range(len(cols))))
    return "\n".join(lines)


def format_series(rows: Sequence[Mapping[str, object]], x: str, y: str, group: str,
                  precision: int = 3, title: str | None = None) -> str:
    """Render rows as one line per *group* value: ``group: y(x1), y(x2), ...``.

    Matches how the paper's line plots read: one series per platform /
    workload, node count on the x axis.
    """
    rows = list(rows)
    series: dict[object, list[tuple[object, object]]] = {}
    for row in rows:
        series.setdefault(row[group], []).append((row[x], row[y]))
    lines = []
    if title:
        lines.append(title)
    for key, points in series.items():
        points = sorted(points, key=lambda p: p[0])
        rendered = ", ".join(
            f"{p[0]}:{_format_value(p[1], precision)}" for p in points
        )
        lines.append(f"{key:>12}  {rendered}")
    return "\n".join(lines)


def rows_to_csv(rows: Iterable[Mapping[str, object]]) -> str:
    """Render rows as a simple CSV string (header from the first row's keys)."""
    rows = list(rows)
    if not rows:
        return ""
    cols = list(rows[0].keys())
    lines = [",".join(cols)]
    for row in rows:
        lines.append(",".join(str(row.get(col, "")) for col in cols))
    return "\n".join(lines)
