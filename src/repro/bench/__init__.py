"""Experiment harness: one registered experiment per paper table/figure.

* :mod:`repro.bench.harness` — benchmark workloads (scaled E. coli-like
  presets), a process-wide cache of pipeline runs keyed by (workload, seed
  strategy, node count), and the helpers that project a run onto the paper's
  platforms.
* :mod:`repro.bench.experiments` — one function per table/figure producing
  exactly the rows/series the paper plots.
* :mod:`repro.bench.reporting` — plain-text table/series formatting used by
  the benchmark scripts and the CLI.

The benchmark scripts under ``benchmarks/`` are thin wrappers that call these
functions under ``pytest-benchmark`` and print the regenerated figure data.
"""

from repro.bench.harness import (
    BenchWorkloads,
    ExperimentHarness,
    default_harness,
)
from repro.bench.experiments import (
    table1_platforms,
    figure3_bloom_scaling,
    figure4_bloom_efficiency_aws,
    figure5_hashtable_scaling,
    figure6_overlap_scaling,
    figure7_alignment_scaling,
    figure8_load_imbalance,
    figure9_breakdown_30x,
    figure10_breakdown_100x,
    figure11_overall_efficiency,
    figure12_exchange_efficiency,
    figure13_pipeline_performance,
    table2_single_node,
)
from repro.bench.reporting import format_table, format_series

__all__ = [
    "BenchWorkloads",
    "ExperimentHarness",
    "default_harness",
    "table1_platforms",
    "figure3_bloom_scaling",
    "figure4_bloom_efficiency_aws",
    "figure5_hashtable_scaling",
    "figure6_overlap_scaling",
    "figure7_alignment_scaling",
    "figure8_load_imbalance",
    "figure9_breakdown_30x",
    "figure10_breakdown_100x",
    "figure11_overall_efficiency",
    "figure12_exchange_efficiency",
    "figure13_pipeline_performance",
    "table2_single_node",
    "format_table",
    "format_series",
]
