"""Benchmark workloads, pipeline-run caching and platform projection.

The paper's figures share a small number of underlying pipeline executions
(most of them are different views of the "E. coli 30x, one seed" runs at
1-32 nodes).  Re-running the pipeline for every figure would multiply the
benchmark suite's cost by ~10, so the harness keeps a process-wide cache of
:class:`~repro.core.result.PipelineResult` objects keyed by
``(workload, seed strategy, node count)`` and every figure draws from it.

Workload sizes are scaled-down versions of the paper's data sets (see
DESIGN.md §1 for the substitution argument).  The scale can be raised via the
``REPRO_BENCH_SCALE`` environment variable (a float multiplier on the genome
size) for longer, higher-fidelity benchmark runs.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass, field

from repro.core.config import PipelineConfig
from repro.core.pipeline import DibellaPipeline
from repro.core.result import PipelineResult
from repro.data.datasets import Dataset, DatasetSpec, generate_dataset
from repro.data.genome import GenomeSpec
from repro.data.reads import ReadSimSpec
from repro.mpisim.topology import Topology
from repro.netmodel.costmodel import CostModel
from repro.netmodel.platform import get_platform
from repro.netmodel.projection import PipelineProjection, project_pipeline
from repro.overlap.seeds import SeedStrategy

#: Node counts used by the strong-scaling figures (the paper's x axis).
SCALING_NODES: tuple[int, ...] = (1, 2, 4, 8, 16, 32)

#: Reduced node set used by the most expensive workloads (Figures 10-11).
REDUCED_NODES: tuple[int, ...] = (1, 8, 32)

#: Platform short names in the paper's plotting order.
PLATFORM_KEYS: tuple[str, ...] = ("cori", "edison", "titan", "aws")

#: Total input bases of the paper's real data sets (§5): reads x mean length.
#: Projections extrapolate the measured benchmark workloads to these sizes so
#: the model operates in the same volume-dominated regime as the paper.
TARGET_INPUT_BASES: dict[str, float] = {
    "ecoli30x": 16_890 * 9_958.0,
    "ecoli100x": 91_394 * 6_934.0,
    "ecoli30x_sample": 0.2 * 16_890 * 9_958.0,
}


#: Process-global namespace sequence for pooled harness runs: the persistent
#: rank pool (and its workers' read caches) outlives harness instances, so
#: run namespaces must never repeat within a process.
_POOL_NAMESPACE_COUNTER = itertools.count()


def _bench_scale() -> float:
    """Benchmark size multiplier from the environment (default 1.0)."""
    try:
        return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    except ValueError:
        return 1.0


@dataclass(frozen=True)
class BenchWorkloads:
    """The two benchmark workloads standing in for the paper's data sets."""

    ecoli30x: DatasetSpec
    ecoli100x: DatasetSpec
    ecoli30x_sample: DatasetSpec

    @classmethod
    def default(cls) -> "BenchWorkloads":
        """Scaled-down E. coli-like workloads sized for the benchmark suite.

        The 30x workload keeps the paper's 30x coverage and ~12% error on an
        8 kbp genome; the 100x workload keeps 100x coverage and ~15% error on
        a smaller genome so its ~10x higher pair count (the paper's ratio)
        stays tractable in pure Python.
        """
        scale = _bench_scale()
        g30 = max(4000, int(8000 * scale))
        g100 = max(800, int(1200 * scale))
        return cls(
            ecoli30x=DatasetSpec(
                name="bench_ecoli30x_like",
                genome=GenomeSpec(length=g30, repeat_fraction=0.05, repeat_length=250, seed=7),
                reads=ReadSimSpec(coverage=30.0, mean_read_length=1000, min_read_length=400,
                                  error_rate=0.12, seed=8),
            ),
            ecoli100x=DatasetSpec(
                name="bench_ecoli100x_like",
                genome=GenomeSpec(length=g100, repeat_fraction=0.05, repeat_length=200, seed=9),
                reads=ReadSimSpec(coverage=100.0, mean_read_length=700, min_read_length=300,
                                  error_rate=0.15, seed=10),
            ),
            ecoli30x_sample=DatasetSpec(
                name="bench_ecoli30x_sample_like",
                genome=GenomeSpec(length=max(2000, int(g30 * 0.2)), repeat_fraction=0.05,
                                  repeat_length=200, seed=11),
                reads=ReadSimSpec(coverage=30.0, mean_read_length=1000, min_read_length=400,
                                  error_rate=0.12, seed=12),
            ),
        )


#: Seed-strategy presets matching the paper's three settings (§5).  The
#: "all seeds separated by k" setting additionally uses the paper's
#: "maximum number of seeds to explore per overlap" runtime parameter (§8)
#: to keep the pure-Python benchmark suite within its time budget.
SEED_STRATEGIES: dict[str, SeedStrategy] = {
    "one-seed": SeedStrategy.one_seed(),
    "d=1000": SeedStrategy.separated_by(1000),
    "d=k": SeedStrategy.separated_by(17, max_seeds=4),
}


@dataclass
class ExperimentHarness:
    """Caches generated data sets, pipeline runs and projections.

    Attributes
    ----------
    pool:
        Route the pipeline runs through the persistent rank pool.  ``None``
        (the default) enables pooling whenever the configured runtime
        backend is ``"process"`` — the figure sweeps re-run the pipeline per
        node count, and pooled rank processes parked on a barrier between
        runs amortise the per-run fork+import cost across the whole sweep.
        Each run gets a fresh read-cache namespace, so the rank processes
        evict the previous run's caches before serving it — sweep
        measurements stay independent (pooling amortises *startup*, never
        run-to-run state).  :meth:`pool_report` summarises the amortisation.
    """

    workloads: BenchWorkloads = field(default_factory=BenchWorkloads.default)
    ranks_per_node: int = 1
    cost_model: CostModel = field(default_factory=CostModel)
    pool: bool | None = None
    _datasets: dict[str, Dataset] = field(default_factory=dict)
    _runs: dict[tuple[str, str, int], PipelineResult] = field(default_factory=dict)
    _run_walls: dict[tuple[str, str, int], float] = field(default_factory=dict)
    _pooled_runs: int = 0

    # -- data sets ---------------------------------------------------------------

    def dataset(self, name: str) -> Dataset:
        """Generate (or return the cached) benchmark data set by name."""
        if name not in self._datasets:
            spec = self._spec_for(name)
            self._datasets[name] = generate_dataset(spec)
        return self._datasets[name]

    def _spec_for(self, name: str) -> DatasetSpec:
        if name == "ecoli30x":
            return self.workloads.ecoli30x
        if name == "ecoli100x":
            return self.workloads.ecoli100x
        if name == "ecoli30x_sample":
            return self.workloads.ecoli30x_sample
        raise KeyError(f"unknown benchmark workload {name!r}")

    def _config_for(self, name: str, strategy: str) -> PipelineConfig:
        spec = self._spec_for(name)
        return PipelineConfig(
            coverage_hint=spec.reads.coverage,
            error_rate_hint=spec.reads.error_rate,
            seed_strategy=SEED_STRATEGIES[strategy],
        )

    # -- pipeline runs --------------------------------------------------------------

    def _use_pool(self, config: PipelineConfig) -> bool:
        """Whether a run with *config* should go through the rank pool."""
        if self.pool is not None:
            return bool(self.pool) and config.backend == "process"
        return config.backend == "process"

    def run(self, workload: str = "ecoli30x", strategy: str = "one-seed",
            n_nodes: int = 1) -> PipelineResult:
        """Run (or fetch the cached) pipeline execution for one configuration.

        Process-backend runs are routed through the persistent rank pool
        (see the class docstring), so a scaling sweep forks each rank-count's
        worker set once instead of once per figure invocation.
        """
        import time as _time

        key = (workload, strategy, n_nodes)
        if key not in self._runs:
            dataset = self.dataset(workload)
            config = self._config_for(workload, strategy)
            pooled = self._use_pool(config)
            if pooled:
                config = config.with_pool(True)
            topology = Topology(n_nodes=n_nodes, ranks_per_node=self.ranks_per_node)
            # Pooling amortises worker startup only: a per-run cache
            # namespace makes the rank processes evict the previous run's
            # read caches, so a later run in the sweep never skips fetches
            # an earlier run paid for (which would change its measured
            # exchange volumes).  The eviction happens *inside* the pooled
            # workers — a parent-side cache reset could not reach them.  The
            # counter is process-global: the rank pool outlives any one
            # harness, so a per-instance count would repeat namespaces
            # across harnesses (or after clear()) and resurrect stale
            # caches.
            namespace = (f"bench-run-{next(_POOL_NAMESPACE_COUNTER)}"
                         if pooled else None)
            pipeline = DibellaPipeline(config=config, topology=topology,
                                       cache_namespace=namespace)
            start = _time.perf_counter()
            self._runs[key] = pipeline.run(dataset.reads)
            self._run_walls[key] = _time.perf_counter() - start
            if pooled:
                self._pooled_runs += 1
        return self._runs[key]

    def scaling_runs(self, workload: str = "ecoli30x", strategy: str = "one-seed",
                     nodes: tuple[int, ...] = SCALING_NODES
                     ) -> dict[int, PipelineResult]:
        """Pipeline runs for every node count of a strong-scaling series."""
        return {n: self.run(workload, strategy, n) for n in nodes}

    # -- projection -----------------------------------------------------------------

    def project(self, result: PipelineResult, platform: str,
                workload: str = "ecoli30x",
                topology: Topology | None = None) -> PipelineProjection:
        """Project a pipeline run onto one of the paper's platforms.

        The run's measured work counters and traffic volumes are extrapolated
        to the full-size data set the benchmark workload stands in for (see
        :data:`TARGET_INPUT_BASES`), preserving the measured per-rank
        distributions and load imbalance.

        ``topology`` overrides the run's own topology — used for what-if
        projections, e.g. ``result.topology.with_groups(G)`` projects a flat
        run's traffic under the hierarchical collectives' per-call latency
        term (see ``docs/topology.md``); the default projects the run as it
        actually executed.
        """
        spec = get_platform(platform)
        measured_kmers = max(1, result.counters.get("input_kmers", 1))
        target = TARGET_INPUT_BASES.get(workload, float(measured_kmers))
        scale = max(1.0, target / measured_kmers)
        return project_pipeline(
            result.stages,
            result.trace,
            spec,
            topology if topology is not None else result.topology,
            model=self.cost_model,
            platform_key=platform,
            scale=scale,
        )

    # -- pool amortisation ------------------------------------------------------------

    def pool_report(self) -> dict[str, float]:
        """How much worker startup the rank pool amortised across this harness.

        Returns
        -------
        dict
            ``runs`` (pipeline executions), ``pooled_runs`` (those served by
            the persistent rank pool), ``pools_created`` (distinct worker
            sets actually forked), ``pool_runs_completed`` (pool jobs
            served), and ``forks_avoided`` (rank processes that would have
            been forked without the pool: ``(runs_completed - 1) * n_ranks``
            summed over pools).  Live-pool statistics come from
            :func:`repro.mpisim.backend.rank_pool_stats`, so call this
            before the pools are shut down.
        """
        from repro.mpisim.backend import rank_pool_stats

        stats = rank_pool_stats()
        return {
            "runs": float(len(self._run_walls)),
            "pooled_runs": float(self._pooled_runs),
            "pools_created": float(len(stats)),
            "pool_runs_completed": float(sum(s["runs_completed"] for s in stats)),
            "forks_avoided": float(sum(
                max(0, s["runs_completed"] - 1) * s["n_ranks"] for s in stats)),
            "total_run_seconds": float(sum(self._run_walls.values())),
        }

    def clear(self) -> None:
        """Drop all cached data sets and runs (test helper)."""
        self._datasets.clear()
        self._runs.clear()
        self._run_walls.clear()
        self._pooled_runs = 0


#: Process-wide harness shared by all benchmark modules.
_DEFAULT_HARNESS: ExperimentHarness | None = None


def default_harness() -> ExperimentHarness:
    """The process-wide harness instance (created lazily)."""
    global _DEFAULT_HARNESS
    if _DEFAULT_HARNESS is None:
        _DEFAULT_HARNESS = ExperimentHarness()
    return _DEFAULT_HARNESS


def default_harness_pool_report() -> dict[str, float] | None:
    """The process-wide harness's pool report, without creating a harness.

    Returns
    -------
    dict or None
        :meth:`ExperimentHarness.pool_report` of the default harness, or
        ``None`` when no harness exists yet or it ran no pipelines — so
        session-teardown hooks can report (or skip) without side effects.
    """
    if _DEFAULT_HARNESS is None or not _DEFAULT_HARNESS._run_walls:
        return None
    return _DEFAULT_HARNESS.pool_report()
