"""One function per paper table/figure.

Every function returns a list of plain dict rows (one per plotted point /
table cell group) so the benchmark scripts, the CLI and EXPERIMENTS.md all
consume the same data.  Throughputs are reported in the same units as the
paper's figures (millions of k-mers per second, millions of alignments per
second, efficiency relative to one node, percentage runtime shares).
"""

from __future__ import annotations

from repro.baselines.daligner import DalignerConfig, DalignerLikeOverlapper
from repro.bench.harness import (
    ExperimentHarness,
    PLATFORM_KEYS,
    REDUCED_NODES,
    SCALING_NODES,
    default_harness,
)
from repro.core.config import PipelineConfig
from repro.core.pipeline import DibellaPipeline
from repro.mpisim.topology import Topology
from repro.netmodel.platform import table1_rows
from repro.stats.scaling import efficiency_series


# ---------------------------------------------------------------------------
# Table 1 — evaluated platforms
# ---------------------------------------------------------------------------

def table1_platforms() -> list[dict[str, object]]:
    """Table 1: the evaluated platforms and their balance points."""
    return table1_rows()


# ---------------------------------------------------------------------------
# Per-stage strong-scaling figures (3, 5, 6, 7)
# ---------------------------------------------------------------------------

def _stage_scaling(stage: str, unit_items: float, harness: ExperimentHarness,
                   nodes: tuple[int, ...]) -> list[dict[str, object]]:
    """Strong-scaling throughput of one stage across platforms and node counts."""
    rows: list[dict[str, object]] = []
    runs = harness.scaling_runs("ecoli30x", "one-seed", nodes)
    for platform in PLATFORM_KEYS:
        for n_nodes, result in runs.items():
            projection = harness.project(result, platform, workload="ecoli30x")
            stage_proj = projection.stage(stage)
            seconds = stage_proj.total_seconds
            throughput = (stage_proj.items / seconds / unit_items) if seconds > 0 else 0.0
            rows.append(
                {
                    "figure": stage,
                    "platform": platform,
                    "nodes": n_nodes,
                    "items": stage_proj.items,
                    "seconds": seconds,
                    "throughput_millions_per_sec": throughput,
                }
            )
    return rows


def figure3_bloom_scaling(harness: ExperimentHarness | None = None,
                          nodes: tuple[int, ...] = SCALING_NODES) -> list[dict[str, object]]:
    """Figure 3: Bloom-filter stage throughput (M k-mers/s) across platforms."""
    return _stage_scaling("bloom", 1e6, harness or default_harness(), nodes)


def figure5_hashtable_scaling(harness: ExperimentHarness | None = None,
                              nodes: tuple[int, ...] = SCALING_NODES) -> list[dict[str, object]]:
    """Figure 5: hash-table stage throughput (M k-mers/s) across platforms."""
    return _stage_scaling("hashtable", 1e6, harness or default_harness(), nodes)


def figure6_overlap_scaling(harness: ExperimentHarness | None = None,
                            nodes: tuple[int, ...] = SCALING_NODES) -> list[dict[str, object]]:
    """Figure 6: overlap stage throughput (M retained k-mers/s) across platforms."""
    return _stage_scaling("overlap", 1e6, harness or default_harness(), nodes)


def figure7_alignment_scaling(harness: ExperimentHarness | None = None,
                              nodes: tuple[int, ...] = SCALING_NODES) -> list[dict[str, object]]:
    """Figure 7: alignment stage throughput (M alignments/s) across platforms."""
    return _stage_scaling("alignment", 1e6, harness or default_harness(), nodes)


# ---------------------------------------------------------------------------
# Figure 4 — Bloom-filter efficiency breakdown on AWS
# ---------------------------------------------------------------------------

def figure4_bloom_efficiency_aws(harness: ExperimentHarness | None = None,
                                 nodes: tuple[int, ...] = SCALING_NODES
                                 ) -> list[dict[str, object]]:
    """Figure 4: Bloom-filter stage efficiency components on AWS.

    Efficiency of each component (local processing, exchange, overall)
    relative to the single-node run, as in the paper.  "Packing" in the paper
    is the per-destination bucketing step; in this reproduction it is part of
    local compute, so the packing series is reported as the compute-side
    efficiency of the exchange phase's byte volume handling (identical shape
    to local processing) and documented as such in EXPERIMENTS.md.
    """
    harness = harness or default_harness()
    runs = harness.scaling_runs("ecoli30x", "one-seed", nodes)
    compute_times: dict[int, float] = {}
    exchange_times: dict[int, float] = {}
    overall_times: dict[int, float] = {}
    for n_nodes, result in runs.items():
        proj = harness.project(result, "aws", workload="ecoli30x").stage("bloom")
        compute_times[n_nodes] = proj.compute_seconds
        exchange_times[n_nodes] = proj.exchange_seconds
        overall_times[n_nodes] = proj.total_seconds
    compute_eff = efficiency_series(compute_times)
    exchange_eff = efficiency_series(exchange_times)
    overall_eff = efficiency_series(overall_times)
    rows: list[dict[str, object]] = []
    for n_nodes in sorted(compute_times):
        rows.append(
            {
                "figure": "fig4",
                "platform": "aws",
                "nodes": n_nodes,
                "local_processing_efficiency": compute_eff[n_nodes],
                "packing_efficiency": compute_eff[n_nodes],
                "exchange_efficiency": exchange_eff[n_nodes],
                "overall_efficiency": overall_eff[n_nodes],
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Figure 8 — alignment-stage load imbalance
# ---------------------------------------------------------------------------

def figure8_load_imbalance(harness: ExperimentHarness | None = None,
                           nodes: tuple[int, ...] = SCALING_NODES) -> list[dict[str, object]]:
    """Figure 8: alignment-stage load imbalance (max/mean, 1.0 = perfect)."""
    harness = harness or default_harness()
    runs = harness.scaling_runs("ecoli30x", "one-seed", nodes)
    rows: list[dict[str, object]] = []
    for platform in PLATFORM_KEYS:
        for n_nodes, result in runs.items():
            record = result.stage("alignment")
            # Work (DP-cell) imbalance drives the projected-time imbalance on
            # every platform; task-count imbalance is reported alongside to
            # reproduce the paper's "< 0.002%" observation.
            tasks_per_rank = [r.counters.get("alignments", 0) for r in result.rank_reports]
            mean_tasks = sum(tasks_per_rank) / max(1, len(tasks_per_rank))
            task_imbalance = (max(tasks_per_rank) / mean_tasks) if mean_tasks else 1.0
            rows.append(
                {
                    "figure": "fig8",
                    "platform": platform,
                    "nodes": n_nodes,
                    "load_imbalance": record.load_imbalance(),
                    "task_count_imbalance": task_imbalance,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Figures 9 and 10 — runtime breakdown on Cori
# ---------------------------------------------------------------------------

def _breakdown(harness: ExperimentHarness, workload: str, strategy: str,
               nodes: tuple[int, ...]) -> list[dict[str, object]]:
    rows: list[dict[str, object]] = []
    for n_nodes in nodes:
        result = harness.run(workload, strategy, n_nodes)
        projection = harness.project(result, "cori", workload=workload)
        total = projection.total_seconds
        for stage in projection.stages:
            rows.append(
                {
                    "workload": workload,
                    "strategy": strategy,
                    "nodes": n_nodes,
                    "stage": stage.stage,
                    "compute_seconds": stage.compute_seconds,
                    "exchange_seconds": stage.exchange_seconds,
                    "compute_pct": 100.0 * stage.compute_seconds / total if total else 0.0,
                    "exchange_pct": 100.0 * stage.exchange_seconds / total if total else 0.0,
                }
            )
    return rows


def figure9_breakdown_30x(harness: ExperimentHarness | None = None,
                          nodes: tuple[int, ...] = SCALING_NODES) -> list[dict[str, object]]:
    """Figure 9: per-stage runtime shares on Cori, E. coli 30x one-seed."""
    return _breakdown(harness or default_harness(), "ecoli30x", "one-seed", nodes)


def figure10_breakdown_100x(harness: ExperimentHarness | None = None,
                            nodes: tuple[int, ...] = REDUCED_NODES) -> list[dict[str, object]]:
    """Figure 10: per-stage runtime shares on Cori, E. coli 100x all seeds >= 1 kbp apart."""
    return _breakdown(harness or default_harness(), "ecoli100x", "d=1000", nodes)


# ---------------------------------------------------------------------------
# Figure 11 — overall efficiency on Cori across workloads
# ---------------------------------------------------------------------------

def figure11_overall_efficiency(harness: ExperimentHarness | None = None,
                                nodes: tuple[int, ...] = REDUCED_NODES
                                ) -> list[dict[str, object]]:
    """Figure 11: overall pipeline efficiency on Cori for 2 data sets x 3 seed settings."""
    harness = harness or default_harness()
    rows: list[dict[str, object]] = []
    for workload in ("ecoli30x", "ecoli100x"):
        for strategy in ("one-seed", "d=1000", "d=k"):
            times: dict[int, float] = {}
            for n_nodes in nodes:
                result = harness.run(workload, strategy, n_nodes)
                times[n_nodes] = harness.project(result, "cori",
                                                 workload=workload).total_seconds
            eff = efficiency_series(times)
            for n_nodes in sorted(times):
                rows.append(
                    {
                        "figure": "fig11",
                        "workload": workload,
                        "strategy": strategy,
                        "nodes": n_nodes,
                        "total_seconds": times[n_nodes],
                        "overall_efficiency": eff[n_nodes],
                    }
                )
    return rows


# ---------------------------------------------------------------------------
# Figure 12 — overall vs exchange efficiency across architectures
# ---------------------------------------------------------------------------

#: Group count of Figure 12's hierarchical-collective what-if column: two
#: groups per node-set, the smallest hierarchy that exercises the
#: leader-to-leader hop (the gate in ``benchmarks/bench_backend_scaling.py``
#: measures a real hier run at the same G).
FIG12_HIER_GROUPS = 2


def figure12_exchange_efficiency(harness: ExperimentHarness | None = None,
                                 nodes: tuple[int, ...] = SCALING_NODES
                                 ) -> list[dict[str, object]]:
    """Figure 12: overall (solid) and exchange (dashed) efficiency per platform.

    Each row also carries a flat-vs-hier exchange column: the same measured
    run projected under a grouped topology (``with_groups``), i.e. the
    exchange time the hierarchical collectives' per-call latency term
    predicts for this traffic — ``hier_exchange_speedup`` > 1 means the
    model expects the two-level exchange to win at that scale (see
    ``docs/topology.md``).
    """
    harness = harness or default_harness()
    runs = harness.scaling_runs("ecoli30x", "one-seed", nodes)
    rows: list[dict[str, object]] = []
    for platform in PLATFORM_KEYS:
        overall_times: dict[int, float] = {}
        exchange_times: dict[int, float] = {}
        hier_exchange_times: dict[int, float] = {}
        for n_nodes, result in runs.items():
            projection = harness.project(result, platform, workload="ecoli30x")
            overall_times[n_nodes] = projection.total_seconds
            exchange_times[n_nodes] = max(projection.total_exchange_seconds, 1e-12)
            grouped = result.topology.with_groups(
                min(FIG12_HIER_GROUPS, result.topology.n_ranks))
            hier = harness.project(result, platform, workload="ecoli30x",
                                   topology=grouped)
            hier_exchange_times[n_nodes] = max(hier.total_exchange_seconds, 1e-12)
        overall_eff = efficiency_series(overall_times)
        exchange_eff = efficiency_series(exchange_times)
        for n_nodes in sorted(overall_times):
            rows.append(
                {
                    "figure": "fig12",
                    "platform": platform,
                    "nodes": n_nodes,
                    "overall_efficiency": overall_eff[n_nodes],
                    "exchange_efficiency": exchange_eff[n_nodes],
                    "exchange_seconds_flat": exchange_times[n_nodes],
                    "exchange_seconds_hier": hier_exchange_times[n_nodes],
                    "hier_exchange_speedup": (
                        exchange_times[n_nodes] / hier_exchange_times[n_nodes]),
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Figure 13 — overall pipeline performance across architectures
# ---------------------------------------------------------------------------

def figure13_pipeline_performance(harness: ExperimentHarness | None = None,
                                  nodes: tuple[int, ...] = SCALING_NODES
                                  ) -> list[dict[str, object]]:
    """Figure 13: end-to-end throughput (M alignments/s) across platforms."""
    harness = harness or default_harness()
    runs = harness.scaling_runs("ecoli30x", "one-seed", nodes)
    rows: list[dict[str, object]] = []
    for platform in PLATFORM_KEYS:
        for n_nodes, result in runs.items():
            projection = harness.project(result, platform, workload="ecoli30x")
            total = projection.total_seconds
            alignments = projection.stage("alignment").items
            rows.append(
                {
                    "figure": "fig13",
                    "platform": platform,
                    "nodes": n_nodes,
                    "total_seconds": total,
                    "alignments": alignments,
                    "alignments_per_sec_millions": (alignments / total / 1e6) if total else 0.0,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Table 2 — single-node runtime comparison against the DALIGNER-like baseline
# ---------------------------------------------------------------------------

def table2_single_node(harness: ExperimentHarness | None = None,
                       ranks: int = 4) -> list[dict[str, object]]:
    """Table 2: measured single-node wall time, diBELLA vs the DALIGNER-like baseline.

    Unlike the figure experiments (which project onto the paper's machines),
    this one reports *measured* wall-clock seconds of this process on the
    three Table 2 inputs — the comparison is therefore between the two
    implementations in the same environment, which is exactly Table 2's
    structure (both tools on the same Cori node).
    """
    harness = harness or default_harness()
    rows: list[dict[str, object]] = []
    for workload in ("ecoli30x_sample", "ecoli30x", "ecoli100x"):
        dataset = harness.dataset(workload)
        spec = dataset.spec
        config = PipelineConfig(
            coverage_hint=spec.reads.coverage,
            error_rate_hint=spec.reads.error_rate,
        )
        pipeline = DibellaPipeline(config=config,
                                   topology=Topology.single_node(ranks))
        result = pipeline.run(dataset.reads)

        baseline = DalignerLikeOverlapper(DalignerConfig())
        baseline_result = baseline.run(dataset.reads)

        rows.append(
            {
                "table": "table2",
                "workload": workload,
                "reads": len(dataset.reads),
                "dibella_seconds": result.wall_seconds,
                "daligner_like_seconds": baseline_result.total_seconds,
                "ratio": (result.wall_seconds / baseline_result.total_seconds
                          if baseline_result.total_seconds > 0 else float("inf")),
                "dibella_pairs": result.n_overlap_pairs,
                "daligner_like_pairs": len(baseline_result.overlap_pairs),
            }
        )
    return rows
