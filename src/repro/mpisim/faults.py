"""Deterministic fault injection for the simulated SPMD runtime.

The paper's target machines lose workers routinely at 64-1,024+ node scale;
to test the recovery machinery (``docs/fault-tolerance.md``) without flaky
timing races, faults are injected at an exact, reproducible point of the
collective schedule instead of at a wall-clock instant.

A :class:`FaultPlan` is parsed from ``--fault-plan`` / ``DIBELLA_FAULT_PLAN``
and threaded through :func:`repro.mpisim.runtime.spmd_run` into every rank's
:class:`~repro.mpisim.communicator.SimCommunicator`, which calls
:meth:`FaultInjector.before_op` once per user-level collective the rank
issues.  That call site defines the *superstep ordinal* faults are keyed on:
the 0-based count of collectives (``barrier``, ``allreduce``, ``alltoallv``,
``alltoallv_start``, ...) this rank has entered, identical across backends
and unaffected by the sanitizer's internal congruence collectives — so
``kill:rank=2:step=3`` kills rank 2 at the same schedule point on every run.

Grammar (specs separated by ``;``)::

    spec   := action (":" key "=" value)*
    action := "kill" | "delay" | "exit"
    keys   := rank (required) | step | op | stage | ms | run

* ``kill`` — SIGKILL the rank process (process backend only: a thread rank
  shares the test process, so the thread backend rejects kill plans).
* ``delay`` — sleep ``ms`` milliseconds before entering the collective
  (stalls the peers; under the sanitizer the watchdog sees it).
* ``exit`` — raise :class:`~repro.mpisim.errors.InjectedFaultError` (an
  ordinary rank failure: the runtime aborts cleanly and reports it).

A spec fires on the first collective matching **all** of its present
criteria, at most once:

* ``rank=R`` — only on rank R;
* ``step=S`` — only at superstep ordinal S;
* ``op=NAME`` — only when the engine op name matches NAME exactly
  (``alltoallv[overlap]``) or NAME is its unlabelled base (``alltoallv``);
* ``stage=NAME`` — only while the communicator's current phase label starts
  with NAME (``stage=alignment`` matches phase ``alignment_exchange``);
* ``ms=N`` — delay length (``delay`` only);
* ``run=K`` — only during the K-th ``spmd_run`` bound from this plan
  (default 0: the first run).  The pipeline binds one
  :class:`RunFaults` per launch via :meth:`FaultPlan.bind_next_run`, so a
  *retried* run is fault-free by default — which is what makes
  kill-once-then-recover deterministic — and a serve workload can target
  "the first query batch" with ``run=1`` (the index build is run 0).

Examples::

    kill:rank=2:step=3
    delay:rank=1:op=alltoallv[overlap]:ms=500
    exit:rank=0:stage=alignment
    kill:rank=1:step=4:run=1
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass

from repro.mpisim.errors import InjectedFaultError

__all__ = ["FaultSpec", "FaultPlan", "RunFaults", "FaultInjector",
           "resolve_run_faults"]

#: Supported fault actions.
FAULT_ACTIONS: tuple[str, ...] = ("kill", "delay", "exit")

#: Environment variable holding the default fault plan (see PipelineConfig).
FAULT_PLAN_ENV = "DIBELLA_FAULT_PLAN"


@dataclass(frozen=True)
class FaultSpec:
    """One fault: an action plus the criteria selecting where it fires."""

    action: str
    rank: int
    step: int | None = None
    op: str | None = None
    stage: str | None = None
    ms: float = 0.0
    run: int = 0

    def __post_init__(self) -> None:
        if self.action not in FAULT_ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; expected one of "
                f"{FAULT_ACTIONS}"
            )
        if self.rank < 0:
            raise ValueError("fault rank must be >= 0")
        if self.step is not None and self.step < 0:
            raise ValueError("fault step must be >= 0")
        if self.ms < 0:
            raise ValueError("fault ms must be >= 0")
        if self.run < 0:
            raise ValueError("fault run must be >= 0")
        if self.action == "delay" and self.ms == 0:
            raise ValueError("delay faults need ms=<milliseconds>")

    def matches(self, op_name: str, phase: str, step: int) -> bool:
        """Whether this spec fires at (*op_name*, *phase*, superstep *step*).

        The rank criterion is applied earlier, when the owning
        :class:`RunFaults` builds one :class:`FaultInjector` per rank.
        """
        if self.step is not None and self.step != step:
            return False
        if self.op is not None and self.op not in (
                op_name, op_name.split("[", 1)[0]):
            return False
        if self.stage is not None and not phase.startswith(self.stage):
            return False
        return True

    def describe(self) -> str:
        parts = [self.action, f"rank={self.rank}"]
        if self.step is not None:
            parts.append(f"step={self.step}")
        if self.op is not None:
            parts.append(f"op={self.op}")
        if self.stage is not None:
            parts.append(f"stage={self.stage}")
        if self.action == "delay":
            parts.append(f"ms={self.ms:g}")
        if self.run:
            parts.append(f"run={self.run}")
        return ":".join(parts)


def _parse_spec(text: str) -> FaultSpec:
    parts = [part.strip() for part in text.split(":") if part.strip()]
    if not parts:
        raise ValueError("empty fault spec")
    action, fields = parts[0], {}
    for part in parts[1:]:
        key, sep, value = part.partition("=")
        key = key.strip()
        if not sep or not value.strip():
            raise ValueError(
                f"malformed fault field {part!r} in {text!r}; expected key=value"
            )
        if key in fields:
            raise ValueError(f"duplicate fault field {key!r} in {text!r}")
        fields[key] = value.strip()
    unknown = set(fields) - {"rank", "step", "op", "stage", "ms", "run"}
    if unknown:
        raise ValueError(
            f"unknown fault field(s) {sorted(unknown)} in {text!r}; expected "
            "rank/step/op/stage/ms/run"
        )
    if "rank" not in fields:
        raise ValueError(f"fault spec {text!r} needs rank=<R>")
    try:
        return FaultSpec(
            action=action,
            rank=int(fields["rank"]),
            step=int(fields["step"]) if "step" in fields else None,
            op=fields.get("op"),
            stage=fields.get("stage"),
            ms=float(fields["ms"]) if "ms" in fields else 0.0,
            run=int(fields["run"]) if "run" in fields else 0,
        )
    except ValueError:
        raise
    except Exception as exc:  # int()/float() type noise -> uniform error
        raise ValueError(f"malformed fault spec {text!r}: {exc}") from exc


class FaultPlan:
    """A parsed ``--fault-plan``: fault specs plus the run-binding cursor.

    The plan is stateful in exactly one way: :meth:`bind_next_run` hands out
    the faults of run 0, then run 1, ... — one call per ``spmd_run`` the
    owner launches — so each spec's ``run`` criterion resolves against a
    stable per-pipeline launch ordinal (retries bind fresh ordinals and are
    therefore fault-free unless the plan targets them explicitly).
    """

    def __init__(self, specs: tuple[FaultSpec, ...] | list[FaultSpec]):
        self.specs: tuple[FaultSpec, ...] = tuple(specs)
        self._next_run = 0

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse a ``;``-separated fault plan (grammar in the module docs)."""
        specs = [_parse_spec(chunk) for chunk in text.split(";") if chunk.strip()]
        if not specs:
            raise ValueError(f"fault plan {text!r} contains no fault specs")
        return cls(specs)

    @property
    def has_kill(self) -> bool:
        return any(spec.action == "kill" for spec in self.specs)

    def bind_next_run(self) -> "RunFaults | None":
        """The faults of the next launch ordinal (None when it has none)."""
        ordinal = self._next_run
        self._next_run = ordinal + 1
        bound = tuple(spec for spec in self.specs if spec.run == ordinal)
        return RunFaults(bound) if bound else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({'; '.join(s.describe() for s in self.specs)!r})"


@dataclass(frozen=True)
class RunFaults:
    """The faults bound to one ``spmd_run`` launch (picklable: pooled jobs
    carry it across the job queue to long-forked workers)."""

    specs: tuple[FaultSpec, ...]

    @property
    def has_kill(self) -> bool:
        return any(spec.action == "kill" for spec in self.specs)

    def injector(self, rank: int) -> "FaultInjector | None":
        """This rank's injector (None when no spec targets the rank)."""
        mine = tuple(spec for spec in self.specs if spec.rank == rank)
        return FaultInjector(rank, mine) if mine else None


class FaultInjector:
    """Per-rank trigger: counts collectives and fires matching fault specs."""

    def __init__(self, rank: int, specs: tuple[FaultSpec, ...]):
        self.rank = rank
        self._specs = specs
        self._fired = [False] * len(specs)
        self._step = 0

    def before_op(self, op_name: str, phase: str) -> None:
        """Called once per user-level collective, before any engine traffic.

        Firing *before* the engine is touched keeps the failure point clean:
        a killed rank has not yet written this superstep's shared-memory
        segment, so recovery only has to reclaim the peers' halves.
        """
        step = self._step
        self._step += 1
        for index, spec in enumerate(self._specs):
            if self._fired[index] or not spec.matches(op_name, phase, step):
                continue
            self._fired[index] = True
            self._trigger(spec, op_name, step)

    def _trigger(self, spec: FaultSpec, op_name: str, step: int) -> None:
        if spec.action == "delay":
            time.sleep(spec.ms / 1000.0)
            return
        if spec.action == "exit":
            raise InjectedFaultError(
                f"injected fault [{spec.describe()}] on rank {self.rank} at "
                f"superstep {step} ({op_name})"
            )
        # kill: die exactly as an OOM-killed / crashed worker would — no
        # exception propagation, no cleanup, no report to the parent.
        os.kill(os.getpid(), signal.SIGKILL)


def resolve_run_faults(
    faults: "str | FaultPlan | RunFaults | None",
) -> "RunFaults | None":
    """Normalise ``spmd_run``'s ``faults`` argument to bound run faults.

    A string parses as a one-shot plan and binds its first run; a
    :class:`FaultPlan` binds its next run ordinal; :class:`RunFaults` passes
    through (empty -> None).
    """
    if faults is None:
        return None
    if isinstance(faults, str):
        faults = FaultPlan.parse(faults)
    if isinstance(faults, FaultPlan):
        return faults.bind_next_run()
    if isinstance(faults, RunFaults):
        return faults if faults.specs else None
    raise TypeError(
        f"faults must be a plan string, FaultPlan or RunFaults, "
        f"not {type(faults).__name__}"
    )
