"""Errors raised by the simulated SPMD runtime."""

from __future__ import annotations


class SPMDError(RuntimeError):
    """Base class for errors raised by the simulated runtime."""


class CollectiveMismatchError(SPMDError):
    """Raised when ranks disagree on which collective they are executing.

    In real MPI this is a silent deadlock; the simulator detects it at the
    synchronisation point and fails fast with the set of conflicting calls.
    """


class RankFailedError(SPMDError):
    """Raised on all ranks when any rank's program raised an exception.

    The original exception (from the first failing rank) is attached as
    ``__cause__`` by the runtime so test failures point at the real bug.
    """


class InjectedFaultError(SPMDError):
    """Raised by an ``exit`` fault of a deterministic fault plan.

    Fault plans (:mod:`repro.mpisim.faults`, ``--fault-plan``) deliberately
    fail a rank at an exact superstep; ``exit`` faults surface as this typed
    error so chaos tests can tell an injected failure from a real bug.
    """


class SanitizerError(SPMDError):
    """Base class for errors raised only under ``DIBELLA_SANITIZE``.

    The sanitizer turns hazards that would otherwise be silent hangs or
    bit-corrupt science (divergent collectives, reused exchange segments,
    wedged handshakes) into immediate, descriptive failures.  None of these
    checks run when the sanitizer is off.
    """


class CollectiveTimeoutError(SanitizerError):
    """Raised by the sanitizer's hang watchdog when a collective waits too long.

    Without the sanitizer a wedged collective only surfaces after the
    generous ``DIBELLA_BARRIER_TIMEOUT`` as an anonymous broken barrier; the
    watchdog fails faster (``DIBELLA_SANITIZE_TIMEOUT``) and attaches the
    failing rank's last-N collective trace so the divergence point is
    readable from the error alone.
    """


class SegmentStateError(SanitizerError):
    """Raised by the sanitizer's split-phase segment guards.

    Covers the double-buffer lifecycle hazards: finishing an exchange that
    was never started on this rank (read-before-publish), finishing the same
    handle twice, and reading a slot whose segment was already rewritten or
    poisoned (use-after-release).
    """
