"""Errors raised by the simulated SPMD runtime."""

from __future__ import annotations


class SPMDError(RuntimeError):
    """Base class for errors raised by the simulated runtime."""


class CollectiveMismatchError(SPMDError):
    """Raised when ranks disagree on which collective they are executing.

    In real MPI this is a silent deadlock; the simulator detects it at the
    synchronisation point and fails fast with the set of conflicting calls.
    """


class RankFailedError(SPMDError):
    """Raised on all ranks when any rank's program raised an exception.

    The original exception (from the first failing rank) is attached as
    ``__cause__`` by the runtime so test failures point at the real bug.
    """
