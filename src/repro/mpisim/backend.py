"""Pluggable SPMD runtime backends: threads or real processes per rank.

:func:`repro.mpisim.runtime.spmd_run` delegates the actual launching of rank
programs to a :class:`RuntimeBackend`:

* :class:`ThreadBackend` — one thread per rank, collectives move payloads by
  reference through :class:`repro.mpisim.communicator._CollectiveState`.
  Zero-copy and fast to start, but the GIL serialises rank *compute*; use it
  for tests, small runs, and anything dominated by numpy kernels that
  release the GIL.
* :class:`ProcessBackend` — one ``multiprocessing`` process per rank, so P
  ranks really use P cores.  Collectives cross process boundaries as *typed
  buffers* in POSIX shared memory: every payload is serialised with the
  explicit dtype+shape wire format of :mod:`repro.mpisim.serialization`,
  deposited in a ``multiprocessing.shared_memory`` segment, and read by its
  consumers directly out of shared memory.  ``alltoall``/``alltoallv`` use a
  destination-direct layout (each rank writes one segment with a
  per-destination offset table; every peer reads only its slice), so bulk
  exchanges never funnel through a coordinator rank.

Both backends implement the same deposit/elect/combine/collect protocol, so
:class:`repro.mpisim.communicator.SimCommunicator` (which owns collective
semantics and byte accounting) is backend-agnostic, and a pipeline run
produces bit-identical scientific output under either backend — the
backend-parity test suite pins exactly that.
"""

from __future__ import annotations

import atexit
import os
import pickle
import queue as queue_module
import struct
import threading
import time
from abc import ABC, abstractmethod
from multiprocessing.shared_memory import SharedMemory
from typing import Any, Callable

from repro.mpisim.communicator import (
    EXCHANGE_SLOTS,
    CombineFn,
    SimCommunicator,
    _CollectiveState,
)
from repro.mpisim.errors import (
    CollectiveMismatchError,
    RankFailedError,
    SegmentStateError,
)
from repro.mpisim.faults import RunFaults
from repro.mpisim.sanitize import watchdog_timeout
from repro.mpisim.serialization import decode_payload, encode_payload
from repro.mpisim.topology import Topology
from repro.mpisim.tracing import CommTrace

__all__ = [
    "RuntimeBackend",
    "ThreadBackend",
    "ProcessBackend",
    "resolve_backend",
    "shutdown_rank_pools",
    "active_rank_pools",
    "rank_pool_stats",
    "recovery_counters",
    "reset_recovery_counters",
    "BACKEND_NAMES",
]

#: Names accepted by :func:`resolve_backend` (and the ``--backend`` CLI knob).
BACKEND_NAMES: tuple[str, ...] = ("thread", "process")

#: Fixed-width slots in the shared metadata arrays.
_NAME_LEN = 64   # shared-memory segment names ("psm_..." style, well under 64)
_OP_LEN = 48     # collective op names ("allreduce:sum", ...), truncated to fit

#: How long a rank may sit in a barrier before declaring the run wedged.
#: This bounds *synchronisation* stalls, not compute: a rank legitimately
#: waits at a barrier for as long as the slowest peer computes, so the
#: default is generous.  Override with DIBELLA_BARRIER_TIMEOUT (seconds).
_BARRIER_TIMEOUT = float(os.environ.get("DIBELLA_BARRIER_TIMEOUT", "600"))


# ---------------------------------------------------------------------------
# Recovery accounting (docs/fault-tolerance.md)
# ---------------------------------------------------------------------------

_RECOVERY_LOCK = threading.Lock()
_RECOVERY_COUNTERS = {"rank_failures_detected": 0, "pool_respawns": 0}


def _note_recovery(key: str, n: int = 1) -> None:
    with _RECOVERY_LOCK:
        _RECOVERY_COUNTERS[key] += n


def recovery_counters() -> dict[str, int]:
    """Process-wide failure-recovery counters.

    ``rank_failures_detected`` counts worker processes whose death the
    parent detected (silent exits mid-run, or deaths while parked in the
    pool); ``pool_respawns`` counts the pooled workers respawned because a
    failure evicted their pool.  The :class:`~repro.core.service.AlignmentService`
    snapshots these around each retried run and folds the delta into the
    run's result counters.
    """
    with _RECOVERY_LOCK:
        return dict(_RECOVERY_COUNTERS)


def reset_recovery_counters() -> None:
    """Zero the recovery counters (tests and smoke scripts)."""
    with _RECOVERY_LOCK:
        for key in _RECOVERY_COUNTERS:
            _RECOVERY_COUNTERS[key] = 0
        _EVICTED_KEYS.clear()


class RuntimeBackend(ABC):
    """Strategy interface: how the P rank programs of an SPMD run execute."""

    #: Registry name of the backend ("thread", "process").
    name: str = ""

    @abstractmethod
    def run(
        self,
        n_ranks: int,
        fn: Callable[..., Any],
        args: tuple[Any, ...],
        kwargs: dict[str, Any],
        topology: Topology | None,
        trace: CommTrace | None,
        sanitize: bool = False,
        faults: RunFaults | None = None,
    ) -> list[Any]:
        """Execute ``fn(comm, *args, **kwargs)`` on every rank, return results
        in rank order; raise :class:`RankFailedError` if any rank failed.

        ``sanitize`` arms the runtime sanitizer on this run's collective
        engine (congruence checks, split-phase segment guards, hang
        watchdog — see :mod:`repro.mpisim.sanitize`).  ``faults`` is this
        run's bound fault plan (:mod:`repro.mpisim.faults`), handed to every
        rank's communicator."""


def resolve_backend(backend: str | RuntimeBackend | None,
                    pool: bool = False) -> RuntimeBackend:
    """Turn a backend name (or an already-built backend) into an instance.

    ``pool=True`` asks the process backend to acquire its ranks from the
    persistent rank pool (see :class:`_RankPool`) instead of forking fresh
    processes; the thread backend has no fork cost to amortise and ignores
    the flag.  An explicitly constructed :class:`RuntimeBackend` instance is
    passed through untouched (its own pooling setting wins).
    """
    if backend is None:
        return ThreadBackend()
    if isinstance(backend, RuntimeBackend):
        return backend
    if backend == "thread":
        return ThreadBackend()
    if backend == "process":
        return ProcessBackend(pool=pool)
    raise ValueError(
        f"unknown runtime backend {backend!r}; expected one of {BACKEND_NAMES}"
    )


# ---------------------------------------------------------------------------
# Thread backend
# ---------------------------------------------------------------------------

class ThreadBackend(RuntimeBackend):
    """Ranks are threads in this process; payloads move by reference."""

    name = "thread"

    def run(self, n_ranks, fn, args, kwargs, topology, trace, sanitize=False,
            faults=None):
        if faults is not None and faults.has_kill:
            raise ValueError(
                "the thread backend cannot inject 'kill' faults: ranks are "
                "threads of this process, so killing one would kill the "
                "whole run — use backend='process' (or an 'exit' fault)"
            )
        state = _CollectiveState(n_ranks, sanitize=sanitize)
        results: list[Any] = [None] * n_ranks
        failures: list[tuple[int, BaseException]] = []
        failures_lock = threading.Lock()

        def worker(rank: int) -> None:
            comm = SimCommunicator(rank, n_ranks, state, topology=topology,
                                   trace=trace, faults=faults)
            try:
                results[rank] = fn(comm, *args, **kwargs)
            except threading.BrokenBarrierError:
                # Another rank failed and aborted the barrier; stay quiet, the
                # original failure is reported below.
                pass
            except BaseException as exc:  # noqa: BLE001 - must capture rank failures
                with failures_lock:
                    failures.append((rank, exc))
                state.abort()

        if n_ranks == 1:
            # Fast path: no threads for single-rank runs (common in tests and
            # in the Table 2 single-node comparison).
            worker(0)
        else:
            threads = [
                threading.Thread(target=worker, args=(rank,), name=f"spmd-rank-{rank}")
                for rank in range(n_ranks)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        if failures:
            failures.sort(key=lambda item: item[0])
            rank, exc = failures[0]
            raise RankFailedError(
                f"rank {rank} failed with {type(exc).__name__}: {exc}"
            ) from exc
        return results


# ---------------------------------------------------------------------------
# Process backend: shared-memory collective engine
# ---------------------------------------------------------------------------

def _attach_shm(name: str) -> SharedMemory:
    """Attach an existing segment created by a peer rank.

    All ranks are children of one parent, so they share a single
    ``multiprocessing`` resource tracker: the attach-time auto-registration
    (unconditional on Python <= 3.12) lands in the same set the creator
    already registered the name into, and the creator's ``unlink`` clears it
    exactly once.  Do NOT unregister here — that would remove the creator's
    registration from the shared tracker and produce KeyError noise at its
    unlink.
    """
    return SharedMemory(name=name)


class _ProcessCollectiveEngine:
    """Shared-memory deposit/elect/combine/collect engine.

    All mutable cross-process state lives in ``multiprocessing`` primitives
    created by the parent and inherited by (or shipped to) the rank
    processes:

    * a barrier electing one rank per collective,
    * per-rank slots publishing each rank's collective name and the
      (name, size) of the shared-memory segment holding its typed
      contribution,
    * per-rank result slots filled by the elected rank,
    * an error slot carrying a pickled exception to every rank.

    Two data paths share the same three-barrier cadence:

    * **central** (reductions, gathers, broadcasts — small payloads): the
      elected rank decodes every contribution, runs the combine, and writes
      one typed result segment per rank.
    * **exchange** (``alltoall``/``alltoallv`` — the bulk path): each rank's
      segment carries a per-destination offset table, and after a validation
      barrier every rank reads its slice from every peer's segment directly.
      No coordinator touches the bulk data.
    """

    def __init__(self, ctx, n_ranks: int, sanitize: bool = False):
        self.n_ranks = n_ranks
        # The sanitizer flag lives in shared memory because the pooled
        # engine outlives any single run: the parent flips it between runs
        # (while every worker is parked) and the long-forked workers read
        # the current value.
        self._sanitize = ctx.Value("b", int(sanitize), lock=False)
        self.barrier = ctx.Barrier(n_ranks)
        self._op_names = ctx.Array("c", n_ranks * _OP_LEN, lock=False)
        self._contrib_names = ctx.Array("c", n_ranks * _NAME_LEN, lock=False)
        self._contrib_sizes = ctx.Array("q", n_ranks, lock=False)
        self._result_names = ctx.Array("c", n_ranks * _NAME_LEN, lock=False)
        self._result_sizes = ctx.Array("q", n_ranks, lock=False)
        self._error_name = ctx.Array("c", _NAME_LEN, lock=False)
        self._error_size = ctx.Value("q", 0, lock=False)
        # Split-phase exchange: one metadata slot set per in-flight superstep
        # (EXCHANGE_SLOTS of them — the double buffer) plus per-slot
        # publish/consume sequence arrays, all coordinated through one
        # Condition — the split-phase fast path never touches the global
        # barrier, so a rank publishes its next superstep while peers are
        # still reading the previous one.
        self._x_cond = ctx.Condition()
        self._x_abort = ctx.Value("b", 0, lock=False)
        self._x_ops = [ctx.Array("c", n_ranks * _OP_LEN, lock=False)
                       for _ in range(EXCHANGE_SLOTS)]
        self._x_names = [ctx.Array("c", n_ranks * _NAME_LEN, lock=False)
                         for _ in range(EXCHANGE_SLOTS)]
        self._x_published = [ctx.Array("q", n_ranks, lock=False)
                             for _ in range(EXCHANGE_SLOTS)]
        self._x_consumed = [ctx.Array("q", n_ranks, lock=False)
                            for _ in range(EXCHANGE_SLOTS)]
        for slot in range(EXCHANGE_SLOTS):
            for q in range(n_ranks):
                self._x_published[slot][q] = -1
                self._x_consumed[slot][q] = -1
        # Result segments created by this process when it was elected; they
        # are unlinked one collective later, after every consumer has read.
        self._owned_results: list[SharedMemory] = []
        self._owned_error: SharedMemory | None = None
        # Exchange segments this rank published whose consumption is not yet
        # proven (seq -> segment); reclaimed EXCHANGE_SLOTS supersteps later
        # or at shutdown.
        self._x_inflight: dict[int, SharedMemory] = {}

    # -- slot helpers --------------------------------------------------------

    @staticmethod
    def _put_str(array, index: int, width: int, value: str) -> None:
        raw = value.encode("ascii")[:width].ljust(width, b"\0")
        array[index * width : (index + 1) * width] = raw

    @staticmethod
    def _get_str(array, index: int, width: int) -> str:
        raw = bytes(array[index * width : (index + 1) * width])
        return raw.rstrip(b"\0").decode("ascii")

    @property
    def sanitize(self) -> bool:
        """Whether the runtime sanitizer is armed for the current run."""
        return bool(self._sanitize.value)

    def set_sanitize(self, flag: bool) -> None:
        """Flip the sanitizer for the next run (pooled engines, parent only,
        while every worker is parked)."""
        self._sanitize.value = int(flag)

    @property
    def aborted_by_peer(self) -> bool:
        """Whether :meth:`abort` was called (vs a wait timing out on its own);
        see the thread engine's property of the same name."""
        return bool(self._x_abort.value)

    def _wait_timeout(self) -> float:
        """Collective wait bound: the sanitizer's watchdog tightens it."""
        return watchdog_timeout() if self.sanitize else _BARRIER_TIMEOUT

    def abort(self) -> None:
        """Break the barrier (and the split-phase handshake) so ranks blocked
        in a collective terminate."""
        self.barrier.abort()
        with self._x_cond:
            self._x_abort.value = 1
            self._x_cond.notify_all()

    # -- split-phase exchange (see communicator.CollectiveEngine) -------------

    def _x_wait(self, predicate) -> None:
        """Wait under the exchange condition; abort/timeout -> BrokenBarrierError.

        The wait is chunked (1 s slices) so a notify lost to process
        scheduling can only delay, never wedge, the handshake.
        """
        deadline = time.monotonic() + self._wait_timeout()
        with self._x_cond:
            while True:
                if self._x_abort.value:
                    raise threading.BrokenBarrierError
                if predicate():
                    return
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise threading.BrokenBarrierError
                self._x_cond.wait(timeout=min(remaining, 1.0))

    def exchange_start(self, rank: int, op_name: str, send: list,
                       seq: int) -> Any:
        """Publish superstep *seq*: write one exchange segment, mark published.

        Blocks only until slot ``seq % EXCHANGE_SLOTS`` is reusable (every
        rank consumed superstep ``seq - EXCHANGE_SLOTS``), at which point
        this rank's own ``seq - EXCHANGE_SLOTS`` segment is also provably
        read by everyone and is reclaimed.  EXCHANGE_SLOTS segments per rank
        are therefore live at any moment — the double buffer.
        """
        slot = seq % EXCHANGE_SLOTS
        blobs = [encode_payload(item) for item in send]
        self._x_wait(
            lambda: all(self._x_consumed[slot][q] >= seq - EXCHANGE_SLOTS
                        for q in range(self.n_ranks))
        )
        stale = self._x_inflight.pop(seq - EXCHANGE_SLOTS, None)
        if stale is not None:
            self._destroy(stale)
        shm, _payload_size = self._write_exchange_segment(blobs)
        self._x_inflight[seq] = shm
        self._put_str(self._x_ops[slot], rank, _OP_LEN, op_name[:_OP_LEN])
        self._put_str(self._x_names[slot], rank, _NAME_LEN, shm.name)
        with self._x_cond:
            self._x_published[slot][rank] = seq
            self._x_cond.notify_all()
        # Keep only the self-addressed blob for the finish-side self
        # delivery; the rest already lives in the shared-memory segment, and
        # retaining the full encoded copy would double the per-superstep
        # memory bound.
        return (seq, blobs[rank])

    def exchange_finish(self, rank: int, token: Any) -> list:
        """Collect superstep *token*'s payloads once every rank has published."""
        seq, own_blob = token
        slot = seq % EXCHANGE_SLOTS
        if self.sanitize:
            # Same lifecycle guards as the thread engine: fail fast instead
            # of waiting out a publish that never happened, or re-reading a
            # slot this rank already consumed.  (Poisoning is structural
            # here: consumed segments are unlinked, so a stale attach raises
            # FileNotFoundError — these checks turn that into a description.)
            if self._x_published[slot][rank] < seq:
                raise SegmentStateError(
                    f"sanitizer: rank {rank} finishing split-phase superstep "
                    f"{seq} it never started (read-before-publish; slot "
                    f"{slot} last published seq {self._x_published[slot][rank]})"
                )
            if self._x_consumed[slot][rank] >= seq:
                raise SegmentStateError(
                    f"sanitizer: rank {rank} finishing split-phase superstep "
                    f"{seq} twice (slot {slot} already consumed through seq "
                    f"{self._x_consumed[slot][rank]})"
                )
        self._x_wait(
            lambda: all(self._x_published[slot][q] >= seq
                        for q in range(self.n_ranks))
        )
        if self.sanitize:
            stale = [q for q in range(self.n_ranks)
                     if self._x_published[slot][q] != seq]
            if stale:
                raise SegmentStateError(
                    f"sanitizer: rank {rank} reading split-phase superstep "
                    f"{seq} after ranks {stale} rewrote slot {slot} "
                    f"(use-after-release; their published seqs are "
                    f"{[int(self._x_published[slot][q]) for q in stale]})"
                )
        names = {self._get_str(self._x_ops[slot], q, _OP_LEN)
                 for q in range(self.n_ranks)}
        if len(names) != 1:
            raise CollectiveMismatchError(
                f"ranks disagree on split-phase collective: {sorted(names)}"
            )
        received: list = []
        for src in range(self.n_ranks):
            if src == rank:
                received.append(decode_payload(own_blob))
                continue
            peer = _attach_shm(self._get_str(self._x_names[slot], src, _NAME_LEN))
            try:
                table = struct.unpack_from(f"<{self.n_ranks + 1}Q", peer.buf, 0)
                received.append(decode_payload(peer.buf[table[rank] : table[rank + 1]]))
            finally:
                peer.close()
        with self._x_cond:
            self._x_consumed[slot][rank] = seq
            self._x_cond.notify_all()
        return received

    # -- protocol ------------------------------------------------------------

    def execute(self, rank: int, op_name: str, contribution: Any,
                combine: CombineFn) -> Any:
        # Exchange ops may carry a phase label ("alltoallv[overlap]"); the
        # base name before the label selects the destination-direct path.
        is_exchange = op_name.split("[", 1)[0] in ("alltoall", "alltoallv")
        if is_exchange:
            blobs = [encode_payload(item) for item in contribution]
            shm, payload_size = self._write_exchange_segment(blobs)
        else:
            payload = encode_payload(contribution)
            shm, payload_size = self._write_segment(payload)
        self._put_str(self._op_names, rank, _OP_LEN, op_name[:_OP_LEN])
        self._put_str(self._contrib_names, rank, _NAME_LEN, shm.name)
        self._contrib_sizes[rank] = payload_size
        try:
            return self._execute_synchronised(rank, is_exchange, shm, blobs if is_exchange else None, combine)
        except threading.BrokenBarrierError:
            # A peer failed (or a barrier timed out): nobody will consume this
            # contribution, so reclaim it before propagating.
            self._destroy(shm)
            raise

    def _execute_synchronised(self, rank: int, is_exchange: bool,
                              shm: SharedMemory, blobs: list[bytes] | None,
                              combine: CombineFn) -> Any:
        timeout = self._wait_timeout()
        elected = self.barrier.wait(timeout=timeout) == 0
        if elected:
            self._error_size.value = 0
            try:
                self._validate_ops()
                if not is_exchange:
                    self._combine_central(rank, shm, combine)
            except BaseException as exc:  # propagated to every rank below
                self._publish_error(exc)

        self.barrier.wait(timeout=timeout)
        error = self._read_error()
        if error is not None:
            # Synchronise before reclaiming so every rank has read the error.
            self.barrier.wait(timeout=timeout)
            self._destroy(shm)
            if elected:
                self._release_owned()
            raise error

        if is_exchange:
            received = self._read_exchange(rank, blobs)
            self.barrier.wait(timeout=timeout)  # all peers done reading
            self._destroy(shm)
            return received

        result = self._read_result(rank)
        self._destroy(shm)  # elected consumed every contribution before barrier 2
        self.barrier.wait(timeout=timeout)  # all results consumed
        if elected:
            self._release_owned()
        return result

    # -- central path --------------------------------------------------------

    def _combine_central(self, rank: int, own_shm: SharedMemory,
                         combine: CombineFn) -> None:
        contributions: list[Any] = []
        for src in range(self.n_ranks):
            size = int(self._contrib_sizes[src])
            if src == rank:
                contributions.append(decode_payload(own_shm.buf[:size]))
                continue
            peer = _attach_shm(self._get_str(self._contrib_names, src, _NAME_LEN))
            try:
                contributions.append(decode_payload(peer.buf[:size]))
            finally:
                peer.close()
        results = combine(contributions)
        if len(results) != self.n_ranks:
            raise ValueError(
                f"combine produced {len(results)} results for {self.n_ranks} ranks"
            )
        for dst, value in enumerate(results):
            payload = encode_payload(value)
            out, size = self._write_segment(payload)
            self._owned_results.append(out)
            self._put_str(self._result_names, dst, _NAME_LEN, out.name)
            self._result_sizes[dst] = size

    def _read_result(self, rank: int) -> Any:
        size = int(self._result_sizes[rank])
        shm = _attach_shm(self._get_str(self._result_names, rank, _NAME_LEN))
        try:
            return decode_payload(shm.buf[:size])
        finally:
            shm.close()

    # -- exchange path -------------------------------------------------------

    def _write_exchange_segment(
        self, blobs: list[bytes]
    ) -> tuple[SharedMemory, int]:
        """One segment per source rank: u64 offset table + concatenated blobs."""
        header = 8 * (self.n_ranks + 1)
        offsets = [header]
        for blob in blobs:
            offsets.append(offsets[-1] + len(blob))
        table = struct.pack(f"<{self.n_ranks + 1}Q", *offsets)
        total = offsets[-1]
        shm = SharedMemory(create=True, size=max(1, total))
        shm.buf[:header] = table
        for blob, start in zip(blobs, offsets[:-1]):
            shm.buf[start : start + len(blob)] = blob
        return shm, total

    def _read_exchange(self, rank: int, own_blobs: list[bytes]) -> list[Any]:
        received: list[Any] = []
        for src in range(self.n_ranks):
            if src == rank:
                received.append(decode_payload(own_blobs[rank]))
                continue
            peer = _attach_shm(self._get_str(self._contrib_names, src, _NAME_LEN))
            try:
                table = struct.unpack_from(f"<{self.n_ranks + 1}Q", peer.buf, 0)
                received.append(decode_payload(peer.buf[table[rank] : table[rank + 1]]))
            finally:
                peer.close()
        return received

    # -- errors and cleanup ---------------------------------------------------

    def _validate_ops(self) -> None:
        names = {self._get_str(self._op_names, r, _OP_LEN) for r in range(self.n_ranks)}
        if len(names) != 1:
            raise CollectiveMismatchError(
                f"ranks disagree on collective: {sorted(names)}"
            )

    def _publish_error(self, exc: BaseException) -> None:
        try:
            payload = pickle.dumps(exc)
        except Exception:
            payload = pickle.dumps(
                RuntimeError(f"{type(exc).__name__}: {exc}")
            )
        self._release_owned()  # partial results from the failed combine
        shm, size = self._write_segment(payload)
        self._owned_error = shm
        self._put_str(self._error_name, 0, _NAME_LEN, shm.name)
        self._error_size.value = size

    def _read_error(self) -> BaseException | None:
        size = int(self._error_size.value)
        if size == 0:
            return None
        if self._owned_error is not None:  # the elected rank already holds it
            return pickle.loads(bytes(self._owned_error.buf[:size]))
        shm = _attach_shm(self._get_str(self._error_name, 0, _NAME_LEN))
        try:
            return pickle.loads(bytes(shm.buf[:size]))
        finally:
            shm.close()

    @staticmethod
    def _write_segment(payload: bytes) -> tuple[SharedMemory, int]:
        shm = SharedMemory(create=True, size=max(1, len(payload)))
        shm.buf[: len(payload)] = payload
        return shm, len(payload)

    @staticmethod
    def _destroy(shm: SharedMemory) -> None:
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def _release_owned(self) -> None:
        """Unlink result/error segments this process created for a previous
        collective (their consumers have all read by the time the next
        collective's first barrier passes)."""
        for shm in self._owned_results:
            self._destroy(shm)
        self._owned_results.clear()
        if self._owned_error is not None:
            self._destroy(self._owned_error)
            self._owned_error = None

    def shutdown(self) -> None:
        """Final cleanup at the end of a rank program (or of one pooled job).

        The last EXCHANGE_SLOTS split-phase supersteps' segments are still
        in flight here, and a fast rank can reach shutdown while a slow peer
        is still reading them — so each is reclaimed only once every rank
        has marked it consumed.  On an aborted run the wait short-circuits
        and the segments are reclaimed unconditionally (the peers are
        aborting too, and a leaked segment would outlive the process).
        """
        self._release_owned()
        for seq in sorted(self._x_inflight):
            slot = seq % EXCHANGE_SLOTS
            try:
                self._x_wait(
                    lambda slot=slot, seq=seq: all(
                        self._x_consumed[slot][q] >= seq
                        for q in range(self.n_ranks)
                    )
                )
            except threading.BrokenBarrierError:
                pass
            self._destroy(self._x_inflight[seq])
        self._x_inflight.clear()

    def reclaim_orphan_segments(self) -> list[str]:
        """Parent-side: unlink every segment still named in the shared metadata.

        After a worker dies without cleanup (SIGKILL, OOM) its published
        segments — central contributions, split-phase exchange slots
        (including half-published supersteps no peer ever consumed), elected
        results and the error slot — survive in ``/dev/shm``.  Their names
        are all recorded in the engine's metadata arrays, so the parent can
        reclaim them by name.  Must only be called once every worker of this
        engine is joined: a live worker may still be writing.  Names whose
        segments were already legitimately unlinked are skipped
        (``FileNotFoundError`` on attach).  Returns the reclaimed names.
        """
        names: set[str] = set()
        for rank in range(self.n_ranks):
            names.add(self._get_str(self._contrib_names, rank, _NAME_LEN))
            names.add(self._get_str(self._result_names, rank, _NAME_LEN))
            for slot in range(EXCHANGE_SLOTS):
                names.add(self._get_str(self._x_names[slot], rank, _NAME_LEN))
        names.add(self._get_str(self._error_name, 0, _NAME_LEN))
        names.discard("")
        reclaimed: list[str] = []
        for name in sorted(names):
            try:
                shm = SharedMemory(name=name)
            except FileNotFoundError:
                continue
            self._destroy(shm)
            reclaimed.append(name)
        return reclaimed

    def reset_between_runs(self) -> None:
        """Re-arm the split-phase exchange state for the next pooled run.

        Called by the *parent* while every pooled rank is parked on the pool
        barrier (so nothing races these writes).  Each run's communicators
        restart their exchange sequence numbers at 0; without this reset the
        previous run's publish/consume marks would satisfy the new run's
        predicates early and let a rank read stale metadata.
        """
        for slot in range(EXCHANGE_SLOTS):
            for q in range(self.n_ranks):
                self._x_published[slot][q] = -1
                self._x_consumed[slot][q] = -1
        self._error_size.value = 0
        self._x_abort.value = 0


def _run_rank_job(
    rank: int,
    n_ranks: int,
    engine: _ProcessCollectiveEngine,
    fn: Callable[..., Any],
    args: tuple[Any, ...],
    kwargs: dict[str, Any],
    topology: Topology | None,
    want_trace: bool,
    results_queue,
    faults: RunFaults | None = None,
) -> None:
    """Run one rank program against *engine* and ship back result + trace."""
    trace = CommTrace(n_ranks) if want_trace else None
    comm = SimCommunicator(rank, n_ranks, engine, topology=topology,
                           trace=trace, faults=faults)
    status, payload = "ok", None
    try:
        payload = fn(comm, *args, **kwargs)
    except threading.BrokenBarrierError:
        # A peer failed (or the parent aborted); the originating failure is
        # reported by that peer.
        status = "broken"
    except BaseException as exc:  # noqa: BLE001 - must capture rank failures
        engine.abort()
        status, payload = "error", exc
        # Exceptions are the payloads most likely to resist pickling (queue
        # serialisation happens in a feeder thread, where a failure would
        # silently drop the message); degrade to a carrier early.
        try:
            pickle.dumps(payload)
        except Exception:
            payload = RuntimeError(f"{type(exc).__name__}: {exc}")
    finally:
        engine.shutdown()
    snapshot = trace.snapshot() if trace is not None else None
    results_queue.put((rank, status, payload, snapshot))


def _process_worker(
    rank: int,
    n_ranks: int,
    engine: _ProcessCollectiveEngine,
    fn: Callable[..., Any],
    args: tuple[Any, ...],
    kwargs: dict[str, Any],
    topology: Topology | None,
    want_trace: bool,
    results_queue,
    faults: RunFaults | None = None,
) -> None:
    """Body of one single-run rank process."""
    _run_rank_job(rank, n_ranks, engine, fn, args, kwargs, topology,
                  want_trace, results_queue, faults)


def _pooled_worker(
    rank: int,
    n_ranks: int,
    engine: _ProcessCollectiveEngine,
    park_barrier,
    job_queue,
    results_queue,
) -> None:
    """Body of one persistent pool rank: park on the barrier between runs.

    The worker blocks on ``park_barrier`` until the parent releases it for
    the next run (the parent is the barrier's extra party and only arrives
    after depositing a job in every rank's queue), runs the job against the
    pool's long-lived engine, reports, and parks again.  A ``None`` job is
    the shutdown sentinel; a barrier abort while parked means the pool is
    being torn down.
    """
    while True:
        try:
            park_barrier.wait()
        except threading.BrokenBarrierError:
            return
        payload = job_queue.get()
        if payload is None:
            return
        try:
            # Jobs arrive pre-pickled (see _RankPool.run); unpickling can
            # still fail receive-side, e.g. an fn defined in a __main__ the
            # worker's fork predates.
            job = pickle.loads(payload)
        except BaseException as exc:  # noqa: BLE001
            engine.abort()
            results_queue.put((rank, "error", RuntimeError(
                f"failed to decode pooled job: {type(exc).__name__}: {exc} "
                "(pooled rank programs must be importable from the worker)"
            ), None))
            return  # the parent evicts this pool; do not park again
        fn, args, kwargs, topology, want_trace, faults = job
        _run_rank_job(rank, n_ranks, engine, fn, args, kwargs, topology,
                      want_trace, results_queue, faults)


def _dead_worker_ranks(workers: list, skip: set[int]) -> list[int]:
    """Ranks (outside *skip*) whose process sentinel reports an exited worker."""
    from multiprocessing import connection as mp_connection

    sentinels = {proc.sentinel: rank for rank, proc in enumerate(workers)
                 if rank not in skip}
    if not sentinels:
        return []
    ready = mp_connection.wait(list(sentinels), timeout=0)
    return sorted(sentinels[sentinel] for sentinel in ready)


def _reap_after_death(
    workers: list,
    results_queue,
    reported: dict[int, tuple[str, Any, dict | None]],
    dead_ranks: set[int],
) -> None:
    """Stop the survivors of a silent worker death and salvage late reports.

    The survivors are blocked waiting on the dead rank inside the engine's
    ``multiprocessing`` primitives, and waking them with ``engine.abort()``
    is NOT an option: notifying a Condition (or breaking a Barrier, which
    notifies internally) whose registered waiter was killed blocks forever
    on the dead sleeper's wakeup handshake.  So the parent terminates the
    unreported survivors directly; their leaked shared-memory segments are
    reclaimed by name afterwards (``reclaim_orphan_segments``).  Survivors
    that already reported are left alone — pooled workers park again and are
    dealt with by the pool eviction.
    """
    for rank, proc in enumerate(workers):
        if rank in reported or rank in dead_ranks:
            continue
        if proc.is_alive():
            proc.terminate()
    deadline = time.monotonic() + 10.0
    for rank, proc in enumerate(workers):
        if rank in reported:
            continue
        proc.join(timeout=max(0.1, deadline - time.monotonic()))
        if proc.is_alive():  # pragma: no cover - last resort
            proc.kill()
            proc.join(timeout=5.0)
    # A terminated survivor may have flushed its report just before the
    # signal landed; salvage whatever reached the queue.
    while True:
        try:
            rank, status, payload, snapshot = results_queue.get_nowait()
        except queue_module.Empty:
            break
        except Exception:  # pragma: no cover - feeder killed mid-write
            break
        if rank not in dead_ranks:
            reported[rank] = (status, payload, snapshot)
    for rank in range(len(workers)):
        if rank not in reported and rank not in dead_ranks:
            reported[rank] = ("broken", None, None)


def _drain_results(
    workers: list,
    results_queue,
    engine: _ProcessCollectiveEngine,
    n_ranks: int,
) -> tuple[dict[int, tuple[str, Any, dict | None]], list[tuple[int, BaseException]]]:
    """Collect one report per rank, converting silent worker deaths to failures.

    Results are drained *before* joining: a worker only exits once its queue
    feeder thread has flushed, so joining first could deadlock on large
    results.  A worker that dies without reporting (segfault, kill, OOM) is
    detected by polling the process sentinels between queue reads — never by
    waiting on the engine barrier, which the dead rank can no longer
    satisfy — and after a short grace period (long enough for an in-flight
    report of a cleanly-exiting worker to land) the death is recorded as a
    rank failure, the blocked survivors are stopped, and the caller's
    recovery path takes over (pool eviction + segment reclamation).
    """
    reported: dict[int, tuple[str, Any, dict | None]] = {}
    failures: list[tuple[int, BaseException]] = []
    dead_deadline: dict[int, float] = {}
    while len(reported) < n_ranks:
        try:
            rank, status, payload, snapshot = results_queue.get(timeout=0.25)
            reported[rank] = (status, payload, snapshot)
            continue
        except queue_module.Empty:
            pass
        now = time.monotonic()
        confirmed: list[int] = []
        for rank in _dead_worker_ranks(workers, skip=set(reported)):
            if rank not in dead_deadline:
                # A worker that exited cleanly (code 0) may still have its
                # report in the pipe; give it longer than a killed one.
                grace = 5.0 if workers[rank].exitcode == 0 else 0.5
                dead_deadline[rank] = now + grace
            elif now >= dead_deadline[rank]:
                confirmed.append(rank)
        if not confirmed:
            continue
        for rank in confirmed:
            failures.append((rank, RuntimeError(
                f"rank process exited with code {workers[rank].exitcode} "
                "without reporting a result"
            )))
        _note_recovery("rank_failures_detected", len(confirmed))
        _reap_after_death(workers, results_queue, reported, set(confirmed))
        break
    return reported, failures


def _assemble_results(
    reported: dict[int, tuple[str, Any, dict | None]],
    failures: list[tuple[int, BaseException]],
    trace: CommTrace | None,
    n_ranks: int,
) -> list[Any]:
    """Merge traces, order results, and raise on any rank failure."""
    # Merge per-rank traces in rank order (deterministic phase order).
    if trace is not None:
        for rank in sorted(reported):
            snapshot = reported[rank][2]
            if snapshot is not None:
                trace.merge_snapshot(snapshot)

    results: list[Any] = [None] * n_ranks
    broken_ranks: list[int] = []
    for rank, (status, payload, _snapshot) in reported.items():
        if status == "ok":
            results[rank] = payload
        elif status == "error":
            failures.append((rank, payload))
        else:  # "broken": normally a peer's failure is reported by that peer
            broken_ranks.append(rank)

    if failures:
        failures.sort(key=lambda item: item[0])
        rank, exc = failures[0]
        raise RankFailedError(
            f"rank {rank} failed with {type(exc).__name__}: {exc}"
        ) from exc
    if broken_ranks:
        # Every broken barrier should trace back to an originating rank
        # failure; if none was reported the barrier broke on its own —
        # a timeout (a rank stalled past DIBELLA_BARRIER_TIMEOUT) or an
        # external abort.  Never return partial [None] results as success.
        raise RankFailedError(
            f"ranks {sorted(broken_ranks)} aborted on a broken barrier with "
            "no originating rank failure (collective timeout after "
            f"{_BARRIER_TIMEOUT:.0f}s, or an external abort); "
            "set DIBELLA_BARRIER_TIMEOUT to raise the limit"
        )
    return results


def _ensure_resource_tracker() -> None:
    # Start the resource tracker in the parent BEFORE forking so every
    # rank shares it.  Attach-time auto-registrations then deduplicate
    # into the one set the creator's unlink clears; with per-child
    # trackers they would instead survive as spurious "leaked
    # shared_memory" warnings at worker exit.
    try:  # pragma: no cover - trivial plumbing
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
    except Exception:
        pass


class _RankPool:
    """A persistent set of rank processes parked on a barrier between runs.

    Forking P interpreters (and, under ``spawn``, re-importing numpy and the
    pipeline) dominates small ``spmd_run`` invocations — exactly the pattern
    of a bench sweep or repeated pipeline runs over one data set.  The pool
    pays that cost once: its workers and its collective engine live across
    runs, each worker blocking on ``park_barrier`` (the "parked" state) until
    the parent deposits the next job.

    Lifecycle:

    * ``run`` resets the engine's split-phase exchange state (safe: every
      worker is parked), enqueues one pickled job per rank, releases the
      barrier, and drains results exactly like a one-shot run.
    * Any rank failure (or silent worker death) marks the pool **broken**;
      a broken pool is torn down and evicted from the registry, so the next
      pooled run starts fresh — failed runs never leak a poisoned barrier
      into later runs.
    * ``shutdown`` delivers the ``None`` sentinel to every worker, releases
      the barrier one last time, and joins; stuck workers are terminated.

    Because jobs cross a queue, pooled rank programs and their arguments must
    be picklable even under the ``fork`` start method.

    Beyond amortising forks, a parked worker is a *session*: module-level
    state it built during one run is still there for the next.  The pipeline
    leans on this twice — the persistent read caches
    (``repro.core.stages._PERSISTENT_READ_CACHES``) survive between pooled
    runs over the same read set, and the serve phase's resident k-mer
    indexes (``repro.core.stages._RESIDENT_INDEXES``) stay loaded between
    ``run_index_build`` and the ``run_query_batch`` invocations that probe
    them, which is what lets a query batch skip the index build entirely
    (counter ``index_reuse_hits``).  Both registries key their entries by a
    content-derived generation tag, so a worker reused for different data
    evicts the stale generation instead of serving it.
    """

    def __init__(self, ctx, start_method: str, n_ranks: int):
        _ensure_resource_tracker()
        self.n_ranks = n_ranks
        self.start_method = start_method
        self.engine = _ProcessCollectiveEngine(ctx, n_ranks)
        self.park_barrier = ctx.Barrier(n_ranks + 1)
        # Buffered queues (not SimpleQueue): jobs are deposited while the
        # workers are still parked, and a SimpleQueue.put of a job larger
        # than the OS pipe buffer would block the parent before it ever
        # reached the release barrier — a deadlock.  Queue's feeder thread
        # drains asynchronously once the worker starts reading.
        self.job_queues = [ctx.Queue() for _ in range(n_ranks)]
        self.results_queue = ctx.Queue()
        self.broken = False
        self.runs_completed = 0
        self.workers = [
            ctx.Process(
                target=_pooled_worker,
                args=(rank, n_ranks, self.engine, self.park_barrier,
                      self.job_queues[rank], self.results_queue),
                name=f"spmd-pool-rank-{rank}",
                daemon=True,
            )
            for rank in range(n_ranks)
        ]
        for proc in self.workers:
            proc.start()

    def run(self, fn, args, kwargs, topology, trace, sanitize=False,
            faults=None) -> list[Any]:
        if self.broken:
            raise RuntimeError("rank pool is broken; it should have been evicted")
        # Pickle the job HERE, once: Queue.put pickles in a background feeder
        # thread whose failure is only printed, never raised — an unpicklable
        # job would otherwise strand the released workers in job_queue.get()
        # forever.  This way the error surfaces in the caller while every
        # worker is still safely parked (the pool stays usable).
        try:
            job = pickle.dumps((fn, args, kwargs, topology, trace is not None,
                                faults))
        except Exception as exc:
            raise TypeError(
                f"pooled rank program is not picklable: {type(exc).__name__}: "
                f"{exc} (pooled jobs cross a queue; run without pool=True for "
                "unpicklable programs)"
            ) from exc
        # A worker that died while parked (OOM kill, crash) leaves the
        # (n+1)-party barrier permanently short; detect it before waiting,
        # and bound the wait so a death in the tiny check-to-wait window
        # still surfaces instead of hanging.
        dead = [rank for rank, proc in enumerate(self.workers)
                if proc.exitcode is not None]
        if not dead:
            # Safe for the same reason reset_between_runs is: every worker
            # is parked, so nothing races the sanitizer flip.
            self.engine.set_sanitize(sanitize)
            self.engine.reset_between_runs()
            for job_queue in self.job_queues:
                job_queue.put(job)
            try:
                self.park_barrier.wait(timeout=_BARRIER_TIMEOUT)
            except threading.BrokenBarrierError:
                dead = [rank for rank, proc in enumerate(self.workers)
                        if proc.exitcode is not None]
        if dead or self.park_barrier.broken:
            self.broken = True
            _note_recovery("rank_failures_detected", max(1, len(dead)))
            _evict_pool(self)
            raise RankFailedError(
                f"pooled rank processes {dead or '(unknown)'} died while "
                "parked; the pool was torn down — the next pooled run starts "
                "a fresh one"
            )
        reported, failures = _drain_results(
            self.workers, self.results_queue, self.engine, self.n_ranks
        )
        try:
            results = _assemble_results(reported, failures, trace, self.n_ranks)
        except BaseException:
            # The engine barrier (or a worker) is now in an unknown state;
            # never reuse this pool.
            self.broken = True
            _evict_pool(self)
            raise
        self.runs_completed += 1
        return results

    def shutdown(self) -> None:
        """Stop the workers and release every pool resource.

        Robust to workers that died undetected: the sentinel+barrier path
        runs only when *every* worker is still alive, because releasing the
        park barrier with a dead party registered as a waiter would wedge
        the parent inside ``multiprocessing``'s notify handshake (the same
        hazard the broken path below documents).
        """
        alive = [proc for proc in self.workers if proc.is_alive()]
        any_dead = any(proc.exitcode is not None for proc in self.workers)
        if alive and not self.broken and not any_dead:
            for job_queue in self.job_queues:
                job_queue.put(None)
            try:
                self.park_barrier.wait(timeout=5.0)
            except Exception:  # workers wedged or already gone
                for proc in alive:
                    if proc.is_alive():
                        proc.terminate()
        elif alive:
            # Broken pool (a rank failed, or a worker died — detected or
            # not).  Do NOT wake the survivors through the barrier/condition:
            # with a dead process still registered as a waiter,
            # multiprocessing.Condition.notify blocks forever waiting for
            # its acknowledgement.  The survivors hold no new shared-memory
            # segments once stopped, so stop them directly.
            for proc in alive:
                proc.terminate()
        for proc in self.workers:
            proc.join(timeout=5.0)
        for proc in self.workers:
            if proc.is_alive():  # pragma: no cover - last resort
                proc.kill()
                proc.join(timeout=5.0)
        for job_queue in self.job_queues:
            job_queue.close()
            job_queue.join_thread()
        self.results_queue.close()
        self.results_queue.join_thread()
        # An unclean end (failure, kill, terminate) can leave the dead and
        # terminated workers' segments — including half-published
        # split-phase supersteps — in /dev/shm; every worker is joined now,
        # so reclaim them by name.
        if any(proc.exitcode != 0 for proc in self.workers) and not any(
                proc.is_alive() for proc in self.workers):
            self.engine.reclaim_orphan_segments()


#: Live pools keyed by (start_method, n_ranks); guarded by _POOLS_LOCK.
_POOLS: dict[tuple[str, int], _RankPool] = {}
_POOLS_LOCK = threading.Lock()

#: Pool keys evicted by a failure whose replacement has not been built yet;
#: the next _acquire_pool for such a key counts its fresh workers as
#: respawns (``pool_respawns``).  Deliberate teardown (shutdown_rank_pools)
#: clears the set — a later pool is then a cold start, not a recovery.
_EVICTED_KEYS: set[tuple[str, int]] = set()


def _acquire_pool(ctx, start_method: str, n_ranks: int) -> _RankPool:
    with _POOLS_LOCK:
        key = (start_method, n_ranks)
        pool = _POOLS.get(key)
        if pool is None or pool.broken:
            if pool is not None:
                pool.shutdown()
            pool = _RankPool(ctx, start_method, n_ranks)
            _POOLS[key] = pool
            if key in _EVICTED_KEYS:
                _EVICTED_KEYS.discard(key)
                _note_recovery("pool_respawns", n_ranks)
        return pool


def _evict_pool(pool: _RankPool) -> None:
    with _POOLS_LOCK:
        for key, candidate in list(_POOLS.items()):
            if candidate is pool:
                del _POOLS[key]
        _EVICTED_KEYS.add((pool.start_method, pool.n_ranks))
    pool.shutdown()


def active_rank_pools() -> int:
    """Number of live rank pools (tests and diagnostics)."""
    with _POOLS_LOCK:
        return len(_POOLS)


def rank_pool_stats() -> list[dict[str, int | str]]:
    """Per-pool usage statistics (bench sweeps and ``--pool-stats`` report these).

    Returns one entry per live pool with its start method, rank count, the
    number of ``spmd_run`` invocations it has served, and
    ``forks_amortised`` — the worker forks the pool's reuse avoided,
    ``(runs_completed - 1) * n_ranks``.  Pooled workers also keep per-rank
    state resident between runs (the persistent read caches and the serve
    phase's resident k-mer indexes live in the worker processes), so
    ``runs_completed > 1`` is the precondition for every cross-run reuse
    counter the pipeline reports.
    """
    with _POOLS_LOCK:
        return [
            {"start_method": start_method, "n_ranks": n_ranks,
             "runs_completed": pool.runs_completed,
             "forks_amortised": max(0, pool.runs_completed - 1) * n_ranks}
            for (start_method, n_ranks), pool in _POOLS.items()
        ]


def shutdown_rank_pools() -> None:
    """Tear down every persistent rank pool (parked workers exit cleanly).

    Registered via ``atexit`` so pooled runs never leave orphan rank
    processes behind; callers may also invoke it explicitly (benches between
    sweeps, tests asserting a clean slate).
    """
    with _POOLS_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
        _EVICTED_KEYS.clear()
    for pool in pools:
        pool.shutdown()


atexit.register(shutdown_rank_pools)


class ProcessBackend(RuntimeBackend):
    """Ranks are OS processes; collectives move typed buffers in shared memory.

    Parameters
    ----------
    start_method:
        ``multiprocessing`` start method.  Defaults to ``"fork"`` where
        available (rank programs and their arguments need not be picklable,
        and the read set is inherited copy-on-write); ``"spawn"`` works too
        but requires picklable ``fn``/args.
    pool:
        When True, ranks are acquired from the persistent :class:`_RankPool`
        for this (start method, rank count) — processes park on a barrier
        between runs instead of being re-forked, amortising startup across
        runs.  Pooled jobs cross a queue, so ``fn`` and its arguments must be
        picklable even under ``fork``.
    """

    name = "process"

    def __init__(self, start_method: str | None = None, pool: bool = False):
        import multiprocessing as mp

        if start_method is None:
            start_method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        self._ctx = mp.get_context(start_method)
        self.start_method = start_method
        self.use_pool = pool

    def run(self, n_ranks, fn, args, kwargs, topology, trace, sanitize=False,
            faults=None):
        if self.use_pool:
            rank_pool = _acquire_pool(self._ctx, self.start_method, n_ranks)
            return rank_pool.run(fn, args, kwargs, topology, trace, sanitize,
                                 faults)

        _ensure_resource_tracker()
        engine = _ProcessCollectiveEngine(self._ctx, n_ranks, sanitize=sanitize)
        results_queue = self._ctx.Queue()
        workers = [
            self._ctx.Process(
                target=_process_worker,
                args=(rank, n_ranks, engine, fn, args, kwargs, topology,
                      trace is not None, results_queue, faults),
                name=f"spmd-rank-{rank}",
            )
            for rank in range(n_ranks)
        ]
        for proc in workers:
            proc.start()
        reported, failures = _drain_results(workers, results_queue, engine, n_ranks)
        for proc in workers:
            proc.join()
        results_queue.close()
        if failures:
            # Silent deaths skip all worker-side cleanup; every worker is
            # joined now, so reclaim the leaked segments by name.
            engine.reclaim_orphan_segments()
        return _assemble_results(reported, failures, trace, n_ranks)
