"""Pluggable SPMD runtime backends: threads or real processes per rank.

:func:`repro.mpisim.runtime.spmd_run` delegates the actual launching of rank
programs to a :class:`RuntimeBackend`:

* :class:`ThreadBackend` — one thread per rank, collectives move payloads by
  reference through :class:`repro.mpisim.communicator._CollectiveState`.
  Zero-copy and fast to start, but the GIL serialises rank *compute*; use it
  for tests, small runs, and anything dominated by numpy kernels that
  release the GIL.
* :class:`ProcessBackend` — one ``multiprocessing`` process per rank, so P
  ranks really use P cores.  Collectives cross process boundaries as *typed
  buffers* in POSIX shared memory: every payload is serialised with the
  explicit dtype+shape wire format of :mod:`repro.mpisim.serialization`,
  deposited in a ``multiprocessing.shared_memory`` segment, and read by its
  consumers directly out of shared memory.  ``alltoall``/``alltoallv`` use a
  destination-direct layout (each rank writes one segment with a
  per-destination offset table; every peer reads only its slice), so bulk
  exchanges never funnel through a coordinator rank.

Both backends implement the same deposit/elect/combine/collect protocol, so
:class:`repro.mpisim.communicator.SimCommunicator` (which owns collective
semantics and byte accounting) is backend-agnostic, and a pipeline run
produces bit-identical scientific output under either backend — the
backend-parity test suite pins exactly that.
"""

from __future__ import annotations

import os
import pickle
import queue as queue_module
import struct
import threading
import time
from abc import ABC, abstractmethod
from multiprocessing.shared_memory import SharedMemory
from typing import Any, Callable

from repro.mpisim.communicator import (
    CombineFn,
    SimCommunicator,
    _CollectiveState,
)
from repro.mpisim.errors import CollectiveMismatchError, RankFailedError
from repro.mpisim.serialization import decode_payload, encode_payload
from repro.mpisim.topology import Topology
from repro.mpisim.tracing import CommTrace

__all__ = [
    "RuntimeBackend",
    "ThreadBackend",
    "ProcessBackend",
    "resolve_backend",
    "BACKEND_NAMES",
]

#: Names accepted by :func:`resolve_backend` (and the ``--backend`` CLI knob).
BACKEND_NAMES: tuple[str, ...] = ("thread", "process")

#: Fixed-width slots in the shared metadata arrays.
_NAME_LEN = 64   # shared-memory segment names ("psm_..." style, well under 64)
_OP_LEN = 48     # collective op names ("allreduce:sum", ...), truncated to fit

#: How long a rank may sit in a barrier before declaring the run wedged.
#: This bounds *synchronisation* stalls, not compute: a rank legitimately
#: waits at a barrier for as long as the slowest peer computes, so the
#: default is generous.  Override with DIBELLA_BARRIER_TIMEOUT (seconds).
_BARRIER_TIMEOUT = float(os.environ.get("DIBELLA_BARRIER_TIMEOUT", "600"))


class RuntimeBackend(ABC):
    """Strategy interface: how the P rank programs of an SPMD run execute."""

    #: Registry name of the backend ("thread", "process").
    name: str = ""

    @abstractmethod
    def run(
        self,
        n_ranks: int,
        fn: Callable[..., Any],
        args: tuple[Any, ...],
        kwargs: dict[str, Any],
        topology: Topology | None,
        trace: CommTrace | None,
    ) -> list[Any]:
        """Execute ``fn(comm, *args, **kwargs)`` on every rank, return results
        in rank order; raise :class:`RankFailedError` if any rank failed."""


def resolve_backend(backend: str | RuntimeBackend | None) -> RuntimeBackend:
    """Turn a backend name (or an already-built backend) into an instance."""
    if backend is None:
        return ThreadBackend()
    if isinstance(backend, RuntimeBackend):
        return backend
    if backend == "thread":
        return ThreadBackend()
    if backend == "process":
        return ProcessBackend()
    raise ValueError(
        f"unknown runtime backend {backend!r}; expected one of {BACKEND_NAMES}"
    )


# ---------------------------------------------------------------------------
# Thread backend
# ---------------------------------------------------------------------------

class ThreadBackend(RuntimeBackend):
    """Ranks are threads in this process; payloads move by reference."""

    name = "thread"

    def run(self, n_ranks, fn, args, kwargs, topology, trace):
        state = _CollectiveState(n_ranks)
        results: list[Any] = [None] * n_ranks
        failures: list[tuple[int, BaseException]] = []
        failures_lock = threading.Lock()

        def worker(rank: int) -> None:
            comm = SimCommunicator(rank, n_ranks, state, topology=topology, trace=trace)
            try:
                results[rank] = fn(comm, *args, **kwargs)
            except threading.BrokenBarrierError:
                # Another rank failed and aborted the barrier; stay quiet, the
                # original failure is reported below.
                pass
            except BaseException as exc:  # noqa: BLE001 - must capture rank failures
                with failures_lock:
                    failures.append((rank, exc))
                state.abort()

        if n_ranks == 1:
            # Fast path: no threads for single-rank runs (common in tests and
            # in the Table 2 single-node comparison).
            worker(0)
        else:
            threads = [
                threading.Thread(target=worker, args=(rank,), name=f"spmd-rank-{rank}")
                for rank in range(n_ranks)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        if failures:
            failures.sort(key=lambda item: item[0])
            rank, exc = failures[0]
            raise RankFailedError(
                f"rank {rank} failed with {type(exc).__name__}: {exc}"
            ) from exc
        return results


# ---------------------------------------------------------------------------
# Process backend: shared-memory collective engine
# ---------------------------------------------------------------------------

def _attach_shm(name: str) -> SharedMemory:
    """Attach an existing segment created by a peer rank.

    All ranks are children of one parent, so they share a single
    ``multiprocessing`` resource tracker: the attach-time auto-registration
    (unconditional on Python <= 3.12) lands in the same set the creator
    already registered the name into, and the creator's ``unlink`` clears it
    exactly once.  Do NOT unregister here — that would remove the creator's
    registration from the shared tracker and produce KeyError noise at its
    unlink.
    """
    return SharedMemory(name=name)


class _ProcessCollectiveEngine:
    """Shared-memory deposit/elect/combine/collect engine.

    All mutable cross-process state lives in ``multiprocessing`` primitives
    created by the parent and inherited by (or shipped to) the rank
    processes:

    * a barrier electing one rank per collective,
    * per-rank slots publishing each rank's collective name and the
      (name, size) of the shared-memory segment holding its typed
      contribution,
    * per-rank result slots filled by the elected rank,
    * an error slot carrying a pickled exception to every rank.

    Two data paths share the same three-barrier cadence:

    * **central** (reductions, gathers, broadcasts — small payloads): the
      elected rank decodes every contribution, runs the combine, and writes
      one typed result segment per rank.
    * **exchange** (``alltoall``/``alltoallv`` — the bulk path): each rank's
      segment carries a per-destination offset table, and after a validation
      barrier every rank reads its slice from every peer's segment directly.
      No coordinator touches the bulk data.
    """

    def __init__(self, ctx, n_ranks: int):
        self.n_ranks = n_ranks
        self.barrier = ctx.Barrier(n_ranks)
        self._op_names = ctx.Array("c", n_ranks * _OP_LEN, lock=False)
        self._contrib_names = ctx.Array("c", n_ranks * _NAME_LEN, lock=False)
        self._contrib_sizes = ctx.Array("q", n_ranks, lock=False)
        self._result_names = ctx.Array("c", n_ranks * _NAME_LEN, lock=False)
        self._result_sizes = ctx.Array("q", n_ranks, lock=False)
        self._error_name = ctx.Array("c", _NAME_LEN, lock=False)
        self._error_size = ctx.Value("q", 0, lock=False)
        # Result segments created by this process when it was elected; they
        # are unlinked one collective later, after every consumer has read.
        self._owned_results: list[SharedMemory] = []
        self._owned_error: SharedMemory | None = None

    # -- slot helpers --------------------------------------------------------

    @staticmethod
    def _put_str(array, index: int, width: int, value: str) -> None:
        raw = value.encode("ascii")[:width].ljust(width, b"\0")
        array[index * width : (index + 1) * width] = raw

    @staticmethod
    def _get_str(array, index: int, width: int) -> str:
        raw = bytes(array[index * width : (index + 1) * width])
        return raw.rstrip(b"\0").decode("ascii")

    def abort(self) -> None:
        """Break the barrier so ranks blocked in a collective terminate."""
        self.barrier.abort()

    # -- protocol ------------------------------------------------------------

    def execute(self, rank: int, op_name: str, contribution: Any,
                combine: CombineFn) -> Any:
        is_exchange = op_name in ("alltoall", "alltoallv")
        if is_exchange:
            blobs = [encode_payload(item) for item in contribution]
            shm, payload_size = self._write_exchange_segment(blobs)
        else:
            payload = encode_payload(contribution)
            shm, payload_size = self._write_segment(payload)
        self._put_str(self._op_names, rank, _OP_LEN, op_name[:_OP_LEN])
        self._put_str(self._contrib_names, rank, _NAME_LEN, shm.name)
        self._contrib_sizes[rank] = payload_size
        try:
            return self._execute_synchronised(rank, is_exchange, shm, blobs if is_exchange else None, combine)
        except threading.BrokenBarrierError:
            # A peer failed (or a barrier timed out): nobody will consume this
            # contribution, so reclaim it before propagating.
            self._destroy(shm)
            raise

    def _execute_synchronised(self, rank: int, is_exchange: bool,
                              shm: SharedMemory, blobs: list[bytes] | None,
                              combine: CombineFn) -> Any:
        elected = self.barrier.wait(timeout=_BARRIER_TIMEOUT) == 0
        if elected:
            self._error_size.value = 0
            try:
                self._validate_ops()
                if not is_exchange:
                    self._combine_central(rank, shm, combine)
            except BaseException as exc:  # propagated to every rank below
                self._publish_error(exc)

        self.barrier.wait(timeout=_BARRIER_TIMEOUT)
        error = self._read_error()
        if error is not None:
            # Synchronise before reclaiming so every rank has read the error.
            self.barrier.wait(timeout=_BARRIER_TIMEOUT)
            self._destroy(shm)
            if elected:
                self._release_owned()
            raise error

        if is_exchange:
            received = self._read_exchange(rank, blobs)
            self.barrier.wait(timeout=_BARRIER_TIMEOUT)  # all peers done reading
            self._destroy(shm)
            return received

        result = self._read_result(rank)
        self._destroy(shm)  # elected consumed every contribution before barrier 2
        self.barrier.wait(timeout=_BARRIER_TIMEOUT)  # all results consumed
        if elected:
            self._release_owned()
        return result

    # -- central path --------------------------------------------------------

    def _combine_central(self, rank: int, own_shm: SharedMemory,
                         combine: CombineFn) -> None:
        contributions: list[Any] = []
        for src in range(self.n_ranks):
            size = int(self._contrib_sizes[src])
            if src == rank:
                contributions.append(decode_payload(own_shm.buf[:size]))
                continue
            peer = _attach_shm(self._get_str(self._contrib_names, src, _NAME_LEN))
            try:
                contributions.append(decode_payload(peer.buf[:size]))
            finally:
                peer.close()
        results = combine(contributions)
        if len(results) != self.n_ranks:
            raise ValueError(
                f"combine produced {len(results)} results for {self.n_ranks} ranks"
            )
        for dst, value in enumerate(results):
            payload = encode_payload(value)
            out, size = self._write_segment(payload)
            self._owned_results.append(out)
            self._put_str(self._result_names, dst, _NAME_LEN, out.name)
            self._result_sizes[dst] = size

    def _read_result(self, rank: int) -> Any:
        size = int(self._result_sizes[rank])
        shm = _attach_shm(self._get_str(self._result_names, rank, _NAME_LEN))
        try:
            return decode_payload(shm.buf[:size])
        finally:
            shm.close()

    # -- exchange path -------------------------------------------------------

    def _write_exchange_segment(
        self, blobs: list[bytes]
    ) -> tuple[SharedMemory, int]:
        """One segment per source rank: u64 offset table + concatenated blobs."""
        header = 8 * (self.n_ranks + 1)
        offsets = [header]
        for blob in blobs:
            offsets.append(offsets[-1] + len(blob))
        table = struct.pack(f"<{self.n_ranks + 1}Q", *offsets)
        total = offsets[-1]
        shm = SharedMemory(create=True, size=max(1, total))
        shm.buf[:header] = table
        for blob, start in zip(blobs, offsets[:-1]):
            shm.buf[start : start + len(blob)] = blob
        return shm, total

    def _read_exchange(self, rank: int, own_blobs: list[bytes]) -> list[Any]:
        received: list[Any] = []
        for src in range(self.n_ranks):
            if src == rank:
                received.append(decode_payload(own_blobs[rank]))
                continue
            peer = _attach_shm(self._get_str(self._contrib_names, src, _NAME_LEN))
            try:
                table = struct.unpack_from(f"<{self.n_ranks + 1}Q", peer.buf, 0)
                received.append(decode_payload(peer.buf[table[rank] : table[rank + 1]]))
            finally:
                peer.close()
        return received

    # -- errors and cleanup ---------------------------------------------------

    def _validate_ops(self) -> None:
        names = {self._get_str(self._op_names, r, _OP_LEN) for r in range(self.n_ranks)}
        if len(names) != 1:
            raise CollectiveMismatchError(
                f"ranks disagree on collective: {sorted(names)}"
            )

    def _publish_error(self, exc: BaseException) -> None:
        try:
            payload = pickle.dumps(exc)
        except Exception:
            payload = pickle.dumps(
                RuntimeError(f"{type(exc).__name__}: {exc}")
            )
        self._release_owned()  # partial results from the failed combine
        shm, size = self._write_segment(payload)
        self._owned_error = shm
        self._put_str(self._error_name, 0, _NAME_LEN, shm.name)
        self._error_size.value = size

    def _read_error(self) -> BaseException | None:
        size = int(self._error_size.value)
        if size == 0:
            return None
        if self._owned_error is not None:  # the elected rank already holds it
            return pickle.loads(bytes(self._owned_error.buf[:size]))
        shm = _attach_shm(self._get_str(self._error_name, 0, _NAME_LEN))
        try:
            return pickle.loads(bytes(shm.buf[:size]))
        finally:
            shm.close()

    @staticmethod
    def _write_segment(payload: bytes) -> tuple[SharedMemory, int]:
        shm = SharedMemory(create=True, size=max(1, len(payload)))
        shm.buf[: len(payload)] = payload
        return shm, len(payload)

    @staticmethod
    def _destroy(shm: SharedMemory) -> None:
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def _release_owned(self) -> None:
        """Unlink result/error segments this process created for a previous
        collective (their consumers have all read by the time the next
        collective's first barrier passes)."""
        for shm in self._owned_results:
            self._destroy(shm)
        self._owned_results.clear()
        if self._owned_error is not None:
            self._destroy(self._owned_error)
            self._owned_error = None

    def shutdown(self) -> None:
        """Final cleanup at the end of a rank program."""
        self._release_owned()


def _process_worker(
    rank: int,
    n_ranks: int,
    engine: _ProcessCollectiveEngine,
    fn: Callable[..., Any],
    args: tuple[Any, ...],
    kwargs: dict[str, Any],
    topology: Topology | None,
    want_trace: bool,
    results_queue,
) -> None:
    """Body of one rank process: run the program, ship back result + trace."""
    trace = CommTrace(n_ranks) if want_trace else None
    comm = SimCommunicator(rank, n_ranks, engine, topology=topology, trace=trace)
    status, payload = "ok", None
    try:
        payload = fn(comm, *args, **kwargs)
    except threading.BrokenBarrierError:
        # A peer failed (or the parent aborted); the originating failure is
        # reported by that peer.
        status = "broken"
    except BaseException as exc:  # noqa: BLE001 - must capture rank failures
        engine.abort()
        status, payload = "error", exc
        # Exceptions are the payloads most likely to resist pickling (queue
        # serialisation happens in a feeder thread, where a failure would
        # silently drop the message); degrade to a carrier early.
        try:
            pickle.dumps(payload)
        except Exception:
            payload = RuntimeError(f"{type(exc).__name__}: {exc}")
    finally:
        engine.shutdown()
    snapshot = trace.snapshot() if trace is not None else None
    results_queue.put((rank, status, payload, snapshot))


class ProcessBackend(RuntimeBackend):
    """Ranks are OS processes; collectives move typed buffers in shared memory.

    Parameters
    ----------
    start_method:
        ``multiprocessing`` start method.  Defaults to ``"fork"`` where
        available (rank programs and their arguments need not be picklable,
        and the read set is inherited copy-on-write); ``"spawn"`` works too
        but requires picklable ``fn``/args.
    """

    name = "process"

    def __init__(self, start_method: str | None = None):
        import multiprocessing as mp

        if start_method is None:
            start_method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        self._ctx = mp.get_context(start_method)
        self.start_method = start_method

    def run(self, n_ranks, fn, args, kwargs, topology, trace):
        # Start the resource tracker in the parent BEFORE forking so every
        # rank shares it.  Attach-time auto-registrations then deduplicate
        # into the one set the creator's unlink clears; with per-child
        # trackers they would instead survive as spurious "leaked
        # shared_memory" warnings at worker exit.
        try:  # pragma: no cover - trivial plumbing
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:
            pass
        engine = _ProcessCollectiveEngine(self._ctx, n_ranks)
        results_queue = self._ctx.Queue()
        workers = [
            self._ctx.Process(
                target=_process_worker,
                args=(rank, n_ranks, engine, fn, args, kwargs, topology,
                      trace is not None, results_queue),
                name=f"spmd-rank-{rank}",
            )
            for rank in range(n_ranks)
        ]
        for proc in workers:
            proc.start()

        # Drain results *before* joining: a worker only exits once its queue
        # feeder thread has flushed, so joining first could deadlock on large
        # results.  A worker that dies without reporting (segfault, kill)
        # is detected by its exit code and converted into a rank failure.
        reported: dict[int, tuple[str, Any, dict | None]] = {}
        failures: list[tuple[int, BaseException]] = []
        failed_ranks: set[int] = set()
        dead_deadline: dict[int, float] = {}
        while len(reported) + len(failures) < n_ranks:
            try:
                rank, status, payload, snapshot = results_queue.get(timeout=0.5)
                reported[rank] = (status, payload, snapshot)
            except queue_module.Empty:
                # A worker that died without reporting (segfault, OOM kill)
                # never sends a message; give its pipe a short grace period,
                # then convert the death into a rank failure.
                now = time.monotonic()
                for rank, proc in enumerate(workers):
                    if rank in reported or rank in failed_ranks:
                        continue
                    if proc.exitcode is None:
                        continue
                    if rank not in dead_deadline:
                        dead_deadline[rank] = now + 5.0
                    elif now >= dead_deadline[rank]:
                        engine.abort()  # wake peers blocked on the dead rank
                        failed_ranks.add(rank)
                        failures.append((rank, RuntimeError(
                            f"rank process exited with code {proc.exitcode} "
                            "without reporting a result"
                        )))
        for proc in workers:
            proc.join()
        results_queue.close()

        # Merge per-rank traces in rank order (deterministic phase order).
        if trace is not None:
            for rank in sorted(reported):
                snapshot = reported[rank][2]
                if snapshot is not None:
                    trace.merge_snapshot(snapshot)

        results: list[Any] = [None] * n_ranks
        broken_ranks: list[int] = []
        for rank, (status, payload, _snapshot) in reported.items():
            if status == "ok":
                results[rank] = payload
            elif status == "error":
                failures.append((rank, payload))
            else:  # "broken": normally a peer's failure is reported by that peer
                broken_ranks.append(rank)

        if failures:
            failures.sort(key=lambda item: item[0])
            rank, exc = failures[0]
            raise RankFailedError(
                f"rank {rank} failed with {type(exc).__name__}: {exc}"
            ) from exc
        if broken_ranks:
            # Every broken barrier should trace back to an originating rank
            # failure; if none was reported the barrier broke on its own —
            # a timeout (a rank stalled past DIBELLA_BARRIER_TIMEOUT) or an
            # external abort.  Never return partial [None] results as success.
            raise RankFailedError(
                f"ranks {sorted(broken_ranks)} aborted on a broken barrier with "
                "no originating rank failure (collective timeout after "
                f"{_BARRIER_TIMEOUT:.0f}s, or an external abort); "
                "set DIBELLA_BARRIER_TIMEOUT to raise the limit"
            )
        return results
