"""Simulated MPI-style SPMD runtime.

The original diBELLA is an MPI program whose stages are bulk-synchronous
supersteps communicating with ``MPI_Alltoall``/``Alltoallv`` (§4).  This
environment has no MPI implementation, so this subpackage provides a drop-in
substrate with the same programming model:

* :func:`repro.mpisim.runtime.spmd_run` runs the same Python function on
  every rank ("single program, multiple data") on a pluggable
  :class:`repro.mpisim.backend.RuntimeBackend`: threads (payloads by
  reference, default) or one process per rank exchanging explicitly-typed
  buffers through POSIX shared memory (true multi-core compute; see
  :mod:`repro.mpisim.serialization` for the dtype+shape wire format and
  docs/runtime.md for the architecture).
* :class:`repro.mpisim.communicator.SimCommunicator` exposes the collectives
  the pipeline needs — ``barrier``, ``bcast``, ``gather``, ``allgather``,
  ``allreduce``, ``alltoall``, ``alltoallv`` — with the same semantics as
  their MPI counterparts, plus mismatch detection (ranks calling different
  collectives raise instead of deadlocking).
* :class:`repro.mpisim.tracing.CommTrace` records, per phase and per rank,
  the bytes and message counts moved by every collective; the performance
  model in :mod:`repro.netmodel` converts those volumes into projected
  exchange times on each of the paper's platforms.
* :class:`repro.mpisim.topology.Topology` maps ranks onto nodes so the cost
  model can distinguish intra-node from inter-node traffic.

The communication *pattern* and per-rank *volumes* of a pipeline run are
therefore identical to a real MPI execution; only the transport (shared
memory between threads instead of a network) differs.  See DESIGN.md §1.
"""

from repro.mpisim.topology import Topology
from repro.mpisim.tracing import CommTrace, PhaseTraffic
from repro.mpisim.communicator import SimCommunicator
from repro.mpisim.backend import (
    BACKEND_NAMES,
    ProcessBackend,
    RuntimeBackend,
    ThreadBackend,
    active_rank_pools,
    rank_pool_stats,
    recovery_counters,
    reset_recovery_counters,
    resolve_backend,
    shutdown_rank_pools,
)
from repro.mpisim.runtime import spmd_run, SPMDError
from repro.mpisim.errors import (
    CollectiveMismatchError,
    CollectiveTimeoutError,
    InjectedFaultError,
    RankFailedError,
    SanitizerError,
    SegmentStateError,
)
from repro.mpisim.faults import FaultPlan, FaultSpec, RunFaults
from repro.mpisim.collectives import (
    bucket_by_destination,
    payload_nbytes,
    payload_signature,
)
from repro.mpisim.sanitize import sanitize_default, watchdog_timeout
from repro.mpisim.serialization import decode_payload, encode_payload

__all__ = [
    "Topology",
    "CommTrace",
    "PhaseTraffic",
    "SimCommunicator",
    "RuntimeBackend",
    "ThreadBackend",
    "ProcessBackend",
    "resolve_backend",
    "shutdown_rank_pools",
    "active_rank_pools",
    "rank_pool_stats",
    "BACKEND_NAMES",
    "recovery_counters",
    "reset_recovery_counters",
    "spmd_run",
    "SPMDError",
    "CollectiveMismatchError",
    "CollectiveTimeoutError",
    "InjectedFaultError",
    "RankFailedError",
    "SanitizerError",
    "SegmentStateError",
    "FaultPlan",
    "FaultSpec",
    "RunFaults",
    "payload_nbytes",
    "payload_signature",
    "bucket_by_destination",
    "sanitize_default",
    "watchdog_timeout",
    "encode_payload",
    "decode_payload",
]
