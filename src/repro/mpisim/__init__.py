"""Simulated MPI-style SPMD runtime.

The original diBELLA is an MPI program whose stages are bulk-synchronous
supersteps communicating with ``MPI_Alltoall``/``Alltoallv`` (§4).  This
environment has no MPI implementation, so this subpackage provides a drop-in
substrate with the same programming model:

* :func:`repro.mpisim.runtime.spmd_run` launches one thread per rank and runs
  the same Python function on each ("single program, multiple data").
* :class:`repro.mpisim.communicator.SimCommunicator` exposes the collectives
  the pipeline needs — ``barrier``, ``bcast``, ``gather``, ``allgather``,
  ``allreduce``, ``alltoall``, ``alltoallv`` — with the same semantics as
  their MPI counterparts, plus mismatch detection (ranks calling different
  collectives raise instead of deadlocking).
* :class:`repro.mpisim.tracing.CommTrace` records, per phase and per rank,
  the bytes and message counts moved by every collective; the performance
  model in :mod:`repro.netmodel` converts those volumes into projected
  exchange times on each of the paper's platforms.
* :class:`repro.mpisim.topology.Topology` maps ranks onto nodes so the cost
  model can distinguish intra-node from inter-node traffic.

The communication *pattern* and per-rank *volumes* of a pipeline run are
therefore identical to a real MPI execution; only the transport (shared
memory between threads instead of a network) differs.  See DESIGN.md §1.
"""

from repro.mpisim.topology import Topology
from repro.mpisim.tracing import CommTrace, PhaseTraffic
from repro.mpisim.communicator import SimCommunicator
from repro.mpisim.runtime import spmd_run, SPMDError
from repro.mpisim.collectives import payload_nbytes, bucket_by_destination

__all__ = [
    "Topology",
    "CommTrace",
    "PhaseTraffic",
    "SimCommunicator",
    "spmd_run",
    "SPMDError",
    "payload_nbytes",
    "bucket_by_destination",
]
