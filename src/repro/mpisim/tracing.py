"""Communication tracing: per-phase, per-rank byte and message accounting.

Every collective on the simulated communicator reports how many bytes each
rank contributed for each destination.  The trace aggregates those into
per-phase traffic matrices, which are the inputs the network cost model uses
to project exchange times onto the paper's platforms (the actual wall time of
a thread-backed exchange says nothing about a Cray Aries network).

Phases are free-form labels set by the pipeline (e.g. ``"bloom_exchange"``,
``"alignment_exchange"``); all accounting is thread-safe because each rank
only ever appends to its own per-rank record under a short lock.
"""

from __future__ import annotations

import threading
from collections import defaultdict, deque
from dataclasses import dataclass, field

import numpy as np


@dataclass
class PhaseTraffic:
    """Aggregated traffic for one phase.

    Attributes
    ----------
    volume:
        (n_ranks, n_ranks) matrix of bytes sent, ``volume[src, dst]``.
    messages:
        (n_ranks, n_ranks) matrix of message counts (one per non-empty
        destination per collective call).
    collective_calls:
        Number of collective invocations attributed to this phase (counted
        once per call, not per rank).
    """

    n_ranks: int
    volume: np.ndarray = field(default=None)  # type: ignore[assignment]
    messages: np.ndarray = field(default=None)  # type: ignore[assignment]
    collective_calls: int = 0

    def __post_init__(self) -> None:
        if self.volume is None:
            self.volume = np.zeros((self.n_ranks, self.n_ranks), dtype=np.int64)
        if self.messages is None:
            self.messages = np.zeros((self.n_ranks, self.n_ranks), dtype=np.int64)

    @property
    def total_bytes(self) -> int:
        """Total bytes moved in this phase (including rank-to-self copies)."""
        return int(self.volume.sum())

    @property
    def offnode_fraction_placeholder(self) -> float:
        """Fraction of bytes sent to a different rank (node split needs a Topology)."""
        total = self.volume.sum()
        if total == 0:
            return 0.0
        return float((total - np.trace(self.volume)) / total)

    def per_rank_sent(self) -> np.ndarray:
        """Bytes sent by each rank."""
        return self.volume.sum(axis=1)

    def per_rank_received(self) -> np.ndarray:
        """Bytes received by each rank."""
        return self.volume.sum(axis=0)


class CommTrace:
    """Thread-safe accumulator of per-phase communication volumes."""

    def __init__(self, n_ranks: int):
        if n_ranks <= 0:
            raise ValueError("n_ranks must be positive")
        self.n_ranks = n_ranks
        self._lock = threading.Lock()
        self._phases: dict[str, PhaseTraffic] = {}
        self._current_phase: dict[int, str] = defaultdict(lambda: "default")
        self._alltoallv_calls: int = 0

    # -- phase management ------------------------------------------------------

    def set_phase(self, rank: int, phase: str) -> None:
        """Set the phase label subsequent traffic from *rank* is attributed to."""
        with self._lock:
            self._current_phase[rank] = phase
            if phase not in self._phases:
                self._phases[phase] = PhaseTraffic(self.n_ranks)

    def current_phase(self, rank: int) -> str:
        """Phase label currently active for *rank*."""
        with self._lock:
            return self._current_phase[rank]

    # -- recording -------------------------------------------------------------

    def record_send(self, rank: int, dest_bytes: np.ndarray | list[int]) -> None:
        """Record bytes sent from *rank* to every destination in one collective."""
        dest_bytes = np.asarray(dest_bytes, dtype=np.int64)
        if dest_bytes.shape != (self.n_ranks,):
            raise ValueError(
                f"dest_bytes must have shape ({self.n_ranks},), got {dest_bytes.shape}"
            )
        with self._lock:
            phase = self._current_phase[rank]
            traffic = self._phases.setdefault(phase, PhaseTraffic(self.n_ranks))
            traffic.volume[rank, :] += dest_bytes
            traffic.messages[rank, :] += (dest_bytes > 0).astype(np.int64)

    def record_collective_call(self, phase: str) -> None:
        """Count one collective invocation against *phase* (called by rank 0 only)."""
        with self._lock:
            traffic = self._phases.setdefault(phase, PhaseTraffic(self.n_ranks))
            traffic.collective_calls += 1

    def record_alltoallv_call(self) -> int:
        """Count a global Alltoallv invocation; returns its ordinal (1-based).

        The ordinal lets the cost model apply the paper's observed
        first-Alltoallv setup penalty (§10): "the first call to the MPI
        Alltoallv routine ... is almost twice as expensive the first time as
        the second".
        """
        with self._lock:
            self._alltoallv_calls += 1
            return self._alltoallv_calls

    # -- cross-process merging ---------------------------------------------------

    def snapshot(self) -> dict:
        """Picklable copy of everything recorded so far.

        The multiprocess runtime backend gives each rank process its own
        local ``CommTrace``; at the end of the run each worker ships this
        snapshot back to the parent, which folds them together with
        :meth:`merge_snapshot`.  (The trace object itself holds a lock and is
        therefore not picklable.)
        """
        with self._lock:
            return {
                "phases": {
                    name: {
                        "volume": traffic.volume.copy(),
                        "messages": traffic.messages.copy(),
                        "collective_calls": traffic.collective_calls,
                    }
                    for name, traffic in self._phases.items()
                },
                "alltoallv_calls": self._alltoallv_calls,
            }

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` from another process into this trace.

        Byte/message matrices and call counters add element-wise; each worker
        only records its own rank's rows (and only rank 0 counts collective
        calls), so merging per-rank snapshots reproduces exactly what a
        single shared trace would have recorded.
        """
        with self._lock:
            for name, data in snapshot["phases"].items():
                traffic = self._phases.setdefault(name, PhaseTraffic(self.n_ranks))
                traffic.volume += np.asarray(data["volume"], dtype=np.int64)
                traffic.messages += np.asarray(data["messages"], dtype=np.int64)
                traffic.collective_calls += int(data["collective_calls"])
            self._alltoallv_calls += int(snapshot["alltoallv_calls"])

    # -- reporting ---------------------------------------------------------------

    def phases(self) -> list[str]:
        """Phase labels seen so far, in insertion order."""
        with self._lock:
            return list(self._phases.keys())

    def phase_traffic(self, phase: str) -> PhaseTraffic:
        """Traffic recorded for *phase* (empty traffic if the phase never sent)."""
        with self._lock:
            return self._phases.get(phase, PhaseTraffic(self.n_ranks))

    def total_bytes(self) -> int:
        """Total bytes recorded across all phases."""
        with self._lock:
            return int(sum(p.volume.sum() for p in self._phases.values()))

    def summary(self) -> dict[str, dict[str, float]]:
        """Per-phase summary dict used by reports and tests."""
        out: dict[str, dict[str, float]] = {}
        with self._lock:
            for name, traffic in self._phases.items():
                out[name] = {
                    "total_bytes": float(traffic.volume.sum()),
                    "total_messages": float(traffic.messages.sum()),
                    "collective_calls": float(traffic.collective_calls),
                    "max_rank_sent": float(traffic.volume.sum(axis=1).max(initial=0)),
                }
        return out


class CollectiveLog:
    """Fixed-depth ring of one rank's most recent collective operations.

    Kept by each communicator when the runtime sanitizer is on; when the
    hang watchdog fires, this log is formatted into the
    :class:`repro.mpisim.errors.CollectiveTimeoutError` message so the
    divergence point (which op the wedged rank reached, and in which order)
    is readable straight from the failure — the moral equivalent of a stack
    trace for a bulk-synchronous schedule.

    Entries are plain strings; this class only owns the ring and the
    formatting.  It is per-rank and accessed from that rank's thread only,
    so no locking is needed.
    """

    def __init__(self, depth: int = 16):
        if depth <= 0:
            raise ValueError("depth must be positive")
        self._entries: deque[str] = deque(maxlen=depth)
        self._total = 0

    def record(self, entry: str) -> None:
        """Append one collective-op description (oldest entries fall off)."""
        self._entries.append(entry)
        self._total += 1

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def total_recorded(self) -> int:
        """Collectives recorded over the rank's lifetime (not just retained)."""
        return self._total

    def dump(self) -> str:
        """The retained trace, oldest first, one op per line."""
        if not self._entries:
            return "  (no collectives recorded)"
        return "\n".join(f"  {entry}" for entry in self._entries)
