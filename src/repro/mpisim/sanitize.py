"""Runtime sanitizer knobs (``--sanitize`` / ``DIBELLA_SANITIZE``).

The sanitizer is the dynamic half of the SPMD correctness toolchain (the
static half is :mod:`repro.analysis` — see ``docs/static-analysis.md``).
When enabled, the runtime:

* verifies **collective congruence** before every collective — a per-op
  digest of (op name, label, sync/split mode, payload dtype + shape rank) is
  compared across ranks, and a divergence raises a descriptive
  :class:`repro.mpisim.errors.CollectiveMismatchError` naming the diverging
  ranks instead of hanging or silently mixing payloads;
* **guards the split-phase double buffer** — read-before-publish,
  finish-called-twice and use-after-release on an exchange slot raise
  :class:`repro.mpisim.errors.SegmentStateError`, and the thread engine
  poisons slot contents once every rank has consumed them so stale readers
  trip on a sentinel instead of on reused data (the process engine gets the
  same property by unlinking consumed segments);
* arms a **hang watchdog** — collective waits time out after
  ``DIBELLA_SANITIZE_TIMEOUT`` seconds (default 60, vs the non-sanitized
  ``DIBELLA_BARRIER_TIMEOUT`` of 600) and raise
  :class:`repro.mpisim.errors.CollectiveTimeoutError` carrying the rank's
  last-N collective trace.

All checks are observation-only on the happy path: a sanitized run produces
bit-identical science output and communication traces (the congruence
exchange bypasses the byte accounting entirely).

The flag travels *explicitly* — ``spmd_run(..., sanitize=...)`` down to the
collective engines — rather than through ambient globals, because pooled
process workers fork long before any particular run decides to sanitize;
the environment variables below only provide the *defaults*.
"""

from __future__ import annotations

import os

__all__ = [
    "sanitize_default",
    "watchdog_timeout",
    "TRACE_DEPTH",
    "DEFAULT_WATCHDOG_SECONDS",
]

#: How many recent collective ops each rank keeps for the watchdog dump.
TRACE_DEPTH = 16

#: Default hang-watchdog timeout under the sanitizer, in seconds.  Much
#: tighter than DIBELLA_BARRIER_TIMEOUT: a sanitized run wants wedges loud
#: and fast, and the congruence pre-check already synchronises ranks per op
#: so legitimate waits stay short.
DEFAULT_WATCHDOG_SECONDS = 60.0

_FALSE = ("", "0", "false", "no", "off")


def sanitize_default() -> bool:
    """Whether ``DIBELLA_SANITIZE`` asks for sanitized runs by default."""
    return os.environ.get("DIBELLA_SANITIZE", "").strip().lower() not in _FALSE


def watchdog_timeout() -> float:
    """Seconds a sanitized collective may wait before the watchdog fires.

    Read from ``DIBELLA_SANITIZE_TIMEOUT`` at call time (not import time) so
    tests can tighten it per-case; falls back to
    :data:`DEFAULT_WATCHDOG_SECONDS`.
    """
    raw = os.environ.get("DIBELLA_SANITIZE_TIMEOUT", "").strip()
    if not raw:
        return DEFAULT_WATCHDOG_SECONDS
    try:
        value = float(raw)
    except ValueError:
        return DEFAULT_WATCHDOG_SECONDS
    return value if value > 0 else DEFAULT_WATCHDOG_SECONDS
