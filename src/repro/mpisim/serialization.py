"""Typed wire protocol for cross-process collectives.

The thread backend can hand collective payloads between ranks by reference,
but the multiprocess backend moves them through shared memory, so every
payload must be *explicitly typed on the wire*: numpy arrays carry a dtype
string and a shape header instead of being pickled, and the container types
the pipeline actually exchanges (lists of per-destination arrays, small
scalars, read-sequence byte blocks) are encoded with one-byte type tags.

The format is deliberately strict: only the types below round-trip.  Passing
anything else (an arbitrary object that would silently pickle) raises
``TypeError`` — the contract that keeps the collectives protocol portable to
a real transport (MPI derived datatypes, UCX, a socket) and keeps the byte
accounting honest.

Supported payloads
------------------
``None``, ``bool``, ``int`` (64-bit signed), ``float``, ``str``, ``bytes``/
``bytearray``, ``numpy.ndarray`` (any dtype with a portable ``dtype.str``,
any shape, C-order on the wire), numpy scalars, and ``list`` / ``tuple`` /
``dict`` of supported payloads (dict keys must themselves be supported).

Layout
------
Every value is ``tag (1 byte) + body``:

* ``N`` — None, empty body.
* ``T``/``F`` — True / False, empty body.
* ``I`` — int64, 8-byte little-endian signed.
* ``G`` — big int, u32 length + ASCII decimal digits (ints beyond 64 bits).
* ``D`` — float64, 8-byte IEEE-754 little-endian.
* ``S`` — str, u64 length + UTF-8 bytes.
* ``Y`` — bytes, u64 length + raw bytes.
* ``A`` — ndarray, u8 dtype-string length + dtype string (``dtype.str``,
  e.g. ``"<i8"``) + u8 ndim + ndim × u64 shape + raw C-order buffer.
* ``L``/``U`` — list / tuple, u64 count + encoded items.
* ``M`` — dict, u64 count + encoded (key, value) pairs in insertion order.
* ``R`` — :class:`repro.seq.packing.PackedReadBlock`, u64 read count +
  read-count × i64 RIDs + read-count × i64 base lengths + u64 payload length
  + the 2-bit packed payload bytes (see ``docs/wire-format.md``).
"""

from __future__ import annotations

import struct
from typing import Any

import numpy as np

from repro.seq.packing import PackedReadBlock

__all__ = ["encode_payload", "decode_payload", "UnsupportedPayloadError"]

_U8 = struct.Struct("<B")
_U64 = struct.Struct("<Q")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")

_I64_MIN = -(2**63)
_I64_MAX = 2**63 - 1


class UnsupportedPayloadError(TypeError):
    """Raised when a payload contains a type the wire protocol cannot carry."""


# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------

def _encode_array(array: np.ndarray, parts: list[bytes]) -> None:
    # NB: np.ascontiguousarray promotes 0-d arrays to 1-d, so only invoke it
    # when a copy is actually needed to make the buffer C-order.
    if not array.flags.c_contiguous:
        array = np.ascontiguousarray(array)
    dtype_str = array.dtype.str.encode("ascii")
    if array.dtype.hasobject:
        raise UnsupportedPayloadError("object-dtype arrays cannot be sent")
    if array.dtype.fields is not None or array.dtype.kind == "V":
        raise UnsupportedPayloadError(
            f"structured/void dtype {array.dtype} cannot be sent: dtype.str "
            "drops the field layout, so it would not round-trip"
        )
    if len(dtype_str) > 255:
        raise UnsupportedPayloadError(f"dtype string too long: {array.dtype}")
    parts.append(b"A")
    parts.append(_U8.pack(len(dtype_str)))
    parts.append(dtype_str)
    parts.append(_U8.pack(array.ndim))
    for dim in array.shape:
        parts.append(_U64.pack(dim))
    parts.append(array.tobytes(order="C"))


def _encode(value: Any, parts: list[bytes]) -> None:
    if value is None:
        parts.append(b"N")
    elif isinstance(value, (bool, np.bool_)):
        parts.append(b"T" if value else b"F")
    elif isinstance(value, (int, np.integer)):
        value = int(value)
        if _I64_MIN <= value <= _I64_MAX:
            parts.append(b"I")
            parts.append(_I64.pack(value))
        else:
            digits = str(value).encode("ascii")
            parts.append(b"G")
            parts.append(struct.pack("<I", len(digits)))
            parts.append(digits)
    elif isinstance(value, (float, np.floating)):
        parts.append(b"D")
        parts.append(_F64.pack(float(value)))
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        parts.append(b"S")
        parts.append(_U64.pack(len(raw)))
        parts.append(raw)
    elif isinstance(value, (bytes, bytearray, memoryview)):
        raw = bytes(value)
        parts.append(b"Y")
        parts.append(_U64.pack(len(raw)))
        parts.append(raw)
    elif isinstance(value, np.ndarray):
        _encode_array(value, parts)
    elif isinstance(value, PackedReadBlock):
        # The alignment-stage read-block wire format: fixed-width headers
        # (RIDs, base lengths) followed by the 2-bit packed payload.  A
        # dedicated tag keeps the per-read framing implicit (byte offsets
        # derive from the lengths), so no per-read envelope is paid.
        rids = np.ascontiguousarray(value.rids, dtype=np.int64)
        lengths = np.ascontiguousarray(value.lengths, dtype=np.int64)
        packed = np.ascontiguousarray(value.packed, dtype=np.uint8)
        parts.append(b"R")
        parts.append(_U64.pack(rids.size))
        parts.append(rids.tobytes(order="C"))
        parts.append(lengths.tobytes(order="C"))
        parts.append(_U64.pack(packed.size))
        parts.append(packed.tobytes(order="C"))
    elif isinstance(value, (list, tuple)):
        parts.append(b"L" if isinstance(value, list) else b"U")
        parts.append(_U64.pack(len(value)))
        for item in value:
            _encode(item, parts)
    elif isinstance(value, dict):
        parts.append(b"M")
        parts.append(_U64.pack(len(value)))
        for key, item in value.items():
            _encode(key, parts)
            _encode(item, parts)
    else:
        raise UnsupportedPayloadError(
            f"cannot send a {type(value).__name__} through the typed collectives "
            "protocol; supported payloads are None, bool, int, float, str, bytes, "
            "numpy arrays/scalars and lists/tuples/dicts of these"
        )


def encode_payload(value: Any) -> bytes:
    """Serialise *value* into the typed wire format."""
    parts: list[bytes] = []
    _encode(value, parts)
    return b"".join(parts)


# ---------------------------------------------------------------------------
# Decoding
# ---------------------------------------------------------------------------

def _decode(buf: memoryview, offset: int) -> tuple[Any, int]:
    tag = buf[offset : offset + 1].tobytes()
    offset += 1
    if tag == b"N":
        return None, offset
    if tag == b"T":
        return True, offset
    if tag == b"F":
        return False, offset
    if tag == b"I":
        return _I64.unpack_from(buf, offset)[0], offset + 8
    if tag == b"G":
        (length,) = struct.unpack_from("<I", buf, offset)
        offset += 4
        return int(bytes(buf[offset : offset + length]).decode("ascii")), offset + length
    if tag == b"D":
        return _F64.unpack_from(buf, offset)[0], offset + 8
    if tag == b"S":
        (length,) = _U64.unpack_from(buf, offset)
        offset += 8
        return bytes(buf[offset : offset + length]).decode("utf-8"), offset + length
    if tag == b"Y":
        (length,) = _U64.unpack_from(buf, offset)
        offset += 8
        return bytes(buf[offset : offset + length]), offset + length
    if tag == b"A":
        (dtype_len,) = _U8.unpack_from(buf, offset)
        offset += 1
        dtype = np.dtype(bytes(buf[offset : offset + dtype_len]).decode("ascii"))
        offset += dtype_len
        (ndim,) = _U8.unpack_from(buf, offset)
        offset += 1
        shape = tuple(
            _U64.unpack_from(buf, offset + 8 * axis)[0] for axis in range(ndim)
        )
        offset += 8 * ndim
        count = int(np.prod(shape, dtype=np.int64)) if ndim else 1
        nbytes = count * dtype.itemsize
        # One copy, straight out of the (possibly shared-memory) buffer, so
        # the array owns its data and survives the segment being unmapped.
        array = np.frombuffer(buf, dtype=dtype, count=count, offset=offset)
        return array.reshape(shape).copy(), offset + nbytes
    if tag == b"R":
        (n_reads,) = _U64.unpack_from(buf, offset)
        offset += 8
        # Copy out of the (possibly shared-memory) buffer so the block owns
        # its data and survives the segment being unmapped.
        rids = np.frombuffer(buf, dtype=np.int64, count=n_reads, offset=offset).copy()
        offset += 8 * n_reads
        lengths = np.frombuffer(buf, dtype=np.int64, count=n_reads, offset=offset).copy()
        offset += 8 * n_reads
        (packed_len,) = _U64.unpack_from(buf, offset)
        offset += 8
        packed = np.frombuffer(buf, dtype=np.uint8, count=packed_len, offset=offset).copy()
        return PackedReadBlock(rids=rids, lengths=lengths, packed=packed), offset + packed_len
    if tag in (b"L", b"U"):
        (count,) = _U64.unpack_from(buf, offset)
        offset += 8
        items = []
        for _ in range(count):
            item, offset = _decode(buf, offset)
            items.append(item)
        return (items if tag == b"L" else tuple(items)), offset
    if tag == b"M":
        (count,) = _U64.unpack_from(buf, offset)
        offset += 8
        out: dict[Any, Any] = {}
        for _ in range(count):
            key, offset = _decode(buf, offset)
            value, offset = _decode(buf, offset)
            out[key] = value
        return out, offset
    raise ValueError(f"corrupt typed payload: unknown tag {tag!r} at offset {offset - 1}")


def decode_payload(buf: bytes | bytearray | memoryview) -> Any:
    """Reconstruct a payload encoded by :func:`encode_payload`.

    The whole buffer must be consumed; trailing bytes indicate a framing bug
    and raise ``ValueError``.
    """
    view = memoryview(buf)
    value, offset = _decode(view, 0)
    if offset != len(view):
        raise ValueError(
            f"typed payload has {len(view) - offset} trailing bytes (framing error)"
        )
    return value
