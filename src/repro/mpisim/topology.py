"""Rank-to-node topology, rank groups and physical-core detection.

The paper's experiments place a fixed number of MPI ranks per node (one per
core: 32 on Cori, 24 on Edison, 16 on Titan and AWS) and scale the number of
nodes from 1 to 32.  The topology object captures that mapping so the network
cost model can charge intra-node and inter-node traffic differently.

On top of the node map, a topology can carry a **rank→group map** — the
placement consumed by the hierarchical two-level collectives
(``--collective hier``, see ``docs/topology.md``): ranks of one group elect a
leader (the lowest rank) and an ``alltoallv`` runs gather-to-leader →
leader-to-leader → intra-group scatter, cutting the cross-group segment
count from O(R²) to O(G²).  It can also carry a **rank→core pin map**
(``--pin-ranks``) applied by process-backend workers via
``os.sched_setaffinity``.

Group count and pin cores default to the *physical* layout of the host:
:func:`detect_physical_layout` reads the schedulable-CPU affinity mask and
``/sys/devices/system/cpu/cpu*/topology/physical_package_id``, degrading
gracefully (restricted cgroup masks → the mask alone; no sysfs → one
socket; a single core → one group).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np


@dataclass(frozen=True)
class Topology:
    """A node/rank topology: ``n_nodes`` nodes with ``ranks_per_node`` each.

    Attributes
    ----------
    groups:
        Optional rank→group map for the hierarchical collectives: entry
        ``r`` is rank ``r``'s group id.  Group ids must be exactly
        ``0..n_groups-1`` with every group non-empty.  ``None`` (the
        default) means the flat collective engine — every existing
        constructor call keeps its meaning.
    pin_cores:
        Optional rank→CPU-core map applied by process-backend workers
        (``os.sched_setaffinity``); ``None`` means no pinning.
    """

    n_nodes: int
    ranks_per_node: int
    groups: tuple[int, ...] | None = None
    pin_cores: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if self.n_nodes <= 0:
            raise ValueError("n_nodes must be positive")
        if self.ranks_per_node <= 0:
            raise ValueError("ranks_per_node must be positive")
        if self.groups is not None:
            object.__setattr__(self, "groups", tuple(int(g) for g in self.groups))
            if len(self.groups) != self.n_ranks:
                raise ValueError(
                    f"groups maps {len(self.groups)} ranks but the topology "
                    f"has {self.n_ranks}"
                )
            present = set(self.groups)
            n_groups = max(present) + 1
            if present != set(range(n_groups)):
                raise ValueError(
                    f"group ids must be exactly 0..{n_groups - 1} with every "
                    f"group non-empty; got {sorted(present)}"
                )
        if self.pin_cores is not None:
            object.__setattr__(self, "pin_cores",
                               tuple(int(c) for c in self.pin_cores))
            if len(self.pin_cores) != self.n_ranks:
                raise ValueError(
                    f"pin_cores maps {len(self.pin_cores)} ranks but the "
                    f"topology has {self.n_ranks}"
                )
            if any(core < 0 for core in self.pin_cores):
                raise ValueError("pin_cores entries must be >= 0")

    @property
    def n_ranks(self) -> int:
        """Total number of ranks."""
        return self.n_nodes * self.ranks_per_node

    def node_of(self, rank: int) -> int:
        """Node index hosting *rank* (ranks are packed onto nodes in blocks)."""
        if not (0 <= rank < self.n_ranks):
            raise ValueError(f"rank {rank} out of range [0, {self.n_ranks})")
        return rank // self.ranks_per_node

    def ranks_on_node(self, node: int) -> range:
        """The ranks placed on *node*."""
        if not (0 <= node < self.n_nodes):
            raise ValueError(f"node {node} out of range [0, {self.n_nodes})")
        start = node * self.ranks_per_node
        return range(start, start + self.ranks_per_node)

    def same_node(self, rank_a: int, rank_b: int) -> bool:
        """True if both ranks live on the same node."""
        return self.node_of(rank_a) == self.node_of(rank_b)

    def internode_mask(self) -> np.ndarray:
        """Boolean (n_ranks, n_ranks) matrix: True where traffic crosses nodes."""
        nodes = np.arange(self.n_ranks) // self.ranks_per_node
        return nodes[:, None] != nodes[None, :]

    @classmethod
    def single_node(cls, ranks: int) -> "Topology":
        """Convenience constructor for a one-node run with *ranks* ranks."""
        return cls(n_nodes=1, ranks_per_node=ranks)

    # -- rank groups (hierarchical collectives) --------------------------------

    @property
    def n_groups(self) -> int:
        """Number of rank groups (requires a group map)."""
        if self.groups is None:
            raise ValueError("topology carries no group map")
        return max(self.groups) + 1

    def group_of(self, rank: int) -> int:
        """Group id of *rank* (requires a group map)."""
        if self.groups is None:
            raise ValueError("topology carries no group map")
        if not (0 <= rank < self.n_ranks):
            raise ValueError(f"rank {rank} out of range [0, {self.n_ranks})")
        return self.groups[rank]

    def ranks_in_group(self, group: int) -> tuple[int, ...]:
        """The ranks of *group*, ascending (requires a group map)."""
        if self.groups is None:
            raise ValueError("topology carries no group map")
        if not (0 <= group < self.n_groups):
            raise ValueError(f"group {group} out of range [0, {self.n_groups})")
        return tuple(r for r, g in enumerate(self.groups) if g == group)

    def leader_of(self, group: int) -> int:
        """The leader rank of *group*: its lowest rank."""
        return self.ranks_in_group(group)[0]

    @property
    def group_leaders(self) -> tuple[int, ...]:
        """Leader rank of every group, in group order."""
        return tuple(self.leader_of(g) for g in range(self.n_groups))

    def intergroup_mask(self) -> np.ndarray:
        """Boolean (n_ranks, n_ranks) matrix: True where traffic crosses groups."""
        if self.groups is None:
            raise ValueError("topology carries no group map")
        groups = np.asarray(self.groups)
        return groups[:, None] != groups[None, :]

    def with_groups(self, n_groups: int) -> "Topology":
        """Copy of this topology partitioned into *n_groups* contiguous rank blocks.

        Blocks are balanced to within one rank (``group = rank * G // R``),
        so ranks sharing a node land in the same group whenever the group
        count divides the node count — the placement the two-level
        collectives want.
        """
        if not (1 <= n_groups <= self.n_ranks):
            raise ValueError(
                f"n_groups must be in [1, {self.n_ranks}], got {n_groups}")
        groups = tuple((rank * n_groups) // self.n_ranks
                       for rank in range(self.n_ranks))
        return replace(self, groups=groups)

    def with_group_map(self, groups: Sequence[int] | None) -> "Topology":
        """Copy of this topology with an explicit rank→group map (or none)."""
        return replace(self,
                       groups=None if groups is None else tuple(groups))

    def with_pin_cores(self, pin_cores: Sequence[int] | None) -> "Topology":
        """Copy of this topology with an explicit rank→core pin map (or none)."""
        return replace(self,
                       pin_cores=None if pin_cores is None else tuple(pin_cores))


# ---------------------------------------------------------------------------
# Physical layout detection (sockets, schedulable cores)
# ---------------------------------------------------------------------------

#: Default sysfs root the socket detection reads from.
_SYSFS_CPU_ROOT = "/sys/devices/system/cpu"


@dataclass(frozen=True)
class PhysicalLayout:
    """The host cores this process may schedule on, with their sockets.

    Attributes
    ----------
    cores:
        Schedulable CPU ids, sorted by (socket, core id) so contiguous
        slices stay socket-local.
    packages:
        Physical package (socket) id of each entry of ``cores``.
    """

    cores: tuple[int, ...]
    packages: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.cores:
            raise ValueError("a physical layout needs at least one core")
        if len(self.cores) != len(self.packages):
            raise ValueError("cores and packages must be parallel")

    @property
    def n_cores(self) -> int:
        """Number of schedulable cores."""
        return len(self.cores)

    @property
    def n_sockets(self) -> int:
        """Number of distinct physical packages among the schedulable cores."""
        return len(set(self.packages))


def detect_physical_layout(affinity: Iterable[int] | None = None,
                           sysfs: str | os.PathLike = _SYSFS_CPU_ROOT
                           ) -> PhysicalLayout:
    """Detect the schedulable cores and their sockets, degrading gracefully.

    Detection order (each step falls back without raising):

    1. *affinity* (injectable for tests), else ``os.sched_getaffinity(0)``
       — the honest schedulable set under cgroup/taskset restriction —
       else ``os.cpu_count()`` cores; an empty/unreadable answer degrades
       to a single core 0.
    2. Each core's socket from
       ``{sysfs}/cpu<N>/topology/physical_package_id``; a missing or
       unreadable entry lands the core on socket 0 (one-socket fallback
       when sysfs is absent entirely, e.g. non-Linux).
    """
    if affinity is None:
        getaffinity = getattr(os, "sched_getaffinity", None)
        if getaffinity is not None:
            try:
                affinity = getaffinity(0)
            except OSError:
                affinity = None
        if affinity is None:
            affinity = range(os.cpu_count() or 1)
    cores = sorted(int(c) for c in affinity)
    if not cores:
        cores = [0]
    root = Path(sysfs)
    packages = []
    for core in cores:
        try:
            raw = (root / f"cpu{core}" / "topology"
                   / "physical_package_id").read_text()
            packages.append(int(raw.strip()))
        except (OSError, ValueError):
            packages.append(0)
    order = sorted(range(len(cores)), key=lambda i: (packages[i], cores[i]))
    return PhysicalLayout(cores=tuple(cores[i] for i in order),
                          packages=tuple(packages[i] for i in order))


def resolve_rank_groups(requested: int | None, n_ranks: int,
                        layout: PhysicalLayout | None = None) -> int:
    """The group count a hierarchical run actually uses.

    An explicit *requested* count wins (clamped to ``[1, n_ranks]``);
    otherwise the detected socket count, clamped the same way — so a
    single-core or single-socket host auto-resolves to one group and the
    hierarchy degenerates to a single gather/scatter domain instead of
    failing.
    """
    if requested is not None:
        return max(1, min(int(requested), n_ranks))
    layout = layout or detect_physical_layout()
    return max(1, min(layout.n_sockets, n_ranks))


def assign_pin_cores(topology: Topology,
                     layout: PhysicalLayout | None = None) -> tuple[int, ...]:
    """A rank→core pin map placing each group on its own core slice.

    The schedulable cores (socket-sorted) are split into one contiguous
    slice per group, proportional to group size, and each group's ranks
    take that slice round-robin — so co-grouped ranks share a socket
    whenever the hardware allows it, and oversubscribed ranks (more ranks
    than cores) wrap within their own slice instead of spilling across
    groups.  Works for ungrouped topologies too (one implicit group).
    """
    layout = layout or detect_physical_layout()
    groups = topology.groups
    if groups is None:
        return tuple(layout.cores[rank % layout.n_cores]
                     for rank in range(topology.n_ranks))
    n_groups = topology.n_groups
    pins = [0] * topology.n_ranks
    for group in range(n_groups):
        lo = (group * layout.n_cores) // n_groups
        hi = max(lo + 1, ((group + 1) * layout.n_cores) // n_groups)
        block = layout.cores[lo:hi] or layout.cores
        for i, rank in enumerate(topology.ranks_in_group(group)):
            pins[rank] = block[i % len(block)]
    return tuple(pins)
