"""Rank-to-node topology.

The paper's experiments place a fixed number of MPI ranks per node (one per
core: 32 on Cori, 24 on Edison, 16 on Titan and AWS) and scale the number of
nodes from 1 to 32.  The topology object captures that mapping so the network
cost model can charge intra-node and inter-node traffic differently.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Topology:
    """A flat node/rank topology: ``n_nodes`` nodes with ``ranks_per_node`` each."""

    n_nodes: int
    ranks_per_node: int

    def __post_init__(self) -> None:
        if self.n_nodes <= 0:
            raise ValueError("n_nodes must be positive")
        if self.ranks_per_node <= 0:
            raise ValueError("ranks_per_node must be positive")

    @property
    def n_ranks(self) -> int:
        """Total number of ranks."""
        return self.n_nodes * self.ranks_per_node

    def node_of(self, rank: int) -> int:
        """Node index hosting *rank* (ranks are packed onto nodes in blocks)."""
        if not (0 <= rank < self.n_ranks):
            raise ValueError(f"rank {rank} out of range [0, {self.n_ranks})")
        return rank // self.ranks_per_node

    def ranks_on_node(self, node: int) -> range:
        """The ranks placed on *node*."""
        if not (0 <= node < self.n_nodes):
            raise ValueError(f"node {node} out of range [0, {self.n_nodes})")
        start = node * self.ranks_per_node
        return range(start, start + self.ranks_per_node)

    def same_node(self, rank_a: int, rank_b: int) -> bool:
        """True if both ranks live on the same node."""
        return self.node_of(rank_a) == self.node_of(rank_b)

    def internode_mask(self) -> np.ndarray:
        """Boolean (n_ranks, n_ranks) matrix: True where traffic crosses nodes."""
        nodes = np.arange(self.n_ranks) // self.ranks_per_node
        return nodes[:, None] != nodes[None, :]

    @classmethod
    def single_node(cls, ranks: int) -> "Topology":
        """Convenience constructor for a one-node run with *ranks* ranks."""
        return cls(n_nodes=1, ranks_per_node=ranks)
