"""SPMD launcher: run the same function on every rank, in threads.

:func:`spmd_run` is the equivalent of ``mpiexec -n P python program.py`` for
the simulated runtime: it creates ``P`` communicators sharing one collective
state, runs ``fn(comm, *args, **kwargs)`` on each in its own thread, and
returns the per-rank results in rank order.

Error handling follows the "fail fast, fail loudly" rule for SPMD programs:
if any rank raises, the runtime aborts the shared barrier (so ranks blocked
in a collective wake up instead of deadlocking), joins all threads, and
re-raises the first failure wrapped in :class:`RankFailedError`.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.mpisim.communicator import SimCommunicator, _CollectiveState
from repro.mpisim.errors import RankFailedError, SPMDError
from repro.mpisim.topology import Topology
from repro.mpisim.tracing import CommTrace

__all__ = ["spmd_run", "SPMDError", "RankFailedError"]


def spmd_run(
    n_ranks: int,
    fn: Callable[..., Any],
    *args: Any,
    topology: Topology | None = None,
    trace: CommTrace | None = None,
    **kwargs: Any,
) -> list[Any]:
    """Run *fn* as an SPMD program over *n_ranks* simulated ranks.

    Parameters
    ----------
    n_ranks:
        Number of ranks (threads) to launch.
    fn:
        The rank program.  Called as ``fn(comm, *args, **kwargs)`` where
        ``comm`` is that rank's :class:`SimCommunicator`.
    topology:
        Optional rank→node topology (defaults to one node with all ranks).
    trace:
        Optional :class:`CommTrace` to record communication volumes into.

    Returns
    -------
    list
        ``fn``'s return value for each rank, in rank order.

    Raises
    ------
    RankFailedError
        If any rank's program raised; the original exception is chained.
    """
    if n_ranks <= 0:
        raise ValueError("n_ranks must be positive")
    if topology is not None and topology.n_ranks != n_ranks:
        raise ValueError(
            f"topology describes {topology.n_ranks} ranks but n_ranks={n_ranks}"
        )

    state = _CollectiveState(n_ranks)
    results: list[Any] = [None] * n_ranks
    failures: list[tuple[int, BaseException]] = []
    failures_lock = threading.Lock()

    def worker(rank: int) -> None:
        comm = SimCommunicator(rank, n_ranks, state, topology=topology, trace=trace)
        try:
            results[rank] = fn(comm, *args, **kwargs)
        except threading.BrokenBarrierError:
            # Another rank failed and aborted the barrier; stay quiet, the
            # original failure is reported below.
            pass
        except BaseException as exc:  # noqa: BLE001 - must capture rank failures
            with failures_lock:
                failures.append((rank, exc))
            state.abort()

    if n_ranks == 1:
        # Fast path: no threads for single-rank runs (common in tests and in
        # the Table 2 single-node comparison).
        worker(0)
    else:
        threads = [
            threading.Thread(target=worker, args=(rank,), name=f"spmd-rank-{rank}")
            for rank in range(n_ranks)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    if failures:
        failures.sort(key=lambda item: item[0])
        rank, exc = failures[0]
        raise RankFailedError(
            f"rank {rank} failed with {type(exc).__name__}: {exc}"
        ) from exc
    return results
