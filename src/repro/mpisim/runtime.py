"""SPMD launcher: run the same function on every rank.

:func:`spmd_run` is the equivalent of ``mpiexec -n P python program.py`` for
the simulated runtime: it creates ``P`` communicators sharing one collective
engine, runs ``fn(comm, *args, **kwargs)`` on each rank, and returns the
per-rank results in rank order.

*Where* the ranks execute is pluggable (see :mod:`repro.mpisim.backend`):

* ``backend="thread"`` (default) — ranks are threads sharing this process's
  address space; collectives pass payloads by reference.
* ``backend="process"`` — ranks are ``multiprocessing`` processes; P ranks
  really occupy P cores, and collectives move explicitly-typed buffers
  through POSIX shared memory.

Error handling follows the "fail fast, fail loudly" rule for SPMD programs:
if any rank raises, the runtime aborts the shared barrier (so ranks blocked
in a collective wake up instead of deadlocking), reaps all ranks, and
re-raises the first failure wrapped in :class:`RankFailedError`.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.mpisim.backend import RuntimeBackend, resolve_backend
from repro.mpisim.errors import RankFailedError, SPMDError
from repro.mpisim.faults import FaultPlan, RunFaults, resolve_run_faults
from repro.mpisim.sanitize import sanitize_default
from repro.mpisim.topology import Topology
from repro.mpisim.tracing import CommTrace

__all__ = ["spmd_run", "SPMDError", "RankFailedError"]


def spmd_run(
    n_ranks: int,
    fn: Callable[..., Any],
    *args: Any,
    topology: Topology | None = None,
    trace: CommTrace | None = None,
    backend: str | RuntimeBackend | None = None,
    pool: bool = False,
    sanitize: bool | None = None,
    faults: str | FaultPlan | RunFaults | None = None,
    **kwargs: Any,
) -> list[Any]:
    """Run *fn* as an SPMD program over *n_ranks* simulated ranks.

    Parameters
    ----------
    n_ranks:
        Number of ranks to launch.
    fn:
        The rank program.  Called as ``fn(comm, *args, **kwargs)`` where
        ``comm`` is that rank's :class:`SimCommunicator`.  Under the process
        backend's default ``fork`` start method anything callable works; a
        ``spawn`` start method additionally requires ``fn`` and its
        arguments to be picklable.
    topology:
        Optional rank→node topology (defaults to one node with all ranks).
    trace:
        Optional :class:`CommTrace` to record communication volumes into.
        With the process backend each rank records into a private trace that
        is merged into this one after the run.
    backend:
        ``"thread"`` (default), ``"process"``, or a ready-made
        :class:`RuntimeBackend` instance.
    pool:
        With ``backend="process"``, acquire the ranks from the persistent
        rank pool (processes parked on a barrier between runs) instead of
        forking fresh ones — amortises fork+import cost across repeated
        runs.  Pooled jobs cross a queue, so ``fn`` and its arguments must
        be picklable.  Ignored by the thread backend and by ready-made
        backend instances (their own pooling setting wins).
    sanitize:
        Arm the runtime sanitizer for this run: cross-rank collective
        congruence checks, split-phase segment lifecycle guards, and a hang
        watchdog that dumps the wedged rank's recent collective trace (see
        :mod:`repro.mpisim.sanitize` and ``docs/static-analysis.md``).
        ``None`` (default) follows the ``DIBELLA_SANITIZE`` environment
        variable.  Checks are observation-only on the happy path: sanitized
        runs produce bit-identical results and traces.
    faults:
        Deterministic fault plan for this run (see
        :mod:`repro.mpisim.faults`): a plan string
        (``"kill:rank=2:step=3"``), a :class:`FaultPlan` (its next run
        ordinal is bound), or already-bound :class:`RunFaults`.  ``kill``
        faults require the process backend — threads share this process, so
        the thread backend rejects kill plans with a :class:`ValueError`.

    Returns
    -------
    list
        ``fn``'s return value for each rank, in rank order.

    Raises
    ------
    RankFailedError
        If any rank's program raised; the original exception is chained.
    """
    if n_ranks <= 0:
        raise ValueError("n_ranks must be positive")
    if topology is not None and topology.n_ranks != n_ranks:
        raise ValueError(
            f"topology describes {topology.n_ranks} ranks but n_ranks={n_ranks}"
        )
    if sanitize is None:
        sanitize = sanitize_default()
    runtime = resolve_backend(backend, pool=pool)
    run_faults = resolve_run_faults(faults)
    if run_faults is not None:
        if run_faults.has_kill and runtime.name == "thread":
            raise ValueError(
                "the thread backend cannot inject 'kill' faults: ranks are "
                "threads of this process, so killing one would kill the "
                "whole run — use backend='process' (or an 'exit' fault)"
            )
        # Passed only when present so ready-made RuntimeBackend doubles
        # without the parameter keep working.
        return runtime.run(n_ranks, fn, args, kwargs, topology, trace,
                           sanitize=sanitize, faults=run_faults)
    return runtime.run(n_ranks, fn, args, kwargs, topology, trace,
                       sanitize=sanitize)
