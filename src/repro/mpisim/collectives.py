"""Helpers shared by the collective implementations.

These are pure functions: payload size estimation (for the byte accounting
the cost model consumes) and destination bucketing of numpy arrays (the
"packing" step of an Alltoallv exchange, reported separately in the paper's
Figure 4 efficiency breakdown).
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.seq.packing import PackedReadBlock

#: Approximate per-object overhead charged for generic Python payloads, in
#: bytes.  Collectives moving structured Python objects (read-pair tuples,
#: read strings) are charged their contents plus this envelope, which keeps
#: the accounting monotone in payload size without trying to model pickle.
_OBJECT_OVERHEAD = 16


def payload_nbytes(payload: Any) -> int:
    """Estimate the wire size of a collective payload in bytes.

    numpy arrays are charged their exact buffer size; strings and bytes their
    length; numbers a machine word; containers the sum of their elements plus
    a small per-object envelope.  ``None`` (an empty contribution) is free.
    """
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, PackedReadBlock):
        # The 2-bit packed read-block wire format: headers + packed payload
        # (matches the serialized tag-R frame, so the trace reflects the
        # volume the packing actually saves).
        return payload.wire_nbytes
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    if isinstance(payload, str):
        return len(payload)
    if isinstance(payload, (bool, int, float, np.integer, np.floating)):
        return 8
    if isinstance(payload, dict):
        return _OBJECT_OVERHEAD + sum(
            payload_nbytes(k) + payload_nbytes(v) for k, v in payload.items()
        )
    if isinstance(payload, (list, tuple, set, frozenset)):
        return _OBJECT_OVERHEAD + sum(payload_nbytes(item) for item in payload)
    # Dataclass-like objects: charge their __dict__ if present, else a word.
    attrs = getattr(payload, "__dict__", None)
    if attrs:
        return _OBJECT_OVERHEAD + sum(payload_nbytes(v) for v in attrs.values())
    return _OBJECT_OVERHEAD


#: Recursion bound for :func:`payload_signature` — deep enough for every
#: payload the pipeline exchanges (lists of arrays, tuples of blocks), small
#: enough that a pathological nesting cannot make the digest expensive.
_SIGNATURE_DEPTH = 4


def payload_signature(payload: Any, _depth: int = 0) -> str:
    """Type/dtype/shape-rank digest of a collective payload.

    The runtime sanitizer compares this digest across ranks before each
    congruence-checked collective: two ranks contributing payloads of
    different dtype or array rank to the same op get a descriptive mismatch
    error instead of silently mixed (or mis-decoded) science data.

    The digest deliberately ignores payload *sizes* — per-destination counts
    legitimately differ between ranks — and collapses containers to the
    sorted set of their element digests, so a rank whose send list holds
    empty arrays still matches its peers as long as the dtypes agree (the
    stages construct typed empties for exactly this reason).
    """
    if payload is None:
        return "none"
    if isinstance(payload, np.ndarray):
        return f"ndarray[{payload.dtype.str},r{payload.ndim}]"
    if isinstance(payload, (bool, np.bool_)):
        return "bool"
    if isinstance(payload, (int, np.integer)):
        return "int"
    if isinstance(payload, (float, np.floating)):
        return "float"
    if isinstance(payload, str):
        return "str"
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return "bytes"
    if isinstance(payload, PackedReadBlock):
        return "PackedReadBlock"
    if isinstance(payload, (list, tuple)):
        kind = "list" if isinstance(payload, list) else "tuple"
        if _depth >= _SIGNATURE_DEPTH:
            return f"{kind}[...]"
        inner = sorted({payload_signature(item, _depth + 1) for item in payload})
        return f"{kind}[{','.join(inner)}]"
    if isinstance(payload, dict):
        if _depth >= _SIGNATURE_DEPTH:
            return "dict[...]"
        inner = sorted({payload_signature(v, _depth + 1) for v in payload.values()})
        return f"dict[{','.join(inner)}]"
    return type(payload).__name__


#: Marker tag of a concatenated-segments frame (see :func:`pack_segments`).
#: The tag can never collide with science payloads: the pipeline exchanges
#: arrays, packed read blocks and containers of those, never bare marker
#: strings inside a 3-tuple of this exact shape.
_CONCAT_TAG = "__hcat__"


def pack_segments(payloads: list) -> Any:
    """Concatenate homogeneous ndarray segments into one wire value.

    The hierarchical exchange's leader hops carry many per-(source,
    destination) segments in a single engine payload; shipping them as a
    plain list costs one wire frame (tag + dtype + shape header) per
    segment.  When every segment is an ndarray of one dtype and one
    trailing shape, this packs them as ``(_CONCAT_TAG, lengths, data)`` —
    two array frames total, amortising the per-segment header overhead the
    leader hop exists to cut.  Anything non-uniform (packed read blocks,
    ``None`` entries, mixed dtypes) falls back to the plain list, so the
    codec never constrains what an exchange may carry.

    Bit-exact round trip: :func:`unpack_segments` restores the original
    segment boundaries, dtypes and values (as views into the concatenated
    buffer).
    """
    if not payloads:
        return list(payloads)
    first = payloads[0]
    if not isinstance(first, np.ndarray) or first.ndim < 1:
        return list(payloads)
    for item in payloads:
        if (not isinstance(item, np.ndarray) or item.ndim != first.ndim
                or item.dtype != first.dtype or item.shape[1:] != first.shape[1:]):
            return list(payloads)
    lengths = np.array([item.shape[0] for item in payloads], dtype=np.int64)
    data = np.concatenate(payloads, axis=0)
    return (_CONCAT_TAG, lengths, data)


def unpack_segments(packed: Any) -> list:
    """Restore the segment list produced by :func:`pack_segments`."""
    if (isinstance(packed, tuple) and len(packed) == 3
            and packed[0] == _CONCAT_TAG):
        _tag, lengths, data = packed
        offsets = np.concatenate(([0], np.cumsum(lengths)))
        return [data[offsets[i]:offsets[i + 1]] for i in range(len(lengths))]
    return list(packed)


def bucket_by_destination(
    values: np.ndarray, destinations: np.ndarray, n_ranks: int
) -> list[np.ndarray]:
    """Group rows of *values* by destination rank.

    ``values`` may be 1-D (one scalar per element) or 2-D (one row per
    element); ``destinations`` gives the target rank of each element.  The
    result is a list of ``n_ranks`` arrays, where entry ``d`` contains the
    values destined for rank ``d`` in their original relative order.  This is
    the message-packing step of an irregular all-to-all.
    """
    values = np.asarray(values)
    destinations = np.asarray(destinations, dtype=np.int64)
    if destinations.ndim != 1:
        raise ValueError("destinations must be 1-D")
    if values.shape[0] != destinations.shape[0]:
        raise ValueError(
            f"values ({values.shape[0]}) and destinations ({destinations.shape[0]}) "
            "must have the same leading dimension"
        )
    if destinations.size and (destinations.min() < 0 or destinations.max() >= n_ranks):
        raise ValueError("destination rank out of range")
    order = np.argsort(destinations, kind="stable")
    sorted_vals = values[order]
    sorted_dest = destinations[order]
    counts = np.bincount(sorted_dest, minlength=n_ranks)
    boundaries = np.concatenate(([0], np.cumsum(counts)))
    return [sorted_vals[boundaries[d] : boundaries[d + 1]] for d in range(n_ranks)]


def concatenate_received(chunks: Sequence[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate per-source received chunks into one array plus source offsets.

    Returns ``(data, offsets)`` where ``offsets`` has length ``len(chunks)+1``
    and ``data[offsets[s]:offsets[s+1]]`` is the chunk received from source
    ``s``.  Empty chunk lists yield an empty array.
    """
    arrays = [np.asarray(c) for c in chunks]
    sizes = np.array([a.shape[0] if a.ndim else 0 for a in arrays], dtype=np.int64)
    offsets = np.concatenate(([0], np.cumsum(sizes)))
    non_empty = [a for a in arrays if a.shape[0] > 0] if arrays else []
    if not non_empty:
        template = arrays[0] if arrays else np.empty(0)
        data = np.empty((0,) + template.shape[1:], dtype=template.dtype)
    else:
        data = np.concatenate(non_empty, axis=0)
    return data, offsets
