"""SPMD communicator with MPI-like collectives over a pluggable engine.

Each rank of an :func:`repro.mpisim.runtime.spmd_run` execution holds one
:class:`SimCommunicator`; all communicators of a run share one *collective
engine* that implements the synchronised deposit/combine/collect protocol:

1. every rank deposits its contribution and the name of the collective it is
   calling into its own slot and waits on a barrier;
2. the rank elected by the barrier validates that all ranks called the same
   collective (raising :class:`CollectiveMismatchError` otherwise), computes
   the per-rank results, and releases the barrier;
3. every rank picks up its result and synchronises once more so slots can be
   reused by the next collective.

The communicator owns the *semantics* of every collective (the ``combine``
functions below) and the byte accounting; the engine owns the *transport*.
Two engines exist: the thread engine in this module (ranks share one address
space, payloads move by reference) and the shared-memory process engine in
:mod:`repro.mpisim.backend` (payloads cross process boundaries as typed
buffers — see :mod:`repro.mpisim.serialization`).

This mirrors MPI semantics closely enough for the pipeline — in particular
``alltoallv`` delivers, to each rank, exactly the payloads addressed to it by
every source rank, in source-rank order — while also giving the simulator a
single choke point at which to do byte accounting and mismatch detection.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Callable, Protocol, Sequence

import numpy as np

from repro.mpisim.collectives import (
    pack_segments,
    payload_nbytes,
    payload_signature,
    unpack_segments,
)
from repro.mpisim.errors import (
    CollectiveMismatchError,
    CollectiveTimeoutError,
    SegmentStateError,
)
from repro.mpisim.faults import RunFaults
from repro.mpisim.sanitize import TRACE_DEPTH, watchdog_timeout
from repro.mpisim.topology import Topology
from repro.mpisim.tracing import CollectiveLog, CommTrace

#: Combine function signature: per-rank contributions -> per-rank results.
CombineFn = Callable[[list[Any]], list[Any]]

#: How long a rank may wait in a split-phase exchange handshake before
#: declaring the run wedged (same knob as the engine barrier timeout).
_EXCHANGE_TIMEOUT = float(os.environ.get("DIBELLA_BARRIER_TIMEOUT", "600"))

#: Number of split-phase exchange supersteps that may be in flight per rank.
#: Both engines keep one deposit-slot set per in-flight superstep, selected
#: by ``seq % EXCHANGE_SLOTS``; ``alltoallv_start`` for superstep ``seq``
#: blocks until every rank consumed superstep ``seq - EXCHANGE_SLOTS``.  Two
#: slots are the classic double buffer and enough for every pipeline
#: schedule (the two-hop request/response schedule keeps at most one
#: response and one request outstanding); the engines are written against
#: this constant, so deeper pipelines only need a bigger value here.
EXCHANGE_SLOTS = 2

#: Engine op name of the sanitizer's congruence pre-check collective.  It is
#: deliberately constant — every rank enters the *same* engine op even when
#: their real collectives diverge, so the check itself always completes and
#: the combine can report exactly which ranks called what.
SANITIZE_OP = "__sanitize__"

#: Sentinel written into a thread-engine exchange slot once every rank has
#: consumed it (sanitizer only).  A stale reader that slips past the
#: sequence guards trips on this instead of on reused payloads.
_POISONED = object()


def exchange_op_name(base: str, label: str | None) -> str:
    """The engine op name of an exchange, phase-labelled when *label* is set.

    Labelled ops (``"alltoallv[overlap]"``) make schedule collisions
    loud: if two ranks reach different stages' exchanges — or a two-hop
    schedule's request and response hops get out of step — the engines'
    op-name validation raises :class:`CollectiveMismatchError` instead of
    silently handing one stage's payloads to another.
    """
    return base if label is None else f"{base}[{label}]"


class CollectiveEngine(Protocol):
    """Transport protocol underneath :class:`SimCommunicator`.

    ``execute`` runs one collective for the calling rank and blocks until the
    result is available; every rank of the execution must call it with the
    same ``op_name`` (engines detect mismatches and raise on every rank).
    ``abort`` wakes ranks blocked inside a collective when a peer fails.

    Engines may additionally implement the *split-phase exchange* pair
    ``exchange_start(rank, op_name, send, seq) -> token`` /
    ``exchange_finish(rank, token) -> received`` — a publish/consume
    handshake with **no global barrier on the fast path**: ``start`` waits
    only until the double-buffered slot of ``seq`` is free for rewrite (all
    ranks consumed superstep ``seq - 2``), publishes, and returns;
    ``finish`` waits until every rank has published superstep ``seq`` and
    reads.  The caller may compute (or even start superstep ``seq + 1``)
    between the two calls — that compute overlaps the peers' publishes and
    reads.  Engines without these methods fall back to the synchronous
    ``execute`` path inside :meth:`SimCommunicator.alltoallv_start`.
    """

    n_ranks: int

    def execute(self, rank: int, op_name: str, contribution: Any,
                combine: CombineFn) -> Any: ...

    def abort(self) -> None: ...


@dataclass
class ExchangeHandle:
    """In-flight split-phase exchange returned by :meth:`SimCommunicator.alltoallv_start`.

    ``token`` is engine-specific state; ``result`` is only populated on the
    synchronous fallback path (engines without split-phase support), in which
    case ``alltoallv_finish`` simply hands it back.  ``label`` is the phase
    label the exchange was started under (diagnostics; the engines validate
    it as part of the op name).  ``consumed`` is set by ``alltoallv_finish``
    so the sanitizer can flag a handle finished twice.
    """

    op_name: str
    token: Any = None
    result: list[Any] | None = None
    label: str | None = None
    consumed: bool = False
    #: True when the handle's token is the *gather hop* of a hierarchical
    #: exchange; ``alltoallv_finish`` then runs the leader-to-leader and
    #: scatter hops before returning (see docs/topology.md).
    hier: bool = False


class _CollectiveState:
    """Thread engine: state shared by all ranks of one SPMD execution.

    Contributions and results move between ranks by reference — all ranks
    live in one address space, so no serialisation happens.  The elected rank
    (barrier index 0) runs the combine while the others wait.
    """

    def __init__(self, n_ranks: int, sanitize: bool = False):
        self.n_ranks = n_ranks
        #: Runtime-sanitizer flag; communicators read it via the engine so
        #: the whole run (and every pooled worker) agrees on the mode.
        self.sanitize = sanitize
        self.barrier = threading.Barrier(n_ranks)
        self.op_names: list[str | None] = [None] * n_ranks
        self.contributions: list[Any] = [None] * n_ranks
        self.results: list[Any] = [None] * n_ranks
        self.error: BaseException | None = None
        # Split-phase exchange state: one deposit-slot set per in-flight
        # superstep (EXCHANGE_SLOTS of them — the double buffer) and per-slot
        # publish/consume sequence numbers guarded by one Condition — the
        # exchange fast path never touches the global barrier.
        self._x_cond = threading.Condition()
        self._x_aborted = False
        self._x_ops: list[list[str | None]] = [
            [None] * n_ranks for _ in range(EXCHANGE_SLOTS)]
        self._x_contribs: list[list[Any]] = [
            [None] * n_ranks for _ in range(EXCHANGE_SLOTS)]
        self._x_published = [[-1] * n_ranks for _ in range(EXCHANGE_SLOTS)]
        self._x_consumed = [[-1] * n_ranks for _ in range(EXCHANGE_SLOTS)]

    def abort(self) -> None:
        """Break the barrier so ranks blocked in a collective terminate."""
        self.barrier.abort()
        with self._x_cond:
            self._x_aborted = True
            self._x_cond.notify_all()

    @property
    def aborted_by_peer(self) -> bool:
        """Whether :meth:`abort` was called (vs a wait timing out on its own).

        The sanitizer's watchdog uses this to tell a genuine hang (raise
        :class:`CollectiveTimeoutError` with the collective trace) from the
        expected wake-up after a peer's failure (stay quiet, the peer
        reports the real error).
        """
        return self._x_aborted

    # -- split-phase exchange (see CollectiveEngine) --------------------------

    def _x_wait(self, predicate: Callable[[], bool]) -> None:
        """Wait under the exchange condition; abort/timeout -> BrokenBarrierError."""
        timeout = watchdog_timeout() if self.sanitize else _EXCHANGE_TIMEOUT
        with self._x_cond:
            ok = self._x_cond.wait_for(
                lambda: self._x_aborted or predicate(), timeout=timeout
            )
            if self._x_aborted or not ok:
                raise threading.BrokenBarrierError

    def exchange_start(self, rank: int, op_name: str, send: list[Any],
                       seq: int) -> Any:
        """Publish this rank's superstep-*seq* contribution; no global barrier.

        Blocks only until slot ``seq % EXCHANGE_SLOTS`` is reusable — every
        rank has consumed superstep ``seq - EXCHANGE_SLOTS`` (trivially true
        for the first EXCHANGE_SLOTS supersteps) — which is what bounds a
        rank to EXCHANGE_SLOTS live contributions.
        """
        slot = seq % EXCHANGE_SLOTS
        self._x_wait(lambda: all(c >= seq - EXCHANGE_SLOTS
                                 for c in self._x_consumed[slot]))
        with self._x_cond:
            self._x_ops[slot][rank] = op_name
            self._x_contribs[slot][rank] = send
            self._x_published[slot][rank] = seq
            self._x_cond.notify_all()
        return seq

    def exchange_finish(self, rank: int, token: Any) -> list[Any]:
        """Collect superstep *token*'s payloads once every rank has published."""
        seq = token
        slot = seq % EXCHANGE_SLOTS
        if self.sanitize:
            # Fail fast on lifecycle bugs that would otherwise hang (waiting
            # for a publish that never happened) or silently read reused data.
            if self._x_published[slot][rank] < seq:
                raise SegmentStateError(
                    f"sanitizer: rank {rank} finishing split-phase superstep "
                    f"{seq} it never started (read-before-publish; slot "
                    f"{slot} last published seq {self._x_published[slot][rank]})"
                )
            if self._x_consumed[slot][rank] >= seq:
                raise SegmentStateError(
                    f"sanitizer: rank {rank} finishing split-phase superstep "
                    f"{seq} twice (slot {slot} already consumed through seq "
                    f"{self._x_consumed[slot][rank]})"
                )
        self._x_wait(lambda: all(p >= seq for p in self._x_published[slot]))
        if self.sanitize:
            stale = [q for q in range(self.n_ranks)
                     if self._x_published[slot][q] != seq]
            if stale:
                raise SegmentStateError(
                    f"sanitizer: rank {rank} reading split-phase superstep "
                    f"{seq} after ranks {stale} rewrote slot {slot} "
                    f"(use-after-release; their published seqs are "
                    f"{[self._x_published[slot][q] for q in stale]})"
                )
        names = {self._x_ops[slot][q] for q in range(self.n_ranks)}
        if len(names) != 1:
            raise CollectiveMismatchError(
                f"ranks disagree on split-phase collective: "
                f"{sorted(str(n) for n in names)}"
            )
        contribs = [self._x_contribs[slot][src] for src in range(self.n_ranks)]
        if self.sanitize and any(c is _POISONED for c in contribs):
            raise SegmentStateError(
                f"sanitizer: rank {rank} read a poisoned split-phase segment "
                f"in slot {slot} (superstep {seq} was already consumed by "
                "every rank)"
            )
        received = [contribs[src][rank] for src in range(self.n_ranks)]
        with self._x_cond:
            self._x_consumed[slot][rank] = seq
            if self.sanitize and all(c >= seq for c in self._x_consumed[slot]):
                # Last consumer: poison the slot so any reader that slips
                # past the sequence guards trips on the sentinel.
                self._x_contribs[slot] = [_POISONED] * self.n_ranks
            self._x_cond.notify_all()
        return received

    def execute(self, rank: int, op_name: str, contribution: Any,
                combine: CombineFn) -> Any:
        """Run one collective: deposit, combine on the elected rank, collect."""
        self.op_names[rank] = op_name
        self.contributions[rank] = contribution

        # Under the sanitizer the barrier waits are bounded (the hang
        # watchdog); a timeout breaks the barrier for every rank, exactly
        # like an abort, and the communicator converts it into a
        # CollectiveTimeoutError with the rank's recent collective trace.
        timeout = watchdog_timeout() if self.sanitize else None

        index = self.barrier.wait(timeout)
        if index == 0:
            try:
                names = set(self.op_names)
                if len(names) != 1:
                    raise CollectiveMismatchError(
                        f"ranks disagree on collective: {sorted(str(n) for n in names)}"
                    )
                self.results = combine(list(self.contributions))
                self.error = None
            except BaseException as exc:  # propagate to every rank below
                self.error = exc
                self.results = [None] * self.n_ranks

        self.barrier.wait(timeout)
        error = self.error
        result = self.results[rank]

        # Final synchronisation so no rank starts the next collective while
        # laggards are still reading results from this one.
        self.barrier.wait(timeout)
        if error is not None:
            raise error
        return result


class SimCommunicator:
    """Per-rank handle onto the simulated communicator.

    Parameters
    ----------
    rank, size:
        This rank's index and the total number of ranks.
    engine:
        The shared :class:`CollectiveEngine` (one per SPMD execution).
    topology:
        Rank→node mapping; defaults to a single node hosting all ranks.
    trace:
        Optional :class:`CommTrace` receiving byte/message accounting.
    faults:
        Optional :class:`~repro.mpisim.faults.RunFaults` bound to this run;
        the rank's injector fires before each collective it issues (see
        :mod:`repro.mpisim.faults` for the superstep-ordinal semantics).
    """

    def __init__(
        self,
        rank: int,
        size: int,
        engine: CollectiveEngine,
        topology: Topology | None = None,
        trace: CommTrace | None = None,
        faults: RunFaults | None = None,
    ) -> None:
        if not (0 <= rank < size):
            raise ValueError(f"rank {rank} out of range for size {size}")
        self.rank = rank
        self.size = size
        self._engine = engine
        self.topology = topology or Topology.single_node(size)
        if self.topology.n_ranks != size:
            raise ValueError(
                f"topology has {self.topology.n_ranks} ranks but communicator has {size}"
            )
        self.trace = trace
        # Hierarchical two-level exchanges (docs/topology.md): active when
        # the run topology carries a rank→group map.  The layout below is
        # pure bookkeeping — the hops themselves are ordinary engine
        # collectives, so every transport (threads, shared memory, pooled
        # workers) and every guard (sanitizer, fault injection, orphan
        # segment reclamation) applies to them unchanged.
        groups = self.topology.groups
        if groups is not None:
            self._hier_group_ranks = [self.topology.ranks_in_group(g)
                                      for g in range(self.topology.n_groups)]
            self._hier_group = groups[rank]
            self._hier_members = self._hier_group_ranks[self._hier_group]
            self._hier_leader = self._hier_members[0]
            self._hier_leaders = self.topology.group_leaders
            # Position of every rank within its own group (scatter indexing).
            self._hier_rank_index = tuple(
                self._hier_group_ranks[groups[r]].index(r)
                for r in range(size)
            )
        else:
            self._hier_group = None
        #: Per-rank accumulators the pipeline folds into its counters:
        #: logical exchange bytes addressed within / across this rank's
        #: group, and wall seconds this rank (when leader) spent building
        #: leader-hop payloads.  Stay zero on flat runs.
        self.hier_stats: dict[str, Any] = {
            "intragroup_bytes": 0, "intergroup_bytes": 0, "leader_seconds": 0.0,
        }
        # Split-phase exchange sequence number; SPMD discipline (all ranks
        # issue the same collectives in the same order) keeps it identical
        # across the ranks of a run, so it doubles as the engine's
        # double-buffer slot selector.
        self._xchg_seq = 0
        # Runtime sanitizer: the mode is a property of the *engine* (set by
        # the backend from spmd_run's resolved flag) so every rank of a run
        # — including pooled process workers forked long ago — agrees on it.
        # Engines without the attribute (custom test engines) run unchecked.
        self._sanitize = bool(getattr(engine, "sanitize", False))
        self._collective_log = CollectiveLog(TRACE_DEPTH) if self._sanitize else None
        # Current phase label, tracked trace-or-not: fault specs with a
        # stage= criterion match against it.
        self._phase = ""
        self._faults = faults.injector(rank) if faults is not None else None

    # -- phase labelling -------------------------------------------------------

    def set_phase(self, phase: str) -> None:
        """Attribute subsequent traffic from this rank to *phase* in the trace."""
        self._phase = phase
        if self.trace is not None:
            self.trace.set_phase(self.rank, phase)

    # -- core synchronisation protocol ------------------------------------------

    def _collective(self, op_name: str, contribution: Any, combine: CombineFn,
                    signature: str = "") -> Any:
        """Run one collective through the engine.

        Under the sanitizer this is preceded by the congruence pre-check
        (see :meth:`_sanitize_congruence`): *signature* is the payload digest
        that must agree across ranks for this op ("" for ops whose payloads
        are legitimately rank-asymmetric, e.g. ``bcast``).
        """
        if self._faults is not None:
            self._faults.before_op(op_name, self._phase)
        if self._sanitize:
            self._sanitize_congruence(op_name, "sync", signature)
        return self._engine_call(
            self._engine.execute, self.rank, op_name, contribution, combine
        )

    def _engine_call(self, fn: Callable[..., Any], *args: Any) -> Any:
        """Invoke an engine entry point, converting watchdog timeouts.

        A ``BrokenBarrierError`` out of the engine means either a peer
        failed (its abort broke the barrier — stay quiet, the peer reports
        the real error) or, under the sanitizer's bounded waits, that this
        rank's own wait timed out: a genuine hang.  The latter becomes a
        :class:`CollectiveTimeoutError` carrying this rank's last-N
        collective trace.
        """
        try:
            return fn(*args)
        except threading.BrokenBarrierError:
            if self._sanitize and not getattr(self._engine, "aborted_by_peer", True):
                log = self._collective_log
                raise CollectiveTimeoutError(
                    f"sanitizer watchdog: rank {self.rank} timed out after "
                    f"{watchdog_timeout():.0f}s in a collective "
                    f"(DIBELLA_SANITIZE_TIMEOUT); last "
                    f"{len(log)} of {log.total_recorded} collectives on this "
                    f"rank, oldest first:\n{log.dump()}"
                ) from None
            raise

    def _sanitize_congruence(self, op_name: str, mode: str, signature: str) -> None:
        """Cross-rank congruence check run before a sanitized collective.

        Every rank contributes its (op name, sync/split mode, payload
        digest) through a constant-named engine collective — constant so the
        check itself always completes even when the real ops diverge — and
        the elected rank compares them, raising a
        :class:`CollectiveMismatchError` naming the diverging ranks.  The
        check moves a few dozen bytes per rank and bypasses the byte
        accounting entirely, so sanitized runs trace identically to
        unsanitized ones.
        """
        digest = f"{op_name}|{mode}|{signature}" if signature else f"{op_name}|{mode}"
        log = self._collective_log
        if log is not None:
            log.record(f"#{log.total_recorded} {digest}")
        size = self.size

        def combine(contribs: list[Any]) -> list[Any]:
            groups: dict[str, list[int]] = {}
            for peer, value in enumerate(contribs):
                groups.setdefault(str(value), []).append(peer)
            if len(groups) > 1:
                detail = "; ".join(
                    f"rank(s) {ranks} called {value}"
                    for value, ranks in sorted(groups.items())
                )
                raise CollectiveMismatchError(
                    f"sanitizer: collective congruence check failed — ranks "
                    f"diverge on (op|mode|payload digest): {detail}"
                )
            return [None] * size

        self._engine_call(
            self._engine.execute, self.rank, SANITIZE_OP, digest, combine
        )

    # -- collectives -------------------------------------------------------------

    def barrier(self) -> None:
        """Synchronise all ranks."""
        self._collective("barrier", None, lambda contribs: [None] * self.size)

    def bcast(self, value: Any, root: int = 0) -> Any:
        """Broadcast *value* from *root* to every rank."""
        self._check_root(root)

        def combine(contribs: list[Any]) -> list[Any]:
            return [contribs[root]] * self.size

        result = self._collective("bcast", value if self.rank == root else None, combine)
        self._record_pointwise(root, payload_nbytes(result), from_root=True)
        return result

    def gather(self, value: Any, root: int = 0) -> list[Any] | None:
        """Gather one value per rank onto *root* (other ranks get ``None``)."""
        self._check_root(root)

        def combine(contribs: list[Any]) -> list[Any]:
            gathered = list(contribs)
            return [gathered if r == root else None for r in range(self.size)]

        self._record_pointwise(root, payload_nbytes(value), from_root=False)
        return self._collective("gather", value, combine)

    def allgather(self, value: Any) -> list[Any]:
        """Gather one value per rank onto every rank."""

        def combine(contribs: list[Any]) -> list[Any]:
            gathered = list(contribs)
            return [list(gathered) for _ in range(self.size)]

        self._record_broadcast(payload_nbytes(value))
        return self._collective("allgather", value, combine)

    def allreduce(self, value: Any, op: Callable[[Any, Any], Any] | str = "sum") -> Any:
        """Reduce one value per rank with *op* and return the result everywhere.

        ``op`` may be ``"sum"``, ``"max"``, ``"min"`` or a binary callable.
        """
        reducer = self._resolve_reducer(op)

        def combine(contribs: list[Any]) -> list[Any]:
            acc = contribs[0]
            for item in contribs[1:]:
                acc = reducer(acc, item)
            return [acc] * self.size

        self._record_broadcast(payload_nbytes(value))
        return self._collective(f"allreduce:{op}", value, combine,
                                signature=payload_signature(value))

    def reduce(self, value: Any, op: Callable[[Any, Any], Any] | str = "sum",
               root: int = 0) -> Any:
        """Reduce one value per rank onto *root* (other ranks get ``None``)."""
        self._check_root(root)
        reducer = self._resolve_reducer(op)

        def combine(contribs: list[Any]) -> list[Any]:
            acc = contribs[0]
            for item in contribs[1:]:
                acc = reducer(acc, item)
            return [acc if r == root else None for r in range(self.size)]

        self._record_pointwise(root, payload_nbytes(value), from_root=False)
        return self._collective(f"reduce:{op}", value, combine,
                                signature=payload_signature(value))

    def alltoall(self, send: Sequence[Any]) -> list[Any]:
        """Personalised exchange of exactly one item per destination rank."""
        send = list(send)
        if len(send) != self.size:
            raise ValueError(f"alltoall needs {self.size} items, got {len(send)}")
        return self._exchange("alltoall", send)

    def alltoallv(self, send: Sequence[Any], label: str | None = None) -> list[Any]:
        """Irregular personalised exchange (variable-size payload per destination).

        ``send[d]`` is the payload this rank sends to rank ``d`` (any object;
        numpy arrays are the fast path).  The return value is a list where
        entry ``s`` is the payload received from rank ``s``.  ``label``
        optionally phase-labels the op name (see :func:`exchange_op_name`)
        so schedules from different stages can never be confused for one
        another by the mismatch detection.
        """
        send = list(send)
        if len(send) != self.size:
            raise ValueError(f"alltoallv needs {self.size} payloads, got {len(send)}")
        return self._exchange(exchange_op_name("alltoallv", label), send)

    # -- split-phase exchange ------------------------------------------------------

    def alltoallv_start(self, send: Sequence[Any],
                        label: str | None = None) -> ExchangeHandle:
        """Begin an ``alltoallv`` without blocking for the peers' reads.

        Publishes this rank's per-destination payloads and returns an
        :class:`ExchangeHandle`; the matching :meth:`alltoallv_finish`
        collects the received payloads.  Between the two calls the rank may
        compute — that compute overlaps the peers still publishing or reading
        this superstep — and may even start the *next* exchange (the engines
        keep :data:`EXCHANGE_SLOTS` supersteps in flight per rank).  Both
        calls must be issued in the same order on every rank, like any
        collective; a ``label`` stamps the phase into the op name so
        colliding schedules raise instead of mixing payloads.

        Byte/call accounting is identical to :meth:`alltoallv`, so a streamed
        exchange traces the same volumes and call counts whether or not it is
        split-phase.
        """
        send = list(send)
        if len(send) != self.size:
            raise ValueError(f"alltoallv needs {self.size} payloads, got {len(send)}")
        op_name = exchange_op_name("alltoallv", label)
        start = getattr(self._engine, "exchange_start", None)
        if self._hier_group is not None:
            if start is None:
                # No split-phase engine support: run the whole hierarchical
                # exchange now and hand the result through the handle.
                result = self._hier_exchange(op_name, send)
                return ExchangeHandle(op_name=op_name, result=result, label=label)
            # Hierarchical split phase: only the gather hop is split — it is
            # the hop whose publish can overlap the caller's compute.  The
            # leader hops need the gathered data, so they run synchronously
            # inside alltoallv_finish (through the engine's global-barrier
            # path, which keeps them off the EXCHANGE_SLOTS double buffer —
            # the start(i+1)-before-finish(i) schedules stay deadlock-free).
            self._account_hier_gather(send)
            hop_op = op_name + "/gather"
            if self._faults is not None:
                self._faults.before_op(hop_op, self._phase)
            if self._sanitize:
                self._sanitize_congruence(hop_op, "split", payload_signature(send))
            gather_send = [send if d == self._hier_leader else None
                           for d in range(self.size)]
            seq = self._xchg_seq
            self._xchg_seq += 1
            token = self._engine_call(start, self.rank, hop_op, gather_send, seq)
            return ExchangeHandle(op_name=op_name, token=token, label=label,
                                  hier=True)
        self._record_exchange(send)
        if start is None:
            # Engine without split-phase support: degrade to the synchronous
            # collective and hand the result through the handle.
            result = self._collective(op_name, send, self._transpose_combine(),
                                      signature=payload_signature(send))
            return ExchangeHandle(op_name=op_name, result=result, label=label)
        # The synchronous fallback above hooks faults inside _collective;
        # the split-phase path hooks here, so each start counts exactly one
        # superstep ordinal either way.
        if self._faults is not None:
            self._faults.before_op(op_name, self._phase)
        if self._sanitize:
            # "split" in the digest: a rank taking the synchronous alltoallv
            # path while a peer split-phases the same label is a schedule
            # divergence this check names explicitly.
            self._sanitize_congruence(op_name, "split", payload_signature(send))
        seq = self._xchg_seq
        self._xchg_seq += 1
        token = self._engine_call(start, self.rank, op_name, send, seq)
        return ExchangeHandle(op_name=op_name, token=token, label=label)

    def alltoallv_finish(self, handle: ExchangeHandle) -> list[Any]:
        """Complete a split-phase exchange; returns payloads in source-rank order."""
        if self._sanitize and handle.consumed:
            raise SegmentStateError(
                f"sanitizer: rank {self.rank} called alltoallv_finish twice "
                f"on the same handle ({handle.op_name}); the segment was "
                "released at the first finish"
            )
        if handle.result is not None:
            handle.consumed = True
            return handle.result
        received = self._engine_call(
            self._engine.exchange_finish, self.rank, handle.token
        )
        if handle.hier:
            # The split hop delivered the gathered member sends; run the
            # leader-to-leader and scatter hops now (synchronous collectives,
            # issued by every rank — see alltoallv_start's hier branch).
            received = self._hier_finish(handle.op_name, received)
        handle.consumed = True
        return received

    # -- helpers ------------------------------------------------------------------

    def _transpose_combine(self) -> CombineFn:
        def combine(contribs: list[Any]) -> list[Any]:
            # contribs[src][dst] is the payload src sends to dst; transpose it.
            return [[contribs[src][dst] for src in range(self.size)]
                    for dst in range(self.size)]

        return combine

    def _record_exchange(self, send: list[Any]) -> None:
        # All exchange accounting lives here so that ``alltoall``,
        # ``alltoallv`` and the split-phase ``alltoallv_start`` (and therefore
        # every chunked superstep of a streamed exchange) count calls
        # identically: one global-Alltoallv ordinal and one per-phase
        # collective call per invocation.
        if self.trace is not None:
            sizes = np.array([payload_nbytes(p) for p in send], dtype=np.int64)
            self.trace.record_send(self.rank, sizes)
            if self.rank == 0:
                self.trace.record_collective_call(self.trace.current_phase(0))
                self.trace.record_alltoallv_call()

    def _exchange(self, op_name: str, send: list[Any]) -> list[Any]:
        if self._hier_group is not None:
            return self._hier_exchange(op_name, send)
        self._record_exchange(send)
        return self._collective(op_name, send, self._transpose_combine(),
                                signature=payload_signature(send))

    # -- hierarchical (two-level) exchange ---------------------------------------
    #
    # With a grouped topology an alltoall(v) runs as three hops, each an
    # ordinary collective issued by EVERY rank in the same order (payload
    # construction is the only rank-dependent part — SPMD discipline):
    #
    #   1. ``op/gather``  — each rank sends its whole logical send list to
    #      its group leader (one segment instead of R).
    #   2. ``op/xgroup``  — leaders exchange, pairwise, the concatenated
    #      member payloads addressed to each other group: G·(G−1) cross-
    #      group segments instead of R·(R−1).
    #   3. ``op/scatter`` — each leader rebuilds, per member, the full
    #      source-ordered result row and scatters it.
    #
    # The delivered rows are bit-identical to the flat engine's.  Byte
    # accounting records the *hop* traffic (that is the observable the
    # hier gate asserts on) with sizes that are linear in the logical
    # per-destination payload bytes, so streamed exchanges stay
    # chunk-invariant; call ordinals count once per logical exchange,
    # exactly like the flat path.

    def _hier_exchange(self, op_name: str, send: list[Any]) -> list[Any]:
        """Run one full hierarchical exchange synchronously."""
        self._account_hier_gather(send)
        received1 = self._collective(
            op_name + "/gather",
            [send if d == self._hier_leader else None for d in range(self.size)],
            self._transpose_combine(),
            signature=payload_signature(send),
        )
        return self._hier_finish(op_name, received1)

    def _account_hier_gather(self, send: list[Any]) -> None:
        """Gather-hop accounting: trace row, call ordinals, group counters."""
        sizes = np.array([payload_nbytes(p) for p in send], dtype=np.int64)
        intra = int(sizes[list(self._hier_members)].sum())
        total = int(sizes.sum())
        self.hier_stats["intragroup_bytes"] += intra
        self.hier_stats["intergroup_bytes"] += total - intra
        if self.trace is not None:
            hop = np.zeros(self.size, dtype=np.int64)
            hop[self._hier_leader] = total
            self.trace.record_send(self.rank, hop)
            if self.rank == 0:
                self.trace.record_collective_call(self.trace.current_phase(0))
                self.trace.record_alltoallv_call()

    def _hier_finish(self, op_name: str, received1: list[Any]) -> list[Any]:
        """Leader-to-leader and scatter hops; returns this rank's result row.

        ``received1`` is the gather hop's delivery: on a leader, entry ``m``
        is member ``m``'s whole logical send list; on every other rank, all
        ``None``.  Both leader hops are built under a wall clock that feeds
        the ``leader_aggregation_seconds`` counter.
        """
        leader = self.rank == self._hier_leader
        group_ranks = self._hier_group_ranks
        own = self._hier_group

        xgroup_send: list[Any] = [None] * self.size
        if leader:
            t0 = perf_counter()
            rows = {m: received1[m] for m in self._hier_members}
            hop2 = np.zeros(self.size, dtype=np.int64)
            for g, dests in enumerate(group_ranks):
                if g == own:
                    continue
                flat = [rows[m][d] for m in self._hier_members for d in dests]
                hop2[self._hier_leaders[g]] = sum(payload_nbytes(p) for p in flat)
                xgroup_send[self._hier_leaders[g]] = pack_segments(flat)
            self.hier_stats["leader_seconds"] += perf_counter() - t0
            if self.trace is not None:
                self.trace.record_send(self.rank, hop2)
        # Leader-hop payloads are rank-asymmetric by design (non-leaders
        # contribute None), so the congruence signature is "" like bcast's.
        received2 = self._collective(op_name + "/xgroup", xgroup_send,
                                     self._transpose_combine(), signature="")

        scatter_send: list[Any] = [None] * self.size
        if leader:
            t0 = perf_counter()
            # blocks[g][i][j]: payload from the i-th rank of group g to the
            # j-th member of this group (the xgroup hop's flattening order).
            n_members = len(self._hier_members)
            blocks = {}
            for g in range(len(group_ranks)):
                if g == own:
                    continue
                flat = unpack_segments(received2[self._hier_leaders[g]])
                blocks[g] = [flat[i * n_members:(i + 1) * n_members]
                             for i in range(len(group_ranks[g]))]
            hop3 = np.zeros(self.size, dtype=np.int64)
            group_of = self.topology.groups
            for j, member in enumerate(self._hier_members):
                row = [
                    received1[s][member] if group_of[s] == own
                    else blocks[group_of[s]][self._hier_rank_index[s]][j]
                    for s in range(self.size)
                ]
                hop3[member] = sum(payload_nbytes(p) for p in row)
                scatter_send[member] = pack_segments(row)
            self.hier_stats["leader_seconds"] += perf_counter() - t0
            if self.trace is not None:
                self.trace.record_send(self.rank, hop3)
        received3 = self._collective(op_name + "/scatter", scatter_send,
                                     self._transpose_combine(), signature="")
        return unpack_segments(received3[self._hier_leader])

    def _check_root(self, root: int) -> None:
        if not (0 <= root < self.size):
            raise ValueError(f"root {root} out of range for size {self.size}")

    @staticmethod
    def _resolve_reducer(op: Callable[[Any, Any], Any] | str) -> Callable[[Any, Any], Any]:
        if callable(op):
            return op
        table: dict[str, Callable[[Any, Any], Any]] = {
            "sum": lambda a, b: a + b,
            "max": lambda a, b: np.maximum(a, b) if isinstance(a, np.ndarray) else max(a, b),
            "min": lambda a, b: np.minimum(a, b) if isinstance(a, np.ndarray) else min(a, b),
        }
        try:
            return table[op]
        except KeyError:
            raise ValueError(f"unknown reduction op {op!r}") from None

    def _record_pointwise(self, root: int, nbytes: int, from_root: bool) -> None:
        """Account a root-based collective: root↔rank traffic only."""
        if self.trace is None or nbytes == 0:
            return
        sizes = np.zeros(self.size, dtype=np.int64)
        if from_root:
            if self.rank == root:
                sizes[:] = nbytes
                sizes[root] = 0
                self.trace.record_send(self.rank, sizes)
        else:
            if self.rank != root:
                sizes[root] = nbytes
                self.trace.record_send(self.rank, sizes)

    def _record_broadcast(self, nbytes: int) -> None:
        """Account an all-to-all-style small collective (allgather/allreduce)."""
        if self.trace is None or nbytes == 0:
            return
        sizes = np.full(self.size, nbytes, dtype=np.int64)
        sizes[self.rank] = 0
        self.trace.record_send(self.rank, sizes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimCommunicator(rank={self.rank}, size={self.size})"
