"""Serve-phase pinning: bit-identical query batches over a resident index.

The acceptance bar for the build/serve split: a served query batch must
produce exactly the alignments a cold one-shot run over (index ∪ query)
produces for query-vs-index pairs — across both runtime backends and shard
counts — while touching zero index-build code paths after the first batch.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AlignmentService, DibellaPipeline, PipelineConfig
from repro.core.stages import reset_persistent_read_caches, reset_resident_indexes
from repro.mpisim.backend import shutdown_rank_pools
from repro.mpisim.topology import Topology
from repro.seq.kmer import KmerSpec
from repro.seq.records import ReadSet


RANKS = 4


def _config(backend: str, shards: int, pool: bool = False) -> PipelineConfig:
    config = PipelineConfig(kmer=KmerSpec(k=15), coverage_hint=12.0,
                            error_rate_hint=0.08, backend=backend,
                            hash_table_shards=shards)
    if pool:
        config = config.with_pool(True)
    return config


def _cleanup():
    shutdown_rank_pools()
    reset_persistent_read_caches()
    reset_resident_indexes()


def _canonical(table: dict[str, np.ndarray]) -> np.ndarray:
    """Alignments as a canonically sorted (n, 5) matrix (gather-order-free)."""
    matrix = np.stack([table["rid_a"], table["rid_b"], table["score"],
                       table["span_a"], table["span_b"]], axis=1)
    order = np.lexsort(tuple(matrix[:, col] for col in range(4, -1, -1)))
    return matrix[order]


def _cross_only(table: dict[str, np.ndarray], n_index: int) -> dict[str, np.ndarray]:
    """Restrict an alignment table to query-vs-index pairs (rid_a < n_index <= rid_b)."""
    mask = (table["rid_a"] < n_index) & (table["rid_b"] >= n_index)
    return {key: value[mask] for key, value in table.items()}


def _split(readset: ReadSet, n_index: int) -> tuple[ReadSet, ReadSet]:
    reads = list(readset)
    return ReadSet(reads[:n_index]), ReadSet(reads[n_index:])


def _assert_parity(config: PipelineConfig, readset: ReadSet) -> None:
    n_index = (3 * len(readset)) // 4
    index_reads, query_reads = _split(readset, n_index)
    topology = Topology.single_node(RANKS)
    try:
        oneshot = DibellaPipeline(config=config, topology=topology).run(readset)
        expected = _canonical(_cross_only(oneshot.alignment_table(), n_index))

        pipeline = DibellaPipeline(config=config, topology=topology)
        pipeline.build_index(index_reads)
        served = pipeline.run_query_batch(query_reads)
        got = _canonical(served.alignment_table())

        assert got.shape == expected.shape
        np.testing.assert_array_equal(got, expected)
        assert served.counters["query_reads"] == len(query_reads)
    finally:
        _cleanup()


@pytest.mark.parametrize("shards", [1, 4])
def test_served_batch_matches_one_shot_thread(micro_dataset, shards):
    _assert_parity(_config("thread", shards), micro_dataset.reads)


@pytest.mark.slow
@pytest.mark.parametrize("shards", [1, 4])
def test_served_batch_matches_one_shot_process(micro_dataset, shards):
    _assert_parity(_config("process", shards, pool=True), micro_dataset.reads)


def test_second_batch_reuses_resident_index(micro_dataset):
    """Consecutive batches: zero build counters, all ranks report a reuse hit."""
    index_reads, query_reads = _split(micro_dataset.reads,
                                      (3 * len(micro_dataset.reads)) // 4)
    queries = list(query_reads)
    config = _config("thread", 4)
    try:
        pipeline = DibellaPipeline(config=config,
                                   topology=Topology.single_node(RANKS))
        pipeline.build_index(index_reads)
        first = pipeline.run_query_batch(ReadSet(queries[: len(queries) // 2]))
        second = pipeline.run_query_batch(ReadSet(queries[len(queries) // 2:]))
        for result in (first, second):
            assert result.counters["index_reuse_hits"] == RANKS
            assert result.counters.get("index_build_runs", 0) == 0
            # No stage-1/2 build traffic: the bloom filter never runs in the
            # serve phase and the hash table is never refilled.
            assert result.counters.get("kmers_received_bloom", 0) == 0
            assert result.counters.get("kmers_received_hashtable", 0) == 0
    finally:
        _cleanup()


def test_query_batch_without_build_raises(micro_dataset):
    pipeline = DibellaPipeline(config=_config("thread", 1),
                               topology=Topology.single_node(2))
    with pytest.raises(RuntimeError, match="build_index"):
        pipeline.run_query_batch(micro_dataset.reads)


def test_name_collision_with_index_reads_is_rejected(micro_dataset):
    index_reads, query_reads = _split(micro_dataset.reads, 20)
    config = _config("thread", 1)
    try:
        pipeline = DibellaPipeline(config=config,
                                   topology=Topology.single_node(2))
        pipeline.build_index(index_reads)
        with pytest.raises(ValueError, match="name"):
            pipeline.run_query_batch(ReadSet([list(index_reads)[0]]))
    finally:
        _cleanup()


@pytest.mark.slow
def test_unpooled_process_backend_rebuilds_each_batch(micro_dataset):
    """Without the rank pool, fresh workers cannot reuse a resident index."""
    index_reads, query_reads = _split(micro_dataset.reads,
                                      (3 * len(micro_dataset.reads)) // 4)
    config = _config("process", 1, pool=False)
    try:
        pipeline = DibellaPipeline(config=config,
                                   topology=Topology.single_node(2))
        pipeline.build_index(index_reads)
        result = pipeline.run_query_batch(query_reads)
        assert result.counters.get("index_reuse_hits", 0) == 0
        assert result.counters["index_build_runs"] == 2
    finally:
        _cleanup()


def test_alignment_service_coalesces_submissions(micro_dataset):
    """The service renames reads per submission and coalesces whole submissions."""
    index_reads, query_reads = _split(micro_dataset.reads,
                                      (3 * len(micro_dataset.reads)) // 4)
    queries = list(query_reads)
    assert len(queries) >= 4
    config = _config("thread", 4).with_serve_batch_reads(len(queries))
    service = AlignmentService(index_reads, config=config,
                               topology=Topology.single_node(RANKS))
    try:
        first = service.submit(queries[:2])
        second = service.submit(queries[2:])
        assert (first, second) == (0, 1)
        assert service.pending_reads == len(queries)

        records = service.drain()
        assert service.pending_reads == 0
        assert len(records) == 1  # both submissions fit one batch bound
        record = records[0]
        assert record.n_submissions == 2
        assert record.n_reads == len(queries)
        assert record.query_names[0] == f"q0/{queries[0].name}"
        assert record.query_names[2] == f"q1/{queries[2].name}"
        assert record.result.counters["index_reuse_hits"] == RANKS

        # A second drain of one oversized submission becomes its own batch.
        service.submit(queries)
        service.submit(queries[:1])
        more = service.drain()
        assert [r.n_submissions for r in more] == [1, 1]

        stats = service.latency_stats()
        assert stats["batches"] == 3.0
        assert stats["p99_seconds"] >= stats["p50_seconds"] > 0.0
        assert stats["reads_per_second"] > 0.0
    finally:
        service.shutdown()
        reset_persistent_read_caches()
        reset_resident_indexes()


def test_service_rejects_empty_inputs(micro_dataset):
    with pytest.raises(ValueError):
        AlignmentService(ReadSet([]))
    service = AlignmentService(micro_dataset.reads, config=_config("thread", 1))
    with pytest.raises(ValueError):
        service.submit([])
