"""Unit and property tests for repro.seq.kmer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.seq.alphabet import reverse_complement
from repro.seq.kmer import (
    KmerSpec,
    canonical_code,
    canonicalize_codes,
    extract_kmer_codes,
    extract_kmers_with_positions,
    extract_kmers_with_strand,
    iter_kmers,
    kmer_code_to_string,
    kmer_string_to_code,
    reverse_complement_code,
)

dna = st.text(alphabet="ACGT", min_size=0, max_size=150)
kvals = st.integers(min_value=2, max_value=21)


class TestKmerSpec:
    def test_defaults(self):
        spec = KmerSpec()
        assert spec.k == 17
        assert spec.canonical

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            KmerSpec(k=0)
        with pytest.raises(ValueError):
            KmerSpec(k=32)

    def test_kmers_in(self):
        spec = KmerSpec(k=5)
        assert spec.kmers_in(10) == 6
        assert spec.kmers_in(5) == 1
        assert spec.kmers_in(4) == 0

    def test_code_mask(self):
        assert KmerSpec(k=3).code_mask == 0b111111


class TestCodeConversion:
    def test_known_values(self):
        assert kmer_string_to_code("A") == 0
        assert kmer_string_to_code("T") == 3
        assert kmer_string_to_code("AC") == 1
        assert kmer_string_to_code("CA") == 4

    def test_roundtrip_fixed(self):
        for s in ("ACGT", "TTTT", "GATTACA", "A" * 31):
            assert kmer_code_to_string(kmer_string_to_code(s), len(s)) == s

    def test_too_long(self):
        with pytest.raises(ValueError):
            kmer_string_to_code("A" * 32)

    @given(st.integers(min_value=1, max_value=31).flatmap(
        lambda k: st.text(alphabet="ACGT", min_size=k, max_size=k)))
    def test_roundtrip_property(self, kmer):
        assert kmer_code_to_string(kmer_string_to_code(kmer), len(kmer)) == kmer


class TestReverseComplementCode:
    def test_matches_string_revcomp(self):
        for s in ("ACGT", "AAAC", "GATTACA", "TTGCA"):
            code = kmer_string_to_code(s)
            rc_code = reverse_complement_code(code, len(s))
            assert kmer_code_to_string(rc_code, len(s)) == reverse_complement(s)

    @given(st.integers(min_value=2, max_value=21).flatmap(
        lambda k: st.text(alphabet="ACGT", min_size=k, max_size=k)))
    def test_involution(self, kmer):
        k = len(kmer)
        code = kmer_string_to_code(kmer)
        assert reverse_complement_code(reverse_complement_code(code, k), k) == code

    def test_vectorised_matches_scalar(self):
        codes = np.array([kmer_string_to_code(s) for s in ("ACGTA", "TTTTT", "GATTA")],
                         dtype=np.uint64)
        vec = reverse_complement_code(codes, 5)
        for i, c in enumerate(codes):
            assert int(vec[i]) == reverse_complement_code(int(c), 5)


class TestCanonical:
    def test_canonical_is_min(self):
        code = kmer_string_to_code("TTTTT")
        rc = reverse_complement_code(code, 5)
        assert canonical_code(code, 5) == min(code, rc)

    def test_strand_invariance(self):
        s = "ACGGATCGAT"
        spec = KmerSpec(k=5, canonical=True)
        fwd = set(extract_kmer_codes(s, spec).tolist())
        rev = set(extract_kmer_codes(reverse_complement(s), spec).tolist())
        assert fwd == rev

    @given(dna.filter(lambda s: len(s) >= 6))
    @settings(max_examples=50)
    def test_strand_invariance_property(self, seq):
        spec = KmerSpec(k=6, canonical=True)
        fwd = set(extract_kmer_codes(seq, spec).tolist())
        rev = set(extract_kmer_codes(reverse_complement(seq), spec).tolist())
        assert fwd == rev


class TestExtraction:
    def test_count(self):
        spec = KmerSpec(k=4, canonical=False)
        assert extract_kmer_codes("ACGTACGT", spec).size == 5

    def test_too_short(self):
        spec = KmerSpec(k=10, canonical=False)
        assert extract_kmer_codes("ACGT", spec).size == 0

    def test_values_match_slow_path(self):
        seq = "ACGGATTACAGGT"
        spec = KmerSpec(k=4, canonical=False)
        fast = [kmer_code_to_string(int(c), 4) for c in extract_kmer_codes(seq, spec)]
        slow = [seq[i : i + 4] for i in range(len(seq) - 3)]
        assert fast == slow

    @given(dna, kvals)
    @settings(max_examples=60)
    def test_extraction_matches_slicing(self, seq, k):
        spec = KmerSpec(k=k, canonical=False)
        fast = [kmer_code_to_string(int(c), k) for c in extract_kmer_codes(seq, spec)]
        slow = [seq[i : i + k] for i in range(max(0, len(seq) - k + 1))]
        assert fast == slow

    def test_positions(self):
        codes, pos = extract_kmers_with_positions("ACGTACG", KmerSpec(k=3))
        assert pos.tolist() == [0, 1, 2, 3, 4]
        assert codes.size == 5

    def test_iter_kmers(self):
        assert list(iter_kmers("ACGTA", 3)) == ["ACG", "CGT", "GTA"]


class TestStrandExtraction:
    def test_strand_flags(self):
        seq = "ACGGATTAC"
        spec = KmerSpec(k=5)
        codes, positions, strands = extract_kmers_with_strand(seq, spec)
        assert codes.size == positions.size == strands.size == 5
        # Canonical codes must equal the canonicalised forward codes.
        raw = extract_kmer_codes(seq, KmerSpec(k=5, canonical=False))
        np.testing.assert_array_equal(codes, canonicalize_codes(raw, 5))
        # Where the flag says "forward", the canonical code equals the raw code.
        np.testing.assert_array_equal(strands, codes == raw)

    def test_palindrome_is_forward(self):
        # ACGT's reverse complement is itself; the flag must be True.
        _, _, strands = extract_kmers_with_strand("ACGT", KmerSpec(k=4))
        assert strands.tolist() == [True]
