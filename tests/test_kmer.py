"""Unit and property tests for repro.seq.kmer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.seq.alphabet import reverse_complement
from repro.seq.kmer import (
    KmerSpec,
    canonical_code,
    canonicalize_codes,
    extract_kmer_codes,
    extract_kmers_batch,
    extract_kmers_with_positions,
    extract_kmers_with_strand,
    iter_kmers,
    kmer_code_to_string,
    kmer_string_to_code,
    reverse_complement_code,
)

dna = st.text(alphabet="ACGT", min_size=0, max_size=150)
kvals = st.integers(min_value=2, max_value=21)


class TestKmerSpec:
    def test_defaults(self):
        spec = KmerSpec()
        assert spec.k == 17
        assert spec.canonical

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            KmerSpec(k=0)
        with pytest.raises(ValueError):
            KmerSpec(k=32)

    def test_kmers_in(self):
        spec = KmerSpec(k=5)
        assert spec.kmers_in(10) == 6
        assert spec.kmers_in(5) == 1
        assert spec.kmers_in(4) == 0

    def test_code_mask(self):
        assert KmerSpec(k=3).code_mask == 0b111111


class TestCodeConversion:
    def test_known_values(self):
        assert kmer_string_to_code("A") == 0
        assert kmer_string_to_code("T") == 3
        assert kmer_string_to_code("AC") == 1
        assert kmer_string_to_code("CA") == 4

    def test_roundtrip_fixed(self):
        for s in ("ACGT", "TTTT", "GATTACA", "A" * 31):
            assert kmer_code_to_string(kmer_string_to_code(s), len(s)) == s

    def test_too_long(self):
        with pytest.raises(ValueError):
            kmer_string_to_code("A" * 32)

    @given(st.integers(min_value=1, max_value=31).flatmap(
        lambda k: st.text(alphabet="ACGT", min_size=k, max_size=k)))
    def test_roundtrip_property(self, kmer):
        assert kmer_code_to_string(kmer_string_to_code(kmer), len(kmer)) == kmer


class TestReverseComplementCode:
    def test_matches_string_revcomp(self):
        for s in ("ACGT", "AAAC", "GATTACA", "TTGCA"):
            code = kmer_string_to_code(s)
            rc_code = reverse_complement_code(code, len(s))
            assert kmer_code_to_string(rc_code, len(s)) == reverse_complement(s)

    @given(st.integers(min_value=2, max_value=21).flatmap(
        lambda k: st.text(alphabet="ACGT", min_size=k, max_size=k)))
    def test_involution(self, kmer):
        k = len(kmer)
        code = kmer_string_to_code(kmer)
        assert reverse_complement_code(reverse_complement_code(code, k), k) == code

    def test_vectorised_matches_scalar(self):
        codes = np.array([kmer_string_to_code(s) for s in ("ACGTA", "TTTTT", "GATTA")],
                         dtype=np.uint64)
        vec = reverse_complement_code(codes, 5)
        for i, c in enumerate(codes):
            assert int(vec[i]) == reverse_complement_code(int(c), 5)


class TestCanonical:
    def test_canonical_is_min(self):
        code = kmer_string_to_code("TTTTT")
        rc = reverse_complement_code(code, 5)
        assert canonical_code(code, 5) == min(code, rc)

    def test_strand_invariance(self):
        s = "ACGGATCGAT"
        spec = KmerSpec(k=5, canonical=True)
        fwd = set(extract_kmer_codes(s, spec).tolist())
        rev = set(extract_kmer_codes(reverse_complement(s), spec).tolist())
        assert fwd == rev

    @given(dna.filter(lambda s: len(s) >= 6))
    @settings(max_examples=50)
    def test_strand_invariance_property(self, seq):
        spec = KmerSpec(k=6, canonical=True)
        fwd = set(extract_kmer_codes(seq, spec).tolist())
        rev = set(extract_kmer_codes(reverse_complement(seq), spec).tolist())
        assert fwd == rev


class TestExtraction:
    def test_count(self):
        spec = KmerSpec(k=4, canonical=False)
        assert extract_kmer_codes("ACGTACGT", spec).size == 5

    def test_too_short(self):
        spec = KmerSpec(k=10, canonical=False)
        assert extract_kmer_codes("ACGT", spec).size == 0

    def test_values_match_slow_path(self):
        seq = "ACGGATTACAGGT"
        spec = KmerSpec(k=4, canonical=False)
        fast = [kmer_code_to_string(int(c), 4) for c in extract_kmer_codes(seq, spec)]
        slow = [seq[i : i + 4] for i in range(len(seq) - 3)]
        assert fast == slow

    @given(dna, kvals)
    @settings(max_examples=60)
    def test_extraction_matches_slicing(self, seq, k):
        spec = KmerSpec(k=k, canonical=False)
        fast = [kmer_code_to_string(int(c), k) for c in extract_kmer_codes(seq, spec)]
        slow = [seq[i : i + k] for i in range(max(0, len(seq) - k + 1))]
        assert fast == slow

    def test_positions(self):
        codes, pos = extract_kmers_with_positions("ACGTACG", KmerSpec(k=3))
        assert pos.tolist() == [0, 1, 2, 3, 4]
        assert codes.size == 5

    def test_iter_kmers(self):
        assert list(iter_kmers("ACGTA", 3)) == ["ACG", "CGT", "GTA"]


class TestStrandExtraction:
    def test_strand_flags(self):
        seq = "ACGGATTAC"
        spec = KmerSpec(k=5)
        codes, positions, strands = extract_kmers_with_strand(seq, spec)
        assert codes.size == positions.size == strands.size == 5
        # Canonical codes must equal the canonicalised forward codes.
        raw = extract_kmer_codes(seq, KmerSpec(k=5, canonical=False))
        np.testing.assert_array_equal(codes, canonicalize_codes(raw, 5))
        # Where the flag says "forward", the canonical code equals the raw code.
        np.testing.assert_array_equal(strands, codes == raw)

    def test_palindrome_is_forward(self):
        # ACGT's reverse complement is itself; the flag must be True.
        _, _, strands = extract_kmers_with_strand("ACGT", KmerSpec(k=4))
        assert strands.tolist() == [True]


class TestBatchExtraction:
    """extract_kmers_batch must match the per-read extraction exactly."""

    def _random_reads(self, rng, n_reads, k):
        reads = []
        for _ in range(n_reads):
            # Mix of normal reads, reads shorter than k, and empty reads.
            r = rng.random()
            if r < 0.15:
                length = int(rng.integers(0, k))
            else:
                length = int(rng.integers(k, 120))
            reads.append("".join("ACGT"[i] for i in rng.integers(0, 4, size=length)))
        return reads

    @pytest.mark.parametrize("seed,k", [(0, 5), (1, 17), (2, 11), (3, 2)])
    def test_with_strand_matches_per_read(self, seed, k):
        rng = np.random.default_rng(seed)
        reads = self._random_reads(rng, 20, k)
        spec = KmerSpec(k=k)
        codes, read_index, positions, strands = extract_kmers_batch(
            reads, spec, with_strand=True)
        assert codes.size == read_index.size == positions.size == strands.size
        cursor = 0
        for i, read in enumerate(reads):
            want_codes, want_pos, want_strands = extract_kmers_with_strand(read, spec)
            n = want_codes.size
            chunk = slice(cursor, cursor + n)
            assert (read_index[chunk] == i).all()
            np.testing.assert_array_equal(codes[chunk], want_codes)
            np.testing.assert_array_equal(positions[chunk], want_pos)
            np.testing.assert_array_equal(strands[chunk], want_strands)
            cursor += n
        assert cursor == codes.size  # nothing extra, nothing missing

    @pytest.mark.parametrize("canonical", [True, False])
    def test_codes_only_matches_per_read(self, canonical):
        rng = np.random.default_rng(9)
        spec = KmerSpec(k=7, canonical=canonical)
        reads = self._random_reads(rng, 15, 7)
        codes, read_index, positions, strands = extract_kmers_batch(reads, spec)
        assert strands.size == 0
        want = [extract_kmer_codes(r, spec) for r in reads]
        np.testing.assert_array_equal(codes, np.concatenate(want) if want else codes)
        np.testing.assert_array_equal(
            read_index, np.repeat(np.arange(len(reads)), [w.size for w in want]))

    def test_boundary_windows_masked(self):
        # k-mers spanning two reads must not appear: 8 total bases but only
        # 2 valid 4-mers (one per read).
        codes, read_index, positions, _ = extract_kmers_batch(
            ["ACGT", "TTTT"], KmerSpec(k=4))
        assert codes.size == 2
        assert read_index.tolist() == [0, 1]
        assert positions.tolist() == [0, 0]

    def test_empty_inputs(self):
        for batch in ([], ["", ""], ["AC"]):
            codes, read_index, positions, strands = extract_kmers_batch(
                batch, KmerSpec(k=5), with_strand=True)
            assert codes.size == 0 and read_index.size == 0
            assert positions.size == 0 and strands.size == 0

    def test_short_reads_between_long_ones(self):
        reads = ["ACGTACGTAC", "AC", "", "GGGTTTCCCA"]
        codes, read_index, positions, _ = extract_kmers_batch(reads, KmerSpec(k=5))
        assert set(read_index.tolist()) == {0, 3}
        assert codes.size == 12  # 6 k-mers from each long read
