"""ReadCache byte-capacity LRU: trim order, recency refresh, counters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.align.read_cache import ReadCache
from repro.core import DibellaPipeline, PipelineConfig
from repro.core.stages import reset_persistent_read_caches, reset_resident_indexes
from repro.mpisim.backend import shutdown_rank_pools
from repro.mpisim.topology import Topology
from repro.seq.kmer import KmerSpec


def _cache_with(n: int, bases: int = 10) -> ReadCache:
    cache = ReadCache()
    for rid in range(n):
        cache.put(rid, "ACGT"[rid % 4] * bases)
    return cache


def test_trim_evicts_least_recently_used_first():
    cache = _cache_with(5)  # 50 bases cached, insertion order 0..4
    evicted = cache.trim(capacity_bytes=30)
    assert evicted == 2
    assert 0 not in cache and 1 not in cache
    assert all(rid in cache for rid in (2, 3, 4))
    assert cache.evictions == 2
    assert cache.evicted_bytes == 20


def test_access_refreshes_recency():
    cache = _cache_with(5)
    cache.encoded(0)          # rid 0 becomes most-recently-used
    cache.get_sequence(1)     # then rid 1
    cache.trim(capacity_bytes=30)
    # The untouched middle (2, 3) goes first; the refreshed head survives.
    assert 2 not in cache and 3 not in cache
    assert all(rid in cache for rid in (0, 1, 4))


def test_put_packed_on_existing_rid_touches():
    cache = _cache_with(3)
    packed = np.zeros(3, dtype=np.uint8)
    cache.put_packed(0, packed, 10)  # existing entry kept, but refreshed
    assert cache.get_sequence(0) == "A" * 10
    cache.trim(capacity_bytes=20)
    assert 0 in cache and 1 not in cache


def test_zero_capacity_means_unbounded():
    cache = _cache_with(4)
    assert cache.capacity_bytes == 0
    assert cache.trim() == 0           # own capacity: unbounded
    assert cache.trim(capacity_bytes=0) == 0
    assert len(cache) == 4
    assert cache.evictions == 0


def test_trim_defaults_to_own_capacity():
    cache = _cache_with(4)
    cache.capacity_bytes = 25
    assert cache.trim() == 2
    assert cache.total_bases() <= 25


def test_evict_rids_at_or_above_is_not_a_capacity_eviction():
    cache = _cache_with(6)
    dropped = cache.evict_rids_at_or_above(4)
    assert dropped == 2
    assert 3 in cache and 4 not in cache and 5 not in cache
    # Correctness eviction: invisible to the capacity counters.
    assert cache.evictions == 0
    assert cache.evicted_bytes == 0
    assert cache.counters()["read_cache_evictions"] == 0


def test_counters_include_eviction_fields():
    cache = _cache_with(3)
    cache.trim(capacity_bytes=10)
    counters = cache.counters()
    assert counters["read_cache_evictions"] == 2
    assert counters["read_cache_evicted_bytes"] == 20


@pytest.mark.slow
def test_pipeline_surfaces_read_cache_evictions(micro_dataset):
    """A tiny --read-cache-mb bound makes the alignment stage trim and report."""
    config = PipelineConfig(kmer=KmerSpec(k=15), coverage_hint=12.0,
                            error_rate_hint=0.08,
                            read_cache_mb=0.001)  # ~1 KiB: far below one read
    try:
        result = DibellaPipeline(config=config,
                                 topology=Topology.single_node(2)
                                 ).run(micro_dataset.reads)
        assert result.counters["read_cache_evictions"] > 0
        assert result.counters["read_cache_evicted_bytes"] > 0
        # Unbounded run over the same workload: no evictions.
        unbounded = DibellaPipeline(config=config.with_read_cache_mb(0.0),
                                    topology=Topology.single_node(2)
                                    ).run(micro_dataset.reads)
        assert unbounded.counters["read_cache_evictions"] == 0
        # The bound does not change the science, only the cache footprint.
        assert (result.counters["accepted_alignments"]
                == unbounded.counters["accepted_alignments"])
    finally:
        shutdown_rank_pools()
        reset_persistent_read_caches()
        reset_resident_indexes()
