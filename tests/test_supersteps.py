"""Unified superstep scheduler tests.

Two layers:

* scheduler-level — toy SPMD programs driving
  :class:`repro.core.supersteps.SuperstepSchedule` directly, pinning that
  the double-buffered split-phase schedule delivers exactly the payloads
  (and traces) of the bulk-synchronous fallback, for both the single-hop and
  the two-hop (request/response) shapes, on both runtime backends;
* pipeline-level (slow tier) — sync-vs-split-phase equivalence and trace
  identity for stages 1, 2 and 4 (mirroring the existing overlap tests),
  the ``{thread, process} × {double-buffer on/off}`` parity matrix over the
  per-stage knobs, the bloom stash release accounting, and the alignment
  fetch-batching invariance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SUPERSTEP_STAGES, PipelineConfig
from repro.core.counters import SCHEDULE_FLAG_COUNTERS
from repro.core.supersteps import ScheduleOutcome, StageTimer, SuperstepSchedule
from repro.mpisim.errors import CollectiveMismatchError, RankFailedError
from repro.mpisim.runtime import spmd_run
from repro.mpisim.tracing import CommTrace


# ---------------------------------------------------------------------------
# Scheduler-level: toy SPMD programs
# ---------------------------------------------------------------------------

def _single_hop_program(comm, double_buffer):
    """Unequal local step counts; returns consumed payloads + outcome."""
    timer = StageTimer()
    n_local = comm.rank + 1
    consumed = []

    def produce(step):
        if step >= n_local:
            return [np.empty(0, dtype=np.int64) for _ in range(comm.size)]
        return [np.arange(step + dst + comm.rank * 10, dtype=np.int64)
                for dst in range(comm.size)]

    def consume(step, received):
        consumed.append([np.asarray(a).tolist() for a in received])

    schedule = SuperstepSchedule(comm, timer, n_local,
                                 double_buffer=double_buffer, label="toy")
    outcome = schedule.run(produce, consume)
    return consumed, (outcome.n_supersteps, outcome.steps_overlapped,
                      outcome.double_buffered)


def _two_hop_program(comm, double_buffer):
    """Request/response rounds; responders transform the requests."""
    timer = StageTimer()
    n_local = 2 if comm.rank == 0 else 3
    consumed = []

    def produce(step):
        if step >= n_local:
            return [np.empty(0, dtype=np.int64) for _ in range(comm.size)]
        return [np.arange(dst + step + 1, dtype=np.int64)
                for dst in range(comm.size)]

    def respond(step, requests):
        return [np.asarray(req, dtype=np.int64) * 2 + comm.rank
                for req in requests]

    def consume(step, blocks):
        consumed.append([np.asarray(b).tolist() for b in blocks])

    schedule = SuperstepSchedule(comm, timer, n_local,
                                 double_buffer=double_buffer, label="toy2")
    outcome = schedule.run_two_hop(produce, respond, consume)
    return consumed, (outcome.n_supersteps, outcome.steps_overlapped)


class TestSuperstepSchedule:
    """The scheduler's split-phase schedule must be a pure schedule change."""

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_single_hop_split_matches_sync(self, backend):
        split = spmd_run(3, _single_hop_program, True, backend=backend)
        sync = spmd_run(3, _single_hop_program, False, backend=backend)
        assert [payloads for payloads, _ in split] == [p for p, _ in sync]

    def test_single_hop_thread_process_identical(self):
        assert ([p for p, _ in spmd_run(3, _single_hop_program, True,
                                        backend="thread")]
                == [p for p, _ in spmd_run(3, _single_hop_program, True,
                                           backend="process")])

    def test_step_count_agreement_and_overlap_accounting(self):
        results = spmd_run(3, _single_hop_program, True, backend="thread")
        for _payloads, (n_supersteps, overlapped, double_buffered) in results:
            assert n_supersteps == 3  # max over ranks' 1..3 local steps
            assert overlapped == 2    # every step but the first overlapped
            assert double_buffered
        sync = spmd_run(3, _single_hop_program, False, backend="thread")
        for _payloads, (n, overlapped, double_buffered) in sync:
            assert (n, overlapped, double_buffered) == (3, 0, False)

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_two_hop_split_matches_sync(self, backend):
        split = spmd_run(3, _two_hop_program, True, backend=backend)
        sync = spmd_run(3, _two_hop_program, False, backend=backend)
        assert [payloads for payloads, _ in split] == [p for p, _ in sync]
        assert all(n == 3 and overlapped == 2
                   for _, (n, overlapped) in split)
        assert all(n == 3 and overlapped == 0
                   for _, (n, overlapped) in sync)

    def test_two_hop_thread_process_identical(self):
        assert (spmd_run(3, _two_hop_program, True, backend="thread")
                == spmd_run(3, _two_hop_program, True, backend="process"))

    @pytest.mark.parametrize("backend", ["thread", "process"])
    @pytest.mark.parametrize("program", [_single_hop_program, _two_hop_program])
    def test_trace_identical_to_synchronous(self, backend, program):
        split_trace, sync_trace = CommTrace(3), CommTrace(3)
        spmd_run(3, program, True, trace=split_trace, backend=backend)
        spmd_run(3, program, False, trace=sync_trace, backend=backend)
        assert split_trace.summary() == sync_trace.summary()
        assert (split_trace.snapshot()["alltoallv_calls"]
                == sync_trace.snapshot()["alltoallv_calls"])

    def test_overlapped_time_recorded_only_when_double_buffered(self):
        def program(comm, double_buffer):
            timer = StageTimer()
            schedule = SuperstepSchedule(comm, timer, 3,
                                         double_buffer=double_buffer)
            schedule.run(
                lambda step: [np.zeros(4, dtype=np.int64)] * comm.size,
                lambda step, received: None,
            )
            return timer.overlapped_seconds

        assert all(t > 0.0 for t in spmd_run(2, program, True))
        assert all(t == 0.0 for t in spmd_run(2, program, False))

    def test_single_rank(self):
        split = spmd_run(1, _single_hop_program, True)
        sync = spmd_run(1, _single_hop_program, False)
        assert [p for p, _ in split] == [p for p, _ in sync]

    def test_outcome_without_steps(self):
        def program(comm):
            outcome = SuperstepSchedule(comm, StageTimer(), 0).run(
                lambda step: [], lambda step, received: None)
            return outcome

        assert spmd_run(2, program) == [ScheduleOutcome(0, 0, False)] * 2


class TestPhaseLabelledExchanges:
    """Colliding schedules (ranks in different phases) must raise, not mix."""

    @pytest.mark.parametrize("backend", ["thread", "process"])
    @pytest.mark.parametrize("double_buffer", [False, True])
    def test_label_mismatch_detected(self, backend, double_buffer):
        def program(comm, double_buffer=double_buffer):
            label = "stage_a" if comm.rank == 0 else "stage_b"
            schedule = SuperstepSchedule(comm, StageTimer(), 1,
                                         double_buffer=double_buffer,
                                         label=label)
            schedule.run(
                lambda step: [np.zeros(1, dtype=np.int64)] * comm.size,
                lambda step, received: None,
            )

        with pytest.raises(RankFailedError) as err:
            spmd_run(2, program, backend=backend)
        assert isinstance(err.value.__cause__, CollectiveMismatchError)

    def test_matching_labels_pass(self):
        def program(comm):
            received = []
            schedule = SuperstepSchedule(comm, StageTimer(), 1, label="same")
            schedule.run(
                lambda step: [np.full(2, comm.rank, dtype=np.int64)] * comm.size,
                lambda step, payloads: received.extend(
                    np.asarray(p).tolist() for p in payloads),
            )
            return received

        assert spmd_run(2, program) == [[[0, 0], [1, 1]]] * 2


class TestPerStageConfig:
    """The per-stage double-buffer and alignment batching knobs."""

    def test_global_flag_applies_uniformly(self):
        config = PipelineConfig(double_buffer=True, double_buffer_stages=None)
        assert all(config.stage_double_buffer(s) for s in SUPERSTEP_STAGES)
        config = config.with_double_buffer(False)
        assert not any(config.stage_double_buffer(s) for s in SUPERSTEP_STAGES)

    def test_stage_override_wins(self):
        config = PipelineConfig(double_buffer=False,
                                double_buffer_stages=("bloom", "overlap"))
        assert config.stage_double_buffer("bloom")
        assert config.stage_double_buffer("overlap")
        assert not config.stage_double_buffer("hashtable")
        assert not config.stage_double_buffer("alignment")

    def test_with_double_buffer_clears_override(self):
        config = PipelineConfig(double_buffer_stages=("bloom",))
        cleared = config.with_double_buffer(True)
        assert cleared.double_buffer_stages is None
        assert all(cleared.stage_double_buffer(s) for s in SUPERSTEP_STAGES)

    def test_unknown_stage_rejected(self):
        with pytest.raises(ValueError):
            PipelineConfig(double_buffer_stages=("bloom", "nope"))
        with pytest.raises(ValueError):
            PipelineConfig().stage_double_buffer("nope")

    def test_alignment_batch_tasks_validated(self):
        assert PipelineConfig(alignment_batch_tasks=None).alignment_batch_tasks is None
        assert PipelineConfig(alignment_batch_tasks=64).alignment_batch_tasks == 64
        with pytest.raises(ValueError):
            PipelineConfig(alignment_batch_tasks=0)

    def test_env_knobs(self, monkeypatch):
        monkeypatch.setenv("DIBELLA_DOUBLE_BUFFER_STAGES", "bloom, hashtable")
        monkeypatch.setenv("DIBELLA_ALIGN_BATCH_TASKS", "128")
        config = PipelineConfig()
        assert config.double_buffer_stages == ("bloom", "hashtable")
        assert config.alignment_batch_tasks == 128
        monkeypatch.setenv("DIBELLA_DOUBLE_BUFFER_STAGES", "")
        monkeypatch.setenv("DIBELLA_ALIGN_BATCH_TASKS", "0")
        config = PipelineConfig()
        assert config.double_buffer_stages == ()
        assert not any(config.stage_double_buffer(s) for s in SUPERSTEP_STAGES)
        assert config.alignment_batch_tasks is None


# ---------------------------------------------------------------------------
# Pipeline-level: per-stage equivalence and the full parity matrix
# ---------------------------------------------------------------------------

def _assert_science_identical(result, reference):
    assert result.overlap_pairs() == reference.overlap_pairs()
    table, ref_table = result.alignment_table(), reference.alignment_table()
    for column in ref_table:
        np.testing.assert_array_equal(table[column], ref_table[column])
    for r_table, f_table in zip(result.overlap_tables(),
                                reference.overlap_tables()):
        np.testing.assert_array_equal(r_table.rid_a, f_table.rid_a)
        np.testing.assert_array_equal(r_table.rid_b, f_table.rid_b)
        np.testing.assert_array_equal(r_table.seed_offsets, f_table.seed_offsets)
        np.testing.assert_array_equal(r_table.seed_pos_a, f_table.seed_pos_a)
        np.testing.assert_array_equal(r_table.seed_pos_b, f_table.seed_pos_b)


def _assert_counters_identical(result, reference):
    keys = set(result.counters) | set(reference.counters)
    for key in keys - SCHEDULE_FLAG_COUNTERS:
        assert result.counters.get(key) == reference.counters.get(key), key


@pytest.mark.slow
class TestStageScheduleEquivalence:
    """Sync-vs-split-phase equivalence + trace identity for stages 1, 2, 4
    (mirroring the existing overlap-stage tests in test_backends.py)."""

    @pytest.fixture(scope="class")
    def streaming_config(self, micro_config) -> PipelineConfig:
        """Many supersteps in every stage: small read batches, tiny pair
        chunks, and a bounded alignment fetch batch."""
        from dataclasses import replace

        return replace(micro_config, batch_reads=8, exchange_chunk_mb=0.001,
                       alignment_batch_tasks=16)

    @pytest.fixture(scope="class")
    def sync_run(self, micro_dataset, streaming_config):
        from repro.core.driver import run_dibella

        return run_dibella(micro_dataset.reads,
                           config=streaming_config.with_double_buffer_stages(()),
                           n_nodes=1, ranks_per_node=3)

    @pytest.mark.parametrize("stage", ["bloom", "hashtable", "alignment"])
    def test_stage_split_phase_matches_sync(self, micro_dataset,
                                            streaming_config, sync_run, stage):
        from repro.core.driver import run_dibella

        config = streaming_config.with_double_buffer_stages((stage,))
        result = run_dibella(micro_dataset.reads, config=config,
                             n_nodes=1, ranks_per_node=3)
        _assert_science_identical(result, sync_run)
        _assert_counters_identical(result, sync_run)
        # The schedule actually overlapped something, and only this stage.
        flag = ("chunks" if stage == "overlap" else "steps")
        assert result.counters[f"{stage}_exchange_double_buffered"] > 0
        assert result.counters[f"{stage}_{flag}_overlapped"] > 0
        assert result.stage(stage).wall_overlapped_seconds.sum() > 0.0
        for other in set(SUPERSTEP_STAGES) - {stage}:
            assert result.counters[f"{other}_exchange_double_buffered"] == 0
        # Trace identity: same volumes, same per-phase call counts.
        assert result.trace.summary() == sync_run.trace.summary()
        assert (result.trace.snapshot()["alltoallv_calls"]
                == sync_run.trace.snapshot()["alltoallv_calls"])

    def test_all_stages_double_buffered_matches_sync(self, micro_dataset,
                                                     streaming_config, sync_run):
        from repro.core.driver import run_dibella

        result = run_dibella(micro_dataset.reads,
                             config=streaming_config.with_double_buffer(True),
                             n_nodes=1, ranks_per_node=3)
        _assert_science_identical(result, sync_run)
        _assert_counters_identical(result, sync_run)
        assert result.trace.summary() == sync_run.trace.summary()
        for stage in SUPERSTEP_STAGES:
            assert result.counters[f"{stage}_exchange_double_buffered"] > 0


@pytest.mark.slow
class TestSuperstepParityMatrix:
    """{thread, process} × {double-buffer on/off} over the per-stage knobs:
    bit-identical tables, counters, and alignment results."""

    @pytest.fixture(scope="class")
    def matrix_config(self, micro_config) -> PipelineConfig:
        from dataclasses import replace

        return replace(micro_config, batch_reads=8, exchange_chunk_mb=0.001,
                       alignment_batch_tasks=16)

    @pytest.fixture(scope="class")
    def reference(self, micro_dataset, matrix_config):
        from repro.core.driver import run_dibella

        config = matrix_config.with_backend("thread").with_double_buffer(False)
        return run_dibella(micro_dataset.reads, config=config,
                           n_nodes=1, ranks_per_node=3)

    @pytest.mark.parametrize("backend", ["thread", "process"])
    @pytest.mark.parametrize("double_buffer", [False, True])
    def test_matrix_bit_identical(self, micro_dataset, matrix_config, reference,
                                  backend, double_buffer):
        from repro.core.driver import run_dibella

        config = (matrix_config.with_backend(backend)
                  .with_double_buffer(double_buffer))
        result = run_dibella(micro_dataset.reads, config=config,
                             n_nodes=1, ranks_per_node=3)
        _assert_science_identical(result, reference)
        _assert_counters_identical(result, reference)
        for phase in reference.trace.phases():
            np.testing.assert_array_equal(
                result.trace.phase_traffic(phase).volume,
                reference.trace.phase_traffic(phase).volume,
            )


@pytest.mark.slow
class TestBloomStashRelease:
    """The HLL pre-pass stash is consumed and freed per superstep."""

    def test_peak_below_total_with_multiple_batches(self, micro_dataset,
                                                    micro_config):
        from dataclasses import replace

        from repro.core.driver import run_dibella

        config = replace(micro_config, batch_reads=8)
        result = run_dibella(micro_dataset.reads, config=config,
                             n_nodes=1, ranks_per_node=3)
        total = result.counters["bloom_stash_total_bytes"]
        peak = result.counters["bloom_stash_peak_bytes"]
        assert total > 0
        # The released schedule never carries the whole stash through a
        # superstep — the old whole-stage retention held `total` until the
        # stage ended.
        assert 0 < peak < total

    def test_single_batch_stash_is_fully_released(self, micro_dataset,
                                                  micro_config):
        from dataclasses import replace

        from repro.core.driver import run_dibella

        config = replace(micro_config, batch_reads=10_000)
        result = run_dibella(micro_dataset.reads, config=config,
                             n_nodes=1, ranks_per_node=3)
        assert result.counters["bloom_stash_total_bytes"] > 0
        assert result.counters["bloom_stash_peak_bytes"] == 0

    def test_counters_schedule_independent(self, micro_dataset, micro_config):
        from dataclasses import replace

        from repro.core.driver import run_dibella

        config = replace(micro_config, batch_reads=8)
        db = run_dibella(micro_dataset.reads,
                         config=config.with_double_buffer(True),
                         n_nodes=1, ranks_per_node=3)
        sync = run_dibella(micro_dataset.reads,
                           config=config.with_double_buffer(False),
                           n_nodes=1, ranks_per_node=3)
        for key in ("bloom_stash_total_bytes", "bloom_stash_peak_bytes"):
            assert db.counters[key] == sync.counters[key]


@pytest.mark.slow
class TestAlignmentFetchBatching:
    """Batching the stage-4 fetch must never change what is fetched or aligned."""

    def test_batched_fetch_matches_single_round(self, micro_dataset, micro_config):
        from repro.core.driver import run_dibella

        single = run_dibella(micro_dataset.reads,
                             config=micro_config.with_alignment_batch_tasks(None),
                             n_nodes=1, ranks_per_node=3)
        batched = run_dibella(micro_dataset.reads,
                              config=micro_config.with_alignment_batch_tasks(8),
                              n_nodes=1, ranks_per_node=3)
        _assert_science_identical(batched, single)
        # Every remote read is still requested exactly once, so the fetch
        # counters and the exchanged payload bytes are identical; only the
        # round count grows.
        for key in ("remote_reads_fetched", "read_payload_raw_bytes",
                    "read_payload_wire_bytes", "alignments"):
            assert batched.counters[key] == single.counters[key], key
        # The encoded-buffer access *count* is a function of the tasks only;
        # the hit/miss split may shift (a read aligned before being served
        # counts a miss where serve-then-align counted a hit).
        assert (batched.counters["read_cache_hits"]
                + batched.counters["read_cache_misses"]
                == single.counters["read_cache_hits"]
                + single.counters["read_cache_misses"])
        assert (batched.counters["alignment_fetch_rounds"]
                > single.counters["alignment_fetch_rounds"])
        assert (batched.trace.phase_traffic("alignment_exchange").total_bytes
                >= single.trace.phase_traffic("alignment_exchange").total_bytes)
        assert batched.counters["alignment_steps_overlapped"] > 0
        assert batched.stage("alignment").wall_overlapped_seconds.sum() > 0.0
