"""Unit tests for repro.overlap (pairs, seeds, graph)."""

import numpy as np
import pytest

import networkx as nx

from repro.align.results import AlignmentResult
from repro.kmers.hashtable import RetainedKmers
from repro.overlap.graph import build_overlap_graph, overlap_graph_summary
from repro.overlap.pairs import (
    OverlapRecord,
    OverlapTable,
    PairBatch,
    choose_owner,
    consolidate_pairs,
    generate_pairs,
    owner_heuristic_oddeven,
)
from repro.overlap.seeds import SeedStrategy, select_seeds, select_seeds_batched


# ---------------------------------------------------------------------------
# Reference (loop-based) implementations, kept as oracles for the vectorised
# production code.  These are verbatim ports of the original per-k-mer /
# per-pair loops that generate_pairs and consolidate_pairs used before the
# flat-array rewrite.
# ---------------------------------------------------------------------------

def _reference_generate_pairs(retained: RetainedKmers) -> PairBatch:
    """Per-k-mer triu loop: the original generate_pairs implementation."""
    if retained.n_kmers == 0:
        return PairBatch.empty()
    rid_chunks, ridb_chunks, posa_chunks, posb_chunks, strand_chunks = [], [], [], [], []
    counts = retained.counts()
    for index in range(retained.n_kmers):
        c = int(counts[index])
        if c < 2:
            continue
        _, rids, positions, strands = retained.group(index)
        ii, jj = np.triu_indices(c, k=1)
        ra, rb = rids[ii], rids[jj]
        pa, pb = positions[ii], positions[jj]
        same = strands[ii] == strands[jj]
        distinct = ra != rb
        if not distinct.any():
            continue
        ra, rb, pa, pb, same = (ra[distinct], rb[distinct], pa[distinct],
                                pb[distinct], same[distinct])
        swap = ra > rb
        rid_chunks.append(np.where(swap, rb, ra))
        ridb_chunks.append(np.where(swap, ra, rb))
        posa_chunks.append(np.where(swap, pb, pa))
        posb_chunks.append(np.where(swap, pa, pb))
        strand_chunks.append(same)
    if not rid_chunks:
        return PairBatch.empty()
    return PairBatch(
        rid_a=np.concatenate(rid_chunks).astype(np.int64),
        rid_b=np.concatenate(ridb_chunks).astype(np.int64),
        pos_a=np.concatenate(posa_chunks).astype(np.int64),
        pos_b=np.concatenate(posb_chunks).astype(np.int64),
        same_strand=np.concatenate(strand_chunks).astype(np.int64),
    )


def _reference_consolidate_pairs(batch: PairBatch) -> list[OverlapRecord]:
    """Per-group loop: the original consolidate_pairs implementation."""
    if len(batch) == 0:
        return []
    order = np.lexsort((batch.rid_b, batch.rid_a))
    ra, rb = batch.rid_a[order], batch.rid_b[order]
    pa, pb = batch.pos_a[order], batch.pos_b[order]
    same = batch.same_strand[order]
    boundary = np.ones(ra.size, dtype=bool)
    boundary[1:] = (ra[1:] != ra[:-1]) | (rb[1:] != rb[:-1])
    starts = np.nonzero(boundary)[0]
    ends = np.append(starts[1:], ra.size)
    records = []
    for s, e in zip(starts, ends):
        seeds = np.unique(np.stack([pa[s:e], pb[s:e], same[s:e]], axis=1), axis=0)
        records.append(OverlapRecord(
            rid_a=int(ra[s]), rid_b=int(rb[s]),
            seed_pos_a=seeds[:, 0].copy(), seed_pos_b=seeds[:, 1].copy(),
            seed_same_strand=seeds[:, 2].astype(bool).copy(),
        ))
    return records


def random_retained(rng, n_kmers=60, n_reads=12, max_mult=6, max_pos=300):
    """A randomized RetainedKmers partition for the oracle tests.

    Includes multiplicity-1 groups, repeated RIDs within a group (same-read
    occurrences and duplicate seeds) and random strand combinations.
    """
    groups = {}
    for code in range(n_kmers):
        mult = int(rng.integers(1, max_mult + 1))
        occs = []
        for _ in range(mult):
            rid = int(rng.integers(0, n_reads))
            # Duplicate positions with some probability to exercise the
            # duplicate-seed dedup in consolidation.
            pos = int(rng.integers(0, 4)) if rng.random() < 0.3 else int(rng.integers(0, max_pos))
            occs.append((rid, pos, bool(rng.random() < 0.5)))
        groups[code] = occs
    return make_retained(groups)


def _sorted_rows(batch: PairBatch) -> np.ndarray:
    """Rows of the batch matrix in canonical order (for multiset equality)."""
    matrix = batch.to_matrix()
    if matrix.size == 0:
        return matrix
    order = np.lexsort(matrix.T[::-1])
    return matrix[order]


def make_retained(groups):
    """Build a RetainedKmers from {code: [(rid, pos, strand), ...]}."""
    codes, offsets, rids, positions, strands = [], [0], [], [], []
    for code in sorted(groups):
        occs = groups[code]
        codes.append(code)
        for rid, pos, strand in occs:
            rids.append(rid)
            positions.append(pos)
            strands.append(strand)
        offsets.append(len(rids))
    return RetainedKmers(
        codes=np.array(codes, dtype=np.uint64),
        offsets=np.array(offsets, dtype=np.int64),
        rids=np.array(rids, dtype=np.int64),
        positions=np.array(positions, dtype=np.int64),
        strands=np.array(strands, dtype=bool),
    )


class TestPairBatch:
    def test_matrix_roundtrip(self):
        batch = PairBatch(
            rid_a=np.array([0, 1]), rid_b=np.array([2, 3]),
            pos_a=np.array([5, 6]), pos_b=np.array([7, 8]),
            same_strand=np.array([1, 0]),
        )
        back = PairBatch.from_matrix(batch.to_matrix())
        np.testing.assert_array_equal(back.rid_a, batch.rid_a)
        np.testing.assert_array_equal(back.same_strand, batch.same_strand)

    def test_empty_and_concatenate(self):
        empty = PairBatch.empty()
        assert len(empty) == 0
        combined = PairBatch.concatenate([empty, PairBatch.from_matrix(
            np.array([[0, 1, 2, 3, 1]], dtype=np.int64))])
        assert len(combined) == 1

    def test_from_matrix_validation(self):
        with pytest.raises(ValueError):
            PairBatch.from_matrix(np.zeros((2, 3), dtype=np.int64))

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            PairBatch(rid_a=np.array([0]), rid_b=np.array([1, 2]),
                      pos_a=np.array([0]), pos_b=np.array([0]),
                      same_strand=np.array([1]))


class TestOwnerHeuristics:
    def test_oddeven_matches_algorithm1(self):
        # Exhaustively check the rule on occurrence-ordered inputs.
        for first in range(8):
            for second in range(8):
                if first == second:
                    continue
                expected = ((first % 2 == 0 and first > second + 1)
                            or (first % 2 == 1 and first < second + 1))
                got = owner_heuristic_oddeven(np.array([first]), np.array([second]))[0]
                assert got == expected, (first, second)

    def test_oddeven_both_branches_fire_on_occurrence_order(self):
        # The even branch needs rid_first > rid_second + 1, which only
        # happens on occurrence-ordered (pre-normalisation) pairs; on
        # normalised input (first < second always) it is unsatisfiable.
        rng = np.random.default_rng(11)
        first = rng.integers(0, 1000, size=20_000)
        second = rng.integers(0, 1000, size=20_000)
        keep = first != second
        first, second = first[keep], second[keep]
        use_first = owner_heuristic_oddeven(first, second)
        even = (first % 2) == 0
        even_branch = use_first & even & (first > second + 1)
        odd_branch = use_first & ~even & (first < second + 1)
        assert even_branch.sum() > 0, "even branch never fired"
        assert odd_branch.sum() > 0, "odd branch never fired"
        # On normalised inputs the even branch is provably dead — the
        # degenerate behaviour the occurrence-order evaluation fixes.
        lo, hi = np.minimum(first, second), np.maximum(first, second)
        normalised = owner_heuristic_oddeven(lo, hi)
        assert not (normalised & ((lo % 2) == 0)).any()

    def test_choose_owner_unswaps_before_applying_algorithm1(self):
        # Pair occurred as (6, 3): 6 is even and 6 > 3 + 1, so Algorithm 1
        # keeps the task on the owner of read 6.  The normalised batch stores
        # it as rid_a=3, rid_b=6, swapped=True; without the swap bit the rule
        # would see (3, 6) -> odd branch -> owner of read 3.
        read_owner = np.arange(10, dtype=np.int64)
        dest_swapped = choose_owner(np.array([3]), np.array([6]), read_owner,
                                    heuristic="oddeven", swapped=np.array([True]))
        assert dest_swapped[0] == 6
        dest_plain = choose_owner(np.array([3]), np.array([6]), read_owner,
                                  heuristic="oddeven", swapped=np.array([False]))
        assert dest_plain[0] == 3

    def test_generate_pairs_swapped_recovers_occurrence_order(self):
        # k-mer 100 is seen in read 5 then read 2 (occurrence order), so the
        # normalised pair (2, 5) must carry swapped=True; k-mer 200 is seen
        # in read 1 then read 4 -> (1, 4) with swapped=False.
        retained = make_retained({
            100: [(5, 7, True), (2, 3, True)],
            200: [(1, 9, True), (4, 11, True)],
        })
        batch = generate_pairs(retained)
        by_pair = {(int(a), int(b)): bool(s) for a, b, s in
                   zip(batch.rid_a, batch.rid_b, batch.swapped)}
        assert by_pair == {(2, 5): True, (1, 4): False}

    def test_choose_owner_balances_with_swapped_pairs(self):
        # End-to-end distribution check on normalised batches with a random
        # occurrence order: both Algorithm 1 branches fire and the per-rank
        # task counts stay close to balanced (no worse than the degenerate
        # smaller-RID-parity rule's 1.2 tolerance).
        rng = np.random.default_rng(12)
        n_reads, n_ranks = 1000, 8
        read_owner = np.repeat(np.arange(n_ranks), n_reads // n_ranks)
        first = rng.integers(0, n_reads, size=20_000)
        second = rng.integers(0, n_reads, size=20_000)
        keep = first != second
        first, second = first[keep], second[keep]
        swapped = first > second
        rid_a, rid_b = np.minimum(first, second), np.maximum(first, second)
        dest = choose_owner(rid_a, rid_b, read_owner, heuristic="oddeven",
                            swapped=swapped)
        counts = np.bincount(dest, minlength=n_ranks)
        assert counts.max() / counts.mean() < 1.2
        # Both branches are represented in the chosen destinations.
        even_first_keep = (first % 2 == 0) & (first > second + 1)
        odd_first_keep = (first % 2 == 1) & (first < second + 1)
        np.testing.assert_array_equal(
            dest[even_first_keep], read_owner[first[even_first_keep]])
        np.testing.assert_array_equal(
            dest[odd_first_keep], read_owner[first[odd_first_keep]])
        assert even_first_keep.sum() > 0 and odd_first_keep.sum() > 0

    def test_choose_owner_maps_through_read_owner(self):
        read_owner = np.array([0, 0, 1, 1, 2, 2])
        ra = np.array([0, 2, 5])
        rb = np.array([3, 4, 1])
        dest = choose_owner(ra, rb, read_owner, heuristic="min")
        np.testing.assert_array_equal(dest, read_owner[ra])

    def test_choose_owner_heuristics_valid_ranks(self):
        rng = np.random.default_rng(3)
        read_owner = rng.integers(0, 4, size=100)
        ra = rng.integers(0, 100, size=500)
        rb = rng.integers(0, 100, size=500)
        for heuristic in ("oddeven", "min", "random"):
            dest = choose_owner(ra, rb, read_owner, heuristic=heuristic)
            assert dest.min() >= 0 and dest.max() < 4

    def test_choose_owner_roughly_balances(self):
        # With uniformly distributed RIDs, the odd/even rule should send a
        # near-equal share of tasks to each read's owner.
        rng = np.random.default_rng(4)
        n_reads, n_ranks = 1000, 8
        read_owner = np.repeat(np.arange(n_ranks), n_reads // n_ranks)
        ra = rng.integers(0, n_reads, size=20_000)
        rb = rng.integers(0, n_reads, size=20_000)
        keep = ra != rb
        dest = choose_owner(ra[keep], rb[keep], read_owner, heuristic="oddeven")
        counts = np.bincount(dest, minlength=n_ranks)
        assert counts.max() / counts.mean() < 1.2

    def test_unknown_heuristic(self):
        with pytest.raises(ValueError):
            choose_owner(np.array([0]), np.array([1]), np.array([0, 0]), heuristic="x")


class TestGeneratePairs:
    def test_all_pairs_per_kmer(self):
        retained = make_retained({100: [(0, 5, True), (1, 9, True), (2, 3, False)]})
        batch = generate_pairs(retained)
        pairs = set(zip(batch.rid_a.tolist(), batch.rid_b.tolist()))
        assert pairs == {(0, 1), (0, 2), (1, 2)}

    def test_pair_count_bound(self):
        # A k-mer of multiplicity m contributes at most m(m-1)/2 pairs (§8).
        occs = [(rid, rid * 10, True) for rid in range(6)]
        retained = make_retained({7: occs})
        batch = generate_pairs(retained)
        assert len(batch) == 15

    def test_same_read_occurrences_skipped(self):
        retained = make_retained({3: [(5, 0, True), (5, 40, True)]})
        assert len(generate_pairs(retained)) == 0

    def test_rid_order_normalised_with_positions(self):
        retained = make_retained({9: [(4, 11, True), (2, 7, True)]})
        batch = generate_pairs(retained)
        assert batch.rid_a[0] == 2 and batch.rid_b[0] == 4
        assert batch.pos_a[0] == 7 and batch.pos_b[0] == 11

    def test_strand_combination(self):
        retained = make_retained({9: [(0, 1, True), (1, 2, False)]})
        batch = generate_pairs(retained)
        assert batch.same_strand[0] == 0
        retained2 = make_retained({9: [(0, 1, False), (1, 2, False)]})
        assert generate_pairs(retained2).same_strand[0] == 1

    def test_empty(self):
        assert len(generate_pairs(RetainedKmers.empty())) == 0


class TestPairBatchInvariant:
    def test_rid_order_violation_rejected(self):
        with pytest.raises(ValueError):
            PairBatch(rid_a=np.array([3]), rid_b=np.array([1]),
                      pos_a=np.array([0]), pos_b=np.array([0]),
                      same_strand=np.array([1]))

    def test_equal_rids_rejected(self):
        with pytest.raises(ValueError):
            PairBatch(rid_a=np.array([2]), rid_b=np.array([2]),
                      pos_a=np.array([0]), pos_b=np.array([0]),
                      same_strand=np.array([1]))

    def test_from_matrix_validates_too(self):
        with pytest.raises(ValueError):
            PairBatch.from_matrix(np.array([[5, 1, 0, 0, 1]], dtype=np.int64))


class TestGeneratePairsOracle:
    """The vectorised generate_pairs must match the original loop exactly."""

    @pytest.mark.parametrize("seed", range(5))
    def test_randomized_content_matches_reference(self, seed):
        rng = np.random.default_rng(seed)
        retained = random_retained(rng)
        vectorized = generate_pairs(retained)
        reference = _reference_generate_pairs(retained)
        assert len(vectorized) == len(reference)
        np.testing.assert_array_equal(_sorted_rows(vectorized), _sorted_rows(reference))

    def test_multiplicity_one_groups_contribute_nothing(self):
        retained = make_retained({1: [(0, 5, True)], 2: [(3, 7, False)]})
        assert len(generate_pairs(retained)) == 0
        assert len(_reference_generate_pairs(retained)) == 0

    def test_duplicate_seed_same_pair(self):
        # The same k-mer twice in read 0 against one occurrence in read 1:
        # two tasks for the same pair, different pos_a.
        retained = make_retained({4: [(0, 10, True), (0, 90, True), (1, 50, True)]})
        vectorized = generate_pairs(retained)
        reference = _reference_generate_pairs(retained)
        assert len(vectorized) == 2
        np.testing.assert_array_equal(_sorted_rows(vectorized), _sorted_rows(reference))

    def test_cross_strand_pairs(self):
        retained = make_retained({
            5: [(0, 1, True), (1, 2, False), (2, 3, True)],
            6: [(3, 4, False), (4, 5, False)],
        })
        vectorized = generate_pairs(retained)
        reference = _reference_generate_pairs(retained)
        np.testing.assert_array_equal(_sorted_rows(vectorized), _sorted_rows(reference))
        # (0,1) and (1,2) cross strands; (0,2) and (3,4) agree.
        rows = {(int(a), int(b)): int(s) for a, b, s in
                zip(vectorized.rid_a, vectorized.rid_b, vectorized.same_strand)}
        assert rows[(0, 1)] == 0 and rows[(1, 2)] == 0
        assert rows[(0, 2)] == 1 and rows[(3, 4)] == 1

    def test_large_group_pair_count(self):
        # All-distinct RIDs: exactly c(c-1)/2 pairs survive.
        occs = [(rid, rid, True) for rid in range(9)]
        retained = make_retained({11: occs})
        assert len(generate_pairs(retained)) == 36


class TestConsolidationOracle:
    """OverlapTable.from_pairs must match the original per-group loop."""

    @staticmethod
    def _assert_matches(table: OverlapTable, reference: list[OverlapRecord]):
        records = list(table)
        assert len(records) == len(reference)
        for got, want in zip(records, reference):
            assert (got.rid_a, got.rid_b) == (want.rid_a, want.rid_b)
            np.testing.assert_array_equal(got.seed_pos_a, want.seed_pos_a)
            np.testing.assert_array_equal(got.seed_pos_b, want.seed_pos_b)
            np.testing.assert_array_equal(got.seed_same_strand, want.seed_same_strand)

    @pytest.mark.parametrize("seed", range(5))
    def test_randomized_matches_reference(self, seed):
        rng = np.random.default_rng(100 + seed)
        batch = generate_pairs(random_retained(rng))
        self._assert_matches(OverlapTable.from_pairs(batch),
                             _reference_consolidate_pairs(batch))

    def test_duplicate_seeds_deduplicated(self):
        batch = PairBatch(
            rid_a=np.array([0, 0, 0]), rid_b=np.array([1, 1, 1]),
            pos_a=np.array([10, 10, 10]), pos_b=np.array([20, 20, 20]),
            same_strand=np.array([1, 1, 1]),
        )
        table = OverlapTable.from_pairs(batch)
        assert len(table) == 1 and table.n_seeds == 1
        self._assert_matches(table, _reference_consolidate_pairs(batch))

    def test_same_positions_opposite_strand_kept(self):
        # Identical positions but different orientation are distinct seeds.
        batch = PairBatch(
            rid_a=np.array([0, 0]), rid_b=np.array([1, 1]),
            pos_a=np.array([10, 10]), pos_b=np.array([20, 20]),
            same_strand=np.array([1, 0]),
        )
        table = OverlapTable.from_pairs(batch)
        assert table.n_seeds == 2
        self._assert_matches(table, _reference_consolidate_pairs(batch))

    def test_consolidate_pairs_wrapper_equivalent(self):
        rng = np.random.default_rng(7)
        batch = generate_pairs(random_retained(rng))
        self._assert_matches(OverlapTable.from_pairs(batch), consolidate_pairs(batch))


class TestOverlapTable:
    def _table(self):
        batch = PairBatch(
            rid_a=np.array([0, 0, 0, 1]),
            rid_b=np.array([1, 1, 1, 2]),
            pos_a=np.array([50, 10, 10, 7]),
            pos_b=np.array([60, 20, 20, 9]),
            same_strand=np.array([1, 1, 1, 0]),
        )
        return OverlapTable.from_pairs(batch)

    def test_layout(self):
        table = self._table()
        assert len(table) == 2
        assert table.n_seeds == 3
        np.testing.assert_array_equal(table.rid_a, [0, 1])
        np.testing.assert_array_equal(table.rid_b, [1, 2])
        np.testing.assert_array_equal(table.seed_counts(), [2, 1])
        np.testing.assert_array_equal(table.seed_offsets, [0, 2, 3])

    def test_seeds_sorted_within_pair(self):
        table = self._table()
        lo, hi = table.seed_offsets[0], table.seed_offsets[1]
        assert table.seed_pos_a[lo:hi].tolist() == [10, 50]

    def test_record_and_iteration(self):
        table = self._table()
        first = table.record(0)
        assert isinstance(first, OverlapRecord)
        assert first.n_seeds == 2
        assert [r.rid_b for r in table] == [1, 2]

    def test_empty(self):
        table = OverlapTable.empty()
        assert len(table) == 0 and table.n_seeds == 0
        assert list(table) == []
        assert OverlapTable.from_pairs(PairBatch.empty()).n_pairs == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            OverlapTable(rid_a=np.array([0]), rid_b=np.array([1, 2]),
                         seed_offsets=np.array([0, 1]),
                         seed_pos_a=np.array([0]), seed_pos_b=np.array([0]),
                         seed_same_strand=np.array([True]))
        with pytest.raises(ValueError):
            OverlapTable(rid_a=np.array([0]), rid_b=np.array([1]),
                         seed_offsets=np.array([0]),
                         seed_pos_a=np.array([0]), seed_pos_b=np.array([0]),
                         seed_same_strand=np.array([True]))


class TestBatchedSeedSelection:
    """select_seeds_batched must agree with the scalar per-record scan."""

    def _scalar_selection(self, table, strategy):
        selected = []
        for index in range(len(table)):
            lo = int(table.seed_offsets[index])
            hi = int(table.seed_offsets[index + 1])
            chosen = select_seeds(table.seed_pos_a[lo:hi], table.seed_pos_b[lo:hi], strategy)
            selected.extend(int(lo + c) for c in chosen)
        return np.array(sorted(selected), dtype=np.int64)

    @pytest.mark.parametrize("strategy", [
        SeedStrategy.one_seed(),
        SeedStrategy.separated_by(1000),
        SeedStrategy.separated_by(17),
        SeedStrategy.separated_by(40, max_seeds=2),
        SeedStrategy.separated_by(1),
    ])
    @pytest.mark.parametrize("seed", range(3))
    def test_matches_scalar_on_random_tables(self, strategy, seed):
        rng = np.random.default_rng(200 + seed)
        table = OverlapTable.from_pairs(generate_pairs(random_retained(rng)))
        batched = select_seeds_batched(table, strategy)
        np.testing.assert_array_equal(batched, self._scalar_selection(table, strategy))

    def test_one_seed_picks_first_of_each_pair(self):
        rng = np.random.default_rng(3)
        table = OverlapTable.from_pairs(generate_pairs(random_retained(rng)))
        chosen = select_seeds_batched(table, SeedStrategy.one_seed())
        np.testing.assert_array_equal(chosen, table.seed_offsets[:-1])

    def test_empty_table(self):
        assert select_seeds_batched(OverlapTable.empty(), SeedStrategy.one_seed()).size == 0
        assert select_seeds_batched(OverlapTable.empty(),
                                    SeedStrategy.separated_by(100)).size == 0


class TestConsolidation:
    def test_groups_by_pair_and_dedups_seeds(self):
        batch = PairBatch(
            rid_a=np.array([0, 0, 0, 1]),
            rid_b=np.array([1, 1, 1, 2]),
            pos_a=np.array([10, 10, 50, 7]),
            pos_b=np.array([20, 20, 60, 9]),
            same_strand=np.array([1, 1, 1, 0]),
        )
        records = consolidate_pairs(batch)
        assert len(records) == 2
        first = records[0]
        assert (first.rid_a, first.rid_b) == (0, 1)
        assert first.n_seeds == 2  # duplicate (10, 20) removed
        assert records[1].seed_same_strand.tolist() == [False]

    def test_empty(self):
        assert consolidate_pairs(PairBatch.empty()) == []


class TestSeedSelection:
    def test_one_seed(self):
        pos_a = np.array([500, 100, 900])
        pos_b = np.array([5, 1, 9])
        chosen = select_seeds(pos_a, pos_b, SeedStrategy.one_seed())
        assert chosen.tolist() == [1]  # smallest position on read A

    def test_min_separation(self):
        pos_a = np.array([0, 10, 1200, 1190, 2500])
        pos_b = np.zeros(5, dtype=np.int64)
        chosen = select_seeds(pos_a, pos_b, SeedStrategy.separated_by(1000))
        assert pos_a[chosen].tolist() == [0, 1190, 2500]

    def test_min_separation_d_equals_k(self):
        pos_a = np.arange(0, 100, 5)
        pos_b = np.zeros_like(pos_a)
        chosen = select_seeds(pos_a, pos_b, SeedStrategy.separated_by(17))
        diffs = np.diff(np.sort(pos_a[chosen]))
        assert (diffs >= 17).all()

    def test_max_seeds_cap(self):
        pos_a = np.arange(0, 10_000, 1000)
        pos_b = np.zeros_like(pos_a)
        strategy = SeedStrategy.separated_by(100, max_seeds=3)
        assert select_seeds(pos_a, pos_b, strategy).size == 3

    def test_empty(self):
        assert select_seeds(np.array([]), np.array([]), SeedStrategy.one_seed()).size == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            SeedStrategy(mode="bogus")
        with pytest.raises(ValueError):
            SeedStrategy(mode="min_separation", min_separation=0)
        with pytest.raises(ValueError):
            select_seeds(np.array([1]), np.array([1, 2]), SeedStrategy.one_seed())


class TestOverlapGraph:
    def _records(self):
        return [
            OverlapRecord(0, 1, np.array([5]), np.array([9]), np.array([True])),
            OverlapRecord(1, 2, np.array([7]), np.array([3]), np.array([True])),
            OverlapRecord(3, 4, np.array([1]), np.array([2]), np.array([False])),
        ]

    def test_basic_graph(self):
        graph = build_overlap_graph(self._records())
        assert graph.number_of_nodes() == 5
        assert graph.number_of_edges() == 3
        assert graph[0][1]["n_seeds"] == 1

    def test_graph_with_alignment_filter(self):
        alignments = {
            (0, 1): AlignmentResult(200, 0, 200, 0, 200, 0, "xdrop"),
            (1, 2): AlignmentResult(20, 0, 20, 0, 20, 0, "xdrop"),
        }
        graph = build_overlap_graph(self._records(), alignments=alignments, min_score=50)
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(1, 2)   # below min_score
        assert not graph.has_edge(3, 4)   # no alignment available

    def test_summary(self):
        graph = build_overlap_graph(self._records())
        summary = overlap_graph_summary(graph)
        assert summary["n_components"] == 2
        assert summary["largest_component_fraction"] == pytest.approx(3 / 5)
        assert overlap_graph_summary(nx.Graph())["n_nodes"] == 0.0
