"""Unit tests for repro.overlap (pairs, seeds, graph)."""

import numpy as np
import pytest

import networkx as nx

from repro.align.results import AlignmentResult
from repro.kmers.hashtable import RetainedKmers
from repro.overlap.graph import build_overlap_graph, overlap_graph_summary
from repro.overlap.pairs import (
    OverlapRecord,
    PairBatch,
    choose_owner,
    consolidate_pairs,
    generate_pairs,
    owner_heuristic_oddeven,
)
from repro.overlap.seeds import SeedStrategy, select_seeds


def make_retained(groups):
    """Build a RetainedKmers from {code: [(rid, pos, strand), ...]}."""
    codes, offsets, rids, positions, strands = [], [0], [], [], []
    for code in sorted(groups):
        occs = groups[code]
        codes.append(code)
        for rid, pos, strand in occs:
            rids.append(rid)
            positions.append(pos)
            strands.append(strand)
        offsets.append(len(rids))
    return RetainedKmers(
        codes=np.array(codes, dtype=np.uint64),
        offsets=np.array(offsets, dtype=np.int64),
        rids=np.array(rids, dtype=np.int64),
        positions=np.array(positions, dtype=np.int64),
        strands=np.array(strands, dtype=bool),
    )


class TestPairBatch:
    def test_matrix_roundtrip(self):
        batch = PairBatch(
            rid_a=np.array([0, 1]), rid_b=np.array([2, 3]),
            pos_a=np.array([5, 6]), pos_b=np.array([7, 8]),
            same_strand=np.array([1, 0]),
        )
        back = PairBatch.from_matrix(batch.to_matrix())
        np.testing.assert_array_equal(back.rid_a, batch.rid_a)
        np.testing.assert_array_equal(back.same_strand, batch.same_strand)

    def test_empty_and_concatenate(self):
        empty = PairBatch.empty()
        assert len(empty) == 0
        combined = PairBatch.concatenate([empty, PairBatch.from_matrix(
            np.array([[0, 1, 2, 3, 1]], dtype=np.int64))])
        assert len(combined) == 1

    def test_from_matrix_validation(self):
        with pytest.raises(ValueError):
            PairBatch.from_matrix(np.zeros((2, 3), dtype=np.int64))

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            PairBatch(rid_a=np.array([0]), rid_b=np.array([1, 2]),
                      pos_a=np.array([0]), pos_b=np.array([0]),
                      same_strand=np.array([1]))


class TestOwnerHeuristics:
    def test_oddeven_matches_algorithm1(self):
        # Exhaustively check the rule for a small RID range.
        for ra in range(8):
            for rb in range(8):
                if ra == rb:
                    continue
                expected = (ra % 2 == 0 and ra > rb + 1) or (ra % 2 == 1 and ra < rb + 1)
                got = owner_heuristic_oddeven(np.array([ra]), np.array([rb]))[0]
                assert got == expected, (ra, rb)

    def test_choose_owner_maps_through_read_owner(self):
        read_owner = np.array([0, 0, 1, 1, 2, 2])
        ra = np.array([0, 2, 5])
        rb = np.array([3, 4, 1])
        dest = choose_owner(ra, rb, read_owner, heuristic="min")
        np.testing.assert_array_equal(dest, read_owner[ra])

    def test_choose_owner_heuristics_valid_ranks(self):
        rng = np.random.default_rng(3)
        read_owner = rng.integers(0, 4, size=100)
        ra = rng.integers(0, 100, size=500)
        rb = rng.integers(0, 100, size=500)
        for heuristic in ("oddeven", "min", "random"):
            dest = choose_owner(ra, rb, read_owner, heuristic=heuristic)
            assert dest.min() >= 0 and dest.max() < 4

    def test_choose_owner_roughly_balances(self):
        # With uniformly distributed RIDs, the odd/even rule should send a
        # near-equal share of tasks to each read's owner.
        rng = np.random.default_rng(4)
        n_reads, n_ranks = 1000, 8
        read_owner = np.repeat(np.arange(n_ranks), n_reads // n_ranks)
        ra = rng.integers(0, n_reads, size=20_000)
        rb = rng.integers(0, n_reads, size=20_000)
        keep = ra != rb
        dest = choose_owner(ra[keep], rb[keep], read_owner, heuristic="oddeven")
        counts = np.bincount(dest, minlength=n_ranks)
        assert counts.max() / counts.mean() < 1.2

    def test_unknown_heuristic(self):
        with pytest.raises(ValueError):
            choose_owner(np.array([0]), np.array([1]), np.array([0, 0]), heuristic="x")


class TestGeneratePairs:
    def test_all_pairs_per_kmer(self):
        retained = make_retained({100: [(0, 5, True), (1, 9, True), (2, 3, False)]})
        batch = generate_pairs(retained)
        pairs = set(zip(batch.rid_a.tolist(), batch.rid_b.tolist()))
        assert pairs == {(0, 1), (0, 2), (1, 2)}

    def test_pair_count_bound(self):
        # A k-mer of multiplicity m contributes at most m(m-1)/2 pairs (§8).
        occs = [(rid, rid * 10, True) for rid in range(6)]
        retained = make_retained({7: occs})
        batch = generate_pairs(retained)
        assert len(batch) == 15

    def test_same_read_occurrences_skipped(self):
        retained = make_retained({3: [(5, 0, True), (5, 40, True)]})
        assert len(generate_pairs(retained)) == 0

    def test_rid_order_normalised_with_positions(self):
        retained = make_retained({9: [(4, 11, True), (2, 7, True)]})
        batch = generate_pairs(retained)
        assert batch.rid_a[0] == 2 and batch.rid_b[0] == 4
        assert batch.pos_a[0] == 7 and batch.pos_b[0] == 11

    def test_strand_combination(self):
        retained = make_retained({9: [(0, 1, True), (1, 2, False)]})
        batch = generate_pairs(retained)
        assert batch.same_strand[0] == 0
        retained2 = make_retained({9: [(0, 1, False), (1, 2, False)]})
        assert generate_pairs(retained2).same_strand[0] == 1

    def test_empty(self):
        assert len(generate_pairs(RetainedKmers.empty())) == 0


class TestConsolidation:
    def test_groups_by_pair_and_dedups_seeds(self):
        batch = PairBatch(
            rid_a=np.array([0, 0, 0, 1]),
            rid_b=np.array([1, 1, 1, 2]),
            pos_a=np.array([10, 10, 50, 7]),
            pos_b=np.array([20, 20, 60, 9]),
            same_strand=np.array([1, 1, 1, 0]),
        )
        records = consolidate_pairs(batch)
        assert len(records) == 2
        first = records[0]
        assert (first.rid_a, first.rid_b) == (0, 1)
        assert first.n_seeds == 2  # duplicate (10, 20) removed
        assert records[1].seed_same_strand.tolist() == [False]

    def test_empty(self):
        assert consolidate_pairs(PairBatch.empty()) == []


class TestSeedSelection:
    def test_one_seed(self):
        pos_a = np.array([500, 100, 900])
        pos_b = np.array([5, 1, 9])
        chosen = select_seeds(pos_a, pos_b, SeedStrategy.one_seed())
        assert chosen.tolist() == [1]  # smallest position on read A

    def test_min_separation(self):
        pos_a = np.array([0, 10, 1200, 1190, 2500])
        pos_b = np.zeros(5, dtype=np.int64)
        chosen = select_seeds(pos_a, pos_b, SeedStrategy.separated_by(1000))
        assert pos_a[chosen].tolist() == [0, 1190, 2500]

    def test_min_separation_d_equals_k(self):
        pos_a = np.arange(0, 100, 5)
        pos_b = np.zeros_like(pos_a)
        chosen = select_seeds(pos_a, pos_b, SeedStrategy.separated_by(17))
        diffs = np.diff(np.sort(pos_a[chosen]))
        assert (diffs >= 17).all()

    def test_max_seeds_cap(self):
        pos_a = np.arange(0, 10_000, 1000)
        pos_b = np.zeros_like(pos_a)
        strategy = SeedStrategy.separated_by(100, max_seeds=3)
        assert select_seeds(pos_a, pos_b, strategy).size == 3

    def test_empty(self):
        assert select_seeds(np.array([]), np.array([]), SeedStrategy.one_seed()).size == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            SeedStrategy(mode="bogus")
        with pytest.raises(ValueError):
            SeedStrategy(mode="min_separation", min_separation=0)
        with pytest.raises(ValueError):
            select_seeds(np.array([1]), np.array([1, 2]), SeedStrategy.one_seed())


class TestOverlapGraph:
    def _records(self):
        return [
            OverlapRecord(0, 1, np.array([5]), np.array([9]), np.array([True])),
            OverlapRecord(1, 2, np.array([7]), np.array([3]), np.array([True])),
            OverlapRecord(3, 4, np.array([1]), np.array([2]), np.array([False])),
        ]

    def test_basic_graph(self):
        graph = build_overlap_graph(self._records())
        assert graph.number_of_nodes() == 5
        assert graph.number_of_edges() == 3
        assert graph[0][1]["n_seeds"] == 1

    def test_graph_with_alignment_filter(self):
        alignments = {
            (0, 1): AlignmentResult(200, 0, 200, 0, 200, 0, "xdrop"),
            (1, 2): AlignmentResult(20, 0, 20, 0, 20, 0, "xdrop"),
        }
        graph = build_overlap_graph(self._records(), alignments=alignments, min_score=50)
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(1, 2)   # below min_score
        assert not graph.has_edge(3, 4)   # no alignment available

    def test_summary(self):
        graph = build_overlap_graph(self._records())
        summary = overlap_graph_summary(graph)
        assert summary["n_components"] == 2
        assert summary["largest_component_fraction"] == pytest.approx(3 / 5)
        assert overlap_graph_summary(nx.Graph())["n_nodes"] == 0.0
