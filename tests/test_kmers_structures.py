"""Unit and property tests for repro.kmers (hashing, Bloom, HLL, counter, hash table)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kmers.bloom import BloomFilter
from repro.kmers.counter import KmerCounter, count_kmers, kmer_frequency_histogram
from repro.kmers.hashing import hash_with_seed, mix64, owner_of
from repro.kmers.hashtable import (
    KmerHashTablePartition,
    RetainedKmers,
    shard_code_boundaries,
)
from repro.kmers.hyperloglog import HyperLogLog
from repro.seq.kmer import KmerSpec

codes_arrays = st.lists(st.integers(min_value=0, max_value=2**62), min_size=0, max_size=300).map(
    lambda xs: np.array(xs, dtype=np.uint64)
)


class TestHashing:
    def test_mix64_deterministic_and_scalar(self):
        assert mix64(12345) == mix64(12345)
        assert isinstance(mix64(1), int)

    def test_mix64_distinct(self):
        values = mix64(np.arange(1000, dtype=np.uint64))
        assert np.unique(values).size == 1000

    def test_seeded_hashes_differ(self):
        x = np.arange(100, dtype=np.uint64)
        assert not np.array_equal(hash_with_seed(x, 1), hash_with_seed(x, 2))

    def test_owner_range_and_balance(self):
        codes = np.arange(100_000, dtype=np.uint64)
        owners = owner_of(codes, 16)
        assert owners.min() >= 0 and owners.max() < 16
        counts = np.bincount(owners, minlength=16)
        assert counts.min() > 0.8 * counts.mean()

    def test_owner_scalar(self):
        assert 0 <= owner_of(123, 7) < 7

    def test_owner_invalid(self):
        with pytest.raises(ValueError):
            owner_of(np.arange(3, dtype=np.uint64), 0)

    @given(codes_arrays, st.integers(min_value=1, max_value=64))
    @settings(max_examples=30)
    def test_owner_is_stable(self, codes, n_ranks):
        a = owner_of(codes, n_ranks)
        b = owner_of(codes, n_ranks)
        np.testing.assert_array_equal(a, b)


class TestBloomFilter:
    def test_sizing(self):
        bloom = BloomFilter.for_expected_items(10_000, fp_rate=0.01)
        assert bloom.n_bits > 10_000
        assert bloom.n_hashes >= 4

    def test_no_false_negatives(self):
        rng = np.random.default_rng(0)
        codes = rng.integers(0, 2**62, size=5000).astype(np.uint64)
        bloom = BloomFilter.for_expected_items(5000)
        bloom.insert_many(codes)
        assert bloom.contains_many(codes).all()

    def test_second_insert_reports_present(self):
        codes = np.arange(100, dtype=np.uint64)
        bloom = BloomFilter.for_expected_items(1000)
        first = bloom.insert_many(codes)
        second = bloom.insert_many(codes)
        assert not first.all()  # most were new the first time
        assert second.all()

    def test_within_batch_duplicates_detected(self):
        bloom = BloomFilter.for_expected_items(1000)
        codes = np.array([5, 7, 5, 9, 7, 5], dtype=np.uint64)
        seen = bloom.insert_many(codes)
        # The 3rd, 5th and 6th entries repeat earlier entries of the batch.
        assert seen[2] and seen[4] and seen[5]

    def test_false_positive_rate_reasonable(self):
        rng = np.random.default_rng(1)
        inserted = rng.integers(0, 2**62, size=20_000).astype(np.uint64)
        probes = rng.integers(0, 2**62, size=20_000).astype(np.uint64)
        bloom = BloomFilter.for_expected_items(20_000, fp_rate=0.05)
        bloom.insert_many(inserted)
        fp = bloom.contains_many(probes).mean()
        assert fp < 0.15

    def test_empty_batch(self):
        bloom = BloomFilter(n_bits=128)
        assert bloom.insert_many(np.empty(0, dtype=np.uint64)).size == 0

    def test_scalar_contains(self):
        bloom = BloomFilter(n_bits=1024, n_hashes=3)
        bloom.insert_many(np.array([42], dtype=np.uint64))
        assert bloom.contains(42)

    def test_fill_ratio_monotone(self):
        bloom = BloomFilter(n_bits=4096, n_hashes=2)
        before = bloom.fill_ratio()
        bloom.insert_many(np.arange(100, dtype=np.uint64))
        assert bloom.fill_ratio() > before
        assert 0 <= bloom.estimated_fp_rate() <= 1

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            BloomFilter(n_bits=0)
        with pytest.raises(ValueError):
            BloomFilter.for_expected_items(0)
        with pytest.raises(ValueError):
            BloomFilter.for_expected_items(10, fp_rate=2.0)

    @given(codes_arrays)
    @settings(max_examples=30)
    def test_never_false_negative_property(self, codes):
        bloom = BloomFilter.for_expected_items(max(1, codes.size))
        bloom.insert_many(codes)
        if codes.size:
            assert bloom.contains_many(codes).all()


class TestHyperLogLog:
    def test_estimate_accuracy(self):
        rng = np.random.default_rng(2)
        codes = rng.integers(0, 2**62, size=50_000).astype(np.uint64)
        hll = HyperLogLog(precision=14)
        hll.add_many(codes)
        distinct = np.unique(codes).size
        assert abs(hll.estimate() - distinct) / distinct < 0.05

    def test_duplicates_do_not_inflate(self):
        codes = np.arange(1000, dtype=np.uint64)
        hll = HyperLogLog(precision=12)
        for _ in range(5):
            hll.add_many(codes)
        assert abs(hll.estimate() - 1000) / 1000 < 0.1

    def test_small_range_correction(self):
        hll = HyperLogLog(precision=10)
        hll.add_many(np.arange(10, dtype=np.uint64))
        assert 5 <= hll.estimate() <= 20

    def test_merge_equals_union(self):
        rng = np.random.default_rng(3)
        a = rng.integers(0, 2**62, size=20_000).astype(np.uint64)
        b = rng.integers(0, 2**62, size=20_000).astype(np.uint64)
        ha, hb, hu = HyperLogLog(12), HyperLogLog(12), HyperLogLog(12)
        ha.add_many(a)
        hb.add_many(b)
        hu.add_many(np.concatenate([a, b]))
        merged = ha | hb
        assert abs(merged.estimate() - hu.estimate()) / hu.estimate() < 0.01

    def test_register_roundtrip(self):
        hll = HyperLogLog(precision=8)
        hll.add_many(np.arange(500, dtype=np.uint64))
        clone = HyperLogLog.from_registers(hll.registers())
        assert clone.estimate() == hll.estimate()

    def test_invalid(self):
        with pytest.raises(ValueError):
            HyperLogLog(precision=2)
        with pytest.raises(ValueError):
            HyperLogLog(12).merge(HyperLogLog(13))


class TestCounter:
    def test_count_kmers(self):
        codes, counts = count_kmers(np.array([3, 1, 3, 3, 2], dtype=np.uint64))
        np.testing.assert_array_equal(codes, [1, 2, 3])
        np.testing.assert_array_equal(counts, [1, 1, 3])

    def test_streaming_counter(self):
        counter = KmerCounter(KmerSpec(k=3, canonical=False))
        counter.add_read("ACGTACGT")
        counter.add_read("ACG")
        assert counter.total_kmers == 7
        assert counter.count_of(int(np.uint64(0b000110))) >= 1  # "ACG" == codes 0,1,2
        assert counter.distinct_kmers > 0

    def test_singleton_fraction_and_retained(self):
        counter = KmerCounter(KmerSpec(k=2, canonical=False))
        counter.add_codes(np.array([1, 1, 2, 3, 3, 3], dtype=np.uint64))
        assert counter.singleton_fraction() == pytest.approx(1 / 3)
        codes, counts = counter.retained(min_count=2, max_count=2)
        np.testing.assert_array_equal(codes, [1])

    def test_histogram(self):
        hist = kmer_frequency_histogram(np.array([1, 1, 2, 5, 100]), max_bin=8)
        assert hist[1] == 2
        assert hist[2] == 1
        assert hist[8] == 1  # clamped
        with pytest.raises(ValueError):
            kmer_frequency_histogram(np.array([1]), max_bin=0)


class TestHashTablePartition:
    def _partition_with(self, occurrences):
        """occurrences: list of (code, rid, pos, strand)."""
        part = KmerHashTablePartition()
        codes = np.array([o[0] for o in occurrences], dtype=np.uint64)
        part.add_candidate_keys(codes)
        part.finalize_keys()
        part.add_occurrences(
            codes,
            np.array([o[1] for o in occurrences]),
            np.array([o[2] for o in occurrences]),
            np.array([o[3] for o in occurrences], dtype=bool),
        )
        return part

    def test_keys_and_membership(self):
        part = KmerHashTablePartition()
        part.add_candidate_keys(np.array([5, 9, 5, 7], dtype=np.uint64))
        assert part.finalize_keys() == 3
        mask = part.has_keys(np.array([5, 6, 7, 8, 9], dtype=np.uint64))
        np.testing.assert_array_equal(mask, [True, False, True, False, True])

    def test_requires_finalized_keys(self):
        part = KmerHashTablePartition()
        with pytest.raises(RuntimeError):
            part.has_keys(np.array([1], dtype=np.uint64))
        with pytest.raises(RuntimeError):
            _ = part.n_keys

    def test_non_key_occurrences_dropped(self):
        part = KmerHashTablePartition()
        part.add_candidate_keys(np.array([10], dtype=np.uint64))
        part.finalize_keys()
        stored = part.add_occurrences(
            np.array([10, 11], dtype=np.uint64),
            np.array([0, 1]), np.array([5, 6]), np.array([True, True]),
        )
        assert stored == 1

    def test_finalize_groups_and_filters(self):
        occurrences = [
            (100, 0, 3, True), (100, 1, 7, False), (100, 2, 9, True),   # count 3
            (200, 3, 1, True),                                          # singleton
            (300, 4, 0, True), (300, 5, 2, True), (300, 6, 4, True),
            (300, 7, 6, True), (300, 8, 8, True),                       # count 5
        ]
        part = self._partition_with(occurrences)
        retained = part.finalize(min_count=2, max_count=4)
        assert retained.n_kmers == 1  # only code 100 survives (300 exceeds max)
        code, rids, positions, strands = retained.group(0)
        assert code == 100
        np.testing.assert_array_equal(sorted(rids), [0, 1, 2])
        assert retained.counts().tolist() == [3]
        assert strands.dtype == bool

    def test_finalize_empty(self):
        part = KmerHashTablePartition()
        part.finalize_keys()
        retained = part.finalize()
        assert retained.n_kmers == 0
        assert retained.n_occurrences == 0

    def test_finalize_validation(self):
        part = KmerHashTablePartition()
        part.finalize_keys()
        with pytest.raises(ValueError):
            part.finalize(min_count=0)
        with pytest.raises(ValueError):
            part.finalize(min_count=3, max_count=2)

    def test_add_occurrences_length_mismatch(self):
        part = KmerHashTablePartition()
        part.add_candidate_keys(np.array([1], dtype=np.uint64))
        part.finalize_keys()
        with pytest.raises(ValueError):
            part.add_occurrences(np.array([1], dtype=np.uint64), np.array([0, 1]),
                                 np.array([0]))

    def test_memory_accounting(self):
        part = KmerHashTablePartition()
        part.add_candidate_keys(np.arange(100, dtype=np.uint64))
        part.finalize_keys()
        assert part.memory_nbytes() > 0

    def test_retained_empty_constructor(self):
        empty = RetainedKmers.empty()
        assert empty.n_kmers == 0 and empty.n_occurrences == 0


def _concat_retained(shards):
    """Concatenate shard results back into one RetainedKmers (test oracle)."""
    non_empty = [s for s in shards if s.n_kmers]
    if not non_empty:
        return RetainedKmers.empty()
    counts = np.concatenate([np.diff(s.offsets) for s in non_empty])
    return RetainedKmers(
        codes=np.concatenate([s.codes for s in non_empty]),
        offsets=np.concatenate(([0], np.cumsum(counts))).astype(np.int64),
        rids=np.concatenate([s.rids for s in non_empty]),
        positions=np.concatenate([s.positions for s in non_empty]),
        strands=np.concatenate([s.strands for s in non_empty]),
    )


class TestCodeRangeSharding:
    """finalize_shards: a streamed, memory-bounded equivalent of finalize."""

    def _random_partition(self, seed=0, n_occ=400, code_bits=34):
        rng = np.random.default_rng(seed)
        codes = rng.integers(0, 1 << code_bits, size=n_occ).astype(np.uint64)
        # Duplicate a share of codes so multi-occurrence groups exist.
        codes[n_occ // 2 :] = codes[: n_occ - n_occ // 2]
        part = KmerHashTablePartition()
        part.add_candidate_keys(codes)
        part.finalize_keys()
        # Feed occurrences in several batches, as the exchange supersteps do.
        for lo in range(0, n_occ, 97):
            hi = min(lo + 97, n_occ)
            part.add_occurrences(
                codes[lo:hi],
                rng.integers(0, 50, size=hi - lo),
                rng.integers(0, 1000, size=hi - lo),
                rng.integers(0, 2, size=hi - lo).astype(bool),
            )
        return part

    def test_boundaries_partition_the_code_space(self):
        boundaries = shard_code_boundaries(k=17, n_shards=4)
        assert boundaries.dtype == np.uint64
        assert boundaries.size == 3
        assert np.all(np.diff(boundaries.astype(object)) > 0)
        assert int(boundaries[-1]) < 4 ** 17
        assert shard_code_boundaries(k=17, n_shards=1).size == 0

    @pytest.mark.parametrize("n_shards", [1, 2, 3, 8])
    def test_shards_concatenate_to_the_monolithic_finalize(self, n_shards):
        reference = self._random_partition().finalize(min_count=2, max_count=6)
        part = self._random_partition()
        shards = list(part.finalize_shards(shard_code_boundaries(17, n_shards),
                                           min_count=2, max_count=6))
        assert len(shards) == n_shards
        merged = _concat_retained(shards)
        np.testing.assert_array_equal(merged.codes, reference.codes)
        np.testing.assert_array_equal(merged.offsets, reference.offsets)
        np.testing.assert_array_equal(merged.rids, reference.rids)
        np.testing.assert_array_equal(merged.positions, reference.positions)
        np.testing.assert_array_equal(merged.strands, reference.strands)

    def test_sharding_cuts_peak_retained_memory(self):
        whole = self._random_partition()
        list(whole.finalize_shards(shard_code_boundaries(17, 1)))
        unsharded_peak = whole.retained_peak_nbytes

        sharded = self._random_partition()
        list(sharded.finalize_shards(shard_code_boundaries(17, 4)))
        assert 0 < sharded.retained_peak_nbytes < unsharded_peak

    def test_generator_consumes_the_buffers(self):
        part = self._random_partition()
        assert part.n_occurrences_buffered > 0
        list(part.finalize_shards(shard_code_boundaries(17, 2)))
        assert part.n_occurrences_buffered == 0

    def test_empty_partition_yields_empty_shards(self):
        part = KmerHashTablePartition()
        part.finalize_keys()
        shards = list(part.finalize_shards(shard_code_boundaries(17, 3)))
        assert [s.n_kmers for s in shards] == [0, 0, 0]

    def test_count_filter_validation(self):
        part = KmerHashTablePartition()
        part.finalize_keys()
        with pytest.raises(ValueError):
            list(part.finalize_shards(shard_code_boundaries(17, 2), min_count=0))
