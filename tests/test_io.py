"""Unit tests for repro.io (FASTQ, FASTA, partitioning)."""

import numpy as np
import pytest

from repro.io.fasta import FastaFormatError, read_fasta, write_fasta
from repro.io.fastq import FastqFormatError, parse_fastq, read_fastq, write_fastq
from repro.io.partition import (
    partition_by_size,
    partition_imbalance,
    partition_reads,
    partition_round_robin,
)
from repro.seq.records import Read, ReadSet


@pytest.fixture
def reads():
    return ReadSet([
        Read(name="r0", sequence="ACGTACGTAA", quality="I" * 10),
        Read(name="r1", sequence="GGGGCCCC", quality="I" * 8),
        Read(name="r2", sequence="TTTTTTTTTTTTTTTT", quality="I" * 16),
    ])


class TestFastq:
    def test_roundtrip(self, reads, tmp_path):
        path = tmp_path / "x.fastq"
        assert write_fastq(reads, path) == 3
        back = read_fastq(path)
        assert back.names() == ["r0", "r1", "r2"]
        assert back[0].sequence == "ACGTACGTAA"
        assert back[2].quality == "I" * 16

    def test_gzip_roundtrip(self, reads, tmp_path):
        path = tmp_path / "x.fastq.gz"
        write_fastq(reads, path)
        back = read_fastq(path)
        assert len(back) == 3

    def test_missing_quality_placeholder(self, tmp_path):
        path = tmp_path / "x.fastq"
        write_fastq([Read(name="r", sequence="ACGT")], path)
        back = read_fastq(path)
        assert back[0].quality == "IIII"

    def test_sanitises_ambiguous_bases(self):
        records = list(parse_fastq(["@r1", "ACGNN", "+", "IIIII"]))
        assert records[0].sequence == "ACGAA"

    def test_bad_header(self):
        with pytest.raises(FastqFormatError):
            list(parse_fastq(["notaheader", "ACGT", "+", "IIII"]))

    def test_truncated_record(self):
        with pytest.raises(FastqFormatError):
            list(parse_fastq(["@r1", "ACGT"]))

    def test_bad_separator(self):
        with pytest.raises(FastqFormatError):
            list(parse_fastq(["@r1", "ACGT", "x", "IIII"]))

    def test_length_mismatch(self):
        with pytest.raises(FastqFormatError):
            list(parse_fastq(["@r1", "ACGT", "+", "II"]))

    def test_blank_lines_tolerated(self):
        records = list(parse_fastq(["@r1", "ACGT", "+", "IIII", "", ""]))
        assert len(records) == 1


class TestFasta:
    def test_roundtrip(self, reads, tmp_path):
        path = tmp_path / "x.fasta"
        assert write_fasta(reads, path, line_width=5) == 3
        back = read_fasta(path)
        assert back.names() == ["r0", "r1", "r2"]
        assert back[2].sequence == "T" * 16

    def test_data_before_header(self, tmp_path):
        path = tmp_path / "bad.fasta"
        path.write_text("ACGT\n>r\nACGT\n")
        with pytest.raises(FastaFormatError):
            read_fasta(path)

    def test_invalid_line_width(self, reads, tmp_path):
        with pytest.raises(ValueError):
            write_fasta(reads, tmp_path / "x.fasta", line_width=0)


class TestPartition:
    def _readset(self, lengths):
        return ReadSet([Read(name=f"r{i}", sequence="A" * n) for i, n in enumerate(lengths)])

    def test_covers_all_rids_exactly_once(self):
        rs = self._readset([10, 20, 30, 40, 50, 60])
        for strategy in ("size", "round_robin"):
            parts = partition_reads(rs, 3, strategy=strategy)
            flat = sorted(rid for part in parts for rid in part)
            assert flat == list(range(6))

    def test_by_size_is_contiguous(self):
        rs = self._readset([10] * 12)
        parts = partition_by_size(rs, 4)
        for part in parts:
            assert part == list(range(part[0], part[0] + len(part)))

    def test_by_size_balances_bytes(self):
        rs = self._readset([100] * 16)
        parts = partition_by_size(rs, 4)
        assert partition_imbalance(parts, rs) == pytest.approx(1.0)

    def test_uneven_lengths_still_reasonable(self):
        rs = self._readset([1000, 10, 10, 10, 1000, 10, 10, 10])
        parts = partition_by_size(rs, 4)
        assert partition_imbalance(parts, rs) < 2.5

    def test_round_robin(self):
        rs = self._readset([10] * 5)
        parts = partition_round_robin(rs, 2)
        assert parts == [[0, 2, 4], [1, 3]]

    def test_more_ranks_than_reads(self):
        rs = self._readset([10, 10])
        parts = partition_by_size(rs, 5)
        flat = sorted(rid for part in parts for rid in part)
        assert flat == [0, 1]

    def test_empty_readset(self):
        parts = partition_by_size(ReadSet(), 3)
        assert parts == [[], [], []]

    def test_invalid_inputs(self):
        rs = self._readset([10])
        with pytest.raises(ValueError):
            partition_by_size(rs, 0)
        with pytest.raises(ValueError):
            partition_reads(rs, 2, strategy="bogus")
